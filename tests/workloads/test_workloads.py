"""Tests for dataset specs and self-verifying file generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    CIFAR10,
    IMAGENET_1K,
    OPEN_IMAGES,
    DatasetSpec,
    generate_file,
    verify_file,
)
from repro.workloads.filegen import expected_content


class TestFileGen:
    def test_size_exact(self):
        for size in (4, 100, 4096):
            assert len(generate_file("/a", size)) == size

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_file("/a", 3)

    def test_deterministic(self):
        assert generate_file("/a", 64, seed=1) == generate_file("/a", 64, seed=1)
        assert expected_content("/a", 64, 1) == generate_file("/a", 64, 1)

    def test_distinct_paths_distinct_content(self):
        assert generate_file("/a", 64) != generate_file("/b", 64)

    def test_verification(self):
        data = generate_file("/x", 128)
        assert verify_file(data)
        corrupted = bytearray(data)
        corrupted[10] ^= 0xFF
        assert not verify_file(bytes(corrupted))
        assert not verify_file(data[:2])

    @settings(max_examples=25, deadline=None)
    @given(st.text(min_size=1, max_size=20), st.integers(4, 1024))
    def test_verify_property(self, path, size):
        assert verify_file(generate_file(path, size))


class TestDatasetSpec:
    def test_paper_shapes(self):
        assert IMAGENET_1K.n_files == 1_281_167
        assert IMAGENET_1K.n_classes == 1000
        assert IMAGENET_1K.mean_file_bytes == 110 * 1024
        assert OPEN_IMAGES.n_files == 9_000_000
        assert CIFAR10.n_files == 60_000
        assert CIFAR10.n_classes == 10

    def test_total_bytes_imagenet_is_about_150gb(self):
        """§6.5: ImageNet-1K is 'around 150GB'."""
        gb = IMAGENET_1K.total_bytes() / 2**30
        assert 100 < gb < 180

    def test_validation(self):
        with pytest.raises(ValueError):
            DatasetSpec("x", 0, 1024, 10)
        with pytest.raises(ValueError):
            DatasetSpec("x", 10, 100, 10, min_file_bytes=200)

    def test_scaled(self):
        small = IMAGENET_1K.scaled(0.001)
        assert small.n_files == round(IMAGENET_1K.n_files * 0.001)
        assert small.mean_file_bytes == IMAGENET_1K.mean_file_bytes
        assert small.name.startswith("imagenet-1k-x")
        with pytest.raises(ValueError):
            IMAGENET_1K.scaled(0)

    def test_scaled_keeps_classes(self):
        tiny = IMAGENET_1K.scaled(1e-6)
        assert tiny.n_files == IMAGENET_1K.n_classes

    def test_paths_are_stable_and_classed(self):
        spec = CIFAR10.scaled(0.001)
        assert spec.path_of(0) == spec.path_of(0)
        assert "/class0003/" in spec.path_of(3)

    def test_sizes_deterministic_with_mean(self):
        spec = IMAGENET_1K.scaled(0.0005)
        sizes = [spec.size_of(i) for i in range(200)]
        assert sizes == [spec.size_of(i) for i in range(200)]
        mean = sum(sizes) / len(sizes)
        assert 0.6 * spec.mean_file_bytes < mean < 1.5 * spec.mean_file_bytes

    def test_constant_sizes_when_sigma_zero(self):
        assert {CIFAR10.size_of(i) for i in range(50)} == {CIFAR10.mean_file_bytes}

    def test_iter_files(self):
        spec = CIFAR10.scaled(0.0005)
        files = list(spec.iter_files())
        assert len(files) == spec.n_files
        assert all(size >= spec.min_file_bytes for _, size in files)

    def test_vectorized_sizes_match_stats(self):
        spec = IMAGENET_1K.scaled(0.001)
        sizes = spec.sizes()
        assert len(sizes) == spec.n_files
        assert sizes.min() >= spec.min_file_bytes
        mean = sizes.mean()
        assert 0.8 * spec.mean_file_bytes < mean < 1.25 * spec.mean_file_bytes
