"""Integration with realistic dataset shapes (lognormal sizes, classed
paths): a scaled ImageNet-1K spec driven through the full DIESEL stack."""

import pytest

from repro.bench.setups import (
    add_diesel,
    bulk_load_diesel,
    diesel_client_with_snapshot,
    make_testbed,
)
from repro.workloads.datasets import CIFAR10, IMAGENET_1K
from repro.workloads.filegen import generate_file, verify_file


@pytest.fixture(scope="module")
def scaled_imagenet():
    # scaled() keeps at least one file per class: 1000 files here,
    # with the real lognormal size distribution.
    spec = IMAGENET_1K.scaled(0.0002)
    tb = make_testbed(n_compute=2)
    add_diesel(tb)
    files = {
        path: generate_file(path, size) for path, size in spec.iter_files()
    }
    bulk_load_diesel(tb, spec.name, files, chunk_size=4 * 1024 * 1024)
    client = diesel_client_with_snapshot(
        tb, spec.name, tb.compute_nodes[0], "reader"
    )
    return spec, tb, files, client


class TestScaledImagenet:
    def test_spec_scale(self, scaled_imagenet):
        spec, tb, files, client = scaled_imagenet
        assert spec.n_files == len(files) == 1000  # class floor
        # Lognormal sizes: genuinely heterogeneous.
        sizes = {len(d) for d in files.values()}
        assert len(sizes) > 100

    def test_chunk_count_matches_size_arithmetic(self, scaled_imagenet):
        spec, tb, files, client = scaled_imagenet
        total = sum(len(d) for d in files.values())
        n_chunks = len(tb.store.list_keys())
        # ~110KB files into 4MB chunks: about total/4MB chunks.
        assert n_chunks == pytest.approx(total / (4 * 2**20), abs=2)

    def test_every_file_roundtrips(self, scaled_imagenet):
        spec, tb, files, client = scaled_imagenet

        def verify():
            for path, expected in files.items():
                data = yield from client.get(path)
                assert data == expected
                assert verify_file(data)

        tb.run(verify())

    def test_class_directories_listed(self, scaled_imagenet):
        spec, tb, files, client = scaled_imagenet

        def proc():
            listing = yield from client.ls(f"/{spec.name}/train")
            return listing

        listing = tb.run(proc())
        # 1000 files round-robin over 1000 classes: one dir each.
        assert len(listing) == 1000

    def test_chunkwise_epoch_on_heterogeneous_sizes(self, scaled_imagenet):
        spec, tb, files, client = scaled_imagenet
        client.enable_shuffle(group_size=2)
        plan = client.epoch_file_list(seed=1)
        assert sorted(plan.files) == sorted(files)

        def epoch():
            for path in plan.files[:100]:
                data = yield from client.get(path)
                assert data == files[path]

        tb.run(epoch())


class TestCifarShape:
    def test_cifar_files_constant_size(self):
        spec = CIFAR10.scaled(0.001)
        files = dict(spec.iter_files())
        assert len(set(files.values())) == 1  # sigma=0: constant sizes
        assert all(s == CIFAR10.mean_file_bytes for s in files.values())
