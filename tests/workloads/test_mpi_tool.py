"""Tests for the MPI-style concurrent I/O tool (§6.1)."""

import pytest

from repro.bench.setups import (
    add_diesel,
    add_lustre,
    add_memcached,
    diesel_client_with_snapshot,
    make_testbed,
)
from repro.core.client import DieselClient
from repro.workloads.mpi_tool import (
    DieselBackend,
    LustreBackend,
    MemcachedBackend,
    MpiIoTool,
)

PATHS = [f"/mpi/f{i:04d}.bin" for i in range(48)]


def diesel_tool(n_nodes=4, ranks_per_node=2):
    tb = make_testbed(n_compute=n_nodes)
    add_diesel(tb)
    rank_nodes = [tb.compute_nodes[r % n_nodes]
                  for r in range(n_nodes * ranks_per_node)]
    clients = [
        DieselClient(tb.env, node, tb.diesel_servers, "mpi",
                     name=f"rank{r}", rank=r)
        for r, node in enumerate(rank_nodes)
    ]
    tool = MpiIoTool(tb.env, DieselBackend(clients), rank_nodes, PATHS,
                     file_size=2048)
    return tb, tool


class TestAssignment:
    def test_even_division(self):
        tb, tool = diesel_tool()
        sizes = [len(tool.assignment(r)) for r in range(tool.n_ranks)]
        assert sum(sizes) == len(PATHS)
        assert max(sizes) - min(sizes) <= 1

    def test_assignments_partition_paths(self):
        tb, tool = diesel_tool()
        seen = [p for r in range(tool.n_ranks) for p in tool.assignment(r)]
        assert sorted(seen) == sorted(PATHS)

    def test_needs_ranks(self):
        tb, _ = diesel_tool()
        with pytest.raises(ValueError):
            MpiIoTool(tb.env, None, [], PATHS)


class TestDieselRoundtrip:
    def test_write_then_read_verifies_clean(self):
        tb, tool = diesel_tool()
        w = tool.run_write_phase()
        assert w.files == len(PATHS)
        assert w.files_per_s > 0
        r = tool.run_read_phase()
        assert r.clean
        assert r.verified_ok == len(PATHS)

    def test_read_detects_corruption(self):
        tb, tool = diesel_tool()
        tool.run_write_phase()
        # Corrupt one stored chunk payload byte (past the header).
        key = tb.store.list_keys()[0]
        blob = bytearray(tb.store.peek(key))
        blob[-1] ^= 0xFF
        tb.store.patch(key, bytes(blob))
        r = tool.run_read_phase()
        assert r.corrupted >= 1
        assert not r.clean

    def test_shuffled_and_sequential_read_same_verification(self):
        tb, tool = diesel_tool()
        tool.run_write_phase()
        assert tool.run_read_phase(shuffled=True).clean
        assert tool.run_read_phase(shuffled=False).clean


class TestLustreBackend:
    def test_roundtrip(self):
        tb = make_testbed(n_compute=2)
        fs = add_lustre(tb)
        rank_nodes = [tb.compute_nodes[r % 2] for r in range(4)]
        tool = MpiIoTool(tb.env, LustreBackend(fs), rank_nodes, PATHS,
                         file_size=1024)
        tool.run_write_phase()
        r = tool.run_read_phase()
        assert r.clean and r.verified_ok == len(PATHS)


class TestMemcachedBackend:
    def test_roundtrip_and_missing_on_failure(self):
        tb = make_testbed(n_compute=6)
        mc = add_memcached(tb, n_servers=4)
        rank_nodes = [tb.compute_nodes[4 + (r % 2)] for r in range(4)]
        tool = MpiIoTool(tb.env, MemcachedBackend(mc), rank_nodes, PATHS,
                         file_size=1024)
        tool.run_write_phase()
        assert tool.run_read_phase().clean
        # Kill one server: its keys read as missing, counted not hidden.
        mc.kill_server("memcached0")
        r = tool.run_read_phase()
        assert r.missing > 0
        assert r.verified_ok + r.missing == len(PATHS)


class TestThroughputComparison:
    def test_diesel_writes_faster_than_lustre(self):
        """The tool reproduces the Fig 9 ordering on a tiny workload."""
        tb, tool = diesel_tool()
        w_diesel = tool.run_write_phase()

        tb2 = make_testbed(n_compute=4)
        fs = add_lustre(tb2)
        rank_nodes = [tb2.compute_nodes[r % 4] for r in range(8)]
        w_lustre = MpiIoTool(
            tb2.env, LustreBackend(fs), rank_nodes, PATHS, file_size=2048
        ).run_write_phase()
        assert w_diesel.files_per_s > 5 * w_lustre.files_per_s
