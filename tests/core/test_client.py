"""End-to-end tests for libDIESEL (Table 3 API)."""

import pytest

from repro.core.client import SyncDieselClient
from repro.core.config import DieselConfig
from repro.errors import (
    ClosedError,
    DieselError,
    FileNotFoundInDatasetError,
    StaleSnapshotError,
)

from tests.core.conftest import build_deployment, small_files, write_dataset


class TestPutGet:
    def test_roundtrip(self, deployment):
        client = deployment.new_client("ds", config=DieselConfig(chunk_size=4096))

        def proc():
            yield from client.put("/x/a.bin", b"A" * 3000)
            yield from client.put("/x/b.bin", b"B" * 3000)  # seals chunk 1
            yield from client.flush()
            a = yield from client.get("/x/a.bin")
            b = yield from client.get("/x/b.bin")
            return a, b

        a, b = deployment.run(proc())
        assert a == b"A" * 3000 and b == b"B" * 3000
        assert client.stats.puts == 2
        assert client.stats.chunks_sent == 1

    def test_flush_sends_partial_chunk(self, deployment):
        client = deployment.new_client("ds")

        def proc():
            yield from client.put("/only", b"tiny")
            assert client.stats.chunks_sent == 0
            yield from client.flush()
            data = yield from client.get("/only")
            return data

        assert deployment.run(proc()) == b"tiny"
        assert client.stats.chunks_sent == 1

    def test_get_missing_raises(self, deployment):
        write_dataset(deployment, "ds", small_files(3))
        client = deployment.new_client("ds")

        def proc():
            yield from client.get("/ghost")

        with pytest.raises(FileNotFoundInDatasetError):
            deployment.run(proc())

    def test_bytes_accounting(self, deployment):
        client = write_dataset(deployment, "ds", {"/a": b"12345"})

        def proc():
            yield from client.get("/a")

        deployment.run(proc())
        assert client.stats.bytes_written == 5
        assert client.stats.bytes_read == 5


class TestSnapshotFlow:
    def test_save_load_then_local_metadata(self, deployment):
        files = small_files(12)
        client = write_dataset(deployment, "ds", files)

        def proc():
            blob = yield from client.save_meta()
            idx = yield from client.load_meta(blob)
            st = yield from client.stat(next(iter(files)))
            listing = yield from client.ls("/img")
            return idx, st, listing

        idx, st, listing = deployment.run(proc())
        assert client.snapshot_loaded
        assert idx.file_count == 12
        assert st["size"] == 4096
        assert listing == ["/img/class0", "/img/class1", "/img/class2",
                           "/img/class3"]

    def test_stale_snapshot_rejected(self, deployment):
        files = small_files(5)
        client = write_dataset(deployment, "ds", files)

        def proc():
            blob = yield from client.save_meta()
            # Dataset changes after the snapshot was taken...
            yield from client.put("/late/file", b"z" * 10)
            yield from client.flush()
            yield from client.load_meta(blob)

        with pytest.raises(StaleSnapshotError):
            deployment.run(proc())

    def test_wrong_dataset_snapshot_rejected(self, deployment):
        write_dataset(deployment, "alpha", small_files(3, prefix="/a"))
        client_a = deployment.new_client("alpha")
        write_dataset(deployment, "beta", small_files(3, prefix="/b"))
        client_b = deployment.new_client("beta")

        def proc():
            blob = yield from client_a.save_meta()
            yield from client_b.load_meta(blob)

        with pytest.raises(DieselError):
            deployment.run(proc())

    def test_metadata_without_snapshot_hits_server(self, deployment):
        files = small_files(4)
        write_dataset(deployment, "ds", files)
        client = deployment.new_client("ds")
        before = deployment.server.meta_endpoint.stats.calls

        def proc():
            st = yield from client.stat(next(iter(files)))
            return st

        st = deployment.run(proc())
        assert st["size"] == 4096
        assert deployment.server.meta_endpoint.stats.calls > before

    def test_snapshot_metadata_avoids_server(self, deployment):
        files = small_files(4)
        client = write_dataset(deployment, "ds", files)

        def load(env=None):
            blob = yield from client.save_meta()
            yield from client.load_meta(blob)

        deployment.run(load())
        before = (
            deployment.server.endpoint.stats.calls
            + deployment.server.meta_endpoint.stats.calls
        )

        def proc():
            for path in files:
                yield from client.stat(path)
            yield from client.ls("/img")

        deployment.run(proc())
        after = (
            deployment.server.endpoint.stats.calls
            + deployment.server.meta_endpoint.stats.calls
        )
        assert after == before  # zero RPCs: all served from the snapshot


class TestShuffleMode:
    def _loaded_client(self, deployment, n=24):
        files = small_files(n, size=2048)
        client = write_dataset(deployment, "ds", files, chunk_size=8 * 1024)

        def load():
            blob = yield from client.save_meta()
            yield from client.load_meta(blob)

        deployment.run(load())
        return client, files

    def test_requires_snapshot(self, deployment):
        client = deployment.new_client("ds")
        with pytest.raises(DieselError):
            client.enable_shuffle()

    def test_epoch_plan_covers_dataset(self, deployment):
        client, files = self._loaded_client(deployment)
        client.enable_shuffle(group_size=2)
        plan = client.epoch_file_list(seed=1)
        assert sorted(plan.files) == sorted(files)

    def test_epochs_differ(self, deployment):
        client, _ = self._loaded_client(deployment)
        client.enable_shuffle(group_size=2)
        p1 = client.epoch_file_list().files
        p2 = client.epoch_file_list().files
        assert p1 != p2

    def test_reads_in_plan_order_are_correct_and_mostly_local(self, deployment):
        client, files = self._loaded_client(deployment)
        client.enable_shuffle(group_size=2)
        plan = client.epoch_file_list(seed=3)

        def proc():
            for path in plan.files:
                data = yield from client.get(path)
                assert data == files[path]

        deployment.run(proc())
        # One chunk fetch per chunk; all other reads from the group cache.
        n_chunks = len(client.index.chunk_ids())
        assert client.stats.server_reads == n_chunks
        assert client.stats.local_hits == len(files) - n_chunks

    def test_working_set_bounded_by_group_size(self, deployment):
        client, files = self._loaded_client(deployment, n=48)
        client.enable_shuffle(group_size=2)
        plan = client.epoch_file_list(seed=5)

        def proc():
            for path in plan.files:
                yield from client.get(path)
                assert len(client._group_cache) <= 2

        deployment.run(proc())
        assert client.working_set_bytes() <= 2 * 16 * 1024

    def test_disable_shuffle_clears_cache(self, deployment):
        client, files = self._loaded_client(deployment)
        client.enable_shuffle(group_size=2)
        plan = client.epoch_file_list()

        def proc():
            yield from client.get(plan.files[0])

        deployment.run(proc())
        client.disable_shuffle()
        assert client.working_set_bytes() == 0
        assert not client.shuffle_enabled

    def test_full_shuffle_list(self, deployment):
        client, files = self._loaded_client(deployment)
        order = client.full_shuffle_list(seed=1)
        assert sorted(order) == sorted(files)


class TestHousekeepingApi:
    def test_delete_purge(self, deployment):
        files = small_files(8, size=512)
        client = write_dataset(deployment, "ds", files, chunk_size=1024 * 1024)

        def proc():
            victim = next(iter(files))
            yield from client.delete(victim)
            rewritten = yield from client.purge()
            return rewritten

        assert deployment.run(proc()) == 1

    def test_delete_dataset(self, deployment):
        client = write_dataset(deployment, "ds", small_files(5))

        def proc():
            n = yield from client.delete_dataset()
            return n

        assert deployment.run(proc()) >= 1
        assert deployment.store.list_keys() == []


class TestClose:
    def test_closed_client_rejects_everything(self, deployment):
        client = write_dataset(deployment, "ds", small_files(2))
        client.close()
        for gen_factory in (
            lambda: client.get("/img/class0/file0000.jpg"),
            lambda: client.put("/new", b"x"),
            lambda: client.flush(),
            lambda: client.stat("/"),
            lambda: client.save_meta(),
        ):
            with pytest.raises(ClosedError):
                deployment.run(gen_factory())

    def test_needs_server(self, deployment):
        from repro.core.client import DieselClient

        with pytest.raises(DieselError):
            DieselClient(deployment.env, deployment.client_nodes[0], [], "ds")


class TestSyncFacade:
    def test_sync_workflow(self, deployment):
        client = deployment.new_client(
            "ds", config=DieselConfig(chunk_size=4096)
        )
        sync = SyncDieselClient(client)
        sync.put("/a", b"alpha")
        sync.put("/b", b"beta")
        sync.flush()
        assert sync.get("/a") == b"alpha"
        blob = sync.save_meta()
        idx = sync.load_meta(blob)
        assert idx.file_count == 2
        assert sync.stat("/b")["size"] == 4
        assert sync.ls("/") == ["/a", "/b"]
        sync.enable_shuffle(group_size=1)
        plan = sync.epoch_file_list(seed=0)
        assert sorted(plan.files) == ["/a", "/b"]
        sync.close()
        with pytest.raises(ClosedError):
            sync.get("/a")
