"""Tests for scatter-gather parallel I/O: pipelined ingest, fan-out
reads, concurrent warmup/recovery, and the stats plumbing behind them."""

import pytest

from repro.core import recovery
from repro.core.chunk_builder import ChunkBuilder, ChunkPipeline
from repro.core.client import ClientStats
from repro.core.config import DieselConfig
from repro.core.dist_cache import CacheClient, CacheMasterStats, TaskCache
from repro.core.server import ServerStats
from repro.errors import DieselError
from repro.util.ids import ChunkIdGenerator

from tests.core.conftest import build_deployment, small_files, write_dataset

CHUNK = 16 * 1024


def build_chunks(files, chunk_size=CHUNK):
    gen = ChunkIdGenerator(machine=b"\x09" * 6, pid=9)
    builder = ChunkBuilder(gen, chunk_size)
    return builder.build_all(list(files.items()))


class TestIngestPipeline:
    def test_put_many_round_trips(self):
        dep = build_deployment()
        files = small_files(24, size=2048)
        client = dep.new_client(
            "ds", config=DieselConfig(chunk_size=CHUNK, ingest_pipeline_depth=4)
        )
        sent = dep.run(client.put_many(list(files.items())))
        assert sent == client.stats.chunks_sent > 0

        def read(p):
            data = yield from client.get(p)
            return data

        for path, payload in files.items():
            assert dep.run(read(path)) == payload

    def test_pipelined_ship_overlaps_and_loses_nothing(self):
        """Depth-4 shipping of pre-built chunks beats serial, with the
        in-flight high-water mark as proof of overlap and the server
        ingest count as proof nothing was dropped or duplicated."""
        files = dict(small_files(32, size=2048))
        chunks = build_chunks(files)
        assert len(chunks) >= 4
        times = {}
        for depth in (1, 4):
            dep = build_deployment()
            client = dep.new_client(
                "ds", config=DieselConfig(chunk_size=CHUNK)
            )

            def ship():
                if depth == 1:
                    for chunk in chunks:
                        yield from client._send_chunk(chunk)
                    return
                pipe = ChunkPipeline(
                    dep.env, client._send_chunk, depth,
                    watermark=client._note_ingest_inflight,
                )
                for chunk in chunks:
                    yield from pipe.submit(chunk)
                yield from pipe.drain()

            t0 = dep.env.now
            dep.run(ship())
            times[depth] = dep.env.now - t0
            assert dep.server.stats.ingests == len(chunks)
            assert client.stats.chunks_sent == len(chunks)
            if depth > 1:
                assert client.stats.ingest_inflight_hwm > 1
        assert times[4] < times[1]

    def test_default_depth_matches_plain_put_loop(self):
        """ingest_pipeline_depth=1 must be byte- and time-identical to
        the pre-pipeline serial path."""
        files = small_files(16, size=2048)
        elapsed = {}
        for mode in ("loop", "put_many"):
            dep = build_deployment()
            client = dep.new_client("ds", config=DieselConfig(chunk_size=CHUNK))

            def loop():
                for path, data in files.items():
                    yield from client.put(path, data)
                yield from client.flush()

            t0 = dep.env.now
            if mode == "loop":
                dep.run(loop())
            else:
                dep.run(client.put_many(list(files.items())))
            elapsed[mode] = dep.env.now - t0
            assert client.stats.ingest_inflight_hwm == 0
        assert elapsed["loop"] == elapsed["put_many"]

    def test_pipeline_counts_and_cancel(self):
        dep = build_deployment()
        client = dep.new_client("ds", config=DieselConfig(chunk_size=CHUNK))
        chunks = build_chunks(dict(small_files(16, size=2048)))
        pipe = ChunkPipeline(dep.env, client._send_chunk, 2)

        def run():
            for chunk in chunks:
                yield from pipe.submit(chunk)
            yield from pipe.drain()

        dep.run(run())
        assert pipe.submitted == pipe.shipped == len(chunks)
        assert pipe.in_flight == 0
        assert pipe.cancel() == 0  # nothing left to cancel after drain


class TestReadFanout:
    def setup_reader(self, fanout, n_files=48, n_servers=2):
        dep = build_deployment(n_servers=n_servers)
        files = small_files(n_files, size=2048)
        writer = write_dataset(dep, "ds", files, chunk_size=CHUNK)
        n_chunks = len(dep.server.dataset_info("ds").chunk_ids)
        reader = dep.new_client(
            "ds",
            config=DieselConfig(
                chunk_size=CHUNK,
                shuffle_group_size=n_chunks,
                read_fanout=fanout,
            ),
        )

        def attach():
            blob = yield from writer.save_meta()
            yield from reader.load_meta(blob)

        dep.run(attach())
        reader.enable_shuffle()
        return dep, reader, files

    def batch_read(self, dep, reader, paths):
        def go():
            out = yield from reader.get_many(paths)
            return out

        t0 = dep.env.now
        out = dep.run(go())
        return out, dep.env.now - t0

    def test_fanout_same_bytes_faster_no_duplicates(self):
        results = {}
        for fanout in (1, 4):
            dep, reader, files = self.setup_reader(fanout)
            paths = list(files)
            out, elapsed = self.batch_read(dep, reader, paths)
            assert out == files
            touched = {reader.index.lookup(p).chunk_id for p in paths}
            chunk_reads = sum(s.stats.chunk_reads for s in dep.servers)
            # Single-flight held: one transfer per distinct chunk.
            assert chunk_reads == len(touched)
            if fanout > 1:
                assert reader.stats.fetch_inflight_hwm > 1
            else:
                assert reader.stats.fetch_inflight_hwm <= 1
            results[fanout] = elapsed
        assert results[4] < results[1]

    def test_resident_chunks_short_circuit(self):
        dep, reader, files = self.setup_reader(4)
        paths = list(files)
        self.batch_read(dep, reader, paths)
        before = sum(s.stats.chunk_reads for s in dep.servers)
        out, _ = self.batch_read(dep, reader, paths)
        assert out == files
        # Second pass is served from the resident chunk cache.
        assert sum(s.stats.chunk_reads for s in dep.servers) == before

    def test_preferred_server_is_deterministic_and_spreads(self):
        dep = build_deployment(n_servers=3)
        client = dep.new_client("ds")
        cids = [f"cid{i:04d}" for i in range(64)]
        first = [client.preferred_server(c) for c in cids]
        second = [client.preferred_server(c) for c in cids]
        assert first == second
        assert all(s in dep.servers for s in first)
        assert len({s.name for s in first}) > 1

    def test_single_flight_under_concurrent_readers(self):
        """Two concurrent fan-out batches over the same chunks trigger
        exactly one transfer per chunk."""
        dep, reader, files = self.setup_reader(4)
        paths = list(files)

        def batch():
            yield from reader.get_many(paths)

        a = dep.env.process(batch())
        b = dep.env.process(batch())
        dep.env.run(until=dep.env.all_of([a, b]))
        touched = {reader.index.lookup(p).chunk_id for p in paths}
        assert sum(s.stats.chunk_reads for s in dep.servers) == len(touched)


def setup_cache(warmup_fanout=1, n_nodes=3, n_files=24):
    dep = build_deployment(n_client_nodes=n_nodes)
    files = small_files(n_files, size=2048)
    writer = write_dataset(dep, "ds", files, chunk_size=8 * 1024)
    cache_clients = [
        CacheClient(f"cc{i}", node, i)
        for i, node in enumerate(dep.client_nodes)
    ]
    cache = TaskCache(
        dep.env, dep.fabric, dep.server, "ds", cache_clients,
        policy="oneshot", warmup_fanout=warmup_fanout,
    )
    return dep, cache


class TestWarmupRecoveryFanout:
    def test_warmup_fanout_validation(self):
        dep = build_deployment()
        c = CacheClient("x", dep.client_nodes[0], 0)
        with pytest.raises(DieselError):
            TaskCache(dep.env, dep.fabric, dep.server, "ds", [c],
                      warmup_fanout=0)

    def test_concurrent_warmup_same_chunks_faster(self):
        warmed = {}
        times = {}
        for fanout in (1, 4):
            dep, cache = setup_cache(warmup_fanout=fanout)
            dep.run(cache.register())
            t0 = dep.env.now
            n = dep.run(cache.wait_warm())
            times[fanout] = dep.env.now - t0
            warmed[fanout] = n
            hwm = max(m.stats.pull_inflight_hwm for m in cache.masters.values())
            if fanout > 1:
                assert hwm > 1
            else:
                assert hwm == 0
        assert warmed[4] == warmed[1] == cache.cached_chunks() > 0
        assert times[4] < times[1]

    def test_concurrent_recovery_restores_coverage(self):
        times = {}
        for fanout in (1, 4):
            dep, cache = setup_cache(warmup_fanout=fanout)
            summary = dep.run(cache.register())
            dep.run(cache.wait_warm())
            victim = cache.masters[sorted(cache.masters)[0]]
            victim.node.kill()

            def recover():
                n = yield from cache.recover()
                return n

            t0 = dep.env.now
            reloaded = dep.run(recover())
            times[fanout] = dep.env.now - t0
            assert reloaded > 0
            # Every chunk is owned by a live master again.
            for cid in summary["chunk_ids"]:
                owner = cache.owner_of(cid)
                assert owner.up
                assert owner.has_chunk(cid)
        assert times[4] < times[1]


class TestRecoveryFanout:
    def test_parallel_rebuild_matches_serial_metadata(self, deployment):
        files = small_files(30)
        write_dataset(deployment, "ds", files, chunk_size=8 * 1024)
        from tests.core.test_recovery import snapshot_kv_state

        before = snapshot_kv_state(deployment, "ds")
        deployment.kv.lose_all()

        def proc():
            n = yield from recovery.rebuild_dataset(
                deployment.server, "ds", fanout=4
            )
            return n

        t0 = deployment.env.now
        scanned = deployment.run(proc())
        parallel_time = deployment.env.now - t0
        assert scanned == len(before[1])
        assert snapshot_kv_state(deployment, "ds") == before

        # Serial rebuild of the same chunks takes strictly longer.
        deployment.kv.lose_all()

        def serial():
            yield from recovery.rebuild_dataset(deployment.server, "ds")

        t0 = deployment.env.now
        deployment.run(serial())
        assert deployment.env.now - t0 > parallel_time
        assert snapshot_kv_state(deployment, "ds") == before


class TestStatsToDict:
    def test_client_stats_to_dict_covers_every_counter(self):
        stats = ClientStats()
        stats.puts = 3
        stats.fetch_inflight_hwm = 2
        d = stats.to_dict()
        assert set(d) == set(ClientStats.__slots__)
        assert d["puts"] == 3 and d["fetch_inflight_hwm"] == 2

    def test_server_stats_to_dict(self):
        stats = ServerStats()
        stats.ingests = 5
        d = stats.to_dict()
        assert set(d) == set(ServerStats.__slots__)
        assert d["ingests"] == 5

    def test_cache_master_stats_to_dict(self):
        stats = CacheMasterStats()
        stats.pull_inflight_hwm = 4
        d = stats.to_dict()
        assert set(d) == set(CacheMasterStats.__slots__)
        assert d["pull_inflight_hwm"] == 4

    def test_stats_row_selects_and_prefixes(self):
        from repro.bench.reporting import stats_row

        stats = ClientStats()
        stats.puts = 7
        row = stats_row(stats, ["puts"], prefix="cl_")
        assert row == {"cl_puts": 7}
        full = stats_row(stats)
        assert set(full) == {f"{k}" for k in ClientStats.__slots__}
