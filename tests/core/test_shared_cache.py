"""Tests for the node-level shared chunk tier (DESIGN §11).

Cross-task refcounting, warm admission, cross-task single-flight,
per-tenant quotas, QoS-governed eviction and deregistration semantics —
both at the :class:`SharedChunkCache` unit level (fake masters against
the real server) and through full :class:`TaskCache` integration.
"""

from types import SimpleNamespace

import pytest

from repro.core.dist_cache import CacheClient, TaskCache
from repro.core.shared_cache import SharedCacheRegistry
from repro.cluster.node import Node
from repro.errors import DieselError

from tests.core.conftest import build_deployment, small_files, write_dataset


def shared_rig(n_nodes=2, n_files=24, n_tasks=2, tenants=None, qos=None,
               policy="oneshot", chunk_size=8 * 1024):
    """A deployment + registry + ``n_tasks`` TaskCaches over one dataset."""
    dep = build_deployment(n_client_nodes=n_nodes)
    files = small_files(n_files, size=2048)
    writer = write_dataset(dep, "ds", files, chunk_size=chunk_size)

    def load():
        blob = yield from writer.save_meta()
        yield from writer.load_meta(blob)

    dep.run(load())
    registry = SharedCacheRegistry(dep.env)
    caches = []
    for t in range(n_tasks):
        clients = [
            CacheClient(f"t{t}cc{i}", node, i)
            for i, node in enumerate(dep.client_nodes)
        ]
        caches.append(TaskCache(
            dep.env, dep.fabric, dep.server, "ds", clients,
            policy=policy, shared=registry,
            tenant=tenants[t] if tenants else "default",
            qos_class=qos[t] if qos else "batch",
        ))
    return dep, registry, caches, files, writer.index


def fake_master(server, dataset, task, tenant="default", qos="batch"):
    """Duck-typed CacheMaster for unit-driving SharedChunkCache.acquire."""
    return SimpleNamespace(
        server=server, dataset=dataset, _shared_task=task,
        _shared_tenant=tenant, _shared_qos=qos,
        stats=SimpleNamespace(coalesced_pulls=0),
    )


class TestCrossTaskWarmup:
    def test_second_task_admits_warm_with_zero_backend_fetches(self):
        dep, registry, (c0, c1), files, index = shared_rig()
        dep.run(c0.register())
        dep.run(c0.wait_warm())
        fetches_cold = dep.server.stats.chunk_reads
        dep.run(c1.register())
        dep.run(c1.wait_warm())
        assert dep.server.stats.chunk_reads == fetches_cold
        s = registry.stats
        n_chunks = len(index.chunk_ids())
        assert s.cold_admissions == n_chunks
        assert s.warm_admissions == n_chunks
        # Every chunk resident once, referenced by both tasks.
        assert s.chunks_resident == n_chunks
        assert s.refs == 2 * n_chunks

    def test_warm_register_is_much_faster_than_cold(self):
        # Enough data that the cold warmup's backend I/O dominates the
        # fixed register-RPC overhead both paths share.
        dep, registry, (c0, c1), files, index = shared_rig(n_files=96)
        t0 = dep.env.now
        dep.run(c0.register())
        dep.run(c0.wait_warm())
        cold_s = dep.env.now - t0
        t0 = dep.env.now
        dep.run(c1.register())
        dep.run(c1.wait_warm())
        warm_s = dep.env.now - t0
        assert warm_s < 0.25 * cold_s

    def test_both_tasks_read_correctly_through_one_resident_copy(self):
        dep, registry, caches, files, index = shared_rig()
        for cache in caches:
            dep.run(cache.register())
            dep.run(cache.wait_warm())

        def epoch(cache):
            cc = cache.clients[0]
            for path, expected in files.items():
                data = yield from cache.read_file(cc, index.lookup(path))
                assert data == expected

        for cache in caches:
            dep.run(epoch(cache))
        n_chunks = len(index.chunk_ids())
        assert registry.stats.chunks_resident == n_chunks


class TestSingleFlightAcrossTasks:
    def test_racing_registrations_coalesce_onto_one_fetch(self):
        dep, registry, caches, files, index = shared_rig(n_tasks=3)
        regs = [dep.env.process(c.register()) for c in caches]
        dep.env.run(until=dep.env.all_of(regs))
        warms = [dep.env.process(c.wait_warm()) for c in caches]
        dep.env.run(until=dep.env.all_of(warms))
        n_chunks = len(index.chunk_ids())
        # One backend fetch per (node, chunk) no matter how many tasks
        # raced the warmup.
        assert dep.server.stats.chunk_reads == n_chunks
        s = registry.stats
        assert s.cold_admissions == n_chunks
        # The two raced tasks each joined the in-flight fetch, then
        # ref-bumped on wake (a coalesced pull *and* a warm admission).
        assert s.warm_admissions == 2 * n_chunks
        assert s.coalesced_pulls > 0
        assert s.refs == 3 * n_chunks

    def test_two_fake_tasks_racing_one_chunk(self):
        dep, registry, caches, files, index = shared_rig(n_tasks=0)
        node = dep.client_nodes[0]
        tier = registry.for_node(node)
        cid = index.chunk_ids()[0].encode()
        m1 = fake_master(dep.server, "ds", "taskA")
        m2 = fake_master(dep.server, "ds", "taskB")
        got = {}

        def racer(name, master):
            held = yield from tier.acquire(master, cid)
            got[name] = held

        p1 = dep.env.process(racer("a", m1))
        p2 = dep.env.process(racer("b", m2))
        dep.env.run(until=dep.env.all_of([p1, p2]))
        assert got["a"] is not None and got["b"] is not None
        assert got["a"][0] is got["b"][0]  # the same resident object
        assert dep.server.stats.chunk_reads == 1
        assert tier.refcount("ds", cid) == 2
        s = tier.stats
        assert s.cold_admissions == 1
        assert s.coalesced_pulls == 1
        assert s.warm_admissions == 1  # the waiter re-checked and ref-bumped
        assert m2.stats.coalesced_pulls + m1.stats.coalesced_pulls == 1


class TestDeregistration:
    def test_deregister_mid_epoch_leaves_other_task_unharmed(self):
        dep, registry, (c0, c1), files, index = shared_rig()
        for cache in (c0, c1):
            dep.run(cache.register())
            dep.run(cache.wait_warm())
        paths = list(files)
        outcomes = {"ok": 0}

        def epoch():
            cc = c0.clients[0]
            for i, path in enumerate(paths):
                if i == len(paths) // 2:
                    held = c1.deregister()  # the other task bails mid-epoch
                    assert held > 0
                data = yield from c0.read_file(cc, index.lookup(path))
                assert data == files[path]
                outcomes["ok"] += 1

        fetches = dep.server.stats.chunk_reads
        dep.run(epoch())
        assert outcomes["ok"] == len(paths)
        # No re-fetch: c0's refs kept every chunk resident.
        assert dep.server.stats.chunk_reads == fetches
        n_chunks = len(index.chunk_ids())
        s = registry.stats
        assert s.refs == n_chunks  # only c0's refs remain
        assert s.released_refs == n_chunks

    def test_last_task_deregister_leaves_warm_pool_for_later_task(self):
        dep, registry, (c0, c1), files, index = shared_rig(n_tasks=2)
        dep.run(c0.register())
        dep.run(c0.wait_warm())
        c0.deregister()
        n_chunks = len(index.chunk_ids())
        s = registry.stats
        # refcount-0 chunks stay resident (the warm pool)...
        assert s.refs == 0
        assert s.chunks_resident == n_chunks
        # ...and the next task re-warms from them: zero backend fetches.
        fetches = dep.server.stats.chunk_reads
        dep.run(c1.register())
        dep.run(c1.wait_warm())
        assert dep.server.stats.chunk_reads == fetches
        assert registry.stats.refs == n_chunks

    def test_deregister_requires_registration(self):
        dep, registry, (c0, *_), files, index = shared_rig(n_tasks=1)
        with pytest.raises(DieselError):
            c0.deregister()


class TestTenantQuotas:
    def _admit_all(self, dep, tier, index, task, tenant):
        cids = [c.encode() for c in index.chunk_ids()]
        master = fake_master(dep.server, "ds", task, tenant=tenant)

        def admit():
            for cid in cids:
                yield from tier.acquire(master, cid)

        dep.run(admit())
        return cids

    def test_tenant_exactly_at_quota_is_admitted(self):
        dep, registry, _, files, index = shared_rig(n_tasks=0)
        # Measure the dataset's exact resident bytes on a probe node.
        probe = dep.fabric.add_node(Node(dep.env, "probe"))
        self._admit_all(dep, registry.for_node(probe), index, "p", "probe")
        exact = registry.for_node(probe).tenant_usage("probe")
        # A tenant whose quota is *exactly* the dataset admits everything.
        registry.set_quota("exact", exact)
        node = dep.client_nodes[0]
        tier = registry.for_node(node)
        self._admit_all(dep, tier, index, "t", "exact")
        assert tier.tenant_usage("exact") == exact
        assert tier.stats.quota_rejections == 0
        assert tier.stats.chunks_resident == len(index.chunk_ids())

    def test_one_byte_under_quota_rejects_the_last_chunk(self):
        dep, registry, _, files, index = shared_rig(n_tasks=0)
        probe = dep.fabric.add_node(Node(dep.env, "probe"))
        self._admit_all(dep, registry.for_node(probe), index, "p", "probe")
        exact = registry.for_node(probe).tenant_usage("probe")
        registry.set_quota("capped", exact - 1)
        node = dep.client_nodes[1]
        tier = registry.for_node(node)
        self._admit_all(dep, tier, index, "t", "capped")
        assert tier.stats.quota_rejections >= 1
        assert tier.tenant_usage("capped") <= exact - 1
        rows = {r["tenant"]: r for r in registry.tenant_rows()}
        assert rows["capped"]["within_quota"]

    def test_warm_ref_bump_also_charges_the_quota(self):
        """A second tenant at quota 0-room cannot ref an existing chunk."""
        dep, registry, _, files, index = shared_rig(n_tasks=0)
        node = dep.client_nodes[0]
        tier = registry.for_node(node)
        cid = index.chunk_ids()[0].encode()
        self._admit_all(dep, tier, index, "rich-task", "rich")
        registry.set_quota("poor", 1)  # one byte: nothing fits
        master = fake_master(dep.server, "ds", "poor-task", tenant="poor")

        def admit():
            return (yield from tier.acquire(master, cid))

        assert dep.run(admit()) is None
        assert tier.stats.quota_rejections == 1
        assert tier.tenant_usage("poor") == 0
        assert tier.refcount("ds", cid) == 1  # only the rich task's ref


class TestQosEviction:
    def _tiny_node_rig(self):
        """A node drained so cold admissions must evict to fit."""
        dep, registry, _, files, index = shared_rig(n_tasks=0)
        node = dep.fabric.add_node(Node(dep.env, "tiny"))
        tier = registry.for_node(node)
        cids = [c.encode() for c in index.chunk_ids()]
        return dep, registry, tier, node, cids

    def _drain(self, dep, node, leave=64):
        def sip():
            yield node.memory.get(node.memory.level - leave)

        dep.run(sip())

    def test_batch_cannot_evict_interactive_warm_pool(self):
        dep, registry, tier, node, cids = self._tiny_node_rig()
        inter = fake_master(dep.server, "ds", "iq", qos="interactive")
        batch = fake_master(dep.server, "ds", "bq", qos="batch")

        def admit(master, cid):
            return (yield from tier.acquire(master, cid))

        assert dep.run(admit(inter, cids[0])) is not None
        tier.release_task("iq", "default")  # leave an interactive warm pool
        assert tier.refcount("ds", cids[0]) == 0
        self._drain(dep, node)
        # Batch admission: the only reclaimable chunk is interactive.
        assert dep.run(admit(batch, cids[1])) is None
        assert tier.stats.qos_denied == 1
        assert tier.stats.evictions == 0
        assert tier.resident("ds", cids[0])

    def test_interactive_may_evict_any_warm_chunk(self):
        dep, registry, tier, node, cids = self._tiny_node_rig()
        inter = fake_master(dep.server, "ds", "iq", qos="interactive")
        inter2 = fake_master(dep.server, "ds", "iq2", qos="interactive")

        def admit(master, cid):
            return (yield from tier.acquire(master, cid))

        assert dep.run(admit(inter, cids[0])) is not None
        tier.release_task("iq", "default")
        self._drain(dep, node)
        assert dep.run(admit(inter2, cids[1])) is not None
        assert tier.stats.evictions >= 1
        assert not tier.resident("ds", cids[0])

    def test_referenced_chunks_are_never_evicted(self):
        dep, registry, tier, node, cids = self._tiny_node_rig()
        batch = fake_master(dep.server, "ds", "bq", qos="batch")
        other = fake_master(dep.server, "ds", "bq2", qos="batch")

        def admit(master, cid):
            return (yield from tier.acquire(master, cid))

        assert dep.run(admit(batch, cids[0])) is not None  # still referenced
        self._drain(dep, node)
        assert dep.run(admit(other, cids[1])) is None
        assert tier.stats.skipped_no_memory == 1
        assert tier.stats.evictions == 0
        assert tier.resident("ds", cids[0])


class TestLruEvictionOrder:
    def test_eviction_takes_least_recently_used_not_insertion_order(self):
        """Regression: the eviction scan used to walk the entry table in
        insertion order, so a warm chunk that was just re-read could be
        evicted before one untouched since admission."""
        dep, registry, _, files, index = shared_rig(n_tasks=0)
        node = dep.fabric.add_node(Node(dep.env, "tiny"))
        tier = registry.for_node(node)
        cids = [c.encode() for c in index.chunk_ids()]
        warmer = fake_master(dep.server, "ds", "warmer", qos="interactive")

        def admit(master, cid):
            return (yield from tier.acquire(master, cid))

        # Insertion order: c0 then c1; both left refcount-0 (warm).
        assert dep.run(admit(warmer, cids[0])) is not None
        assert dep.run(admit(warmer, cids[1])) is not None
        tier.release_task("warmer", "default")
        # Re-reading c0 must refresh its recency: LRU is now [c1, c0].
        toucher = fake_master(dep.server, "ds", "toucher", qos="interactive")
        assert dep.run(admit(toucher, cids[0])) is not None
        tier.release_task("toucher", "default")

        def sip():
            yield node.memory.get(node.memory.level - 64)

        dep.run(sip())
        # Under pressure the admission evicts c1 (LRU), not c0 (first-in).
        other = fake_master(dep.server, "ds", "iq", qos="interactive")
        assert dep.run(admit(other, cids[2])) is not None
        assert tier.resident("ds", cids[0])
        assert not tier.resident("ds", cids[1])
        assert tier.stats.evictions >= 1


class TestTieredSharedTier:
    def _tiered_rig(self, **store_kw):
        """A tiered-store registry plus a small node under pressure."""
        dep, registry_unused, _, files, index = shared_rig(n_tasks=0)
        registry = SharedCacheRegistry(
            dep.env, store="tiered", **store_kw
        )
        node = dep.fabric.add_node(Node(dep.env, "tiny"))
        tier = registry.for_node(node)
        cids = [c.encode() for c in index.chunk_ids()]
        return dep, registry, tier, node, cids

    def _drain(self, dep, node, leave=64):
        def sip():
            yield node.memory.get(node.memory.level - leave)

        dep.run(sip())

    def test_cold_admission_overflows_to_disk_under_pressure(self):
        dep, registry, tier, node, cids = self._tiered_rig()
        self._drain(dep, node)
        batch = fake_master(dep.server, "ds", "bq", qos="batch")

        def admit(cid):
            return (yield from tier.acquire(batch, cid))

        assert dep.run(admit(cids[0])) is not None
        assert tier.resident("ds", cids[0])
        assert tier.disk_resident("ds", cids[0])
        assert tier.stats.skipped_no_memory == 0
        assert registry.store_stats.disk_admits == 1

    def test_pressure_demotes_warm_chunk_but_not_pinned_interactive(self):
        dep, registry, tier, node, cids = self._tiered_rig()
        inter = fake_master(dep.server, "ds", "iq", qos="interactive")
        batch = fake_master(dep.server, "ds", "bq", qos="batch")
        batch2 = fake_master(dep.server, "ds", "bq2", qos="batch")

        def admit(master, cid):
            return (yield from tier.acquire(master, cid))

        # cids[0] is pinned (interactive, still referenced); cids[1] is
        # a refcount-0 batch warm chunk.
        assert dep.run(admit(inter, cids[0])) is not None
        assert dep.run(admit(batch, cids[1])) is not None
        tier.release_task("bq", "default")
        self._drain(dep, node)
        # The batch admission demotes the warm chunk to disk instead of
        # forgetting it — and never touches the pinned interactive one.
        assert dep.run(admit(batch2, cids[2])) is not None
        assert tier.store.tier_of(f"ds/{cids[0]}") == "ram"
        assert tier.disk_resident("ds", cids[1])
        assert tier.resident("ds", cids[1])  # still a shared-tier entry
        assert tier.stats.evictions == 0
        assert tier.stats.qos_denied == 0
        assert registry.store_stats.demotions == 1

        # The demoted chunk still serves reads (charging the disk).
        def read():
            t0 = dep.env.now
            chunk = yield from tier.read_resident("ds", cids[1])
            assert chunk is not None
            assert dep.env.now > t0

        dep.run(read())
        assert registry.store_stats.disk_hits == 1


class TestRecoveryRefcounts:
    def test_recover_rebuilds_refcounts_without_duplicate_chunks(self):
        dep, registry, (c0, c1), files, index = shared_rig(n_nodes=3)
        for cache in (c0, c1):
            dep.run(cache.register())
            dep.run(cache.wait_warm())
        n_chunks = len(index.chunk_ids())
        victim = dep.client_nodes[0]
        dead_chunks = c0.masters[victim.name].cached_chunk_count
        assert dead_chunks > 0
        victim.kill()
        fetches = dep.server.stats.chunk_reads
        dep.run(c0.recover())
        dep.run(c1.recover())
        # The first recovery re-fetched the dead node's chunks; the
        # second warm-admitted them — one fetch per re-homed chunk.
        assert dep.server.stats.chunk_reads - fetches == dead_chunks
        s = registry.stats
        # Refcounts fully rebuilt: both tasks hold every chunk, each
        # chunk resident exactly once across the surviving nodes.
        assert s.refs == 2 * n_chunks
        assert s.chunks_resident == n_chunks

        def epoch(cache):
            cc = next(
                c for c in cache.clients if c.node.name != victim.name
            )
            for path, expected in files.items():
                data = yield from cache.read_file(cc, index.lookup(path))
                assert data == expected

        dep.run(epoch(c0))
        dep.run(epoch(c1))
