"""Model-based testing: random operation sequences vs a dict reference.

Hypothesis drives arbitrary interleavings of put/overwrite/delete/purge/
read/ls against a live DIESEL deployment and an in-memory reference
model; after every sequence the two must agree on contents, listings and
metadata — the strongest guard against state-machine bugs in the
server's tombstone/purge/ingest logic.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import DieselConfig
from repro.core.client import DieselClient
from repro.errors import FileNotFoundInDatasetError
from repro.util.pathutil import dirname

from tests.core.conftest import build_deployment

PATH_POOL = [f"/m/d{d}/f{f}" for d in range(3) for f in range(4)]

op_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(PATH_POOL),
                  st.binary(min_size=1, max_size=64)),
        st.tuples(st.just("delete"), st.sampled_from(PATH_POOL)),
        st.tuples(st.just("purge")),
        st.tuples(st.just("read"), st.sampled_from(PATH_POOL)),
        st.tuples(st.just("ls"), st.sampled_from(["/m/d0", "/m/d1", "/m/d2"])),
    ),
    min_size=1,
    max_size=25,
)


class Reference:
    """The trivially-correct model: a dict."""

    def __init__(self) -> None:
        self.files: dict[str, bytes] = {}

    def put(self, path: str, data: bytes) -> None:
        self.files[path] = data

    def delete(self, path: str) -> bool:
        return self.files.pop(path, None) is not None

    def read(self, path: str):
        return self.files.get(path)

    def ls(self, directory: str) -> list[str]:
        names = {
            p.rsplit("/", 1)[-1]
            for p in self.files
            if dirname(p) == directory
        }
        return sorted(names)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=op_strategy)
def test_server_matches_reference_model(ops):
    dep = build_deployment()
    client = dep.new_client(
        "model", config=DieselConfig(chunk_size=256)
    )
    ref = Reference()
    node = dep.client_nodes[0]

    def apply(op):
        kind = op[0]
        if kind == "put":
            _, path, data = op
            exists = yield from dep.server.call(node, "exists", "model", path)
            if exists:
                yield from dep.server.call(node, "delete_file", "model", path)
            yield from client.put(path, data)
            yield from client.flush()
            ref.put(path, data)
        elif kind == "delete":
            _, path = op
            expect = ref.delete(path)
            try:
                yield from client.delete(path)
                assert expect, f"deleted {path} that the model lacks"
            except FileNotFoundInDatasetError:
                assert not expect, f"failed deleting {path} the model has"
        elif kind == "purge":
            if ref.files or wrote_any[0]:
                yield from client.purge()
        elif kind == "read":
            _, path = op
            expect = ref.read(path)
            try:
                data = yield from client.get(path)
                assert data == expect, f"content mismatch at {path}"
            except FileNotFoundInDatasetError:
                assert expect is None, f"lost {path}"
        elif kind == "ls":
            _, directory = op
            expect = ref.ls(directory)
            try:
                listing = yield from client.ls(directory)
            except Exception:
                listing = []
            assert listing == expect, f"listing mismatch under {directory}"

    wrote_any = [False]

    def drive():
        for op in ops:
            if op[0] == "put":
                wrote_any[0] = True
            yield from apply(op)
        # Final full-state audit.
        for path, data in ref.files.items():
            got = yield from client.get(path)
            assert got == data
        for path in set(PATH_POOL) - set(ref.files):
            try:
                yield from client.get(path)
                raise AssertionError(f"{path} should not exist")
            except FileNotFoundInDatasetError:
                pass

    dep.run(drive())


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=op_strategy)
def test_model_state_survives_recovery(ops):
    """After any op sequence, wiping KV and rebuilding from chunks must
    restore exactly the model's live files."""
    from repro.core import recovery

    dep = build_deployment()
    client = dep.new_client("model", config=DieselConfig(chunk_size=256))
    ref = Reference()
    node = dep.client_nodes[0]

    wrote_any = [False]

    def drive():
        for op in ops:
            if op[0] == "put":
                wrote_any[0] = True
                _, path, data = op
                exists = yield from dep.server.call(
                    node, "exists", "model", path
                )
                if exists:
                    yield from dep.server.call(
                        node, "delete_file", "model", path
                    )
                yield from client.put(path, data)
                yield from client.flush()
                ref.put(path, data)
            elif op[0] == "delete" and ref.delete(op[1]):
                yield from client.delete(op[1])
            elif op[0] == "purge" and wrote_any[0]:
                yield from client.purge()

    dep.run(drive())
    if not ref.files:
        return  # nothing was ever written; no dataset exists
    dep.kv.lose_all()
    dep.run(recovery.rebuild_dataset(dep.server, "model"))

    def audit():
        for path, data in ref.files.items():
            got = yield from client.get(path)
            assert got == data
        for path in set(PATH_POOL) - set(ref.files):
            try:
                yield from client.get(path)
                raise AssertionError(f"{path} resurrected by recovery")
            except FileNotFoundInDatasetError:
                pass

    dep.run(audit())
