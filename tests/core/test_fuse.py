"""Tests for the FUSE facade (§5)."""

import pytest

from repro.core.fuse import FuseMount, mount
from repro.errors import DieselError

from tests.core.conftest import build_deployment, small_files, write_dataset


def setup_mount(deployment, n_clients=2, n_files=12):
    files = small_files(n_files)
    writer = write_dataset(deployment, "ds", files)

    def load(c):
        blob = yield from c.save_meta()
        yield from c.load_meta(blob)

    clients = [writer]
    deployment.run(load(writer))
    for _ in range(n_clients - 1):
        c = deployment.new_client("ds")
        deployment.run(load(c))
        clients.append(c)
    return mount(clients), files


class TestMount:
    def test_needs_clients(self):
        with pytest.raises(DieselError):
            FuseMount([])

    def test_mixed_datasets_rejected(self, deployment):
        write_dataset(deployment, "a", {"/x": b"1"})
        write_dataset(deployment, "b", {"/y": b"2"})
        ca = deployment.new_client("a")
        cb = deployment.new_client("b")
        with pytest.raises(DieselError):
            FuseMount([ca, cb])

    def test_read_roundtrip(self, deployment):
        m, files = setup_mount(deployment)
        path = next(iter(files))

        def proc():
            data = yield from m.read_file(path)
            return data

        assert deployment.run(proc()) == files[path]
        assert m.stats.reads == 1
        assert m.stats.crossings >= 3  # open + read + data crossings

    def test_getattr_and_readdir(self, deployment):
        m, files = setup_mount(deployment)

        def proc():
            info = yield from m.getattr(next(iter(files)))
            entries = yield from m.readdir("/img")
            return info, entries

        info, entries = deployment.run(proc())
        assert info["size"] == 4096
        assert len(entries) == 4  # four class dirs

    def test_exists(self, deployment):
        m, files = setup_mount(deployment)

        def proc():
            yes = yield from m.exists(next(iter(files)))
            no = yield from m.exists("/ghost")
            return yes, no

        assert deployment.run(proc()) == (True, False)

    def test_ls_recursive_counts(self, deployment):
        m, files = setup_mount(deployment, n_files=12)

        def proc():
            n = yield from m.ls_recursive("/", with_sizes=True)
            return n

        # /img + 4 class dirs + 12 files
        assert deployment.run(proc()) == 1 + 4 + 12

    def test_round_robin_over_clients(self, deployment):
        m, files = setup_mount(deployment, n_clients=3)

        def proc():
            for path in files:
                yield from m.read_file(path)

        deployment.run(proc())
        gets = [c.stats.gets for c in m.clients]
        assert all(g > 0 for g in gets)
        assert max(gets) - min(gets) <= 1


class TestFuseOverhead:
    def test_fuse_slower_than_api_but_not_too_much(self, deployment):
        """Fig 11a: FUSE ≈ 60-85 % of the native API's throughput."""
        m, files = setup_mount(deployment, n_clients=1)
        client = m.clients[0]
        paths = list(files)

        def time_api():
            t0 = deployment.env.now
            for p in paths:
                yield from client.get(p)
            return deployment.env.now - t0

        def time_fuse():
            t0 = deployment.env.now
            for p in paths:
                yield from m.read_file(p)
            return deployment.env.now - t0

        t_api = deployment.run(time_api())
        t_fuse = deployment.run(time_fuse())
        assert t_fuse > t_api
        assert t_api / t_fuse > 0.4  # same order of magnitude

    def test_crossings_scale_with_read_size(self, deployment):
        big = b"Z" * (512 * 1024)
        writer = write_dataset(deployment, "ds", {"/big": big})

        def load():
            blob = yield from writer.save_meta()
            yield from writer.load_meta(blob)

        deployment.run(load())
        m = mount([writer])

        def proc():
            data = yield from m.read_file("/big")
            return data

        assert deployment.run(proc()) == big
        # 512 KiB / 128 KiB max_read = 4 crossings + open/read overhead.
        assert m.stats.crossings >= 4 + 2


class TestMountLifecycle:
    def test_unmount_closes_clients_and_blocks_ops(self, deployment):
        m, files = setup_mount(deployment)
        assert m.mounted
        m.unmount()
        assert not m.mounted
        assert all(c._closed for c in m.clients)

        def proc():
            yield from m.read_file(next(iter(files)))

        with pytest.raises(DieselError):
            deployment.run(proc())

    def test_unmount_idempotent(self, deployment):
        m, _ = setup_mount(deployment)
        m.unmount()
        m.unmount()  # no error
        assert not m.mounted


class TestStatUploadTime:
    def test_upload_time_from_chunk_id(self, deployment):
        m, files = setup_mount(deployment)

        def proc():
            info = yield from m.getattr(next(iter(files)))
            return info

        info = deployment.run(proc())
        # Ingest happened at simulated t≈0: the chunk ID's embedded
        # creation second is 0.
        assert info["upload_time"] == 0
        assert info["chunk_id"] is not None

    def test_upload_time_tracks_write_time(self, deployment):
        deployment.env.run(until=deployment.env.now + 120)
        files = small_files(3)
        client = write_dataset(deployment, "late", files)

        def proc():
            info = yield from client.stat(next(iter(files)))
            return info

        info = deployment.run(proc())
        assert info["upload_time"] >= 120

    def test_directory_has_no_upload_time(self, deployment):
        m, files = setup_mount(deployment)

        def proc():
            info = yield from m.getattr("/img")
            return info

        assert deployment.run(proc())["upload_time"] is None
