"""Tests for the DIESEL server: ingest, reads, request executor,
housekeeping."""

import pytest

from repro.core import meta
from repro.core.chunk import Chunk
from repro.core.server import object_key, parse_object_key
from repro.errors import (
    DatasetNotFoundError,
    DieselError,
    FileNotFoundInDatasetError,
)
from repro.util.ids import ChunkIdGenerator

from tests.core.conftest import build_deployment, small_files, write_dataset


class TestObjectKey:
    def test_roundtrip(self):
        gen = ChunkIdGenerator(machine=b"\x06" * 6, pid=1)
        cid = gen.next()
        key = object_key("imagenet", cid)
        ds, parsed = parse_object_key(key)
        assert ds == "imagenet" and parsed == cid

    def test_written_order_listing(self):
        gen = ChunkIdGenerator(machine=b"\x06" * 6, pid=1, clock=None)
        cids = list(gen.take(5))
        keys = sorted(object_key("ds", c) for c in reversed(cids))
        assert [parse_object_key(k)[1] for k in keys] == cids


class TestIngestAndRead:
    def test_roundtrip_through_server(self, deployment):
        files = small_files(20)
        client = write_dataset(deployment, "ds", files)

        def read_one(path):
            def proc():
                data = yield from deployment.server.call(
                    deployment.client_nodes[0], "get_file", "ds", path
                )
                return data

            return deployment.run(proc())

        for path, data in list(files.items())[:5]:
            assert read_one(path) == data

    def test_chunks_land_in_object_store(self, deployment):
        write_dataset(deployment, "ds", small_files(20), chunk_size=32 * 1024)
        keys = deployment.store.list_keys()
        assert len(keys) >= 2
        for key in keys:
            chunk = Chunk.decode(deployment.store.peek(key))
            assert len(chunk) >= 1

    def test_metadata_pairs_written(self, deployment):
        files = small_files(10)
        write_dataset(deployment, "ds", files)
        for path in files:
            assert deployment.kv.local_get_or_none(meta.file_key("ds", path))
        dsrec = deployment.server.dataset_info("ds")
        assert len(dsrec.chunk_ids) == len(deployment.store.list_keys())

    def test_missing_file_raises(self, deployment):
        write_dataset(deployment, "ds", small_files(5))

        def proc():
            yield from deployment.server.call(
                deployment.client_nodes[0], "get_file", "ds", "/ghost"
            )

        with pytest.raises(FileNotFoundInDatasetError):
            deployment.run(proc())

    def test_unknown_dataset_raises(self, deployment):
        def proc():
            yield from deployment.server.call(
                deployment.client_nodes[0], "dataset_ts", "nope"
            )

        with pytest.raises(DatasetNotFoundError):
            deployment.run(proc())

    def test_unknown_method_raises(self, deployment):
        def proc():
            yield from deployment.server.call(
                deployment.client_nodes[0], "fly_to_moon"
            )

        with pytest.raises(DieselError):
            deployment.run(proc())

    def test_dataset_ts_bumps_on_ingest(self, deployment):
        write_dataset(deployment, "ds", small_files(4), chunk_size=4096)
        ts1 = deployment.server.dataset_info("ds").update_ts
        write_dataset(deployment, "ds", {"/new/file": b"x" * 100})
        ts2 = deployment.server.dataset_info("ds").update_ts
        assert ts2 > ts1


class TestRequestExecutor:
    def test_batch_read_returns_correct_bytes(self, deployment):
        files = small_files(30)
        write_dataset(deployment, "ds", files, chunk_size=16 * 1024)
        paths = list(files)[:12]

        def proc():
            result = yield from deployment.server.call(
                deployment.client_nodes[0], "read_files", "ds", paths
            )
            return result

        result = deployment.run(proc())
        assert set(result) == set(paths)
        for p in paths:
            assert result[p] == files[p]

    def test_merging_reduces_device_ops(self, deployment):
        """The §4 request executor must merge same-chunk reads."""
        files = small_files(32, size=1024)
        write_dataset(deployment, "ds", files, chunk_size=1024 * 1024)
        # All 32 files fit one chunk.
        assert len(deployment.store.list_keys()) == 1
        before = deployment.store.device.stats.read_ops

        def proc():
            result = yield from deployment.server.call(
                deployment.client_nodes[0], "read_files", "ds", list(files)
            )
            return result

        deployment.run(proc())
        merged_ops = deployment.store.device.stats.read_ops - before
        assert merged_ops == 1  # one span read instead of 32

    def test_merged_read_faster_than_individual(self, deployment):
        files = small_files(64, size=4096)
        write_dataset(deployment, "ds", files, chunk_size=1024 * 1024)
        node = deployment.client_nodes[0]

        def batched():
            t0 = deployment.env.now
            yield from deployment.server.call(
                node, "read_files", "ds", list(files)
            )
            return deployment.env.now - t0

        def individual():
            t0 = deployment.env.now
            for p in files:
                yield from deployment.server.call(node, "get_file", "ds", p)
            return deployment.env.now - t0

        t_batch = deployment.run(batched())
        t_indiv = deployment.run(individual())
        assert t_batch < t_indiv / 4


class TestMetadataOps:
    def test_stat(self, deployment):
        files = small_files(6)
        write_dataset(deployment, "ds", files)
        path = next(iter(files))

        def proc():
            info = yield from deployment.server.call(
                deployment.client_nodes[0], "stat", "ds", path
            )
            return info

        info = deployment.run(proc())
        assert info["size"] == len(files[path])
        assert info["is_dir"] is False

    def test_stat_directory(self, deployment):
        write_dataset(deployment, "ds", small_files(6))

        def proc():
            info = yield from deployment.server.call(
                deployment.client_nodes[0], "stat", "ds", "/img"
            )
            return info

        assert deployment.run(proc())["is_dir"] is True

    def test_ls_is_pscan_union(self, deployment):
        write_dataset(deployment, "ds", small_files(8))

        def proc():
            entries = yield from deployment.server.call(
                deployment.client_nodes[0], "ls", "ds", "/img"
            )
            return entries

        entries = deployment.run(proc())
        assert entries == ["class0", "class1", "class2", "class3"]

    def test_save_meta_roundtrip(self, deployment):
        from repro.core.snapshot import MetadataSnapshot

        files = small_files(10)
        write_dataset(deployment, "ds", files)

        def proc():
            blob = yield from deployment.server.call(
                deployment.client_nodes[0], "save_meta", "ds", response_bytes=None
            )
            return blob

        snap = MetadataSnapshot.deserialize(deployment.run(proc()))
        assert snap.file_count == 10
        assert {f.path for f in snap.files} == set(files)


class TestHousekeeping:
    def test_delete_tombstones(self, deployment):
        files = small_files(8)
        write_dataset(deployment, "ds", files, chunk_size=1024 * 1024)
        victim = next(iter(files))

        def proc():
            yield from deployment.server.call(
                deployment.client_nodes[0], "delete_file", "ds", victim
            )

        deployment.run(proc())
        # file record gone
        assert deployment.kv.local_get_or_none(meta.file_key("ds", victim)) is None
        # chunk record shows one tombstone
        dsrec = deployment.server.dataset_info("ds")
        crec = deployment.server._chunk_record("ds", dsrec.chunk_ids[0])
        assert crec.ndeleted == 1

    def test_deleted_file_not_listed(self, deployment):
        files = {"/d/a": b"1" * 100, "/d/b": b"2" * 100}
        write_dataset(deployment, "ds", files)

        def proc():
            yield from deployment.server.call(
                deployment.client_nodes[0], "delete_file", "ds", "/d/a"
            )
            entries = yield from deployment.server.call(
                deployment.client_nodes[0], "ls", "ds", "/d"
            )
            return entries

        assert deployment.run(proc()) == ["b"]

    def test_purge_rewrites_holey_chunks(self, deployment):
        files = small_files(10, size=1000)
        write_dataset(deployment, "ds", files, chunk_size=1024 * 1024)
        node = deployment.client_nodes[0]
        victims = list(files)[:3]

        def proc():
            for v in victims:
                yield from deployment.server.call(node, "delete_file", "ds", v)
            rewritten = yield from deployment.server.call(node, "purge", "ds")
            return rewritten

        assert deployment.run(proc()) == 1
        dsrec = deployment.server.dataset_info("ds")
        assert len(dsrec.chunk_ids) == 1  # fresh chunk replaced the holey one
        crec = deployment.server._chunk_record("ds", dsrec.chunk_ids[0])
        assert crec.ndeleted == 0
        assert crec.nfiles == 7

        def read_survivor():
            survivor = list(files)[5]
            data = yield from deployment.server.call(
                node, "get_file", "ds", survivor
            )
            return data

        survivor = list(files)[5]
        assert deployment.run(read_survivor()) == files[survivor]

    def test_purge_skips_clean_chunks(self, deployment):
        write_dataset(deployment, "ds", small_files(5))

        def proc():
            rewritten = yield from deployment.server.call(
                deployment.client_nodes[0], "purge", "ds"
            )
            return rewritten

        assert deployment.run(proc()) == 0

    def test_delete_dataset_removes_everything(self, deployment):
        write_dataset(deployment, "ds", small_files(10), chunk_size=8 * 1024)

        def proc():
            n = yield from deployment.server.call(
                deployment.client_nodes[0], "delete_dataset", "ds"
            )
            return n

        removed = deployment.run(proc())
        assert removed >= 1
        assert deployment.store.list_keys() == []
        assert deployment.kv.total_keys() == 0
        with pytest.raises(DatasetNotFoundError):
            deployment.server.dataset_info("ds")


class TestMultiServer:
    def test_servers_share_state(self):
        dep = build_deployment(n_servers=3)
        files = small_files(9)
        write_dataset(dep, "ds", files)

        def read_via(server_idx, path):
            def proc():
                data = yield from dep.servers[server_idx].call(
                    dep.client_nodes[0], "get_file", "ds", path
                )
                return data

            return dep.run(proc())

        path = next(iter(files))
        # Any server serves data written through any other (stateless §4.1.1).
        assert read_via(0, path) == files[path]
        assert read_via(1, path) == files[path]
        assert read_via(2, path) == files[path]
