"""Tests for the task-grained distributed cache (§4.2, Fig 7)."""

import pytest

from repro.core.dist_cache import CacheClient, TaskCache
from repro.errors import CachePeerDownError, DieselError

from tests.core.conftest import build_deployment, small_files, write_dataset


def setup_cache(n_nodes=3, clients_per_node=2, n_files=24, policy="oneshot",
                fallback=True, chunk_size=8 * 1024):
    dep = build_deployment(n_client_nodes=n_nodes)
    files = small_files(n_files, size=2048)
    writer = write_dataset(dep, "ds", files, chunk_size=chunk_size)

    def load():
        blob = yield from writer.save_meta()
        yield from writer.load_meta(blob)

    dep.run(load())
    cache_clients = []
    rank = 0
    for node in dep.client_nodes:
        for _ in range(clients_per_node):
            cache_clients.append(CacheClient(f"cc{rank}", node, rank))
            rank += 1
    cache = TaskCache(
        dep.env, dep.fabric, dep.server, "ds", cache_clients,
        policy=policy, fallback_to_server=fallback,
    )
    return dep, cache, cache_clients, files, writer.index


class TestRegistration:
    def test_master_election_lowest_rank_per_node(self):
        dep, cache, clients, *_ = setup_cache(n_nodes=3, clients_per_node=2)
        dep.run(cache.register())
        assert len(cache.masters) == 3
        for node_name, master in cache.masters.items():
            same_node = [c for c in clients if c.node.name == node_name]
            assert master.client.rank == min(c.rank for c in same_node)

    def test_connection_count_is_p_times_n_minus_1(self):
        """The paper's headline mesh reduction (§4.2)."""
        dep, cache, clients, *_ = setup_cache(n_nodes=4, clients_per_node=4)
        dep.run(cache.register())
        p, n = 4, 16
        assert cache.connection_count() == p * (n - 1)
        assert cache.connection_count() == cache.expected_connection_count()
        # Strictly fewer than the naive full mesh n×(n−1).
        assert cache.connection_count() < n * (n - 1)

    def test_every_chunk_has_exactly_one_owner(self):
        dep, cache, *_ = setup_cache()
        summary = dep.run(cache.register())
        owners = [cache.owner_of(cid) for cid in summary["chunk_ids"]]
        assert len(owners) == len(summary["chunk_ids"])
        per_master = {}
        for o in owners:
            per_master[o.client.name] = per_master.get(o.client.name, 0) + 1
        # Round-robin balance: counts differ by at most one.
        assert max(per_master.values()) - min(per_master.values()) <= 1

    def test_double_register_rejected(self):
        dep, cache, *_ = setup_cache()
        dep.run(cache.register())
        with pytest.raises(DieselError):
            dep.run(cache.register())

    def test_validation(self):
        dep = build_deployment()
        with pytest.raises(DieselError):
            TaskCache(dep.env, dep.fabric, dep.server, "ds", [])
        c = CacheClient("x", dep.client_nodes[0], 0)
        with pytest.raises(DieselError):
            TaskCache(dep.env, dep.fabric, dep.server, "ds", [c, c])
        with pytest.raises(DieselError):
            TaskCache(dep.env, dep.fabric, dep.server, "ds", [c], policy="bogus")


class TestOneshotPolicy:
    def test_prefetch_warms_whole_dataset(self):
        dep, cache, clients, files, index = setup_cache(policy="oneshot")
        dep.run(cache.register())
        loaded = dep.run(cache.wait_warm())
        assert loaded == len(index.chunk_ids())
        assert cache.cached_chunks() == len(index.chunk_ids())

    def test_warm_reads_all_hit(self):
        dep, cache, clients, files, index = setup_cache(policy="oneshot")
        dep.run(cache.register())
        dep.run(cache.wait_warm())

        def proc():
            for path, expected in files.items():
                rec = index.lookup(path)
                data = yield from cache.read_file(clients[3], rec)
                assert data == expected

        dep.run(proc())
        assert cache.hit_ratio() == 1.0

    def test_cached_bytes_accounts_chunks(self):
        dep, cache, clients, files, index = setup_cache()
        dep.run(cache.register())
        dep.run(cache.wait_warm())
        assert cache.cached_bytes() >= sum(len(d) for d in files.values())


class TestOnDemandPolicy:
    def test_cold_read_falls_through_to_server_then_warms(self):
        dep, cache, clients, files, index = setup_cache(policy="on-demand")
        dep.run(cache.register())
        assert cache.cached_chunks() == 0
        path = next(iter(files))
        rec = index.lookup(path)

        def first_read():
            data = yield from cache.read_file(clients[0], rec)
            return data

        assert dep.run(first_read()) == files[path]
        # The background pull has warmed the owning chunk by now.
        dep.env.run()  # drain pending background pulls
        owner = cache.owner_of(rec.chunk_id.encode())
        assert owner.has_chunk(rec.chunk_id.encode())

        def second_read():
            data = yield from cache.read_file(clients[0], rec)
            return data

        hits_before = owner.stats.hits
        assert dep.run(second_read()) == files[path]
        assert owner.stats.hits == hits_before + 1


class TestFailureContainment:
    def test_dead_master_falls_back_to_server(self):
        dep, cache, clients, files, index = setup_cache()
        dep.run(cache.register())
        dep.run(cache.wait_warm())
        victim_node = dep.client_nodes[0]
        victim_node.kill()
        surviving_client = next(
            c for c in clients if c.node.name != victim_node.name
        )

        def proc():
            ok = 0
            for path in files:
                data = yield from cache.read_file(surviving_client, index.lookup(path))
                ok += data == files[path]
            return ok

        assert dep.run(proc()) == len(files)

    def test_strict_mode_raises_on_dead_peer(self):
        dep, cache, clients, files, index = setup_cache(fallback=False)
        dep.run(cache.register())
        dep.run(cache.wait_warm())
        dep.client_nodes[1].kill()
        dead_master = next(m for m in cache.masters.values() if not m.up)
        victim_cid = dead_master.assigned[0]
        victim_path = next(
            p for p in files if index.lookup(p).chunk_id.encode() == victim_cid
        )
        reader = next(c for c in clients if c.node.alive)

        def proc():
            yield from cache.read_file(reader, index.lookup(victim_path))

        with pytest.raises(CachePeerDownError):
            dep.run(proc())

    def test_other_tasks_unaffected(self):
        """Containment: killing task A's node leaves task B's cache intact."""
        dep = build_deployment(n_client_nodes=4)
        files_a = small_files(12, prefix="/a")
        files_b = small_files(12, prefix="/b")
        wa = write_dataset(dep, "task-a", files_a, chunk_size=8 * 1024)
        wb = write_dataset(dep, "task-b", files_b, chunk_size=8 * 1024)

        def load(w):
            blob = yield from w.save_meta()
            yield from w.load_meta(blob)

        dep.run(load(wa))
        dep.run(load(wb))
        # Task A on nodes 0-1; task B on nodes 2-3: disjoint.
        ca = [CacheClient(f"a{r}", dep.client_nodes[r % 2], r) for r in range(4)]
        cb = [CacheClient(f"b{r}", dep.client_nodes[2 + r % 2], r) for r in range(4)]
        cache_a = TaskCache(dep.env, dep.fabric, dep.server, "task-a", ca)
        cache_b = TaskCache(dep.env, dep.fabric, dep.server, "task-b", cb)
        dep.run(cache_a.register())
        dep.run(cache_b.register())
        dep.run(cache_a.wait_warm())
        dep.run(cache_b.wait_warm())

        dep.client_nodes[0].kill()  # hits task A only
        assert cache_a.dead_masters()
        assert not cache_b.dead_masters()

        def read_b():
            for path in files_b:
                data = yield from cache_b.read_file(cb[0], wb.index.lookup(path))
                assert data == files_b[path]

        dep.run(read_b())
        assert cache_b.hit_ratio() == 1.0


class TestRecovery:
    def test_recover_repartitions_and_reloads(self):
        dep, cache, clients, files, index = setup_cache(n_nodes=3)
        dep.run(cache.register())
        dep.run(cache.wait_warm())
        total_chunks = len(index.chunk_ids())
        dep.client_nodes[0].kill()
        dead = cache.dead_masters()
        assert len(dead) == 1
        lost = len(dead[0].assigned)

        def proc():
            n = yield from cache.recover()
            return n

        reloaded = dep.run(proc())
        assert reloaded == lost
        assert len(cache.masters) == 2
        assert cache.cached_chunks() == total_chunks

        surviving_client = next(c for c in clients if c.node.alive)

        def read_all():
            for path in files:
                data = yield from cache.read_file(
                    surviving_client, index.lookup(path)
                )
                assert data == files[path]

        dep.run(read_all())

    def test_recover_noop_when_healthy(self):
        dep, cache, *_ = setup_cache()
        dep.run(cache.register())
        dep.run(cache.wait_warm())

        def proc():
            n = yield from cache.recover()
            return n

        assert dep.run(proc()) == 0

    def test_recover_with_no_survivors_raises(self):
        dep, cache, *_ = setup_cache(n_nodes=2)
        dep.run(cache.register())
        for node in dep.client_nodes:
            node.kill()

        def proc():
            yield from cache.recover()

        with pytest.raises(CachePeerDownError):
            dep.run(proc())


class TestUnregisteredUse:
    def test_read_before_register_rejected(self):
        dep, cache, clients, files, index = setup_cache()
        path = next(iter(files))

        def proc():
            yield from cache.read_file(clients[0], index.lookup(path))

        with pytest.raises(DieselError):
            dep.run(proc())


class TestMemoryAccounting:
    """§4.2: the cache aggregates the nodes' *free* memory — masters must
    respect their node's budget and release it when dropping chunks."""

    def _tight_setup(self, memory_bytes):
        from repro.cluster import Node

        dep = build_deployment(n_client_nodes=1)
        # Replace the client node with a memory-tight one.
        tight = dep.fabric.add_node(
            Node(dep.env, "tight", memory_bytes=memory_bytes)
        )
        files = small_files(32, size=2048)
        writer = write_dataset(dep, "ds", files, chunk_size=8 * 1024)

        def load():
            blob = yield from writer.save_meta()
            yield from writer.load_meta(blob)

        dep.run(load())
        client = CacheClient("c0", tight, 0)
        cache = TaskCache(dep.env, dep.fabric, dep.server, "ds", [client])
        dep.run(cache.register())
        return dep, cache, client, files, writer.index

    def test_memory_charged_while_cached(self):
        dep, cache, client, files, index = self._tight_setup(
            memory_bytes=10 * 2**20
        )
        before = client.node.memory.level
        dep.run(cache.wait_warm())
        after = client.node.memory.level
        assert before - after == cache.cached_bytes()
        assert cache.cached_bytes() > 0

    def test_insufficient_memory_skips_but_reads_still_work(self):
        # Budget for roughly two chunks out of ~9.
        dep, cache, client, files, index = self._tight_setup(
            memory_bytes=18 * 1024
        )
        loaded = dep.run(cache.wait_warm())
        master = next(iter(cache.masters.values()))
        assert master.stats.skipped_no_memory > 0
        assert loaded < len(index.chunk_ids())
        assert client.node.memory.level >= 0

        def read_all():
            ok = 0
            for path, expected in files.items():
                data = yield from cache.read_file(client, index.lookup(path))
                ok += data == expected
            return ok

        # Uncached chunks fall through to the server (Fig 4): all correct.
        assert dep.run(read_all()) == len(files)

    def test_drop_all_returns_memory(self):
        dep, cache, client, files, index = self._tight_setup(
            memory_bytes=10 * 2**20
        )
        dep.run(cache.wait_warm())
        master = next(iter(cache.masters.values()))
        assert client.node.memory.level < 10 * 2**20
        master.drop_all()
        dep.env.run()  # deliver the memory put
        assert client.node.memory.level == 10 * 2**20
