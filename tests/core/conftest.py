"""Shared fixtures: a full in-simulation DIESEL deployment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import pytest

from repro.calibration import Calibration
from repro.core.client import DieselClient
from repro.core.config import DieselConfig
from repro.core.server import DieselServer
from repro.cluster import NetworkFabric, Node
from repro.cluster.devices import Device
from repro.kvstore import KVInstance, ShardedKV
from repro.objectstore import ObjectStore
from repro.sim import Environment


@dataclass
class Deployment:
    """Everything a core test needs, wired together."""

    env: Environment
    fabric: NetworkFabric
    kv: ShardedKV
    store: ObjectStore
    servers: List[DieselServer]
    client_nodes: List[Node]
    clients: List[DieselClient] = field(default_factory=list)

    @property
    def server(self) -> DieselServer:
        return self.servers[0]

    def run(self, gen):
        """Run a generator to completion in the deployment's environment."""
        proc = self.env.process(gen)
        return self.env.run(until=proc)

    def new_client(self, dataset: str, node_idx: int = 0, rank: int = 0,
                   name: str | None = None, config: DieselConfig | None = None
                   ) -> DieselClient:
        client = DieselClient(
            self.env,
            self.client_nodes[node_idx],
            self.servers,
            dataset,
            name=name or f"client{len(self.clients)}",
            rank=rank,
            config=config,
        )
        self.clients.append(client)
        return client


def build_deployment(
    n_servers: int = 1,
    n_client_nodes: int = 2,
    n_kv: int = 4,
    config: DieselConfig | None = None,
) -> Deployment:
    env = Environment()
    fabric = NetworkFabric(env)
    kv_instances = []
    for i in range(n_kv):
        node = fabric.add_node(Node(env, f"kv{i}"))
        kv_instances.append(KVInstance(env, fabric, node, f"kv{i}"))
    kv = ShardedKV(kv_instances)
    device = Device.nvme(env, "ssd-pool")
    store = ObjectStore(device)
    servers = []
    for i in range(n_servers):
        node = fabric.add_node(Node(env, f"diesel{i}"))
        servers.append(
            DieselServer(
                env, fabric, node, kv, store,
                config=config, name=f"diesel{i}",
            )
        )
    client_nodes = [
        fabric.add_node(Node(env, f"compute{i}")) for i in range(n_client_nodes)
    ]
    return Deployment(env, fabric, kv, store, servers, client_nodes)


@pytest.fixture
def deployment() -> Deployment:
    return build_deployment()


def write_dataset(dep: Deployment, dataset: str, files: dict[str, bytes],
                  chunk_size: int = 64 * 1024) -> DieselClient:
    """Write ``files`` into ``dataset`` through a fresh client; returns it."""
    client = dep.new_client(
        dataset, config=DieselConfig(chunk_size=chunk_size)
    )

    def writer():
        for path, data in files.items():
            yield from client.put(path, data)
        yield from client.flush()

    dep.run(writer())
    return client


def small_files(n: int = 40, size: int = 4096, prefix: str = "/img") -> dict[str, bytes]:
    """Deterministic fake files with distinct contents."""
    return {
        f"{prefix}/class{i % 4}/file{i:04d}.jpg": bytes([i % 256]) * size
        for i in range(n)
    }
