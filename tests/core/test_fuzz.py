"""Robustness fuzzing: codecs must fail loudly, never corrupt silently.

Recovery scans arbitrary object-store contents and clients load snapshot
blobs fetched over the network, so the decoders must convert *any*
malformed input into a typed error — an AttributeError/IndexError escape
or a silently-wrong decode would corrupt a rebuild.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunk import Chunk
from repro.core.meta import ChunkRecord, DatasetRecord, FileRecord
from repro.core.snapshot import MetadataSnapshot
from repro.errors import ChunkChecksumError, ChunkFormatError, DieselError
from repro.util.ids import ChunkIdGenerator

GEN = ChunkIdGenerator(machine=b"\x0c" * 6, pid=13)

#: The errors a decoder is allowed to raise on malformed input.
DECODE_ERRORS = (
    ChunkFormatError,
    ChunkChecksumError,
    DieselError,
    ValueError,
    struct.error,
    UnicodeDecodeError,
)


def valid_chunk_bytes():
    return Chunk.build(
        GEN.next(), [(f"/fz/f{i}", bytes([i]) * 64) for i in range(8)]
    ).encode()


def valid_snapshot_bytes():
    cid = GEN.next()
    files = [FileRecord(f"/fz/f{i}", cid, i * 64, 64, i) for i in range(8)]
    return MetadataSnapshot("fz", 3, (cid,), tuple(files)).serialize()


class TestChunkFuzz:
    @settings(max_examples=150, deadline=None)
    @given(st.binary(max_size=512))
    def test_random_bytes_never_escape_typed_errors(self, blob):
        try:
            Chunk.decode(blob)
        except DECODE_ERRORS:
            pass

    @settings(max_examples=150, deadline=None)
    @given(st.data())
    def test_bitflips_detected_or_decode_identical(self, data):
        """Any single corrupted byte is either rejected or — if it only
        touched payload bytes — caught by the per-file checksum."""
        blob = bytearray(valid_chunk_bytes())
        idx = data.draw(st.integers(0, len(blob) - 1))
        flip = data.draw(st.integers(1, 255))
        blob[idx] ^= flip
        try:
            chunk = Chunk.decode(bytes(blob))
        except DECODE_ERRORS:
            return  # structural/header corruption rejected: good
        # Header decoded fine, so the flip was in the data section; every
        # payload must either verify identical or fail its checksum.
        original = Chunk.decode(valid_chunk_bytes())
        for path in chunk.paths:
            try:
                got = chunk.payload(path)
            except ChunkChecksumError:
                continue  # corruption caught end-to-end: good
            assert got == original.payload(path)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 200))
    def test_truncation_always_rejected(self, cut):
        blob = valid_chunk_bytes()
        cut = min(cut, len(blob) - 1)
        with pytest.raises(DECODE_ERRORS):
            Chunk.decode_header(blob[:cut])


class TestSnapshotFuzz:
    @settings(max_examples=150, deadline=None)
    @given(st.binary(max_size=512))
    def test_random_bytes_never_escape_typed_errors(self, blob):
        try:
            MetadataSnapshot.deserialize(blob)
        except DECODE_ERRORS + (IndexError,):
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_truncation_rejected_or_consistent(self, data):
        blob = valid_snapshot_bytes()
        cut = data.draw(st.integers(4, len(blob) - 1))
        try:
            snap = MetadataSnapshot.deserialize(blob[:cut])
        except DECODE_ERRORS + (IndexError,):
            return
        # If it decoded, it must be internally consistent.
        for f in snap.files:
            assert f.chunk_id in snap.chunk_ids


class TestRecordFuzz:
    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=128))
    def test_file_record(self, blob):
        try:
            FileRecord.decode(blob)
        except DECODE_ERRORS:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=128))
    def test_chunk_record(self, blob):
        try:
            ChunkRecord.decode(blob)
        except DECODE_ERRORS:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=128))
    def test_dataset_record(self, blob):
        try:
            DatasetRecord.decode(blob)
        except DECODE_ERRORS:
            pass
