"""Tests for partial reads (DL_get_range), overwrite, and FUSE handles."""

import pytest

from repro.core.fuse import mount
from repro.errors import DieselError, FileNotFoundInDatasetError

from tests.core.conftest import build_deployment, write_dataset


PAYLOAD = bytes(range(256)) * 8  # 2048 bytes, position-identifiable


def setup(deployment, snapshot=True):
    client = write_dataset(deployment, "ds", {"/f/data.bin": PAYLOAD,
                                              "/f/other.bin": b"zz" * 100})
    if snapshot:
        def load():
            blob = yield from client.save_meta()
            yield from client.load_meta(blob)

        deployment.run(load())
    return client


class TestGetRange:
    def test_middle_slice(self, deployment):
        client = setup(deployment)

        def proc():
            data = yield from client.get_range("/f/data.bin", 100, 50)
            return data

        assert deployment.run(proc()) == PAYLOAD[100:150]

    def test_from_start_and_to_eof(self, deployment):
        client = setup(deployment)

        def proc():
            head = yield from client.get_range("/f/data.bin", 0, 16)
            tail = yield from client.get_range("/f/data.bin", 2040, 100)
            return head, tail

        head, tail = deployment.run(proc())
        assert head == PAYLOAD[:16]
        assert tail == PAYLOAD[2040:]  # clamped at EOF, like read(2)

    def test_past_eof_returns_empty(self, deployment):
        client = setup(deployment)

        def proc():
            data = yield from client.get_range("/f/data.bin", 10_000, 10)
            return data

        assert deployment.run(proc()) == b""

    def test_without_snapshot_still_works(self, deployment):
        client = setup(deployment, snapshot=False)

        def proc():
            data = yield from client.get_range("/f/data.bin", 8, 8)
            return data

        assert deployment.run(proc()) == PAYLOAD[8:16]

    def test_negative_args_rejected(self, deployment):
        client = setup(deployment)

        def proc():
            yield from client.get_range("/f/data.bin", -1, 10)

        with pytest.raises(DieselError):
            deployment.run(proc())

    def test_range_read_moves_fewer_bytes_than_full_read(self, deployment):
        client = setup(deployment, snapshot=False)
        before = deployment.store.device.stats.read_bytes

        def proc():
            yield from client.get_range("/f/data.bin", 0, 64)

        deployment.run(proc())
        moved = deployment.store.device.stats.read_bytes - before
        assert moved < len(PAYLOAD) / 4

    def test_shuffle_mode_serves_ranges_from_group_cache(self, deployment):
        client = setup(deployment)
        client.enable_shuffle(group_size=1)
        client.epoch_file_list()

        def proc():
            first = yield from client.get_range("/f/data.bin", 10, 10)
            again = yield from client.get_range("/f/data.bin", 20, 10)
            return first, again

        first, again = deployment.run(proc())
        assert first == PAYLOAD[10:20]
        assert again == PAYLOAD[20:30]
        assert client.stats.local_hits >= 1


class TestOverwrite:
    def test_overwrite_replaces_content(self, deployment):
        client = setup(deployment, snapshot=False)

        def proc():
            yield from client.put_overwrite("/f/data.bin", b"NEW-CONTENT")
            data = yield from client.get("/f/data.bin")
            return data

        assert deployment.run(proc()) == b"NEW-CONTENT"

    def test_overwrite_creates_when_missing(self, deployment):
        client = setup(deployment, snapshot=False)

        def proc():
            yield from client.put_overwrite("/f/fresh.bin", b"hello")
            data = yield from client.get("/f/fresh.bin")
            return data

        assert deployment.run(proc()) == b"hello"

    def test_old_version_becomes_hole_then_purged(self, deployment):
        client = setup(deployment, snapshot=False)

        def proc():
            yield from client.put_overwrite("/f/data.bin", b"v2")
            rewritten = yield from client.purge()
            data = yield from client.get("/f/data.bin")
            return rewritten, data

        rewritten, data = deployment.run(proc())
        assert rewritten >= 1
        assert data == b"v2"

    def test_overwrite_bumps_dataset_ts(self, deployment):
        client = setup(deployment, snapshot=False)
        ts1 = deployment.server.dataset_info("ds").update_ts

        def proc():
            yield from client.put_overwrite("/f/data.bin", b"x")

        deployment.run(proc())
        assert deployment.server.dataset_info("ds").update_ts > ts1


class TestFuseHandles:
    def _mount(self, deployment):
        client = setup(deployment)
        return mount([client])

    def test_open_read_sequential(self, deployment):
        m = self._mount(deployment)

        def proc():
            fh = yield from m.open("/f/data.bin")
            a = yield from fh.read(100)
            b = yield from fh.read(100)
            rest = yield from fh.read()
            fh.close()
            return a, b, rest

        a, b, rest = deployment.run(proc())
        assert a == PAYLOAD[:100]
        assert b == PAYLOAD[100:200]
        assert rest == PAYLOAD[200:]

    def test_seek(self, deployment):
        m = self._mount(deployment)

        def proc():
            fh = yield from m.open("/f/data.bin")
            fh.seek(500)
            a = yield from fh.read(10)
            fh.seek(-8, 2)  # from EOF
            b = yield from fh.read(100)
            fh.seek(-10, 1)  # relative
            c = yield from fh.read(4)
            return a, b, c, fh.pos

        a, b, c, pos = deployment.run(proc())
        assert a == PAYLOAD[500:510]
        assert b == PAYLOAD[-8:]
        assert c == PAYLOAD[2038:2042]
        assert pos == 2042

    def test_pread_keeps_position(self, deployment):
        m = self._mount(deployment)

        def proc():
            fh = yield from m.open("/f/data.bin")
            fh.seek(7)
            piece = yield from fh.pread(16, 1000)
            return piece, fh.pos

        piece, pos = deployment.run(proc())
        assert piece == PAYLOAD[1000:1016]
        assert pos == 7

    def test_closed_handle_rejected(self, deployment):
        m = self._mount(deployment)

        def proc():
            fh = yield from m.open("/f/data.bin")
            fh.close()
            yield from fh.read(10)

        with pytest.raises(DieselError):
            deployment.run(proc())

    def test_open_directory_rejected(self, deployment):
        m = self._mount(deployment)

        def proc():
            yield from m.open("/f")

        with pytest.raises(DieselError):
            deployment.run(proc())

    def test_open_missing_raises(self, deployment):
        m = self._mount(deployment)

        def proc():
            yield from m.open("/ghost")

        with pytest.raises(FileNotFoundInDatasetError):
            deployment.run(proc())

    def test_bad_seek_rejected(self, deployment):
        m = self._mount(deployment)

        def proc():
            fh = yield from m.open("/f/data.bin")
            return fh

        fh = deployment.run(proc())
        with pytest.raises(DieselError):
            fh.seek(-1)
        with pytest.raises(DieselError):
            fh.seek(0, 9)
