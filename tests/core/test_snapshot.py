"""Tests for metadata snapshots (§4.1.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.meta import FileRecord
from repro.core.snapshot import (
    MetadataSnapshot,
    SnapshotIndex,
    build_snapshot,
)
from repro.errors import ChunkFormatError, FileNotFoundInDatasetError
from repro.util.ids import ChunkIdGenerator

GEN = ChunkIdGenerator(machine=b"\x04" * 6, pid=3)


def make_snapshot(n_files=10, n_chunks=3, dataset="imagenet"):
    cids = sorted(GEN.take(n_chunks))
    files = []
    for i in range(n_files):
        cid = cids[i % n_chunks]
        files.append(
            FileRecord(f"/train/class{i % 3}/img{i:03d}.jpg", cid, i * 100, 100, i)
        )
    return build_snapshot(dataset, update_ts=5, files=files, chunk_ids=cids)


class TestSerialization:
    def test_roundtrip(self):
        snap = make_snapshot()
        restored = MetadataSnapshot.deserialize(snap.serialize())
        assert restored == snap

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 40), st.integers(1, 5))
    def test_roundtrip_property(self, n_files, n_chunks):
        snap = make_snapshot(n_files=n_files, n_chunks=n_chunks)
        restored = MetadataSnapshot.deserialize(snap.serialize())
        assert restored.files == snap.files
        assert restored.chunk_ids == snap.chunk_ids
        assert restored.update_ts == snap.update_ts

    def test_bad_magic(self):
        with pytest.raises(ChunkFormatError):
            MetadataSnapshot.deserialize(b"JUNK" + make_snapshot().serialize()[4:])

    def test_file_referencing_unknown_chunk_rejected(self):
        snap = make_snapshot()
        rogue = FileRecord("/rogue", GEN.next(), 0, 1, 0)
        bad = MetadataSnapshot(
            snap.dataset, snap.update_ts, snap.chunk_ids, snap.files + (rogue,)
        )
        with pytest.raises(ChunkFormatError):
            bad.serialize()

    def test_compactness(self):
        """Snapshots must stay small relative to the dataset (§4.1.3)."""
        snap = make_snapshot(n_files=1000, n_chunks=30)
        per_file = len(snap.serialize()) / 1000
        assert per_file < 80  # tens of bytes per file

    def test_totals(self):
        snap = make_snapshot(n_files=10)
        assert snap.file_count == 10
        assert snap.total_bytes() == 1000


class TestIndex:
    def test_lookup(self):
        idx = SnapshotIndex(make_snapshot())
        rec = idx.lookup("/train/class0/img000.jpg")
        assert rec.length == 100
        assert "/train/class0/img000.jpg" in idx
        with pytest.raises(FileNotFoundInDatasetError):
            idx.lookup("/missing")

    def test_stat_file_and_dir(self):
        idx = SnapshotIndex(make_snapshot())
        st_f = idx.stat("/train/class1/img001.jpg")
        assert st_f["is_dir"] is False and st_f["size"] == 100
        st_d = idx.stat("/train")
        assert st_d["is_dir"] is True
        with pytest.raises(FileNotFoundInDatasetError):
            idx.stat("/nope")

    def test_hierarchy_reconstruction(self):
        idx = SnapshotIndex(make_snapshot(n_files=6))
        assert idx.readdir("/") == ["/train"]
        assert idx.readdir("/train") == [
            "/train/class0", "/train/class1", "/train/class2",
        ]
        assert "/train/class0/img000.jpg" in idx.readdir("/train/class0")

    def test_readdir_missing_raises(self):
        idx = SnapshotIndex(make_snapshot())
        with pytest.raises(FileNotFoundInDatasetError):
            idx.readdir("/ghost")

    def test_walk_visits_all_dirs(self):
        idx = SnapshotIndex(make_snapshot(n_files=9))
        dirs = list(idx.walk())
        assert dirs[0] == "/"
        assert set(dirs) == {
            "/", "/train", "/train/class0", "/train/class1", "/train/class2",
        }

    def test_files_by_chunk_partitions_everything(self):
        snap = make_snapshot(n_files=10, n_chunks=3)
        idx = SnapshotIndex(snap)
        grouping = idx.files_by_chunk()
        all_files = [p for paths in grouping.values() for p in paths]
        assert sorted(all_files) == sorted(idx.all_paths())
        assert set(grouping) <= set(snap.chunk_ids)
        # within-chunk order is by offset
        for cid, paths in grouping.items():
            offsets = [idx.lookup(p).offset for p in paths]
            assert offsets == sorted(offsets)

    def test_counts(self):
        idx = SnapshotIndex(make_snapshot(n_files=7))
        assert idx.file_count == 7
        assert len(idx.chunk_ids()) == 3

    def test_empty_snapshot(self):
        snap = build_snapshot("empty", 1, [])
        idx = SnapshotIndex(snap)
        assert idx.file_count == 0
        assert idx.readdir("/") == []


class TestBuildSnapshot:
    def test_derives_chunk_list(self):
        cids = sorted(GEN.take(2))
        files = [FileRecord("/a", cids[1], 0, 1, 0), FileRecord("/b", cids[0], 0, 1, 0)]
        snap = build_snapshot("ds", 1, files)
        assert snap.chunk_ids == tuple(cids)
