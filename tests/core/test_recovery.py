"""Tests for metadata recovery from self-contained chunks (§4.1.2)."""

import pytest

from repro.core import meta, recovery
from repro.errors import DatasetNotFoundError, FileNotFoundInDatasetError

from tests.core.conftest import build_deployment, small_files, write_dataset


def snapshot_kv_state(deployment, dataset):
    """Capture the full metadata view for later comparison."""
    files = {}
    for key, blob in deployment.kv.local_pscan(meta.file_key_prefix(dataset)):
        rec = meta.FileRecord.decode(blob)
        files[rec.path] = (rec.chunk_id, rec.offset, rec.length, rec.crc32)
    dsrec = deployment.server.dataset_info(dataset)
    return files, set(dsrec.chunk_ids)


class TestScenarioB:
    """Total loss: rebuild everything by scanning chunks in written order."""

    def test_full_rebuild_restores_all_records(self, deployment):
        files = small_files(30)
        write_dataset(deployment, "ds", files, chunk_size=16 * 1024)
        before_files, before_chunks = snapshot_kv_state(deployment, "ds")

        deployment.kv.lose_all()
        assert deployment.kv.total_keys() == 0
        with pytest.raises(DatasetNotFoundError):
            deployment.server.dataset_info("ds")

        def proc():
            n = yield from recovery.rebuild_dataset(deployment.server, "ds")
            return n

        scanned = deployment.run(proc())
        assert scanned == len(before_chunks)
        after_files, after_chunks = snapshot_kv_state(deployment, "ds")
        assert after_files == before_files
        assert after_chunks == before_chunks

    def test_reads_work_after_rebuild(self, deployment):
        files = small_files(12)
        write_dataset(deployment, "ds", files, chunk_size=8 * 1024)
        deployment.kv.lose_all()
        deployment.run(recovery.rebuild_dataset(deployment.server, "ds"))

        path = next(iter(files))

        def read(p):
            data = yield from deployment.server.call(
                deployment.client_nodes[0], "get_file", "ds", p
            )
            return data

        assert deployment.run(read(path)) == files[path]

    def test_rebuild_all_discovers_datasets(self, deployment):
        write_dataset(deployment, "alpha", small_files(6, prefix="/a"))
        write_dataset(deployment, "beta", small_files(4, prefix="/b"))
        deployment.kv.lose_all()

        def proc():
            result = yield from recovery.rebuild_all(deployment.server)
            return result

        result = deployment.run(proc())
        assert set(result) == {"alpha", "beta"}
        assert all(n >= 1 for n in result.values())
        assert deployment.server.dataset_info("alpha").chunk_ids
        assert deployment.server.dataset_info("beta").chunk_ids

    def test_rebuild_reads_headers_not_payloads(self, deployment):
        """Recovery must be header-granular (the Fig 11b speed source)."""
        files = small_files(64, size=64 * 1024)  # 4 MB of payload
        write_dataset(deployment, "ds", files, chunk_size=1024 * 1024)
        deployment.kv.lose_all()
        before = deployment.store.device.stats.read_bytes
        deployment.run(recovery.rebuild_dataset(deployment.server, "ds"))
        scanned_bytes = deployment.store.device.stats.read_bytes - before
        assert scanned_bytes < deployment.store.size_bytes() / 5

    def test_verify_rebuild_clean(self, deployment):
        files = small_files(10)
        write_dataset(deployment, "ds", files)
        deployment.kv.lose_all()
        deployment.run(recovery.rebuild_dataset(deployment.server, "ds"))
        expected = {p: len(d) for p, d in files.items()}
        assert recovery.verify_rebuild(deployment.server, "ds", expected) == []

    def test_verify_rebuild_detects_missing(self, deployment):
        files = small_files(5)
        write_dataset(deployment, "ds", files)
        problems = recovery.verify_rebuild(
            deployment.server, "ds", {**{p: len(d) for p, d in files.items()},
                                      "/phantom": 1}
        )
        assert any("missing file record" in p for p in problems)


class TestScenarioA:
    """Partial loss: rescan only chunks written from a timestamp onward."""

    def test_rescan_from_timestamp_restores_recent_chunks(self, deployment):
        env = deployment.env
        old_files = small_files(10, prefix="/old")
        write_dataset(deployment, "ds", old_files, chunk_size=8 * 1024)

        # Advance simulated time so the next batch lands in a later second.
        env.run(until=env.now + 10)
        cut_ts = int(env.now)
        new_files = small_files(10, prefix="/new")
        write_dataset(deployment, "ds", new_files, chunk_size=8 * 1024)

        # Simulate losing only the *recent* writes: delete new files' pairs.
        for path in new_files:
            deployment.kv.local_delete(meta.file_key("ds", path))

        def proc():
            n = yield from recovery.rebuild_dataset(
                deployment.server, "ds", from_timestamp=cut_ts
            )
            return n

        scanned = deployment.run(proc())
        assert scanned >= 1
        # Both old and new records now present.
        for path in list(old_files) + list(new_files):
            assert deployment.kv.local_get_or_none(meta.file_key("ds", path))

    def test_rescan_from_timestamp_skips_old_chunks(self, deployment):
        env = deployment.env
        write_dataset(deployment, "ds", small_files(10, prefix="/old"),
                      chunk_size=8 * 1024)
        n_old = len(deployment.store.list_keys())
        env.run(until=env.now + 10)
        cut_ts = int(env.now)
        write_dataset(deployment, "ds", small_files(10, prefix="/new"),
                      chunk_size=8 * 1024)
        n_total = len(deployment.store.list_keys())

        def proc():
            n = yield from recovery.rebuild_dataset(
                deployment.server, "ds", from_timestamp=cut_ts
            )
            return n

        scanned = deployment.run(proc())
        assert scanned == n_total - n_old


class TestDeletionPersistence:
    """Tombstones must survive a metadata rebuild (chunks stay
    self-contained, §4.1.1/§4.1.2)."""

    def test_deleted_file_not_resurrected_by_rebuild(self, deployment):
        files = small_files(10)
        write_dataset(deployment, "ds", files, chunk_size=1024 * 1024)
        victim = next(iter(files))

        def delete():
            yield from deployment.server.call(
                deployment.client_nodes[0], "delete_file", "ds", victim
            )

        deployment.run(delete())
        deployment.kv.lose_all()
        deployment.run(recovery.rebuild_dataset(deployment.server, "ds"))
        # The tombstone came back from the chunk header, not KV.
        assert deployment.kv.local_get_or_none(
            meta.file_key("ds", victim)
        ) is None
        dsrec = deployment.server.dataset_info("ds")
        crec = deployment.server._chunk_record("ds", dsrec.chunk_ids[0])
        assert crec.ndeleted == 1

    def test_survivors_still_readable_after_rebuild(self, deployment):
        files = small_files(6)
        write_dataset(deployment, "ds", files, chunk_size=1024 * 1024)
        victim, survivor = list(files)[:2]

        def delete():
            yield from deployment.server.call(
                deployment.client_nodes[0], "delete_file", "ds", victim
            )

        deployment.run(delete())
        deployment.kv.lose_all()
        deployment.run(recovery.rebuild_dataset(deployment.server, "ds"))

        def read(p):
            data = yield from deployment.server.call(
                deployment.client_nodes[0], "get_file", "ds", p
            )
            return data

        assert deployment.run(read(survivor)) == files[survivor]
        with pytest.raises(FileNotFoundInDatasetError):
            deployment.run(read(victim))


class TestVerifyRebuildNarrowing:
    """Regression: verify_rebuild must not swallow programming errors.

    The handlers around ``server._file_record`` / ``server.dataset_info``
    are narrowed to ``(ReproError, KeyError)`` — "the record is not
    there" — so a genuine bug (TypeError, AttributeError, ...) raised
    while checking a record propagates instead of being misreported as
    a missing record.
    """

    def test_missing_records_still_counted_as_problems(self, deployment):
        files = small_files(8)
        write_dataset(deployment, "ds", files, chunk_size=8 * 1024)
        expected = {p: len(b) for p, b in files.items()}
        expected["/img/never-written.jpg"] = 123
        problems = recovery.verify_rebuild(deployment.server, "ds", expected)
        assert problems == ["missing file record: /img/never-written.jpg"]

    def test_file_record_bug_propagates(self, deployment, monkeypatch):
        files = small_files(4)
        write_dataset(deployment, "ds", files, chunk_size=8 * 1024)

        def broken(dataset, path):
            raise TypeError("boom: a bug, not a missing record")

        monkeypatch.setattr(deployment.server, "_file_record", broken)
        with pytest.raises(TypeError):
            recovery.verify_rebuild(
                deployment.server, "ds", {next(iter(files)): 1}
            )

    def test_dataset_info_bug_propagates(self, deployment, monkeypatch):
        files = small_files(4)
        write_dataset(deployment, "ds", files, chunk_size=8 * 1024)

        def broken(dataset):
            raise AttributeError("boom: a bug, not a missing dataset")

        monkeypatch.setattr(deployment.server, "dataset_info", broken)
        with pytest.raises(AttributeError):
            recovery.verify_rebuild(deployment.server, "ds", {})
