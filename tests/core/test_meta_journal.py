"""Tests for the KV-backed per-dataset mutation journal."""

import pytest

from repro.core.meta_journal import (
    OP_APPEND,
    OP_CHUNK_ADD,
    OP_DELETE,
    JournalEntry,
    JournalOp,
    MetaJournal,
    journal_key,
    journal_meta_key,
)
from repro.errors import DieselError

from tests.kvstore.test_kv import build_cluster


def make_journal(horizon=8):
    _, _, kv, _ = build_cluster(n_instances=4)
    return kv, MetaJournal(kv, horizon)


def op(i):
    return JournalOp(OP_APPEND, f"/f{i}", b"payload")


class TestEntryCodec:
    def test_roundtrip(self):
        entry = JournalEntry(
            7,
            (
                JournalOp(OP_APPEND, "/a/b.jpg", b"\x00rec\xff"),
                JournalOp(OP_DELETE, "/old.jpg"),
                JournalOp(OP_CHUNK_ADD, "", b"\x01" * 12),
            ),
        )
        assert JournalEntry.decode(entry.encode()) == entry

    def test_unknown_kind_rejected(self):
        with pytest.raises(DieselError):
            JournalOp(99, "/x")


class TestRecording:
    def test_record_and_fetch_delta(self):
        _, j = make_journal()
        for ts in (1, 2, 3):
            assert j.record("ds", ts, [op(ts)]) == 2
        entries = j.entries_since("ds", 1)
        assert [e.ts for e in entries] == [2, 3]
        assert entries[0].ops[0].path == "/f2"

    def test_up_to_date_client_gets_empty_delta(self):
        _, j = make_journal()
        j.record("ds", 1, [op(1)])
        assert j.entries_since("ds", 1) == []
        assert j.entries_since("ds", 5) == []

    def test_never_journaled_dataset_forces_full_reload(self):
        _, j = make_journal()
        assert j.entries_since("ds", 0) is None

    def test_non_monotone_ts_rejected(self):
        _, j = make_journal()
        j.record("ds", 3, [op(3)])
        with pytest.raises(DieselError):
            j.record("ds", 3, [op(3)])
        with pytest.raises(DieselError):
            j.record("ds", 2, [op(2)])

    def test_empty_ops_record_nothing(self):
        kv, j = make_journal()
        assert j.record("ds", 1, []) == 0
        assert kv.local_get_or_none(journal_meta_key("ds")) is None

    def test_horizon_zero_disables_journaling(self):
        kv, j = make_journal(horizon=0)
        assert j.record("ds", 1, [op(1)]) == 0
        assert j.entries_since("ds", 0) is None
        assert kv.local_pscan("jr:") == []

    def test_datasets_are_independent(self):
        _, j = make_journal()
        j.record("a", 1, [op(1)])
        j.record("b", 1, [JournalOp(OP_DELETE, "/other")])
        assert j.entries_since("a", 0)[0].ops[0].kind == OP_APPEND
        assert j.entries_since("b", 0)[0].ops[0].kind == OP_DELETE


class TestCompaction:
    def test_depth_capped_at_horizon(self):
        _, j = make_journal(horizon=4)
        for ts in range(1, 11):
            j.record("ds", ts, [op(ts)])
        assert j.depth("ds") == 4
        assert j.span("ds") == (7, 10)

    def test_compacted_keys_are_deleted_from_kv(self):
        kv, j = make_journal(horizon=2)
        for ts in range(1, 6):
            j.record("ds", ts, [op(ts)])
        assert kv.local_get_or_none(journal_key("ds", 1)) is None
        assert kv.local_get_or_none(journal_key("ds", 3)) is None
        assert kv.local_get_or_none(journal_key("ds", 4)) is not None

    def test_client_past_horizon_falls_back(self):
        _, j = make_journal(horizon=3)
        for ts in range(1, 9):  # retained: 6, 7, 8
            j.record("ds", ts, [op(ts)])
        assert j.entries_since("ds", 4) is None  # needs 5: compacted
        within = j.entries_since("ds", 5)  # needs 6..8: all retained
        assert [e.ts for e in within] == [6, 7, 8]

    def test_hole_forces_full_reload(self):
        kv, j = make_journal()
        for ts in (1, 2, 3):
            j.record("ds", ts, [op(ts)])
        kv.local_delete(journal_key("ds", 2))
        assert j.entries_since("ds", 1) is None


class TestLifecycle:
    def test_drop_removes_everything(self):
        kv, j = make_journal()
        for ts in (1, 2):
            j.record("ds", ts, [op(ts)])
        assert j.drop("ds") == 2
        assert kv.local_pscan("jr:ds:") == []
        assert kv.local_get_or_none(journal_meta_key("ds")) is None
        assert j.drop("ds") == 0

    def test_reset_sweeps_orphans_drop_would_miss(self):
        kv, j = make_journal()
        for ts in (1, 2, 3):
            j.record("ds", ts, [op(ts)])
        # Simulate a shard loss that took the meta record with it.
        kv.local_delete(journal_meta_key("ds"))
        assert j.drop("ds") == 0  # meta gone: drop can't see the entries
        assert j.reset("ds") == 3  # prefix sweep still finds them
        assert kv.local_pscan("jr:ds:") == []
        assert j.depth("ds") == 0
