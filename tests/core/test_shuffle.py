"""Tests for chunk-wise shuffle (§4.3, Fig 8) and its invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shuffle import (
    EpochPlan,
    chunk_adjacency,
    chunkwise_shuffle,
    full_shuffle,
    shuffle_quality,
)
from repro.util.ids import ChunkIdGenerator

GEN = ChunkIdGenerator(machine=b"\x05" * 6, pid=5)


def make_dataset(n_chunks=10, files_per_chunk=8):
    return {
        cid: [f"/c{ci:03d}/f{fi}" for fi in range(files_per_chunk)]
        for ci, cid in enumerate(GEN.take(n_chunks))
    }


class TestFullShuffle:
    def test_is_permutation(self):
        paths = [f"/f{i}" for i in range(100)]
        order = full_shuffle(paths, random.Random(0))
        assert sorted(order) == sorted(paths)
        assert order != paths  # overwhelmingly likely with 100 items

    def test_seed_determinism(self):
        paths = [f"/f{i}" for i in range(50)]
        assert full_shuffle(paths, random.Random(7)) == full_shuffle(
            paths, random.Random(7)
        )


class TestChunkwiseShuffle:
    def test_is_permutation_of_all_files(self):
        data = make_dataset()
        plan = chunkwise_shuffle(data, group_size=3, rng=random.Random(0))
        all_files = [f for files in data.values() for f in files]
        assert sorted(plan.files) == sorted(all_files)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 12),
        st.integers(1, 10),
        st.integers(1, 15),
        st.integers(0, 10_000),
    )
    def test_permutation_property(self, n_chunks, files_per_chunk, group_size, seed):
        data = make_dataset(n_chunks, files_per_chunk)
        plan = chunkwise_shuffle(data, group_size, random.Random(seed))
        assert sorted(plan.files) == sorted(
            f for files in data.values() for f in files
        )

    def test_files_stay_within_their_chunks_group(self):
        """The locality invariant that makes chunk-wise reads possible."""
        data = make_dataset(n_chunks=12, files_per_chunk=5)
        plan = chunkwise_shuffle(data, group_size=4, rng=random.Random(1))
        chunk_of = {f: cid for cid, files in data.items() for f in files}
        for group in plan.groups:
            allowed = set(group.chunk_ids)
            for f in group.files:
                assert chunk_of[f] in allowed

    def test_group_sizes(self):
        data = make_dataset(n_chunks=10)
        plan = chunkwise_shuffle(data, group_size=4, rng=random.Random(2))
        sizes = [len(g.chunk_ids) for g in plan.groups]
        assert sizes == [4, 4, 2]

    def test_epochs_differ(self):
        data = make_dataset()
        p1 = chunkwise_shuffle(data, 3, random.Random(1)).files
        p2 = chunkwise_shuffle(data, 3, random.Random(2)).files
        assert p1 != p2

    def test_deterministic_for_seed(self):
        data = make_dataset()
        p1 = chunkwise_shuffle(data, 3, random.Random(9)).files
        p2 = chunkwise_shuffle(data, 3, random.Random(9)).files
        assert p1 == p2

    def test_empty_chunks_skipped(self):
        data = make_dataset(n_chunks=3)
        empty_cid = GEN.next()
        data[empty_cid] = []
        plan = chunkwise_shuffle(data, 2, random.Random(0))
        for g in plan.groups:
            assert empty_cid not in g.chunk_ids

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            chunkwise_shuffle(make_dataset(), 0, random.Random(0))

    def test_group_size_one_still_shuffles_within_chunk(self):
        data = make_dataset(n_chunks=1, files_per_chunk=50)
        plan = chunkwise_shuffle(data, 1, random.Random(3))
        original = list(data.values())[0]
        assert sorted(plan.files) == sorted(original)
        assert plan.files != original

    def test_empty_dataset(self):
        plan = chunkwise_shuffle({}, 5, random.Random(0))
        assert plan.files == []
        assert plan.file_count == 0


class TestEpochPlan:
    def test_group_of(self):
        data = make_dataset(n_chunks=4, files_per_chunk=5)
        plan = chunkwise_shuffle(data, 2, random.Random(0))
        assert plan.group_of(0) == 0
        assert plan.group_of(9) == 0
        assert plan.group_of(10) == 1
        with pytest.raises(IndexError):
            plan.group_of(20)
        with pytest.raises(IndexError):
            plan.group_of(-1)

    def test_memory_bound(self):
        """Peak working set ≤ group_size × max chunk size (§4.3)."""
        data = make_dataset(n_chunks=20, files_per_chunk=3)
        chunk_sizes = {cid: 4_000_000 for cid in data}
        for group_size in (1, 5, 10):
            plan = chunkwise_shuffle(data, group_size, random.Random(0))
            peak = plan.peak_working_set_bytes(chunk_sizes)
            assert peak <= group_size * 4_000_000

    def test_file_count(self):
        data = make_dataset(n_chunks=6, files_per_chunk=7)
        plan = chunkwise_shuffle(data, 2, random.Random(0))
        assert plan.file_count == 42


class TestEpochPlanRepin:
    def owners(self, data, mapping):
        cids = sorted(data)
        table = {cid: mapping.get(i) for i, cid in enumerate(cids)}
        return lambda cid: table.get(cid)

    def test_repin_retags_without_reordering(self):
        data = make_dataset(n_chunks=6, files_per_chunk=4)
        plan = chunkwise_shuffle(
            data, 2, random.Random(0),
            owner_of=self.owners(data, {i: "old" for i in range(6)}),
        )
        assert all(g.owner == "old" for g in plan.groups)
        new = plan.repin(self.owners(data, {i: "new" for i in range(6)}))
        # Read order is committed: same files, same groups — only tags.
        assert new.files == plan.files
        assert [g.chunk_ids for g in new.groups] == [
            g.chunk_ids for g in plan.groups
        ]
        assert all(g.owner == "new" for g in new.groups)

    def test_unchanged_groups_are_reused(self):
        data = make_dataset(n_chunks=4, files_per_chunk=3)
        same = self.owners(data, {i: "m0" for i in range(4)})
        plan = chunkwise_shuffle(data, 2, random.Random(0), owner_of=same)
        new = plan.repin(same)
        assert all(a is b for a, b in zip(new.groups, plan.groups))

    def test_majority_owner_wins(self):
        data = make_dataset(n_chunks=3, files_per_chunk=2)
        plan = chunkwise_shuffle(data, 3, random.Random(0))
        (group,) = plan.groups
        table = {
            group.chunk_ids[0]: "a",
            group.chunk_ids[1]: "b",
            group.chunk_ids[2]: "b",
        }
        new = plan.repin(lambda cid: table[cid])
        assert new.groups[0].owner == "b"

    def test_unknown_ownership_tags_none(self):
        data = make_dataset(n_chunks=2, files_per_chunk=2)
        plan = chunkwise_shuffle(
            data, 2, random.Random(0),
            owner_of=self.owners(data, {0: "m0", 1: "m0"}),
        )
        new = plan.repin(lambda cid: None)
        assert all(g.owner is None for g in new.groups)


class TestShuffleQuality:
    def test_sequential_order_scores_low(self):
        data = make_dataset(n_chunks=10, files_per_chunk=10)
        sequential = [f for cid in sorted(data) for f in data[cid]]
        assert shuffle_quality(sequential, data) == 0.0

    def test_full_shuffle_scores_near_one(self):
        data = make_dataset(n_chunks=20, files_per_chunk=20)
        paths = [f for files in data.values() for f in files]
        order = full_shuffle(paths, random.Random(0))
        assert shuffle_quality(order, data) > 0.7

    def test_even_smallest_groups_scatter_globally(self):
        """Chunk-order shuffling alone already spreads files dataset-wide."""
        data = make_dataset(n_chunks=40, files_per_chunk=10)
        q1 = shuffle_quality(
            chunkwise_shuffle(data, 1, random.Random(0)).files, data
        )
        assert q1 > 0.7


class TestChunkAdjacency:
    def test_sequential_is_maximal(self):
        data = make_dataset(n_chunks=10, files_per_chunk=10)
        sequential = [f for cid in sorted(data) for f in data[cid]]
        assert chunk_adjacency(sequential, data) > 0.85

    def test_full_shuffle_is_minimal(self):
        data = make_dataset(n_chunks=20, files_per_chunk=10)
        paths = [f for files in data.values() for f in files]
        order = full_shuffle(paths, random.Random(0))
        assert chunk_adjacency(order, data) < 0.15

    def test_mixing_grows_with_group_size(self):
        """Larger groups → less same-chunk adjacency (Fig 13 tradeoff knob)."""
        data = make_dataset(n_chunks=40, files_per_chunk=10)
        adj = {
            g: chunk_adjacency(
                chunkwise_shuffle(data, g, random.Random(0)).files, data
            )
            for g in (1, 10, 40)
        }
        assert adj[1] > adj[10] > adj[40]
        # group g keeps ~1/g same-chunk adjacency
        assert adj[1] == pytest.approx(0.9, abs=0.1)
        assert adj[10] == pytest.approx(0.1, abs=0.07)

    def test_short_orders(self):
        data = make_dataset(n_chunks=1, files_per_chunk=1)
        assert chunk_adjacency(list(data.values())[0], data) == 0.0


class TestMemoizedFiles:
    def test_files_built_once(self):
        data = make_dataset(n_chunks=5)
        plan = chunkwise_shuffle(data, 2, random.Random(0))
        assert plan.files is plan.files  # cached_property: same object

    def test_memoized_list_matches_groups(self):
        data = make_dataset(n_chunks=5)
        plan = chunkwise_shuffle(data, 2, random.Random(0))
        assert plan.files == [f for g in plan.groups for f in g.files]


class TestOwnerBucketedShuffle:
    def owner_of(self, cid):
        # Deterministic 2-node ownership by chunk id parity.
        return f"node{int(cid.encode()[-1], 32) % 2}"

    def test_groups_are_single_owner(self):
        data = make_dataset(n_chunks=12, files_per_chunk=4)
        plan = chunkwise_shuffle(data, 3, random.Random(0),
                                 owner_of=self.owner_of)
        for g in plan.groups:
            owners = {self.owner_of(c) for c in g.chunk_ids}
            assert owners == {g.owner}

    def test_still_a_permutation(self):
        data = make_dataset(n_chunks=12, files_per_chunk=4)
        plan = chunkwise_shuffle(data, 3, random.Random(0),
                                 owner_of=self.owner_of)
        assert sorted(plan.files) == sorted(
            f for files in data.values() for f in files
        )

    def test_unknown_owner_groups_carry_none(self):
        data = make_dataset(n_chunks=6, files_per_chunk=2)
        plan = chunkwise_shuffle(data, 2, random.Random(0),
                                 owner_of=lambda cid: None)
        assert all(g.owner is None for g in plan.groups)

    def test_without_owner_hook_groups_have_no_owner(self):
        data = make_dataset(n_chunks=6, files_per_chunk=2)
        plan = chunkwise_shuffle(data, 2, random.Random(0))
        assert all(g.owner is None for g in plan.groups)

    def test_epochs_differ_under_bucketing(self):
        data = make_dataset(n_chunks=12, files_per_chunk=4)
        p1 = chunkwise_shuffle(data, 3, random.Random(1),
                               owner_of=self.owner_of).files
        p2 = chunkwise_shuffle(data, 3, random.Random(2),
                               owner_of=self.owner_of).files
        assert p1 != p2


class TestPartition:
    def test_affinity_pins_owned_groups(self):
        owner_of = TestOwnerBucketedShuffle().owner_of
        data = make_dataset(n_chunks=12, files_per_chunk=4)
        plan = chunkwise_shuffle(data, 3, random.Random(0), owner_of=owner_of)
        affinity = {"node0": 0, "node1": 1}
        shards = plan.partition(2, random.Random(0), affinity=affinity)
        for w, shard in enumerate(shards):
            for g in shard.groups:
                assert affinity[g.owner] == w

    def test_partition_is_a_partition(self):
        data = make_dataset(n_chunks=10, files_per_chunk=5)
        plan = chunkwise_shuffle(data, 2, random.Random(0))
        shards = plan.partition(3, random.Random(0))
        spread = [f for s in shards for f in s.files]
        assert sorted(spread) == sorted(plan.files)

    def test_unowned_groups_deal_least_loaded(self):
        data = make_dataset(n_chunks=9, files_per_chunk=4)
        plan = chunkwise_shuffle(data, 1, random.Random(0))
        shards = plan.partition(3, random.Random(0))
        counts = sorted(s.file_count for s in shards)
        assert counts[-1] - counts[0] <= 4  # one group's worth

    def test_shard_order_permuted_per_rng(self):
        data = make_dataset(n_chunks=30, files_per_chunk=4)
        plan = chunkwise_shuffle(data, 1, random.Random(0))
        s1 = plan.partition(2, random.Random(1))[0].files
        s2 = plan.partition(2, random.Random(2))[0].files
        assert sorted(s1) == sorted(s2)
        assert s1 != s2

    def test_validation(self):
        plan = chunkwise_shuffle(make_dataset(), 2, random.Random(0))
        with pytest.raises(ValueError):
            plan.partition(0, random.Random(0))
