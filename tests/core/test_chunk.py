"""Tests for the self-contained chunk format (Fig 5a)."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunk import Chunk, ChunkFile
from repro.errors import ChunkChecksumError, ChunkFormatError
from repro.util.bitmap import Bitmap
from repro.util.ids import ChunkId, ChunkIdGenerator

GEN = ChunkIdGenerator(machine=b"\x01" * 6, pid=7)


def make_chunk(items=None):
    items = items or [("/a/x", b"xxxx"), ("/a/y", b"yy"), ("/b/z", b"zzzzzz")]
    return Chunk.build(GEN.next(), items)


class TestBuild:
    def test_paths_and_payloads(self):
        c = make_chunk()
        assert c.paths == ("/a/x", "/a/y", "/b/z")
        assert c.payload("/a/x") == b"xxxx"
        assert c.payload("/b/z") == b"zzzzzz"
        assert len(c) == 3
        assert "/a/y" in c

    def test_offsets_are_contiguous(self):
        c = make_chunk()
        assert [f.offset for f in c.files] == [0, 4, 6]
        assert c.data_size == 12

    def test_empty_chunk_rejected(self):
        with pytest.raises(ChunkFormatError):
            Chunk.build(GEN.next(), [])

    def test_duplicate_paths_rejected(self):
        with pytest.raises(ChunkFormatError):
            Chunk.build(GEN.next(), [("/a", b"1"), ("/a", b"2")])

    def test_paths_normalized(self):
        c = Chunk.build(GEN.next(), [("a//b/./c", b"1")])
        assert c.paths == ("/a/b/c",)

    def test_empty_payload_allowed(self):
        c = Chunk.build(GEN.next(), [("/empty", b"")])
        assert c.payload("/empty") == b""

    def test_missing_path_raises(self):
        c = make_chunk()
        with pytest.raises(ChunkFormatError):
            c.payload("/nope")

    def test_entry_crc_matches_payload(self):
        c = make_chunk()
        for f in c.files:
            assert f.crc32 == zlib.crc32(c.payload(f.path))


class TestCodec:
    def test_roundtrip(self):
        c = make_chunk()
        restored = Chunk.decode(c.encode())
        assert restored.chunk_id == c.chunk_id
        assert restored.paths == c.paths
        for p in c.paths:
            assert restored.payload(p) == c.payload(p)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.text(
                    alphabet=st.characters(
                        blacklist_characters="/", blacklist_categories=("Cs",)
                    ),
                    min_size=1,
                    max_size=12,
                ).filter(lambda s: s not in (".", "..")),
                st.binary(max_size=256),
            ),
            min_size=1,
            max_size=10,
            unique_by=lambda t: t[0],
        )
    )
    def test_roundtrip_property(self, items):
        items = [(f"/d/{name}", data) for name, data in items]
        c = Chunk.build(GEN.next(), items)
        restored = Chunk.decode(c.encode())
        assert restored.paths == c.paths
        for path, data in items:
            assert restored.payload(path) == data

    def test_header_only_decode(self):
        c = make_chunk()
        blob = c.encode()
        shell, data_offset = Chunk.decode_header(blob)
        assert shell.chunk_id == c.chunk_id
        assert shell.paths == c.paths
        assert blob[data_offset:] == c.data

    def test_bad_magic(self):
        blob = b"XXXX" + make_chunk().encode()[4:]
        with pytest.raises(ChunkFormatError):
            Chunk.decode(blob)

    def test_truncated(self):
        blob = make_chunk().encode()
        with pytest.raises(ChunkFormatError):
            Chunk.decode_header(blob[:10])

    def test_header_corruption_detected(self):
        blob = bytearray(make_chunk().encode())
        blob[25] ^= 0xFF  # flip a byte inside the file table
        with pytest.raises((ChunkChecksumError, ChunkFormatError)):
            Chunk.decode(bytes(blob))

    def test_payload_corruption_detected(self):
        c = make_chunk()
        blob = bytearray(c.encode())
        blob[-1] ^= 0xFF  # corrupt the last payload byte
        restored = Chunk.decode(bytes(blob))
        with pytest.raises(ChunkChecksumError):
            restored.payload("/b/z")
        # verify=False skips the check (used on trusted in-memory copies)
        assert restored.payload("/b/z", verify=False) != c.payload("/b/z")


class TestDeletion:
    def test_fresh_chunk_nothing_deleted(self):
        c = make_chunk()
        assert c.deleted_count == 0
        assert not c.is_deleted("/a/x")
        assert len(c.live_files()) == 3

    def test_bitmap_marks_deleted(self):
        c = make_chunk()
        bm = Bitmap(3)
        bm.set(1)
        c2 = Chunk(c.chunk_id, c.files, c.data, bm)
        assert c2.is_deleted("/a/y")
        assert [f.path for f in c2.live_files()] == ["/a/x", "/b/z"]
        assert c2.deleted_count == 1
        assert c2.live_bytes() == 10

    def test_bitmap_roundtrips_through_codec(self):
        c = make_chunk()
        bm = Bitmap(3)
        bm.set(0)
        c2 = Chunk(c.chunk_id, c.files, c.data, bm)
        restored = Chunk.decode(c2.encode())
        assert restored.is_deleted("/a/x")

    def test_bitmap_size_mismatch_rejected(self):
        c = make_chunk()
        with pytest.raises(ChunkFormatError):
            Chunk(c.chunk_id, c.files, c.data, Bitmap(2))


class TestValidation:
    def test_negative_entry_rejected(self):
        with pytest.raises(ChunkFormatError):
            ChunkFile("/a", -1, 4, 0)

    def test_entry_past_data_rejected(self):
        cid = GEN.next()
        with pytest.raises(ChunkFormatError):
            Chunk(cid, [ChunkFile("/a", 0, 100, 0)], b"short")

    def test_self_contained_for_recovery(self):
        """Everything recovery needs is in the encoded header."""
        items = [(f"/ds/f{i}", bytes([i]) * (i + 1)) for i in range(5)]
        c = Chunk.build(GEN.next(), items)
        shell, _ = Chunk.decode_header(c.encode())
        # chunk id, full paths, offsets, lengths, checksums all present
        assert shell.chunk_id == c.chunk_id
        assert shell.paths == tuple(p for p, _ in items)
        for a, b in zip(shell.files, c.files):
            assert (a.offset, a.length, a.crc32) == (b.offset, b.length, b.crc32)
