"""Unit tests for the pluggable chunk stores (RAM + tiered NVMe)."""

import pytest

from repro.cluster import Node
from repro.core.chunk import Chunk
from repro.core.chunk_store import (
    MAX_COMPRESSION_RATIO,
    MIN_COMPRESSION_RATIO,
    RamStore,
    TieredStore,
    compression_ratio,
    make_spec,
    make_store,
)
from repro.sim import Environment

CHUNK = 64 * 1024


def make_chunk(key="c0", size=CHUNK):
    return Chunk.build(key, [(f"{key}/payload.bin", b"x" * (size - 256))])


def rig(memory_bytes=4 * CHUNK, scheduler="calendar", **spec_kw):
    env = Environment(scheduler=scheduler)
    node = Node(env, "n0", memory_bytes=memory_bytes)
    spec = make_spec(**spec_kw) if spec_kw else None
    store = make_store(env, node, spec)
    return env, node, store


def run(env, gen):
    proc = env.process(gen)
    return env.run(until=proc)


class TestSpecAndFactory:
    def test_defaults_build_a_ram_store(self):
        env, node, store = rig()
        assert isinstance(store, RamStore)
        assert not isinstance(store, TieredStore)
        assert store.kind == "ram"

    def test_tiered_spec_builds_a_tiered_store(self):
        env, node, store = rig(
            cache_store="tiered", disk_tier_bytes=10 * CHUNK
        )
        assert isinstance(store, TieredStore)
        assert store.kind == "tiered"
        assert store.capacity_bytes == 10 * CHUNK

    @pytest.mark.parametrize(
        "kw",
        [
            {"cache_store": "ssd"},
            {"disk_tier_bytes": -1},
            {"disk_latency_s": -0.1},
            {"disk_bandwidth_bps": 0},
        ],
    )
    def test_invalid_spec_is_rejected(self, kw):
        with pytest.raises(ValueError):
            make_spec(**kw)

    def test_unknown_kind_in_spec_dict_is_rejected(self):
        env = Environment()
        node = Node(env, "n0")
        with pytest.raises(ValueError):
            make_store(env, node, {"kind": "tape"})


class TestCompressionRatio:
    def test_deterministic_and_in_band(self):
        for key in ("ds/c0", "ds/c1", "another"):
            r1 = compression_ratio(key, seed=7)
            r2 = compression_ratio(key, seed=7)
            assert r1 == r2
            assert MIN_COMPRESSION_RATIO <= r1 <= MAX_COMPRESSION_RATIO

    def test_varies_across_keys_and_seeds(self):
        ratios = {compression_ratio(f"ds/c{i}") for i in range(32)}
        assert len(ratios) > 16
        assert compression_ratio("ds/c0", seed=0) != compression_ratio(
            "ds/c0", seed=1
        )


class TestRamStore:
    def test_put_get_and_memory_accounting(self):
        env, node, store = rig(memory_bytes=2 * CHUNK)
        chunk = make_chunk("c0")
        assert run(env, store.put("c0", chunk, CHUNK)) == "ram"
        assert node.memory.level == CHUNK
        got = store.get("c0")
        assert got is not None and got[0] is chunk
        assert store.tier_of("c0") == "ram"
        assert store.stats.ram_hits == 1
        assert store.stats.ram_bytes == CHUNK

    def test_put_refuses_when_memory_is_short(self):
        env, node, store = rig(memory_bytes=CHUNK // 2)
        assert run(env, store.put("c0", make_chunk(), CHUNK)) is None
        assert store.count == 0

    def test_get_refreshes_lru_order(self):
        env, node, store = rig(memory_bytes=4 * CHUNK)
        for cid in ("c0", "c1", "c2"):
            run(env, store.put(cid, make_chunk(cid), CHUNK))
        assert store.ram_lru() == ["c0", "c1", "c2"]
        store.get("c0")
        assert store.ram_lru() == ["c1", "c2", "c0"]
        store.touch("c1")
        assert store.ram_lru() == ["c2", "c0", "c1"]

    def test_drop_returns_memory_but_crash_does_not(self):
        env, node, store = rig(memory_bytes=2 * CHUNK)
        run(env, store.put("c0", make_chunk("c0"), CHUNK))
        run(env, store.put("c1", make_chunk("c1"), CHUNK))
        store.drop("c0")
        assert node.memory.level == CHUNK
        assert store.crash() == 1
        assert store.count == 0
        # The container died with the node: no memory handed back.
        assert node.memory.level == CHUNK

    def test_displace_evicts(self):
        env, node, store = rig(memory_bytes=2 * CHUNK)
        run(env, store.put("c0", make_chunk("c0"), CHUNK))
        assert run(env, store.displace("c0")) == "evicted"
        assert store.tier_of("c0") is None
        assert node.memory.level == 2 * CHUNK


class TestTieredStore:
    def test_admission_overflows_to_disk(self):
        env, node, store = rig(memory_bytes=CHUNK, cache_store="tiered")
        assert run(env, store.put("c0", make_chunk("c0"), CHUNK)) == "ram"
        t0 = env.now
        assert run(env, store.put("c1", make_chunk("c1"), CHUNK)) == "disk"
        assert env.now > t0  # the device write charged simulated time
        assert store.tier_of("c1") == "disk"
        assert store.stats.disk_admits == 1
        assert store.stats.disk_bytes == CHUNK

    def test_load_promotes_when_memory_allows(self):
        env, node, store = rig(memory_bytes=CHUNK, cache_store="tiered")
        run(env, store.put("c0", make_chunk("c0"), CHUNK))
        run(env, store.put("c1", make_chunk("c1"), CHUNK))
        store.drop("c0")  # free RAM
        got = run(env, store.load("c1"))
        assert got is not None and got[1] == CHUNK
        assert store.tier_of("c1") == "ram"
        assert store.stats.promotions == 1
        assert store.stats.disk_hits == 1
        assert store.stats.bytes_promoted == CHUNK

    def test_load_reads_through_when_memory_is_full(self):
        env, node, store = rig(memory_bytes=CHUNK, cache_store="tiered")
        run(env, store.put("c0", make_chunk("c0"), CHUNK))
        run(env, store.put("c1", make_chunk("c1"), CHUNK))
        got = run(env, store.load("c1"))
        assert got is not None
        # RAM is full: the read streams through without displacing c0.
        assert store.tier_of("c1") == "disk"
        assert store.tier_of("c0") == "ram"
        assert store.stats.promotions == 0
        assert store.stats.disk_hits == 1

    def test_displace_demotes_and_returns_memory(self):
        env, node, store = rig(memory_bytes=CHUNK, cache_store="tiered")
        run(env, store.put("c0", make_chunk("c0"), CHUNK))
        assert run(env, store.displace("c0")) == "disk"
        assert store.tier_of("c0") == "disk"
        assert node.memory.level == CHUNK
        assert store.stats.demotions == 1
        assert store.stats.bytes_demoted == CHUNK

    def test_displace_evicts_when_disk_cannot_fit(self):
        env, node, store = rig(
            memory_bytes=CHUNK, cache_store="tiered",
            disk_tier_bytes=CHUNK // 2,
        )
        run(env, store.put("c0", make_chunk("c0"), CHUNK))
        assert run(env, store.displace("c0")) == "evicted"
        assert store.tier_of("c0") is None

    def test_disk_capacity_evicts_lru_and_notifies_owner(self):
        evicted = []
        env = Environment()
        node = Node(env, "n0", memory_bytes=CHUNK)
        store = make_store(
            env, node,
            make_spec(cache_store="tiered", disk_tier_bytes=2 * CHUNK),
            on_evict=evicted.append,
        )
        run(env, store.put("hold", make_chunk("hold"), CHUNK))  # fills RAM
        for cid in ("d0", "d1", "d2"):
            assert run(env, store.put(cid, make_chunk(cid), CHUNK)) == "disk"
        assert evicted == ["d0"]
        assert store.stats.disk_evictions == 1
        assert store.tier_of("d0") is None
        assert store.tier_of("d1") == "disk"
        assert store.stats.disk_stored_bytes == 2 * CHUNK

    def test_evictable_predicate_protects_disk_chunks(self):
        env, node, store = rig(
            memory_bytes=CHUNK, cache_store="tiered",
            disk_tier_bytes=CHUNK,
        )
        run(env, store.put("hold", make_chunk("hold"), CHUNK))
        assert run(env, store.put("d0", make_chunk("d0"), CHUNK)) == "disk"
        # d0 is pinned: the next disk admission has no victim and fails.
        tier = run(
            env, store.put("d1", make_chunk("d1"), CHUNK, lambda k: False)
        )
        assert tier is None
        assert store.tier_of("d0") == "disk"

    def test_compression_shrinks_stored_bytes_deterministically(self):
        env, node, store = rig(
            memory_bytes=CHUNK, cache_store="tiered",
            chunk_compression=True,
        )
        run(env, store.put("hold", make_chunk("hold"), CHUNK))
        run(env, store.put("d0", make_chunk("d0"), CHUNK))
        stored = store.stats.disk_stored_bytes
        assert stored < CHUNK
        assert stored == store.stored_size("d0", CHUNK)
        assert store.stats.compress_ops == 1
        # A second rig with the same seed stores the exact same bytes.
        env2, node2, store2 = rig(
            memory_bytes=CHUNK, cache_store="tiered",
            chunk_compression=True,
        )
        run(env2, store2.put("hold", make_chunk("hold"), CHUNK))
        run(env2, store2.put("d0", make_chunk("d0"), CHUNK))
        assert store2.stats.disk_stored_bytes == stored

    def test_crash_loses_ram_but_disk_survives(self):
        env, node, store = rig(memory_bytes=CHUNK, cache_store="tiered")
        run(env, store.put("c0", make_chunk("c0"), CHUNK))
        run(env, store.put("c1", make_chunk("c1"), CHUNK))
        assert store.crash() == 1
        assert store.tier_of("c0") is None
        assert store.tier_of("c1") == "disk"
        assert store.count == 1

    def test_concurrent_loads_single_flight_the_promotion(self):
        env, node, store = rig(memory_bytes=CHUNK, cache_store="tiered")
        run(env, store.put("c0", make_chunk("c0"), CHUNK))
        run(env, store.put("c1", make_chunk("c1"), CHUNK))
        store.drop("c0")
        results = []

        def reader():
            got = yield from store.load("c1")
            results.append(got)

        p1 = env.process(reader())
        p2 = env.process(reader())
        env.run(until=env.all_of([p1, p2]))
        assert len(results) == 2
        assert results[0][0] is results[1][0]
        # One promotion, not two racing byte accountings.
        assert store.stats.promotions == 1
        assert store.stats.disk_hits == 1
        assert store.tier_of("c1") == "ram"

    def test_displace_during_inflight_promote_waits_and_reports_ram(self):
        env, node, store = rig(memory_bytes=CHUNK, cache_store="tiered")
        run(env, store.put("c0", make_chunk("c0"), CHUNK))
        run(env, store.put("c1", make_chunk("c1"), CHUNK))
        store.drop("c0")
        outcome = {}

        def promoter():
            got = yield from store.load("c1")
            outcome["load"] = got

        def demoter():
            # Starts while the promote's device read is in flight.
            tier = yield from store.displace("c1")
            outcome["displace"] = tier

        p1 = env.process(promoter())
        p2 = env.process(demoter())
        env.run(until=env.all_of([p1, p2]))
        assert outcome["load"] is not None
        # The racer waited for the move to settle instead of demoting.
        assert outcome["displace"] == "ram"
        assert store.stats.demotions == 0
        assert store.tier_of("c1") == "ram"

    @pytest.mark.parametrize("compression", [False, True])
    def test_identical_timeline_across_schedulers(self, compression):
        """Compression round-trip determinism across scheduler variants."""

        def episode(scheduler):
            env, node, store = rig(
                memory_bytes=2 * CHUNK, scheduler=scheduler,
                cache_store="tiered", disk_tier_bytes=8 * CHUNK,
                chunk_compression=compression,
            )
            for cid in ("c0", "c1", "c2", "c3"):
                run(env, store.put(cid, make_chunk(cid), CHUNK))
            run(env, store.displace("c0"))
            got = run(env, store.load("c2"))
            payload = bytes(got[0].payload(got[0].paths[0]))
            s = store.stats
            return (env.now, payload, s.disk_stored_bytes, s.to_dict())

        a = episode("calendar")
        b = episode("heap")
        assert a == b
