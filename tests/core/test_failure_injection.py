"""Failure injection across the whole stack.

Complements the dist-cache failure tests with failures deeper in the
system: storage devices dying mid-operation, KV shards dropping during
client workloads, and servers dying with requests in flight — verifying
both that errors surface as typed exceptions and that snapshot-backed
metadata keeps working when everything remote is gone.
"""

import pytest

from repro.errors import (
    FileNotFoundInDatasetError,
    NodeDownError,
    ShardUnavailableError,
)

from tests.core.conftest import build_deployment, small_files, write_dataset


def loaded_client(deployment, files):
    client = write_dataset(deployment, "ds", files)

    def load():
        blob = yield from client.save_meta()
        yield from client.load_meta(blob)

    deployment.run(load())
    return client


class TestDeviceFailures:
    def test_device_death_mid_read_raises(self, deployment):
        files = small_files(8, size=64 * 1024)
        client = loaded_client(deployment, files)
        env = deployment.env

        def reader():
            for path in files:
                yield from client.get(path)

        def killer():
            yield env.timeout(1e-5)  # mid-way through the first reads
            deployment.store.device.fail()

        p = env.process(reader())
        env.process(killer())
        with pytest.raises(NodeDownError):
            env.run(until=p)

    def test_device_restore_allows_reads_again(self, deployment):
        files = small_files(4)
        client = loaded_client(deployment, files)
        deployment.store.device.fail()
        deployment.store.device.restore()

        def proc():
            data = yield from client.get(next(iter(files)))
            return data

        assert deployment.run(proc()) == next(iter(files.values()))


class TestKvFailures:
    def test_shard_node_death_breaks_remote_metadata(self, deployment):
        files = small_files(6)
        write_dataset(deployment, "ds", files)
        client = deployment.new_client("ds")  # no snapshot: server path
        # Kill every KV node so any remote metadata lookup must fail.
        for inst in deployment.kv.instances:
            if inst.node.alive:
                inst.node.kill()

        def proc():
            yield from client.stat(next(iter(files)))

        with pytest.raises((ShardUnavailableError, NodeDownError)):
            deployment.run(proc())

    def test_snapshot_metadata_survives_total_kv_loss(self, deployment):
        """§4.1.3's point: snapshot clients never touch the KV cluster."""
        files = small_files(6)
        client = loaded_client(deployment, files)
        for inst in deployment.kv.instances:
            if inst.node.alive:
                inst.node.kill()

        def proc():
            infos = []
            for path in files:
                info = yield from client.stat(path)
                infos.append(info)
            listing = yield from client.ls("/img")
            return infos, listing

        infos, listing = deployment.run(proc())
        assert len(infos) == 6
        assert listing == ["/img/class0", "/img/class1", "/img/class2",
                           "/img/class3"]

    def test_kv_data_loss_then_reads_fail_cleanly(self, deployment):
        files = small_files(4)
        write_dataset(deployment, "ds", files)
        client = deployment.new_client("ds")
        deployment.kv.lose_all()

        def proc():
            yield from client.get(next(iter(files)))

        with pytest.raises(FileNotFoundInDatasetError):
            deployment.run(proc())


class TestServerFailures:
    def test_server_death_mid_request(self, deployment):
        files = small_files(8, size=256 * 1024)
        client = loaded_client(deployment, files)
        env = deployment.env

        def reader():
            for path in files:
                yield from client.get(path)

        def killer():
            yield env.timeout(1e-4)
            deployment.server.node.kill()

        p = env.process(reader())
        env.process(killer())
        with pytest.raises(NodeDownError):
            env.run(until=p)

    def test_surviving_server_keeps_serving(self):
        dep = build_deployment(n_servers=2)
        files = small_files(6)
        client = write_dataset(dep, "ds", files)

        def load():
            blob = yield from client.save_meta()
            yield from client.load_meta(blob)

        dep.run(load())
        dep.servers[0].node.kill()
        survivor = dep.servers[1]

        def proc():
            ok = 0
            for path, expected in files.items():
                data = yield from survivor.call(
                    dep.client_nodes[0], "get_file", "ds", path
                )
                ok += data == expected
            return ok

        assert dep.run(proc()) == len(files)


class TestFailureContainmentAcrossLayers:
    def test_kv_instance_loss_is_partial(self, deployment):
        """Losing one shard only breaks keys it owned."""
        files = small_files(40)
        write_dataset(deployment, "ds", files)
        client = deployment.new_client("ds")
        victim = deployment.kv.instances[0]
        victim.node.kill()

        def probe():
            ok = fail = 0
            for path in files:
                try:
                    yield from client.stat(path)
                    ok += 1
                except (ShardUnavailableError, NodeDownError):
                    fail += 1
            return ok, fail

        ok, fail = deployment.run(probe())
        assert ok > 0  # other shards still serve
        assert fail > 0  # the dead shard's keys fail
        assert ok + fail == len(files)
