"""Tests for the sharded dataset registry."""

import pytest

from repro.core.registry import (
    MAX_REGISTRY_SHARDS,
    DatasetRegistry,
    registry_key,
    shard_prefix,
)

from tests.kvstore.test_kv import build_cluster


def make_registry(n_shards=8):
    _, _, kv, _ = build_cluster(n_instances=4)
    return kv, DatasetRegistry(kv, n_shards)


class TestMembership:
    def test_add_contains_remove(self):
        _, reg = make_registry()
        reg.add("imagenet")
        assert "imagenet" in reg
        assert "coco" not in reg
        assert reg.remove("imagenet") is True
        assert "imagenet" not in reg
        assert reg.remove("imagenet") is False

    def test_add_is_idempotent(self):
        _, reg = make_registry()
        reg.add("ds")
        reg.add("ds")
        assert reg.count() == 1

    def test_shard_bounds_validated(self):
        kv, _ = make_registry()
        with pytest.raises(ValueError):
            DatasetRegistry(kv, 0)
        with pytest.raises(ValueError):
            DatasetRegistry(kv, MAX_REGISTRY_SHARDS + 1)

    def test_keys_live_under_their_hash_shard(self):
        kv, reg = make_registry()
        reg.add("imagenet")
        shard = reg.shard_of("imagenet")
        key = registry_key(shard, "imagenet")
        assert kv.local_get_or_none(key) == b""


class TestListing:
    def populated(self, n=50, n_shards=8):
        kv, reg = make_registry(n_shards)
        names = [f"ds-{i:03d}" for i in range(n)]
        for name in names:
            reg.add(name)
        return kv, reg, names

    def test_dataset_names_sorted_and_complete(self):
        _, reg, names = self.populated()
        assert reg.dataset_names() == sorted(names)

    def test_count_and_occupancy(self):
        _, reg, names = self.populated()
        occ = reg.occupancy()
        assert len(occ) == reg.n_shards
        assert sum(occ) == reg.count() == len(names)

    def test_paged_listing_is_bit_identical_to_full(self):
        _, reg, names = self.populated()
        for limit in (1, 7, 49, 50, 500):
            walked, cursor = [], None
            while True:
                page, cursor = reg.list_page(cursor, limit)
                walked.extend(page)
                if cursor is None:
                    break
            assert walked == sorted(names)

    def test_page_is_globally_sorted_across_shards(self):
        _, reg, names = self.populated(n=40, n_shards=16)
        page, _ = reg.list_page(limit=10)
        assert page == sorted(names)[:10]


class TestRebalance:
    def test_rebalance_preserves_the_name_set(self):
        _, reg, names = TestListing().populated(n=60, n_shards=4)
        moved = reg.rebalance(11)
        assert moved > 0
        assert reg.n_shards == 11
        assert reg.dataset_names() == sorted(names)
        # Every key now sits in its new hash shard.
        occ = reg.occupancy()
        assert sum(occ) == 60

    def test_rebalance_to_same_count_moves_nothing(self):
        kv, reg, _ = TestListing().populated(n=20, n_shards=4)
        before = kv.local_pscan("reg:")
        assert reg.rebalance(4) == 0
        assert kv.local_pscan("reg:") == before

    def test_rebalance_down_clears_emptied_shards(self):
        kv, reg, names = TestListing().populated(n=30, n_shards=10)
        reg.rebalance(2)
        for shard in range(2, 10):
            assert kv.local_pscan(shard_prefix(shard)) == []
        assert reg.dataset_names() == sorted(names)

    def test_rebalance_validates_bounds(self):
        _, reg = make_registry()
        with pytest.raises(ValueError):
            reg.rebalance(0)
