"""Cross-cutting property-based tests of system invariants."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dist_cache import CacheClient, TaskCache
from repro.core.shuffle import chunkwise_shuffle
from repro.kvstore.sharded import NUM_SLOTS, ShardedKV
from repro.util.ids import ChunkIdGenerator

from tests.core.conftest import build_deployment, write_dataset

GEN = ChunkIdGenerator(machine=b"\x0d" * 6, pid=17)


class TestCachePartitioningProperties:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        n_nodes=st.integers(1, 5),
        clients_per_node=st.integers(1, 4),
        n_files=st.integers(1, 30),
    )
    def test_partition_invariants(self, n_nodes, clients_per_node, n_files):
        """For any topology: one master per node, every chunk owned by
        exactly one master, connections == p×(n−1), balance within 1."""
        dep = build_deployment(n_client_nodes=n_nodes)
        files = {f"/p/f{i:03d}": bytes([i]) * 512 for i in range(n_files)}
        write_dataset(dep, "ds", files, chunk_size=2048)
        clients = [
            CacheClient(f"c{r}", dep.client_nodes[r % n_nodes], r)
            for r in range(n_nodes * clients_per_node)
        ]
        cache = TaskCache(dep.env, dep.fabric, dep.server, "ds", clients)
        summary = dep.run(cache.register())

        p = len({c.node.name for c in clients})
        n = len(clients)
        assert len(cache.masters) == p
        assert cache.connection_count() == p * n - p
        owners = {}
        for cid in summary["chunk_ids"]:
            owners[cid] = cache.owner_of(cid).client.name
        counts = {}
        for owner in owners.values():
            counts[owner] = counts.get(owner, 0) + 1
        if counts:
            assert max(counts.values()) - min(counts.values()) <= 1

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(kill_idx=st.integers(0, 2))
    def test_recovery_preserves_total_ownership(self, kill_idx):
        """Whichever node dies, recovery leaves every chunk owned by a
        live master and the dataset fully cached."""
        dep = build_deployment(n_client_nodes=4)
        files = {f"/p/f{i:03d}": bytes([i]) * 512 for i in range(24)}
        write_dataset(dep, "ds", files, chunk_size=2048)
        clients = [
            CacheClient(f"c{r}", dep.client_nodes[r], r) for r in range(4)
        ]
        cache = TaskCache(dep.env, dep.fabric, dep.server, "ds", clients)
        summary = dep.run(cache.register())
        dep.run(cache.wait_warm())
        total = len(summary["chunk_ids"])
        dep.client_nodes[kill_idx].kill()
        dep.run(cache.recover())
        assert cache.cached_chunks() == total
        for cid in summary["chunk_ids"]:
            assert cache.owner_of(cid).up


class TestEpochPlanProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        n_chunks=st.integers(1, 20),
        files_per_chunk=st.integers(1, 8),
        group_size=st.integers(1, 25),
        seed=st.integers(0, 999),
    )
    def test_group_of_consistent_with_flat_order(
        self, n_chunks, files_per_chunk, group_size, seed
    ):
        data = {
            cid: [f"/c{i}/f{j}" for j in range(files_per_chunk)]
            for i, cid in enumerate(GEN.take(n_chunks))
        }
        plan = chunkwise_shuffle(data, group_size, random.Random(seed))
        flat = plan.files
        pos = 0
        for gi, group in enumerate(plan.groups):
            for f in group.files:
                assert flat[pos] == f
                assert plan.group_of(pos) == gi
                pos += 1
        assert pos == plan.file_count

    @settings(max_examples=40, deadline=None)
    @given(
        n_chunks=st.integers(2, 20),
        group_size=st.integers(1, 10),
        seed=st.integers(0, 999),
    )
    def test_groups_partition_chunks(self, n_chunks, group_size, seed):
        data = {cid: [f"/x{i}"] for i, cid in enumerate(GEN.take(n_chunks))}
        plan = chunkwise_shuffle(data, group_size, random.Random(seed))
        seen = [c for g in plan.groups for c in g.chunk_ids]
        assert sorted(seen) == sorted(data)
        assert all(len(g.chunk_ids) <= group_size for g in plan.groups)


class TestKvSlotProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.text(min_size=1, max_size=40))
    def test_slot_range_and_stability(self, key):
        dep = build_deployment()
        slot = dep.kv.slot(key)
        assert 0 <= slot < NUM_SLOTS
        assert dep.kv.slot(key) == slot
        assert dep.kv.owner(key) is dep.kv.owner(key)

    def test_owner_independent_of_other_keys(self):
        dep = build_deployment()
        keys = [f"k{i}" for i in range(100)]
        owners_before = {k: dep.kv.owner(k).name for k in keys}
        for k in keys:
            dep.kv.local_put(k, b"v")
        owners_after = {k: dep.kv.owner(k).name for k in keys}
        assert owners_before == owners_after
