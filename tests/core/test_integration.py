"""End-to-end integration: the full DIESEL pipeline with verified bytes.

Drives the complete life of a dataset — generation with embedded
checksums, ingest through DL_put, snapshot distribution, task-grained
caching, chunk-wise shuffled epochs, FUSE reads, failures, recovery —
verifying content integrity at every hop (the paper's own methodology:
"each process reads files and checks the contents as well as the hash
code for correctness", §6.1).
"""

import pytest

from repro.bench.setups import (
    add_diesel,
    bulk_load_diesel,
    diesel_client_with_snapshot,
    make_testbed,
)
from repro.core.dist_cache import TaskCache
from repro.core.fuse import mount
from repro.workloads.filegen import generate_file, verify_file

N_FILES = 60


@pytest.fixture
def pipeline():
    tb = make_testbed(n_compute=4)
    add_diesel(tb, n_servers=2)
    files = {
        f"/ds/class{i % 5}/img{i:04d}.jpg": generate_file(f"img{i}", 2048 + i)
        for i in range(N_FILES)
    }
    bulk_load_diesel(tb, "ds", files, chunk_size=16 * 1024)
    clients = [
        diesel_client_with_snapshot(tb, "ds", tb.compute_nodes[c % 4],
                                    f"c{c}", rank=c)
        for c in range(8)
    ]
    return tb, files, clients


class TestFullPipeline:
    def test_every_hop_preserves_checksums(self, pipeline):
        tb, files, clients = pipeline
        cache = TaskCache(
            tb.env, tb.fabric, tb.diesel, "ds",
            [c.as_cache_client() for c in clients],
        )
        tb.run(cache.register())
        tb.run(cache.wait_warm())
        for c in clients:
            c.attach_cache(cache)
        fuse = mount([clients[0]])

        def verify_all():
            # Path 1: DL_get through the distributed cache.
            for path, expected in files.items():
                data = yield from clients[1].get(path)
                assert data == expected and verify_file(data)
            # Path 2: FUSE whole-file reads.
            for path, expected in list(files.items())[:10]:
                data = yield from fuse.read_file(path)
                assert data == expected and verify_file(data)
            # Path 3: server request executor (batched).
            batch = list(files)[:20]
            result = yield from tb.diesel.call(
                tb.compute_nodes[0], "read_files", "ds", batch
            )
            for p in batch:
                assert result[p] == files[p] and verify_file(result[p])

        tb.run(verify_all())
        assert cache.hit_ratio() == 1.0

    def test_shuffled_epoch_verifies(self, pipeline):
        tb, files, clients = pipeline
        client = clients[0]
        client.enable_shuffle(group_size=2)
        plan = client.epoch_file_list(seed=42)
        assert sorted(plan.files) == sorted(files)

        def read_epoch():
            for path in plan.files:
                data = yield from client.get(path)
                assert data == files[path]
                assert verify_file(data)

        tb.run(read_epoch())
        # Bounded working set throughout.
        assert len(client._group_cache) <= 2

    def test_failure_then_recovery_preserves_integrity(self, pipeline):
        tb, files, clients = pipeline
        cache = TaskCache(
            tb.env, tb.fabric, tb.diesel, "ds",
            [c.as_cache_client() for c in clients],
        )
        tb.run(cache.register())
        tb.run(cache.wait_warm())
        tb.compute_nodes[0].kill()
        tb.run(cache.recover())
        survivor = next(c for c in clients if c.node.alive)

        def verify():
            for path, expected in files.items():
                data = yield from cache.read_file(
                    survivor.as_cache_client(), survivor.index.lookup(path)
                )
                assert data == expected and verify_file(data)

        tb.run(verify())

    def test_metadata_wipe_then_rebuild_preserves_integrity(self, pipeline):
        from repro.core import recovery

        tb, files, clients = pipeline
        tb.kv.lose_all()
        tb.run(recovery.rebuild_dataset(tb.diesel, "ds"))

        def verify():
            for path, expected in list(files.items())[:20]:
                data = yield from tb.diesel.call(
                    tb.compute_nodes[0], "get_file", "ds", path
                )
                assert data == expected and verify_file(data)

        tb.run(verify())

    def test_multi_server_consistency(self, pipeline):
        tb, files, clients = pipeline
        path = next(iter(files))

        def via(server_idx):
            data = yield from tb.diesel_servers[server_idx].call(
                tb.compute_nodes[0], "get_file", "ds", path
            )
            return data

        assert tb.run(via(0)) == tb.run(via(1)) == files[path]


class TestTieredServerCache:
    """The Fig 4 server cache: HDD base + SSD tier."""

    def _setup(self):
        tb = make_testbed(n_compute=1)
        add_diesel(tb, tiered=True)
        files = {f"/t/f{i:03d}": generate_file(f"t{i}", 4096)
                 for i in range(40)}
        bulk_load_diesel(tb, "ds", files, chunk_size=32 * 1024)
        return tb, files

    def test_config_store_published(self):
        tb, _ = self._setup()
        assert tb.config_store.get("diesel/config") is not None
        assert tb.config_store.get("diesel/n_servers") == 1

    def test_second_epoch_hits_ssd_tier(self):
        tb, files = self._setup()
        node = tb.compute_nodes[0]

        def epoch():
            t0 = tb.env.now
            for path in files:
                data = yield from tb.diesel.call(node, "get_file", "ds", path)
                assert data == files[path]
            return tb.env.now - t0

        cold = tb.run(epoch())
        warm = tb.run(epoch())
        # First epoch faulted chunks from HDD and promoted them; the
        # second is served from the SSD tier.
        assert warm < cold / 3
        assert tb.store.stats.promotions > 0
        assert tb.store.stats.ssd_hits > 0

    def test_correctness_through_tiers(self):
        tb, files = self._setup()
        node = tb.compute_nodes[0]

        def read_twice():
            for _ in range(2):
                for path, expected in files.items():
                    data = yield from tb.diesel.call(
                        node, "get_file", "ds", path
                    )
                    assert data == expected

        tb.run(read_twice())

    def test_background_caching_process(self):
        tb, files = self._setup()
        tb.store.promote_on_miss = False  # isolate the background path
        proc = tb.diesel.start_background_caching("ds")
        promoted = tb.run(lambda: None) if proc is None else tb.env.run(until=proc)
        n_chunks = len(tb.store.list_keys())
        assert promoted == n_chunks
        assert all(tb.store.in_ssd(k) for k in tb.store.list_keys())

        # Reads now hit the SSD tier without per-read promotion.
        node = tb.compute_nodes[0]

        def epoch():
            t0 = tb.env.now
            for path in files:
                yield from tb.diesel.call(node, "get_file", "ds", path)
            return tb.env.now - t0

        tb.run(epoch())
        assert tb.store.stats.ssd_hits >= len(files)

    def test_background_caching_noop_for_flat_store(self):
        tb = make_testbed(n_compute=1)
        add_diesel(tb, tiered=False)
        bulk_load_diesel(tb, "ds", {"/x": b"1" * 100})
        assert tb.diesel.start_background_caching("ds") is None
