"""Tests for client-side chunk aggregation (Fig 3)."""

import pytest

from repro.core.chunk_builder import ChunkBuilder
from repro.errors import DieselError
from repro.util.ids import ChunkIdGenerator


def builder(chunk_size=100, on_seal=None):
    return ChunkBuilder(
        ChunkIdGenerator(machine=b"\x02" * 6, pid=1),
        chunk_size=chunk_size,
        on_seal=on_seal,
    )


class TestBuilder:
    def test_buffers_until_threshold(self):
        b = builder(chunk_size=100)
        assert b.add("/a", b"x" * 40) is None
        assert b.pending_files == 1
        assert b.pending_bytes == 40
        assert b.add("/b", b"x" * 40) is None
        sealed = b.add("/c", b"x" * 40)  # crosses 100
        assert sealed is not None
        assert sealed.paths == ("/a", "/b", "/c")
        assert b.pending_files == 0

    def test_single_large_file_seals_immediately(self):
        b = builder(chunk_size=100)
        sealed = b.add("/big", b"x" * 500)
        assert sealed is not None
        assert sealed.data_size == 500

    def test_flush_seals_remainder(self):
        b = builder(chunk_size=100)
        b.add("/a", b"x")
        sealed = b.flush()
        assert sealed is not None
        assert sealed.paths == ("/a",)

    def test_flush_empty_returns_none(self):
        assert builder().flush() is None

    def test_duplicate_pending_path_rejected(self):
        b = builder(chunk_size=1000)
        b.add("/a", b"1")
        with pytest.raises(DieselError):
            b.add("/a", b"2")

    def test_same_path_after_seal_is_allowed(self):
        """Modify-by-rewrite: the new version lands in a later chunk."""
        b = builder(chunk_size=4)
        first = b.add("/a", b"v1!!")
        assert first is not None
        second = b.add("/a", b"v2!!")
        assert second is not None
        assert second.chunk_id > first.chunk_id

    def test_on_seal_callback(self):
        sealed = []
        b = builder(chunk_size=4, on_seal=sealed.append)
        b.add("/a", b"xxxx")
        b.add("/b", b"y")
        b.flush()
        assert [c.paths for c in sealed] == [("/a",), ("/b",)]
        assert b.sealed_count == 2

    def test_build_all(self):
        b = builder()
        chunks = b.build_all(
            ((f"/f{i}", b"z" * 30) for i in range(10)), chunk_size=100
        )
        assert sum(len(c) for c in chunks) == 10
        # every chunk except possibly the last reaches the threshold
        for c in chunks[:-1]:
            assert c.data_size >= 100
        # chunk IDs are monotonically increasing (written order)
        ids = [c.chunk_id for c in chunks]
        assert ids == sorted(ids)

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            builder(chunk_size=0)

    def test_paper_min_chunk_size_default(self):
        from repro.core.chunk import DEFAULT_CHUNK_SIZE

        assert DEFAULT_CHUNK_SIZE == 4 * 1024 * 1024  # §4: >= 4MB
