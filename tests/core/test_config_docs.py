"""Sync test: docs/CONFIG.md must document every DieselConfig field.

The reference page promises a row per field with the code's actual
default; this test makes the promise structural, so adding a config
knob without documenting it (or letting a documented default rot)
fails CI.
"""

import re
from dataclasses import MISSING, fields
from pathlib import Path

from repro.core.config import DieselConfig

DOC = Path(__file__).resolve().parents[2] / "docs" / "CONFIG.md"


def doc_text():
    return DOC.read_text()


def doc_table_rows():
    """{field: row-cells} for the markdown field table."""
    rows = {}
    for line in doc_text().splitlines():
        m = re.match(r"\|\s*`(\w+)`\s*\|", line)
        if m and m.group(1) != "field":
            rows[m.group(1)] = [c.strip() for c in line.split("|")[1:-1]]
    return rows


class TestConfigDocsSync:
    def test_every_field_has_a_table_row(self):
        documented = set(doc_table_rows())
        actual = {f.name for f in fields(DieselConfig)}
        assert documented == actual, (
            f"docs/CONFIG.md table out of sync: "
            f"missing={sorted(actual - documented)}, "
            f"stale={sorted(documented - actual)}"
        )

    def test_every_field_has_a_semantics_section(self):
        text = doc_text()
        for f in fields(DieselConfig):
            assert f"### `{f.name}`" in text, (
                f"docs/CONFIG.md lacks a semantics section for {f.name}"
            )

    def test_documented_defaults_match_code(self):
        rows = doc_table_rows()
        for f in fields(DieselConfig):
            assert f.default is not MISSING
            cell = rows[f.name][1]
            if f.name == "chunk_size":
                # Documented symbolically; check the human-readable size.
                assert "4 MiB" in cell
                assert f.default == 4 * 1024 * 1024
            elif isinstance(f.default, bool):
                assert str(f.default) in cell
            elif isinstance(f.default, str):
                assert f'"{f.default}"' in cell
            else:
                assert f"`{f.default}`" in cell, (
                    f"default for {f.name} documented as {cell!r}, "
                    f"code says {f.default!r}"
                )
