"""Tests for live membership changes: scale_up / scale_down / listeners."""

import pytest

from repro.core.dist_cache import CacheClient, TaskCache
from repro.errors import DieselError
from repro.ft import CacheSupervisor, FailureDetector

from tests.core.conftest import build_deployment, small_files, write_dataset


def setup_cache(n_nodes=4, cache_nodes=2, n_files=24, policy="oneshot"):
    """A cache over the first ``cache_nodes`` nodes of a larger cluster,
    leaving the rest free to join via scale_up."""
    dep = build_deployment(n_client_nodes=n_nodes)
    files = small_files(n_files, size=2048)
    writer = write_dataset(dep, "ds", files, chunk_size=8 * 1024)

    def load():
        blob = yield from writer.save_meta()
        yield from writer.load_meta(blob)

    dep.run(load())
    clients = [
        CacheClient(f"cc{i}", dep.client_nodes[i % cache_nodes], i)
        for i in range(cache_nodes * 2)
    ]
    cache = TaskCache(
        dep.env, dep.fabric, dep.server, "ds", clients, policy=policy
    )
    dep.run(cache.register())
    dep.run(cache.wait_warm())
    return dep, cache, clients, files, writer.index


def read_all(cache, cc, files, index):
    for path, expected in files.items():
        data = yield from cache.read_file(cc, index.lookup(path))
        assert data == expected


def joiners(dep, nodes, start_rank=100):
    return [
        CacheClient(f"joiner{r}", dep.client_nodes[n], r)
        for r, n in enumerate(nodes, start=start_rank)
    ]


class TestScaleUp:
    def test_new_nodes_take_an_equal_share_warm(self):
        dep, cache, clients, files, index = setup_cache()
        n_chunks = len(index.chunk_ids())
        v0 = cache.membership_version
        fetches_before = dep.server.stats.chunk_reads
        res = dep.run(cache.scale_up(joiners(dep, [2, 3])))
        assert sorted(res["new_masters"]) == ["joiner100", "joiner101"]
        assert len(cache.masters) == 4
        # Minimal movement toward the equal share, warmed peer-to-peer —
        # the backend was never touched for resident data.
        assert res["moved_chunks"] == pytest.approx(n_chunks // 2, abs=2)
        assert res["warmed_chunks"] == res["moved_chunks"]
        assert res["peer_warmed"] == res["moved_chunks"]
        assert dep.server.stats.chunk_reads == fetches_before
        assert cache.membership_version == v0 + 1
        assert cache.stats.scale_ups == 1
        assert cache.stats.peer_warmed_chunks == res["peer_warmed"]
        # Every chunk still resident and owned exactly once.
        assert cache.cached_chunks() >= n_chunks
        dep.run(read_all(cache, clients[1], files, index))

    def test_partition_balance_after_growth(self):
        dep, cache, clients, files, index = setup_cache()
        dep.run(cache.scale_up(joiners(dep, [2, 3])))
        sizes = [len(m.assigned) for m in cache.masters.values()]
        assert max(sizes) - min(sizes) <= 1

    def test_membership_listener_and_scale_events(self):
        dep, cache, clients, files, index = setup_cache()
        seen = []
        cache.add_membership_listener(lambda e, n: seen.append((e, tuple(n))))
        dep.run(cache.scale_up(joiners(dep, [2])))
        assert seen == [("scale_up", ("joiner100",))]
        assert len(cache.scale_events) == 1
        t, event, names = cache.scale_events[0]
        assert event == "scale_up" and names == ("joiner100",)

    def test_clients_on_existing_nodes_join_without_new_masters(self):
        dep, cache, clients, files, index = setup_cache()
        extra = [CacheClient("late", dep.client_nodes[0], 50)]
        res = dep.run(cache.scale_up(extra))
        assert res["new_masters"] == []
        assert res["moved_chunks"] == 0
        assert len(cache.masters) == 2
        dep.run(read_all(cache, extra[0], files, index))

    def test_cold_scale_up_falls_back_to_server_reads(self):
        dep, cache, clients, files, index = setup_cache()
        res = dep.run(cache.scale_up(joiners(dep, [2]), warm=False))
        assert res["moved_chunks"] > 0
        assert res["warmed_chunks"] == 0
        # Unwarmed moved chunks are served from the backend, not errors.
        dep.run(read_all(cache, clients[0], files, index))

    def test_validation(self):
        dep, cache, clients, files, index = setup_cache()
        with pytest.raises(DieselError):
            dep.run(cache.scale_up([]))
        with pytest.raises(DieselError):
            dep.run(cache.scale_up(
                [CacheClient("cc0", dep.client_nodes[2], 9)]
            ))
        fresh = TaskCache(
            dep.env, dep.fabric, dep.server, "ds",
            [CacheClient("solo", dep.client_nodes[3], 0)],
        )
        with pytest.raises(DieselError):
            dep.run(fresh.scale_up(joiners(dep, [2], start_rank=200)))


class TestScaleDown:
    def grown(self):
        dep, cache, clients, files, index = setup_cache()
        dep.run(cache.scale_up(joiners(dep, [2, 3])))
        return dep, cache, clients, files, index

    def test_drain_rehomes_every_chunk(self):
        dep, cache, clients, files, index = self.grown()
        n_chunks = len(index.chunk_ids())
        v0 = cache.membership_version
        res = dep.run(cache.scale_down([dep.client_nodes[2],
                                        dep.client_nodes[3]]))
        assert res["lost_chunks"] == 0
        assert res["drained_chunks"] > 0
        assert sorted(res["removed_masters"]) == ["joiner100", "joiner101"]
        assert len(cache.masters) == 2
        assert cache.membership_version == v0 + 1
        assert cache.stats.scale_downs == 1
        assert cache.stats.drained_chunks == res["drained_chunks"]
        # Survivors own and hold the full dataset again.
        assert sum(len(m.assigned) for m in cache.masters.values()) == n_chunks
        dep.run(read_all(cache, clients[0], files, index))

    def test_accepts_node_names_as_well_as_nodes(self):
        dep, cache, clients, files, index = self.grown()
        res = dep.run(cache.scale_down([dep.client_nodes[2].name]))
        assert res["lost_chunks"] == 0
        assert len(cache.masters) == 3

    def test_reads_succeed_while_the_drain_is_in_flight(self):
        dep, cache, clients, files, index = self.grown()
        done = {"reads": 0}

        def reader():
            for _ in range(4):
                yield from read_all(cache, clients[1], files, index)
                done["reads"] += len(files)

        def drainer():
            yield dep.env.timeout(1e-5)  # land mid-read-sweep
            res = yield from cache.scale_down([dep.client_nodes[3]])
            assert res["lost_chunks"] == 0

        dep.env.process(reader(), name="reader")
        dep.env.process(drainer(), name="drainer")
        dep.env.run()
        assert done["reads"] == 4 * len(files)

    def test_removing_every_master_rejected(self):
        dep, cache, clients, files, index = setup_cache()
        with pytest.raises(DieselError):
            dep.run(cache.scale_down([dep.client_nodes[0],
                                      dep.client_nodes[1]]))

    def test_no_drain_flips_ownership_and_serves_from_backend(self):
        dep, cache, clients, files, index = self.grown()
        res = dep.run(cache.scale_down([dep.client_nodes[2]], drain=False))
        assert res["drained_chunks"] == 0
        dep.run(read_all(cache, clients[0], files, index))

    def test_listener_sees_node_names(self):
        dep, cache, clients, files, index = self.grown()
        seen = []
        cache.add_membership_listener(lambda e, n: seen.append((e, tuple(n))))
        dep.run(cache.scale_down([dep.client_nodes[2]]))
        assert seen == [("scale_down", (dep.client_nodes[2].name,))]


class TestClientRepinOnMembership:
    """An attached DieselClient re-steers its live pipeline on scale."""

    def test_scale_up_repins_the_active_prefetcher(self):
        dep, cache, clients, files, index = setup_cache()
        from repro.core.config import DieselConfig

        dl = dep.new_client("ds", config=DieselConfig(prefetch_depth=2))

        def load():
            blob = yield from dl.save_meta()
            yield from dl.load_meta(blob)

        dep.run(load())
        dl.attach_cache(cache)
        dl.enable_shuffle(group_size=2)
        plan = dl.epoch_file_list(seed=1)
        assert dl.prefetcher is not None and dl.prefetcher.active
        dep.run(cache.scale_up(joiners(dep, [2, 3])))
        assert dl.stats.membership_repins == 1
        assert dl.prefetcher.repins == 1

        def consume():
            for path in plan.files:
                data = yield from dl.get(path)
                assert data == files[path]

        dep.run(consume())

    def test_no_pipeline_means_no_repin(self):
        dep, cache, clients, files, index = setup_cache()
        dl = dep.new_client("ds")

        def load():
            blob = yield from dl.save_meta()
            yield from dl.load_meta(blob)

        dep.run(load())
        dl.attach_cache(cache)
        dep.run(cache.scale_up(joiners(dep, [2])))
        assert dl.stats.membership_repins == 0

    def test_attach_is_idempotent(self):
        dep, cache, clients, files, index = setup_cache()
        dl = dep.new_client("ds")
        dl.attach_cache(cache)
        dl.attach_cache(cache)  # must not double-register the listener
        dep.run(cache.scale_up(joiners(dep, [2])))
        assert len(cache._membership_listeners) == 1


class TestSupervisorMembership:
    """The failure detector tracks the mesh as it grows and shrinks."""

    def rig(self):
        dep, cache, clients, files, index = setup_cache()
        det = FailureDetector(
            dep.env, heartbeat_interval_s=0.02, failure_timeout_s=0.05
        )
        sup = CacheSupervisor(det, cache)
        return dep, cache, clients, files, index, det, sup

    def test_scale_up_watches_the_new_masters(self):
        dep, cache, clients, files, index, det, sup = self.rig()
        assert det.watched() == ["cache:cc0", "cache:cc1"]
        dep.run(cache.scale_up(joiners(dep, [2, 3])))
        assert det.watched() == [
            "cache:cc0", "cache:cc1", "cache:joiner100", "cache:joiner101",
        ]

    def test_scale_down_unwatches_the_departed_masters(self):
        dep, cache, clients, files, index, det, sup = self.rig()
        dep.run(cache.scale_up(joiners(dep, [2, 3])))
        dep.run(cache.scale_down([dep.client_nodes[2]]))
        assert det.watched() == [
            "cache:cc0", "cache:cc1", "cache:joiner101",
        ]

    def test_joined_master_death_heals_automatically(self):
        dep, cache, clients, files, index, det, sup = self.rig()
        dep.run(cache.scale_up(joiners(dep, [2, 3])))
        det.start()

        def scenario():
            yield dep.env.timeout(0.05)
            dep.client_nodes[2].kill()
            yield dep.env.timeout(2.0)

        dep.run(scenario())
        det.stop()
        dep.env.run()
        assert dep.client_nodes[2].name not in cache.masters
        assert len(sup.recoveries) == 1
        assert cache.cached_chunks() >= len(index.chunk_ids())
