"""Tests for DieselConfig and the ETCD-like ConfigStore."""

import pytest

from repro.core.config import ConfigStore, DieselConfig


class TestDieselConfig:
    def test_defaults_match_paper(self):
        cfg = DieselConfig()
        assert cfg.chunk_size == 4 * 1024 * 1024  # >= 4MB chunks
        assert cfg.cache_policy == "oneshot"
        assert cfg.shuffle_group_size == 100  # ImageNet group size (Fig 13)

    @pytest.mark.parametrize(
        "kw",
        [
            {"chunk_size": 0},
            {"cache_policy": "never"},
            {"shuffle_group_size": 0},
            {"fuse_clients": 0},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            DieselConfig(**kw)

    def test_frozen(self):
        cfg = DieselConfig()
        with pytest.raises(Exception):
            cfg.chunk_size = 1


class TestConfigStore:
    def test_put_get(self):
        store = ConfigStore()
        assert store.get("k") is None
        assert store.get("k", "fallback") == "fallback"
        v1 = store.put("k", {"a": 1})
        assert v1 == 1
        assert store.get("k") == {"a": 1}
        assert store.put("k", 2) == 2
        assert store.version("k") == 2

    def test_delete(self):
        store = ConfigStore()
        store.put("k", 1)
        assert store.delete("k")
        assert store.get("k") is None
        assert not store.delete("k")
        # deletion still bumps the version once
        assert store.version("k") == 2

    def test_watch_fires_on_put_and_delete(self):
        store = ConfigStore()
        seen = []
        store.watch("cfg", lambda k, v: seen.append((k, v)))
        store.put("cfg", "a")
        store.put("other", "ignored")
        store.put("cfg", "b")
        store.delete("cfg")
        assert seen == [("cfg", "a"), ("cfg", "b"), ("cfg", None)]

    def test_keys_prefix(self):
        store = ConfigStore()
        store.put("diesel/chunk_size", 1)
        store.put("diesel/policy", 2)
        store.put("lustre/mds", 3)
        assert store.keys("diesel/") == ["diesel/chunk_size", "diesel/policy"]
        assert len(store.keys()) == 3
