"""Tests for chunk-placement policies, pull coalescing, hot replication."""

import pytest

from repro.cluster import Node
from repro.core.dist_cache import CacheClient, TaskCache
from repro.errors import DieselError

from tests.core.conftest import build_deployment, small_files, write_dataset


def setup_cache(n_nodes=3, clients_per_node=1, n_files=24, policy="oneshot",
                placement="locality", chunk_size=8 * 1024,
                hot_chunk_threshold=0, spill_ratio=0.9):
    dep = build_deployment(n_client_nodes=n_nodes)
    files = small_files(n_files, size=2048)
    writer = write_dataset(dep, "ds", files, chunk_size=chunk_size)

    def load():
        blob = yield from writer.save_meta()
        yield from writer.load_meta(blob)

    dep.run(load())
    cache_clients = []
    rank = 0
    for node in dep.client_nodes:
        for _ in range(clients_per_node):
            cache_clients.append(CacheClient(f"cc{rank}", node, rank))
            rank += 1
    cache = TaskCache(
        dep.env, dep.fabric, dep.server, "ds", cache_clients,
        policy=policy, placement=placement,
        locality_spill_ratio=spill_ratio,
        hot_chunk_threshold=hot_chunk_threshold,
    )
    return dep, cache, cache_clients, files, writer.index


def paths_owned_by(cache, index, node_name):
    """All file paths whose chunk is owned by ``node_name``'s master."""
    master = cache.masters[node_name]
    owned = set(master.assigned)
    return [
        p for p in index.all_paths()
        if index.lookup(p).chunk_id.encode() in owned
    ]


class TestLocalityPlacement:
    def test_contiguous_slices_per_master(self):
        """Each master owns one contiguous run of the chunk list."""
        dep, cache, *_ = setup_cache()
        summary = dep.run(cache.register())
        order = {cid: i for i, cid in enumerate(summary["chunk_ids"])}
        for master in cache.masters.values():
            idx = sorted(order[c] for c in master.assigned)
            assert idx == list(range(idx[0], idx[0] + len(idx)))

    def test_every_chunk_has_one_owner(self):
        dep, cache, *_ = setup_cache()
        summary = dep.run(cache.register())
        for cid in summary["chunk_ids"]:
            assert cache.owner_of(cid) is cache._owner_of[cid]
            assert cache.chunk_owner_node(cid) == cache.owner_of(cid).node.name

    def test_chunk_owner_node_accepts_chunk_ids(self):
        dep, cache, _, _, index = setup_cache()
        dep.run(cache.register())
        for cid in index.files_by_chunk():
            # ChunkId object and encoded string resolve identically.
            assert cache.chunk_owner_node(cid) == cache.chunk_owner_node(
                cid.encode()
            )
        assert cache.chunk_owner_node("nonexistent") is None

    def test_local_read_bypasses_the_network_hop(self):
        dep, cache, clients, files, index = setup_cache()
        dep.run(cache.register())
        dep.run(cache.wait_warm())
        reader = clients[0]
        path = paths_owned_by(cache, index, reader.node.name)[0]

        def proc():
            data = yield from cache.read_file(reader, index.lookup(path))
            return data

        assert dep.run(proc()) == files[path]
        assert cache.local_hits == 1
        assert cache.remote_hits == 0
        assert cache.stats.local_hits == 1

    def test_remote_read_counts_as_remote_hit(self):
        dep, cache, clients, files, index = setup_cache()
        dep.run(cache.register())
        dep.run(cache.wait_warm())
        reader = clients[0]
        other = next(n for n in cache.masters if n != reader.node.name)
        path = paths_owned_by(cache, index, other)[0]

        def proc():
            data = yield from cache.read_file(reader, index.lookup(path))
            return data

        assert dep.run(proc()) == files[path]
        assert cache.local_hits == 0
        assert cache.remote_hits == 1

    def test_local_read_is_faster_than_remote(self):
        dep, cache, clients, files, index = setup_cache()
        dep.run(cache.register())
        dep.run(cache.wait_warm())
        reader = clients[0]
        local_path = paths_owned_by(cache, index, reader.node.name)[0]
        other = next(n for n in cache.masters if n != reader.node.name)
        remote_path = paths_owned_by(cache, index, other)[0]

        def timed(path):
            t0 = dep.env.now

            def proc():
                yield from cache.read_file(reader, index.lookup(path))

            dep.run(proc())
            return dep.env.now - t0

        assert timed(local_path) < timed(remote_path)

    def test_validation(self):
        dep = build_deployment()
        c = CacheClient("x", dep.client_nodes[0], 0)
        with pytest.raises(DieselError):
            TaskCache(dep.env, dep.fabric, dep.server, "ds", [c],
                      placement="bogus")
        with pytest.raises(DieselError):
            TaskCache(dep.env, dep.fabric, dep.server, "ds", [c],
                      placement="locality", locality_spill_ratio=0.0)
        with pytest.raises(DieselError):
            TaskCache(dep.env, dep.fabric, dep.server, "ds", [c],
                      hot_chunk_threshold=-1)


class TestLocalitySpill:
    def _tight_setup(self, memory_bytes):
        """Two client nodes, the first memory-tight; locality placement."""
        dep = build_deployment(n_client_nodes=1)
        tight = dep.fabric.add_node(
            Node(dep.env, "aa-tight", memory_bytes=memory_bytes)
        )
        files = small_files(32, size=2048)
        writer = write_dataset(dep, "ds", files, chunk_size=8 * 1024)

        def load():
            blob = yield from writer.save_meta()
            yield from writer.load_meta(blob)

        dep.run(load())
        clients = [
            CacheClient("c0", tight, 0),
            CacheClient("c1", dep.client_nodes[0], 1),
        ]
        cache = TaskCache(
            dep.env, dep.fabric, dep.server, "ds", clients,
            placement="locality",
        )
        summary = dep.run(cache.register())
        return dep, cache, summary

    def test_spill_respects_memory_budget(self):
        dep, cache, summary = self._tight_setup(memory_bytes=18 * 1024)
        tight_master = cache.masters["aa-tight"]
        budget = int(18 * 1024 * cache.locality_spill_ratio)
        sizes = summary["chunk_sizes"]
        assert sum(sizes[c] for c in tight_master.assigned) <= budget
        # The overflow landed on the roomy node; nothing was dropped.
        owned = {c for m in cache.masters.values() for c in m.assigned}
        assert owned == set(summary["chunk_ids"])

    def test_spill_is_deterministic(self):
        """Two identical builds spill the same chunk *positions* the same way.

        Chunk IDs are generation-unique, so compare by position in the
        registration chunk list rather than by literal ID.
        """

        def shape(setup):
            _, cache, summary = setup
            order = {cid: i for i, cid in enumerate(summary["chunk_ids"])}
            return {
                node: sorted(order[c] for c in m.assigned)
                for node, m in cache.masters.items()
            }

        a = shape(self._tight_setup(memory_bytes=18 * 1024))
        b = shape(self._tight_setup(memory_bytes=18 * 1024))
        assert a == b


class TestPullCoalescing:
    def test_concurrent_pulls_fetch_backend_once(self):
        dep, cache, clients, files, index = setup_cache(
            n_nodes=1, policy="on-demand"
        )
        summary = dep.run(cache.register())
        master = next(iter(cache.masters.values()))
        cid = summary["chunk_ids"][0]
        before = dep.server.stats.chunk_reads
        n = 5
        procs = [
            dep.env.process(master._pull_chunk(cid), name=f"pull{i}")
            for i in range(n)
        ]

        def wait_all():
            for p in procs:
                assert (yield p)

        dep.run(wait_all())
        assert dep.server.stats.chunk_reads - before == 1
        assert master.stats.coalesced_pulls == n - 1
        assert cache.stats.coalesced_pulls == n - 1

    def test_sequential_pulls_do_not_coalesce(self):
        dep, cache, clients, files, index = setup_cache(
            n_nodes=1, policy="on-demand"
        )
        summary = dep.run(cache.register())
        master = next(iter(cache.masters.values()))

        def proc():
            for cid in summary["chunk_ids"]:
                yield from master._pull_chunk(cid)
                yield from master._pull_chunk(cid)  # resident: no refetch

        dep.run(proc())
        assert master.stats.coalesced_pulls == 0


class TestHotReplication:
    def _skewed_read(self, threshold, reads):
        dep, cache, clients, files, index = setup_cache(
            n_nodes=2, hot_chunk_threshold=threshold
        )
        dep.run(cache.register())
        dep.run(cache.wait_warm())
        reader = clients[0]
        other = next(n for n in cache.masters if n != reader.node.name)
        path = paths_owned_by(cache, index, other)[0]

        def proc():
            for _ in range(reads):
                yield from cache.read_file(reader, index.lookup(path))

        dep.run(proc())
        dep.env.run()  # drain the background replication pull
        return dep, cache, clients, index, reader, path

    def test_hot_chunk_replicates_to_reading_node(self):
        dep, cache, clients, index, reader, path = self._skewed_read(
            threshold=3, reads=3
        )
        assert cache.stats.replicated_chunks == 1
        cid = index.lookup(path).chunk_id.encode()
        assert cache.masters[reader.node.name].has_chunk(cid)
        # Ownership did not move: the replica serves, the owner owns.
        assert cache.chunk_owner_node(cid) != reader.node.name

    def test_post_replication_reads_are_local(self):
        dep, cache, clients, index, reader, path = self._skewed_read(
            threshold=3, reads=3
        )
        before = cache.local_hits

        def proc():
            yield from cache.read_file(reader, index.lookup(path))

        dep.run(proc())
        assert cache.local_hits == before + 1

    def test_below_threshold_no_replication(self):
        dep, cache, *_ = self._skewed_read(threshold=3, reads=2)
        assert cache.stats.replicated_chunks == 0

    def test_disabled_by_default(self):
        dep, cache, *_ = self._skewed_read(threshold=0, reads=10)
        assert cache.stats.replicated_chunks == 0


class TestLocalityRecovery:
    def _kill_and_recover(self):
        dep, cache, clients, files, index = setup_cache(n_nodes=3)
        dep.run(cache.register())
        dep.run(cache.wait_warm())
        victim_node = dep.client_nodes[0]
        victim_chunks = list(cache.masters[victim_node.name].assigned)
        survivor_slices = {
            n: list(m.assigned)
            for n, m in cache.masters.items()
            if n != victim_node.name
        }
        victim_node.kill()
        reloaded = dep.run(cache.recover(fanout=2))
        return (dep, cache, clients, files, index,
                victim_chunks, survivor_slices, reloaded)

    def test_survivor_partitions_are_untouched(self):
        (dep, cache, _, _, _, victim_chunks,
         survivor_slices, reloaded) = self._kill_and_recover()
        assert cache.placement == "locality"
        assert reloaded == len(victim_chunks)
        for node, old_slice in survivor_slices.items():
            assert cache.masters[node].assigned[: len(old_slice)] == old_slice

    def test_orphans_rehomed_and_readable(self):
        (dep, cache, clients, files, index,
         victim_chunks, _, _) = self._kill_and_recover()
        for cid in victim_chunks:
            owner = cache.owner_of(cid)
            assert owner.up and owner.has_chunk(cid)
        reader = next(c for c in clients if c.node.alive)

        def proc():
            ok = 0
            for path in files:
                data = yield from cache.read_file(reader, index.lookup(path))
                ok += data == files[path]
            return ok

        assert dep.run(proc()) == len(files)

    def test_orphan_prefers_survivor_with_replica(self):
        dep, cache, clients, files, index = setup_cache(
            n_nodes=3, hot_chunk_threshold=1
        )
        dep.run(cache.register())
        dep.run(cache.wait_warm())
        reader = clients[0]
        victim = next(n for n in cache.masters if n != reader.node.name)
        path = paths_owned_by(cache, index, victim)[0]
        cid = index.lookup(path).chunk_id.encode()

        def proc():
            yield from cache.read_file(reader, index.lookup(path))

        dep.run(proc())
        dep.env.run()  # replica of cid now on the reader's node
        assert cache.masters[reader.node.name].has_chunk(cid)
        next(n for n in dep.client_nodes if n.name == victim).kill()
        dep.run(cache.recover(fanout=2))
        assert cache.chunk_owner_node(cid) == reader.node.name
