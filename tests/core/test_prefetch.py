"""Pipelined chunk prefetch + batched multi-get read path.

Covers the three layers of the pipelined read path:

* the single-flight ``_inflight`` map (no duplicate chunk transfers,
  including the evicted-while-waiting re-fetch branch);
* the :class:`~repro.core.prefetch.ChunkPrefetcher` (bounded working
  set, hit/miss/wasted accounting, clean cancellation);
* ``get_many()`` / the server's batched ``get_files`` RPC.
"""

import pytest

from repro.core.config import DieselConfig
from repro.errors import ClosedError, DieselError

from tests.core.conftest import build_deployment, small_files, write_dataset

CHUNK = 8 * 1024  # 4 files of 2 KiB per chunk


def loaded_client(deployment, n=24, config=None, dataset="ds"):
    files = small_files(n, size=2048)
    write_dataset(deployment, dataset, files, chunk_size=CHUNK)
    client = deployment.new_client(dataset, config=config)

    def load():
        blob = yield from client.save_meta()
        yield from client.load_meta(blob)

    deployment.run(load())
    return client, files


class TestSingleFlight:
    def test_concurrent_cold_readers_one_transfer(self, deployment):
        """Two readers racing on the same cold chunk: one get_chunk read."""
        client, files = loaded_client(deployment)
        client.enable_shuffle(group_size=2)
        plan = client.epoch_file_list(seed=1)
        # Two files guaranteed to share the epoch's first chunk.
        first_chunk_files = list(plan.groups[0].files)
        rec = client.index.lookup(first_chunk_files[0])
        sharers = [
            p for p in first_chunk_files
            if client.index.lookup(p).chunk_id == rec.chunk_id
        ]
        assert len(sharers) >= 2

        results = {}

        def reader(path):
            data = yield from client.get(path)
            results[path] = data

        for p in sharers[:2]:
            deployment.env.process(reader(p))
        deployment.env.run()
        assert results == {p: files[p] for p in sharers[:2]}
        assert deployment.server.stats.chunk_reads == 1
        assert client.stats.server_reads == 1

    def test_evicted_while_waiting_refetches(self, deployment):
        """A waiter whose chunk is evicted before it wakes must re-fetch —
        and that re-fetch itself stays single-flight."""
        client, files = loaded_client(deployment, n=32)
        client.enable_shuffle(group_size=1)  # capacity 1: any fetch evicts
        paths = sorted(files)
        rec_a = client.index.lookup(paths[0])
        # A path from a different chunk than paths[0].
        other = next(
            p for p in paths
            if client.index.lookup(p).chunk_id != rec_a.chunk_id
        )

        def waiter():
            data = yield from client.get(paths[0])
            assert data == files[paths[0]]

        def evictor():
            # Runs while the waiter's chunk is still in flight; once the
            # waiter's fetch completes, this fetch evicts it (capacity 1)
            # before some late waiter re-checks the cache.
            data = yield from client.get(other)
            assert data == files[other]

        # Three processes racing on chunk A: p1 fetches, p2+p3 wait.
        # Meanwhile the evictor pulls chunk B, evicting A the moment it
        # lands, so late waiters find the cache empty and re-fetch.
        p1 = deployment.env.process(waiter())
        p2 = deployment.env.process(waiter())
        e1 = deployment.env.process(evictor())
        deployment.env.run()
        assert p1.ok and p2.ok and e1.ok
        # Chunk A was transferred at most twice (initial + one re-fetch
        # shared by all late waiters) and chunk B once — never one
        # transfer per waiter.
        assert deployment.server.stats.chunk_reads <= 3


class TestPrefetcher:
    def _pipelined(self, deployment, depth, group_size=2, n=24):
        client, files = loaded_client(
            deployment, n=n,
            config=DieselConfig(prefetch_depth=depth),
        )
        client.enable_shuffle(group_size=group_size)
        return client, files

    def test_epoch_plan_starts_pipeline(self, deployment):
        client, _ = self._pipelined(deployment, depth=2)
        plan = client.epoch_file_list(seed=1)
        assert client.prefetcher is not None
        assert client.prefetcher.active
        assert client.prefetcher.schedule_length == len(
            client.index.chunk_ids()
        )

    def test_working_set_bounded_by_group_plus_depth(self, deployment):
        depth, group = 2, 2
        client, files = self._pipelined(deployment, depth, group_size=group)
        plan = client.epoch_file_list(seed=7)

        def consume():
            for path in plan.files:
                data = yield from client.get(path)
                assert data == files[path]
                assert len(client._group_cache) <= group + depth

        deployment.run(consume())
        assert client.working_set_bytes() <= (group + depth) * CHUNK

    def test_no_duplicate_transfers_and_hits(self, deployment):
        client, files = self._pipelined(deployment, depth=4)
        plan = client.epoch_file_list(seed=3)

        def consume():
            for path in plan.files:
                yield from client.get(path)

        deployment.run(consume())
        n_chunks = len(client.index.chunk_ids())
        # Every chunk moved exactly once: single-flight de-dupes the
        # pipeline against demand fetches.
        assert deployment.server.stats.chunk_reads == n_chunks
        assert client.stats.server_reads == n_chunks
        assert client.stats.prefetch_issued == n_chunks
        # The consumer found every chunk prefetched (resident or in
        # flight): the epoch had zero cold stalls.
        assert client.stats.prefetch_hits == n_chunks
        assert client.stats.prefetch_misses == 0
        assert client.stats.prefetch_wasted == 0

    def test_wasted_counts_unconsumed_prefetches(self, deployment):
        client, files = self._pipelined(deployment, depth=3)
        plan = client.epoch_file_list(seed=2)

        def consume_one_group(ready):
            for path in plan.groups[0].files:
                yield from client.get(path)
            ready.append(True)

        done = []
        deployment.run(consume_one_group(done))
        assert done
        # Stop mid-epoch: whatever the pipeline fetched beyond the first
        # group was never consumed.
        client.cancel_prefetch()
        assert client.stats.prefetch_wasted > 0
        assert (
            client.stats.prefetch_hits
            + client.stats.prefetch_misses
            + client.stats.prefetch_wasted
            <= client.stats.prefetch_issued
        )

    def test_disable_shuffle_cancels_pipeline(self, deployment):
        client, _ = self._pipelined(deployment, depth=2)
        plan = client.epoch_file_list(seed=1)
        prefetcher = client.prefetcher
        assert prefetcher.active
        client.disable_shuffle()
        assert client.prefetcher is None
        assert not prefetcher.active
        # In-flight fetch processes unwind cleanly when the sim drains.
        deployment.env.run()
        assert prefetcher.in_flight == 0
        assert client._inflight == {}
        assert client.working_set_bytes() == 0

    def test_close_cancels_pipeline(self, deployment):
        client, _ = self._pipelined(deployment, depth=2)
        client.epoch_file_list(seed=1)
        prefetcher = client.prefetcher
        client.close()
        assert not prefetcher.active
        deployment.env.run()
        assert prefetcher.in_flight == 0
        with pytest.raises(ClosedError):
            client.epoch_file_list()

    def test_new_epoch_replaces_pipeline(self, deployment):
        client, files = self._pipelined(deployment, depth=2)
        plan1 = client.epoch_file_list(seed=1)
        p1 = client.prefetcher

        def consume(plan):
            for path in plan.files:
                yield from client.get(path)

        deployment.run(consume(plan1))
        plan2 = client.epoch_file_list(seed=1)
        assert client.prefetcher is not p1
        assert not p1.active
        deployment.run(consume(plan2))

    def test_prefetch_requires_shuffle_mode(self, deployment):
        client, _ = loaded_client(deployment)
        plan_source, _ = loaded_client(deployment, dataset="ds2")
        plan_source.enable_shuffle(group_size=2)
        plan = plan_source.epoch_file_list(seed=1)
        with pytest.raises(DieselError):
            client.start_prefetch(plan, depth=2)


class TestRepin:
    """Elastic steering: skip schedule entries that became node-local."""

    def _started(self, deployment, depth=2):
        client, files = loaded_client(
            deployment, config=DieselConfig(prefetch_depth=depth)
        )
        client.enable_shuffle(group_size=2)
        plan = client.epoch_file_list(seed=1)
        return client, files, plan

    def test_now_local_tail_entries_are_dropped(self, deployment):
        client, files, plan = self._started(deployment, depth=2)
        prefetcher = client.prefetcher
        issued = prefetcher._next
        tail = prefetcher.schedule_length - issued
        assert tail > 0
        skipped = prefetcher.repin(lambda enc: client.node.name)
        assert skipped == tail
        assert prefetcher.schedule_length == issued
        assert prefetcher.repins == 1
        assert prefetcher.repin_skipped == tail

    def test_remote_owned_entries_are_kept(self, deployment):
        client, files, plan = self._started(deployment)
        prefetcher = client.prefetcher
        before = prefetcher.schedule_length
        skipped = prefetcher.repin(lambda enc: "somewhere-else")
        assert skipped == 0
        assert prefetcher.schedule_length == before
        assert prefetcher.repins == 1

    def test_skipped_chunks_still_read_without_miss_penalty(self, deployment):
        client, files, plan = self._started(deployment, depth=2)
        client.prefetcher.repin(lambda enc: client.node.name)

        def consume():
            for path in plan.files:
                data = yield from client.get(path)
                assert data == files[path]

        deployment.run(consume())
        # Unscheduled chunks neither score a prefetch miss nor count as
        # wasted pipeline work — they are plain demand reads now.
        assert client.stats.prefetch_misses == 0
        assert client.stats.prefetch_wasted == 0

    def test_inactive_pipeline_is_a_noop(self, deployment):
        client, files, plan = self._started(deployment)
        prefetcher = client.prefetcher
        client.cancel_prefetch()
        assert prefetcher.repin(lambda enc: client.node.name) == 0
        assert prefetcher.repins == 0


class TestEpochSeedMixing:
    def test_fixed_seed_epochs_differ(self, deployment):
        """A fixed seed must still give different successive epochs."""
        client, _ = loaded_client(deployment)
        client.enable_shuffle(group_size=2)
        p1 = client.epoch_file_list(seed=9).files
        p2 = client.epoch_file_list(seed=9).files
        assert p1 != p2
        assert sorted(p1) == sorted(p2)

    def test_fixed_seed_sequence_reproducible(self, deployment):
        """Same seed, fresh client ⇒ the same epoch *sequence*."""
        client_a, _ = loaded_client(deployment)
        client_a.enable_shuffle(group_size=2)
        seq_a = [client_a.epoch_file_list(seed=4).files for _ in range(3)]
        client_b, _ = loaded_client(deployment, dataset="ds2")
        client_b.enable_shuffle(group_size=2)
        seq_b = [client_b.epoch_file_list(seed=4).files for _ in range(3)]
        assert seq_a == seq_b

    def test_full_shuffle_fixed_seed_epochs_differ(self, deployment):
        client, _ = loaded_client(deployment)
        o1 = client.full_shuffle_list(seed=9)
        o2 = client.full_shuffle_list(seed=9)
        assert o1 != o2


class TestGetMany:
    def test_batched_server_path(self, deployment):
        """Without shuffle/cache: the whole batch goes in one RPC."""
        client, files = loaded_client(deployment)
        batch = sorted(files)[:8]
        calls_before = deployment.server.endpoint.stats.calls

        def proc():
            got = yield from client.get_many(batch)
            return got

        got = deployment.run(proc())
        assert got == {p: files[p] for p in batch}
        assert deployment.server.stats.batch_reads == 1
        assert deployment.server.stats.batch_files == len(batch)
        # Files sharing a chunk collapse into merged range reads.
        assert deployment.server.stats.batch_spans <= len(batch)
        assert deployment.server.endpoint.stats.calls == calls_before + 1
        assert client.stats.batched_gets == 1
        assert client.stats.gets == len(batch)

    def test_shuffle_mode_fetches_each_chunk_once(self, deployment):
        client, files = loaded_client(deployment)
        client.enable_shuffle(group_size=4)
        plan = client.epoch_file_list(seed=1)
        batch = plan.files[:12]

        def proc():
            got = yield from client.get_many(batch)
            return got

        got = deployment.run(proc())
        assert got == {p: files[p] for p in batch}
        chunks_touched = {
            client.index.lookup(p).chunk_id.encode() for p in batch
        }
        assert deployment.server.stats.chunk_reads == len(chunks_touched)
        # Second call: everything resident.
        deployment.run(proc())
        assert deployment.server.stats.chunk_reads == len(chunks_touched)

    def test_empty_batch(self, deployment):
        client, _ = loaded_client(deployment)

        def proc():
            got = yield from client.get_many([])
            return got

        assert deployment.run(proc()) == {}

    def test_closed_client_rejects(self, deployment):
        client, files = loaded_client(deployment)
        client.close()
        with pytest.raises(ClosedError):
            client.get_many(sorted(files)[:2]).send(None)
