"""Edge-case coverage across core components."""

import pytest

from repro.core.chunk import Chunk
from repro.core.config import DieselConfig
from repro.errors import ChunkFormatError, DieselError
from repro.util.ids import ChunkIdGenerator

from tests.core.conftest import build_deployment, small_files, write_dataset

GEN = ChunkIdGenerator(machine=b"\x0e" * 6, pid=19)


class TestChunkEdges:
    def test_very_long_path_rejected_at_encode(self):
        c = Chunk.build(GEN.next(), [("/" + "x" * 70_000, b"1")])
        with pytest.raises(ChunkFormatError):
            c.encode()

    def test_single_byte_files(self):
        items = [(f"/b/{i}", bytes([i])) for i in range(10)]
        c = Chunk.build(GEN.next(), items)
        restored = Chunk.decode(c.encode())
        for path, data in items:
            assert restored.payload(path) == data

    def test_unicode_paths_roundtrip(self):
        items = [("/データ/写真.jpg", b"img"), ("/café/ü.bin", b"x")]
        c = Chunk.build(GEN.next(), items)
        restored = Chunk.decode(c.encode())
        assert restored.payload("/データ/写真.jpg") == b"img"

    def test_many_files_one_chunk(self):
        items = [(f"/m/f{i:05d}", b"z") for i in range(2000)]
        c = Chunk.build(GEN.next(), items)
        restored = Chunk.decode(c.encode())
        assert len(restored) == 2000


class TestServerEdges:
    def test_empty_read_files_batch(self, deployment):
        write_dataset(deployment, "ds", small_files(3))

        def proc():
            result = yield from deployment.server.call(
                deployment.client_nodes[0], "read_files", "ds", []
            )
            return result

        assert deployment.run(proc()) == {}

    def test_read_files_duplicate_paths(self, deployment):
        files = small_files(4)
        write_dataset(deployment, "ds", files)
        path = next(iter(files))

        def proc():
            result = yield from deployment.server.call(
                deployment.client_nodes[0], "read_files", "ds",
                [path, path, path],
            )
            return result

        result = deployment.run(proc())
        assert result[path] == files[path]

    def test_ls_root_lists_top_dirs(self, deployment):
        write_dataset(deployment, "ds", small_files(3))

        def proc():
            entries = yield from deployment.server.call(
                deployment.client_nodes[0], "ls", "ds", "/"
            )
            return entries

        assert deployment.run(proc()) == ["img"]

    def test_stat_root_is_directory(self, deployment):
        write_dataset(deployment, "ds", small_files(2))

        def proc():
            info = yield from deployment.server.call(
                deployment.client_nodes[0], "stat", "ds", "/"
            )
            return info

        assert deployment.run(proc())["is_dir"] is True

    def test_delete_last_file_then_purge_empties_dataset(self, deployment):
        write_dataset(deployment, "ds", {"/only": b"1" * 50})
        node = deployment.client_nodes[0]

        def proc():
            yield from deployment.server.call(node, "delete_file", "ds",
                                              "/only")
            rewritten = yield from deployment.server.call(node, "purge", "ds")
            return rewritten

        assert deployment.run(proc()) == 1
        # The holey chunk was dropped and nothing replaced it.
        assert deployment.store.list_keys() == []
        assert deployment.server.dataset_info("ds").chunk_ids == ()

    def test_double_delete_raises(self, deployment):
        write_dataset(deployment, "ds", {"/x": b"1" * 10, "/y": b"2" * 10})
        node = deployment.client_nodes[0]

        def proc():
            yield from deployment.server.call(node, "delete_file", "ds", "/x")
            yield from deployment.server.call(node, "delete_file", "ds", "/x")

        from repro.errors import FileNotFoundInDatasetError

        with pytest.raises(FileNotFoundInDatasetError):
            deployment.run(proc())


class TestClientEdges:
    def test_put_empty_file(self, deployment):
        client = deployment.new_client("ds")

        def proc():
            yield from client.put("/empty", b"")
            yield from client.flush()
            data = yield from client.get("/empty")
            return data

        assert deployment.run(proc()) == b""

    def test_interleaved_clients_share_dataset(self, deployment):
        a = deployment.new_client("ds", node_idx=0, name="a")
        b = deployment.new_client("ds", node_idx=1, name="b")

        def proc():
            yield from a.put("/from-a", b"A" * 10)
            yield from a.flush()
            yield from b.put("/from-b", b"B" * 10)
            yield from b.flush()
            xa = yield from b.get("/from-a")
            xb = yield from a.get("/from-b")
            return xa, xb

        assert deployment.run(proc()) == (b"A" * 10, b"B" * 10)

    def test_epoch_counter_distinct_without_seed(self, deployment):
        files = small_files(8)
        client = write_dataset(deployment, "ds", files)

        def load():
            blob = yield from client.save_meta()
            yield from client.load_meta(blob)

        deployment.run(load())
        client.enable_shuffle(group_size=1)
        orders = [tuple(client.epoch_file_list().files) for _ in range(4)]
        assert len(set(orders)) >= 3  # overwhelmingly distinct

    def test_shuffle_group_size_validation(self, deployment):
        files = small_files(4)
        client = write_dataset(deployment, "ds", files)

        def load():
            blob = yield from client.save_meta()
            yield from client.load_meta(blob)

        deployment.run(load())
        with pytest.raises(DieselError):
            client.enable_shuffle(group_size=0)


class TestConfigEdges:
    def test_fuse_clients_config_consumed(self):
        cfg = DieselConfig(fuse_clients=3)
        assert cfg.fuse_clients == 3

    def test_on_demand_policy_accepted(self):
        assert DieselConfig(cache_policy="on-demand").cache_policy == \
            "on-demand"
