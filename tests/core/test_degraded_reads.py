"""Degraded read paths: mid-flight peer death, breakers, tolerant pulls.

Covers the Fig 4 fall-through under failure: a read whose owning master
dies mid-call must land on the DIESEL server instead of erroring, and
an on-demand background fill must tolerate the master dying mid-pull.
"""

import pytest

from repro.cluster.failure import FailureInjector
from repro.core.config import DieselConfig
from repro.errors import CachePeerDownError, CircuitOpenError

from tests.core.test_dist_cache import setup_cache


def warm_rig(policy="oneshot", fallback=True, chunk_size=8 * 1024):
    dep, cache, clients, files, index = setup_cache(
        n_nodes=3, clients_per_node=1, policy=policy, fallback=fallback,
        chunk_size=chunk_size,
    )
    dep.run(cache.register())
    if policy == "oneshot":
        dep.run(cache.wait_warm())
    victim_node = dep.client_nodes[0]
    victim = cache.masters[victim_node.name]
    reader = next(c for c in clients if c.node.name != victim_node.name)
    path = next(
        p for p in files
        if cache.owner_of(index.lookup(p).chunk_id.encode()) is victim
    )
    return dep, cache, reader, victim_node, path, files, index


class TestMidFlightDegradation:
    def test_master_dying_mid_call_degrades_to_server(self):
        dep, cache, reader, victim_node, path, files, index = warm_rig()
        record = index.lookup(path)

        # Measure a warm peer hit to know how long the call takes.
        t0 = dep.env.now
        assert dep.run(cache.read_file(reader, record)) == files[path]
        hit_s = dep.env.now - t0
        assert hit_s > 0
        assert cache.degraded_reads == 0

        # Kill the owner halfway through the next, identical call.
        inj = FailureInjector(dep.env)
        inj.kill_at(victim_node, dep.env.now + hit_s / 2)
        data = dep.run(cache.read_file(reader, record))
        assert data == files[path]  # served by the server, not an error
        assert cache.degraded_reads == 1

    def test_strict_mode_raises_instead_of_degrading(self):
        dep, cache, reader, victim_node, path, files, index = warm_rig(
            fallback=False
        )
        victim_node.kill()
        with pytest.raises(CachePeerDownError):
            dep.run(cache.read_file(reader, index.lookup(path)))
        assert cache.degraded_reads == 1

    def test_known_dead_peer_degrades_without_attempting(self):
        dep, cache, reader, victim_node, path, files, index = warm_rig()
        victim_node.kill()
        for _ in range(3):
            assert dep.run(
                cache.read_file(reader, index.lookup(path))
            ) == files[path]
        assert cache.degraded_reads == 3


class TestTolerantBackgroundPull:
    def test_pull_survives_master_death_as_a_dropped_pull(self):
        # Big chunks + tiny files: the background chunk pull far outlives
        # the read that triggered it, so the kill lands mid-pull.
        dep, cache, reader, victim_node, path, files, index = warm_rig(
            policy="on-demand", chunk_size=32 * 1024
        )
        record = index.lookup(path)
        victim = cache.masters[victim_node.name]
        data = dep.run(cache.read_file(reader, record))
        assert data == files[path]  # miss: fell through to the server
        # The on-demand fill is still in flight.
        assert not victim.has_chunk(record.chunk_id.encode())
        inj = FailureInjector(dep.env)
        inj.kill_at(victim_node, dep.env.now + 1e-6)
        dep.env.run()  # drain: the orphan pull must not blow up the sim
        assert cache.dropped_pulls == 1
        assert not victim.has_chunk(record.chunk_id.encode())

    def test_completed_pull_still_fills_the_cache(self):
        dep, cache, reader, victim_node, path, files, index = warm_rig(
            policy="on-demand", chunk_size=32 * 1024
        )
        record = index.lookup(path)
        victim = cache.masters[victim_node.name]
        dep.run(cache.read_file(reader, record))
        dep.env.run()  # let the pull finish undisturbed
        assert victim.has_chunk(record.chunk_id.encode())
        assert cache.dropped_pulls == 0


class TestBreakerShortCircuit:
    def test_tripped_breaker_skips_the_peer_and_still_serves_data(self):
        dep, cache, reader, victim_node, path, files, index = warm_rig()
        # An impossible deadline makes every peer attempt time out; after
        # two failures the breaker opens and later reads skip the peer.
        cache.configure_ft(DieselConfig(
            rpc_retries=0, rpc_deadline_s=1e-7,
            breaker_threshold=2, breaker_reset_s=100.0,
        ))
        record = index.lookup(path)
        for _ in range(4):
            assert dep.run(cache.read_file(reader, record)) == files[path]
        assert cache.degraded_reads == 4
        breaker = cache._breakers[
            cache.masters[victim_node.name].client.name
        ]
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert breaker.rejections == 2  # reads 3 and 4 never hit the peer

    def test_strict_mode_surfaces_breaker_rejections(self):
        dep, cache, reader, victim_node, path, files, index = warm_rig(
            fallback=False
        )
        cache.configure_ft(DieselConfig(
            rpc_retries=0, rpc_deadline_s=1e-7,
            breaker_threshold=1, breaker_reset_s=100.0,
        ))
        record = index.lookup(path)
        with pytest.raises(CachePeerDownError):
            dep.run(cache.read_file(reader, record))
        with pytest.raises(CachePeerDownError) as exc_info:
            dep.run(cache.read_file(reader, record))
        assert isinstance(exc_info.value.__cause__, CircuitOpenError)

    def test_retry_rides_out_a_blip_without_degrading(self):
        dep, cache, reader, victim_node, path, files, index = warm_rig()
        cache.configure_ft(DieselConfig(
            rpc_retries=2, rpc_backoff_base_s=0.002,
        ))
        record = index.lookup(path)
        # Healthy peer + retry enabled: the warm hit is served normally.
        assert dep.run(cache.read_file(reader, record)) == files[path]
        assert cache.degraded_reads == 0
