"""The delta metadata plane end to end: journal → server → client index.

Covers the staleness edges: horizon fallback, double-apply rejection,
delete-then-append of the same path, and ``files_by_chunk`` consistency
after in-place delta application.
"""

import random

import pytest

from repro.core.config import DieselConfig
from repro.core.shuffle import tail_extend
from repro.core.snapshot import SnapshotIndex
from repro.errors import DeltaConflictError, DieselError

from tests.core.conftest import build_deployment, small_files, write_dataset

CHUNK = 64 * 1024


def loaded_client(dep, dataset="ds", n=40):
    """Write a dataset and return a client with its snapshot loaded."""
    client = write_dataset(dep, dataset, small_files(n), chunk_size=CHUNK)
    blob = dep.run(client.save_meta())
    dep.run(client.load_meta(blob))
    return client


def append_files(dep, client, files):
    def writer():
        for path, data in files.items():
            yield from client.put(path, data)
        yield from client.flush()

    dep.run(writer())


def assert_index_equivalent(live, fresh):
    """A delta-patched index must equal one rebuilt from scratch."""
    assert live.update_ts == fresh.update_ts
    assert sorted(live.all_paths()) == sorted(fresh.all_paths())
    assert live.chunk_ids() == fresh.chunk_ids()
    assert live.readdir("/") == fresh.readdir("/")
    assert {c: f for c, f in live.files_by_chunk().items()} == {
        c: f for c, f in fresh.files_by_chunk().items()
    }
    for path in fresh.all_paths():
        assert live.lookup(path) == fresh.lookup(path)


class TestRefreshMeta:
    def test_delta_refresh_matches_full_reload(self):
        dep = build_deployment()
        client = loaded_client(dep)
        append_files(dep, client, small_files(12, prefix="/new"))
        dep.run(client.refresh_meta())
        assert client.stats.delta_reloads == 1
        assert client.stats.full_reloads == 0
        assert client.stats.delta_ops_applied > 0
        fresh = SnapshotIndex(dep.server.build_snapshot("ds"))
        assert_index_equivalent(client.index, fresh)

    def test_delta_moves_far_fewer_bytes_than_snapshot(self):
        dep = build_deployment()
        client = loaded_client(dep, n=200)
        append_files(dep, client, small_files(2, prefix="/new"))
        dep.run(client.refresh_meta())
        full_blob = dep.run(client.save_meta())
        assert client.stats.delta_bytes < len(full_blob) / 4

    def test_noop_refresh_is_free(self):
        dep = build_deployment()
        client = loaded_client(dep)
        dep.run(client.refresh_meta())
        assert client.stats.delta_reloads == 1
        assert client.stats.delta_ops_applied == 0

    def test_refresh_requires_loaded_snapshot(self):
        dep = build_deployment()
        client = write_dataset(dep, "ds", small_files(4), chunk_size=CHUNK)
        with pytest.raises(DieselError):
            dep.run(client.refresh_meta())

    def test_delete_is_propagated_through_delta(self):
        dep = build_deployment()
        client = loaded_client(dep)
        victim = client.index.all_paths()[0]
        dep.run(client.delete(victim))
        dep.run(client.refresh_meta())
        assert victim not in client.index
        fresh = SnapshotIndex(dep.server.build_snapshot("ds"))
        assert_index_equivalent(client.index, fresh)


class TestHorizonFallback:
    def test_past_horizon_falls_back_to_full_reload(self):
        config = DieselConfig(meta_journal_horizon=2, chunk_size=CHUNK)
        dep = build_deployment(config=config)
        client = loaded_client(dep)
        # Each appended batch is one chunk = one journal entry; three
        # pushes compact the first one out of the horizon-2 journal.
        for i in range(3):
            append_files(dep, client, small_files(4, prefix=f"/n{i}"))
        dep.run(client.refresh_meta())
        assert client.stats.full_reloads == 1
        assert client.stats.delta_reloads == 0
        fresh = SnapshotIndex(dep.server.build_snapshot("ds"))
        assert_index_equivalent(client.index, fresh)

    def test_journaling_disabled_always_full_reloads(self):
        config = DieselConfig(meta_journal_horizon=0, chunk_size=CHUNK)
        dep = build_deployment(config=config)
        client = loaded_client(dep)
        append_files(dep, client, small_files(4, prefix="/new"))
        dep.run(client.refresh_meta())
        assert client.stats.full_reloads == 1

    def test_server_reports_client_ahead(self):
        dep = build_deployment()
        loaded_client(dep)

        def probe():
            result = yield from dep.server.call(
                dep.client_nodes[0], "load_meta_delta", "ds", 10 ** 9
            )
            return result

        with pytest.raises(DieselError):
            dep.run(probe())


class TestApplyEdges:
    def entries_since(self, dep, from_ts):
        return dep.server.journal.entries_since("ds", from_ts)

    def test_double_apply_raises(self):
        dep = build_deployment()
        client = loaded_client(dep)
        v0 = client.index.update_ts
        append_files(dep, client, small_files(4, prefix="/new"))
        entries = self.entries_since(dep, v0)
        client.index.apply_delta(entries)
        with pytest.raises(DeltaConflictError):
            client.index.apply_delta(entries)

    def test_gap_raises_instead_of_corrupting(self):
        dep = build_deployment()
        client = loaded_client(dep)
        v0 = client.index.update_ts
        append_files(dep, client, small_files(4, prefix="/a"))
        append_files(dep, client, small_files(4, prefix="/b"))
        entries = self.entries_since(dep, v0)
        with pytest.raises(DeltaConflictError):
            client.index.apply_delta(entries[1:])  # skipped a version

    def test_delete_then_append_same_path(self):
        dep = build_deployment()
        client = loaded_client(dep, n=8)
        path = client.index.all_paths()[0]
        dep.run(client.delete(path))
        append_files(dep, client, {path: b"reborn" * 100})
        dep.run(client.refresh_meta())
        assert path in client.index
        fresh = SnapshotIndex(dep.server.build_snapshot("ds"))
        assert_index_equivalent(client.index, fresh)
        # The record now points at the new chunk, not the tombstoned one.
        assert client.index.lookup(path) == fresh.lookup(path)

    def test_delete_of_unknown_path_raises(self):
        dep = build_deployment()
        client = loaded_client(dep, n=8)
        other = dep.new_client("ds")
        blob = dep.run(other.save_meta())
        dep.run(other.load_meta(blob))
        victim = client.index.all_paths()[0]
        # Manually damage the live index, then try to apply the delete.
        v0 = client.index.update_ts
        dep.run(client.delete(victim))
        entries = dep.server.journal.entries_since("ds", v0)
        other.index._files.pop(victim)
        with pytest.raises(DeltaConflictError):
            other.index.apply_delta(entries)

    def test_files_by_chunk_patched_in_place(self):
        dep = build_deployment()
        client = loaded_client(dep)
        grouping = client.index.files_by_chunk()  # force the build
        n_groups = len(grouping)
        append_files(dep, client, small_files(6, prefix="/new"))
        dep.run(client.refresh_meta())
        patched = client.index.files_by_chunk()
        assert len(patched) > n_groups  # new chunk groups appeared
        fresh = SnapshotIndex(dep.server.build_snapshot("ds"))
        assert patched == fresh.files_by_chunk()


class TestOnlineIngest:
    def test_tail_extend_preserves_committed_order(self):
        dep = build_deployment()
        client = loaded_client(dep, n=64)
        client.enable_shuffle(group_size=2)
        plan = client.epoch_file_list(seed=7)
        committed = plan.files[: len(plan.files) // 2]
        # Mid-epoch, new data lands and the client picks up the delta.
        append_files(dep, client, small_files(32, prefix="/late"))
        dep.run(client.refresh_meta())
        extended = tail_extend(
            plan, client.index.files_by_chunk(), 2, random.Random(11)
        )
        # Committed reads keep their exact order; the whole of the old
        # plan is a strict prefix of the extended one.
        assert extended.files[: len(plan.files)] == plan.files
        assert extended.files[: len(committed)] == committed
        # Every late file joined the tail; nothing was lost or doubled.
        assert sorted(extended.files) == sorted(client.index.all_paths())

    def test_tail_extend_without_new_chunks_is_identity(self):
        dep = build_deployment()
        client = loaded_client(dep, n=16)
        client.enable_shuffle(group_size=2)
        plan = client.epoch_file_list(seed=3)
        same = tail_extend(
            plan, client.index.files_by_chunk(), 2, random.Random(5)
        )
        assert same is plan
