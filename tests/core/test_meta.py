"""Tests for the KV metadata schema (Fig 5b)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import meta
from repro.errors import DieselError
from repro.util.bitmap import Bitmap
from repro.util.ids import ChunkId, ChunkIdGenerator

GEN = ChunkIdGenerator(machine=b"\x03" * 6, pid=9)
CID = GEN.next()

paths = st.lists(
    st.text(
        alphabet=st.characters(blacklist_characters="/", blacklist_categories=("Cs",)),
        min_size=1,
        max_size=8,
    ).filter(lambda s: s not in (".", "..")),
    min_size=1,
    max_size=4,
).map(lambda parts: "/" + "/".join(parts))


class TestKeys:
    def test_key_shapes(self):
        assert meta.dataset_key("imagenet") == "ds:imagenet"
        assert meta.chunk_key("imagenet", CID) == f"ck:imagenet:{CID.encode()}"
        assert meta.file_key("ds", "a//b") == "f:ds:/a/b"
        assert meta.file_key_prefix("ds") == "f:ds:"

    def test_dir_entry_key_kinds(self):
        d = meta.dir_entry_key("ds", "/folderA", "sub", True)
        f = meta.dir_entry_key("ds", "/folderA", "file", False)
        assert "/d:sub" in d and "/f:file" in f
        # both share the parent hash prefix — the paper's pscan pattern
        assert d.rsplit("/", 1)[0] == f.rsplit("/", 1)[0]

    def test_dir_scan_prefix_matches_entries(self):
        key = meta.dir_entry_key("ds", "/folderA", "x", False)
        prefix = meta.dir_scan_prefix("ds", "/folderA", "f")
        assert key.startswith(prefix)
        assert key[len(prefix):] == "x"

    def test_dir_scan_prefix_bad_kind(self):
        with pytest.raises(ValueError):
            meta.dir_scan_prefix("ds", "/", "x")

    def test_dir_hash_is_stable(self):
        assert meta.dir_hash("/a/b") == meta.dir_hash("a//b/")
        assert meta.dir_hash("/a") != meta.dir_hash("/b")


class TestFileRecord:
    def test_roundtrip(self):
        rec = meta.FileRecord("/a/b.jpg", CID, 128, 4096, 0xDEADBEEF)
        assert meta.FileRecord.decode(rec.encode()) == rec

    @settings(max_examples=40, deadline=None)
    @given(
        paths,
        st.integers(0, 2**40),
        st.integers(0, 2**32),
        st.integers(0, 2**32 - 1),
    )
    def test_roundtrip_property(self, path, offset, length, crc):
        rec = meta.FileRecord(path, CID, offset, length, crc)
        assert meta.FileRecord.decode(rec.encode()) == rec


class TestChunkRecord:
    def test_roundtrip(self):
        bm = Bitmap(5)
        bm.set(2)
        rec = meta.ChunkRecord(CID, 42, 4 << 20, 5, 1, bm)
        out = meta.ChunkRecord.decode(rec.encode())
        assert out.chunk_id == CID
        assert out.update_ts == 42
        assert out.size == 4 << 20
        assert out.nfiles == 5
        assert out.ndeleted == 1
        assert out.bitmap == bm

    def test_bitmap_consistency_enforced(self):
        with pytest.raises(DieselError):
            meta.ChunkRecord(CID, 1, 10, 3, 0, Bitmap(2))
        with pytest.raises(DieselError):
            meta.ChunkRecord(CID, 1, 10, 3, 1, Bitmap(3))  # count mismatch

    def test_with_deleted(self):
        rec = meta.ChunkRecord(CID, 1, 10, 3, 0, Bitmap(3))
        rec2 = rec.with_deleted(1)
        assert rec2.ndeleted == 1
        assert rec2.bitmap.get(1)
        assert not rec.bitmap.get(1)  # original untouched
        with pytest.raises(DieselError):
            rec2.with_deleted(1)  # double delete


class TestDatasetRecord:
    def test_roundtrip(self):
        cids = tuple(sorted(GEN.take(3)))
        rec = meta.DatasetRecord("open-images", 7, cids)
        out = meta.DatasetRecord.decode(rec.encode())
        assert out == rec

    def test_with_chunks_merges_sorted_unique(self):
        a, b, c = sorted(GEN.take(3))
        rec = meta.DatasetRecord("ds", 1, (b,))
        rec2 = rec.with_chunks([a, c, b], ts=2)
        assert rec2.chunk_ids == (a, b, c)
        assert rec2.update_ts == 2

    def test_without_chunks(self):
        a, b = sorted(GEN.take(2))
        rec = meta.DatasetRecord("ds", 1, (a, b))
        rec2 = rec.without_chunks([a], ts=2)
        assert rec2.chunk_ids == (b,)


class TestDirectoryPairs:
    def test_file_and_ancestors_linked(self):
        pairs = meta.directory_entry_pairs("ds", "/a/b/c.jpg")
        keys = [k for k, _ in pairs]
        assert meta.dir_entry_key("ds", "/a/b", "c.jpg", False) in keys
        assert meta.dir_entry_key("ds", "/a", "b", True) in keys
        assert meta.dir_entry_key("ds", "/", "a", True) in keys
        assert len(keys) == 3

    def test_root_file(self):
        pairs = meta.directory_entry_pairs("ds", "/top.txt")
        assert len(pairs) == 1
        assert pairs[0][0] == meta.dir_entry_key("ds", "/", "top.txt", False)

    def test_checksum_matches_zlib(self):
        import zlib

        assert meta.file_checksum(b"abc") == zlib.crc32(b"abc")
