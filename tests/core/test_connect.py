"""Tests for DL_connect authentication and simulation determinism."""

import pytest

from repro.core.client import connect
from repro.core.server import DieselServer
from repro.errors import AuthError

from tests.core.conftest import build_deployment, small_files, write_dataset


class TestConnect:
    def test_open_deployment_accepts_anyone(self, deployment):
        def proc():
            client = yield from connect(
                deployment.env, deployment.client_nodes[0],
                deployment.servers, "ds", user="alice", key="whatever",
            )
            return client

        client = deployment.run(proc())
        assert client.dataset == "ds"

    def test_keyed_deployment_checks_credentials(self, deployment):
        deployment.server.access_keys = {"alice": "s3cret"}

        def good():
            client = yield from connect(
                deployment.env, deployment.client_nodes[0],
                deployment.servers, "ds", user="alice", key="s3cret",
            )
            return client

        assert deployment.run(good()).dataset == "ds"

        def bad():
            yield from connect(
                deployment.env, deployment.client_nodes[0],
                deployment.servers, "ds", user="alice", key="wrong",
            )

        with pytest.raises(AuthError):
            deployment.run(bad())

        def unknown_user():
            yield from connect(
                deployment.env, deployment.client_nodes[0],
                deployment.servers, "ds", user="mallory", key="s3cret",
            )

        with pytest.raises(AuthError):
            deployment.run(unknown_user())

    def test_connected_client_works_end_to_end(self, deployment):
        files = small_files(4)
        write_dataset(deployment, "ds", files)

        def proc():
            client = yield from connect(
                deployment.env, deployment.client_nodes[1],
                deployment.servers, "ds", name="authed",
            )
            data = yield from client.get(next(iter(files)))
            return data

        assert deployment.run(proc()) == next(iter(files.values()))


class TestDeterminism:
    """Identical inputs must give bit-identical simulated outcomes —
    the property that makes every experiment in EXPERIMENTS.md
    reproducible."""

    def _run_once(self):
        dep = build_deployment()
        files = small_files(12)
        client = write_dataset(dep, "ds", files)

        def load():
            blob = yield from client.save_meta()
            yield from client.load_meta(blob)

        dep.run(load())
        client.enable_shuffle(group_size=2)
        plan = client.epoch_file_list(seed=5)

        def epoch():
            for path in plan.files:
                yield from client.get(path)

        dep.run(epoch())
        return dep.env.now, tuple(plan.files), client.stats.server_reads

    def test_two_identical_runs_agree_exactly(self):
        a = self._run_once()
        b = self._run_once()
        assert a == b

    def test_experiment_determinism(self):
        from repro.bench.experiments import table2_read_bandwidth

        r1 = table2_read_bandwidth(reads_per_size=50)
        r2 = table2_read_bandwidth(reads_per_size=50)
        assert r1.rows == r2.rows
