"""Tests pinning the calibration constants to their paper anchors.

If someone retunes a constant, these tests say exactly which paper
measurement breaks — they are executable provenance for
``repro/calibration.py``.
"""

import dataclasses

import pytest

from repro import calibration as cal


class TestNvmeAnchor:
    """Table 2 closed-form fit."""

    @pytest.mark.parametrize(
        "size,paper_files_per_s",
        [
            (1 * cal.KB, 34353.45),
            (4 * cal.KB, 32841.47),
            (16 * cal.KB, 29724.48),
            (64 * cal.KB, 21072.64),
            (256 * cal.KB, 10903.72),
            (1 * cal.MB, 3104.26),
            (4 * cal.MB, 799.42),
        ],
    )
    def test_within_15_percent_of_table2(self, size, paper_files_per_s):
        p = cal.NvmeProfile()
        model = 1.0 / (p.per_op_s + size / p.bandwidth_bps)
        assert model == pytest.approx(paper_files_per_s, rel=0.15)

    def test_aggregate_pool_near_10GBps(self):
        """Fig 12's 128KB DIESEL ceiling implies ~10 GB/s aggregate."""
        p = cal.NvmeProfile()
        aggregate = p.queue_depth * p.bandwidth_bps
        assert 8 * cal.GB < aggregate < 16 * cal.GB


class TestLustreAnchor:
    def test_mds_qps_from_section_6_3(self):
        assert cal.LustreProfile().mds_qps == pytest.approx(68_000)

    def test_oss_op_rate_matches_fig12(self):
        """Fig 12: ~15.4k files/s at 4KB and ~15.6k at 128KB — both
        op-limited near 1/64µs on a serial path."""
        p = cal.LustreProfile()
        assert p.oss_queue_depth == 1
        rate_4k = 1.0 / (p.oss_per_op_s + 4 * cal.KB / p.oss_bandwidth_bps)
        rate_128k = 1.0 / (p.oss_per_op_s + 128 * cal.KB / p.oss_bandwidth_bps)
        assert rate_4k == pytest.approx(15_411, rel=0.15)
        # size term stays secondary: 128KB within 30% of 4KB rate
        assert rate_128k > 0.7 * rate_4k

    def test_create_cost_matches_fig9(self):
        """Fig 9: Lustre ≈ 2M/366.7 ≈ 5.5k 4KB creates/s over 64 procs."""
        p = cal.LustreProfile()
        create_s = p.oss_per_op_s * p.write_amplification
        assert 1.0 / create_s == pytest.approx(5_454, rel=0.25)


class TestMemcachedAnchor:
    def test_cluster_read_ceiling_from_fig11a(self):
        p = cal.MemcachedProfile()
        assert 10 * p.server_qps == pytest.approx(560_000)

    def test_large_set_cost_from_fig9(self):
        """Fig 9 at 128KB: ~37k SETs/s over 64 procs ⇒ ~1.7ms per SET."""
        p = cal.MemcachedProfile()
        per_set = p.write_per_op_s + 128 * cal.KB * p.write_per_byte_s
        assert 64 / per_set == pytest.approx(37_000, rel=0.25)


class TestRedisAnchor:
    def test_cluster_cap_from_memtier(self):
        assert cal.RedisProfile().cluster_qps == pytest.approx(970_000)

    def test_instance_share(self):
        p = cal.RedisProfile()
        assert p.instance_qps * p.instances == pytest.approx(p.cluster_qps)


class TestDieselAnchor:
    def test_snapshot_lookup_from_fig10b(self):
        """8.83M QPS per 16-thread node ⇒ 1.81µs per lookup."""
        p = cal.DieselProfile()
        node_qps = 16 / p.client_meta_lookup_s
        assert node_qps == pytest.approx(8.83e6, rel=0.05)

    def test_five_servers_reach_redis_cap(self):
        """Fig 10a: five DIESEL servers ≈ the 0.97M QPS Redis cap."""
        assert 5 * cal.DieselProfile().server_meta_qps == pytest.approx(
            970_000, rel=0.10
        )

    def test_put_cost_from_fig9(self):
        """Fig 9: ~2M 4KB DL_puts/s over 64 procs ⇒ ~30µs per file."""
        p = cal.DieselProfile()
        per_put = p.client_put_overhead_s + 4 * cal.KB * p.client_put_per_byte_s
        assert 64 / per_put == pytest.approx(2.0e6, rel=0.4)


class TestModelZoo:
    def test_four_paper_models_present(self):
        assert set(cal.MODEL_ZOO) == {"alexnet", "vgg11", "resnet18",
                                      "resnet50"}

    def test_compute_ordering(self):
        z = cal.MODEL_ZOO
        assert z["alexnet"].compute_s < z["resnet18"].compute_s
        assert z["resnet18"].compute_s < z["resnet50"].compute_s

    def test_resnet50_total_in_paper_range(self):
        """§6.6: 90-epoch totals between 29h (DIESEL) and 66h (Lustre)."""
        compute_h = 90 * 5005 * cal.MODEL_ZOO["resnet50"].compute_s / 3600
        assert 25 < compute_h < 40  # pure compute near the DIESEL total


class TestProfileHygiene:
    def test_all_profiles_frozen(self):
        for profile in (
            cal.NvmeProfile(), cal.HddProfile(), cal.NetworkProfile(),
            cal.RpcProfile(), cal.LustreProfile(), cal.MemcachedProfile(),
            cal.RedisProfile(), cal.DieselProfile(), cal.FuseProfile(),
            cal.Calibration(),
        ):
            assert dataclasses.is_dataclass(profile)
            with pytest.raises(dataclasses.FrozenInstanceError):
                object.__setattr__  # noqa: B018 - reference only
                setattr(profile, list(dataclasses.asdict(profile))[0], 0)

    def test_default_bundle_consistency(self):
        assert cal.DEFAULT.redis.instances == 16  # Table 4's Redis cluster
        assert cal.DEFAULT.network.bandwidth_bps == pytest.approx(12.5e9)
