"""Tests for the heartbeat/probe failure detector."""

import pytest

from repro.errors import SimulationError
from repro.ft import ALIVE, DEAD, SUSPECT, FailureDetector
from repro.sim import Environment


class Peer:
    """A minimal watchable target."""

    def __init__(self, up=True):
        self.up = up


def make(interval=0.05, timeout=0.25):
    env = Environment()
    det = FailureDetector(
        env, heartbeat_interval_s=interval, failure_timeout_s=timeout
    )
    return env, det


class TestStateMachine:
    def test_healthy_peer_stays_alive_with_no_events(self):
        env, det = make()
        det.watch("p", Peer())
        det.start()
        env.run(until=2.0)
        assert det.state("p") == ALIVE
        assert det.events == []

    def test_dead_peer_goes_suspect_then_dead(self):
        env, det = make(interval=0.05, timeout=0.25)
        peer = Peer()
        det.watch("p", peer)
        det.start()
        env.run(until=0.11)
        peer.up = False
        env.run(until=0.2)
        assert det.state("p") == SUSPECT
        env.run(until=1.0)
        assert det.state("p") == DEAD
        assert det.dead_peers() == ["p"]
        states = [s for _, n, s in det.events if n == "p"]
        assert states == [SUSPECT, DEAD]

    def test_detection_latency_bounded_by_timeout_plus_interval(self):
        env, det = make(interval=0.05, timeout=0.25)
        peer = Peer()
        det.watch("p", peer)
        det.start()
        env.run(until=0.11)
        peer.up = False
        env.run(until=2.0)
        lat = det.detection_latency_s("p")
        assert 0.25 <= lat <= 0.25 + 0.05 + 1e-9

    def test_recovered_peer_transitions_back_to_alive(self):
        env, det = make()
        peer = Peer()
        det.watch("p", peer)
        det.start()
        env.run(until=0.11)
        peer.up = False
        env.run(until=1.0)
        assert det.state("p") == DEAD
        peer.up = True
        env.run(until=1.2)
        assert det.state("p") == ALIVE
        states = [s for _, n, s in det.events if n == "p"]
        assert states == [SUSPECT, DEAD, ALIVE]

    def test_transition_callbacks_fire_in_order(self):
        env, det = make()
        peer = Peer()
        det.watch("p", peer)
        seen = []
        det.on_transition(lambda name, state, at: seen.append((name, state)))
        det.start()
        peer.up = False
        env.run(until=1.0)
        assert seen == [("p", SUSPECT), ("p", DEAD)]


class TestReportFailure:
    def test_report_makes_alive_peer_suspect_immediately(self):
        env, det = make()
        peer = Peer()
        det.watch("p", peer)
        det.start()
        env.run(until=0.11)
        peer.up = False
        # No heartbeat has seen the death yet; a data-path report
        # flips the state without waiting for the next probe.
        det.report_failure("p")
        assert det.state("p") == SUSPECT

    def test_report_after_grace_window_declares_dead(self):
        env, det = make(interval=0.05, timeout=0.25)
        peer = Peer()
        det.watch("p", peer)  # last successful probe: now (t=0)
        # Detector not started: only data-path reports drive the state.
        peer.up = False
        det.report_failure("p")
        assert det.state("p") == SUSPECT  # within the grace window
        # Advance past the grace window, then report again.
        env.run(until=0.3)
        det.report_failure("p")
        assert det.state("p") == DEAD

    def test_unknown_and_dead_names_are_ignored(self):
        env, det = make()
        det.report_failure("nobody")  # must not raise
        peer = Peer(up=False)
        det.watch("p", peer)
        det.start()
        env.run(until=1.0)
        assert det.state("p") == DEAD
        det.report_failure("p")  # already dead: no extra event
        assert [s for _, _, s in det.events].count(DEAD) == 1


class TestLifecycle:
    def test_duplicate_watch_rejected(self):
        _, det = make()
        det.watch("p", Peer())
        with pytest.raises(ValueError):
            det.watch("p", Peer())

    def test_unwatch_stops_probing(self):
        env, det = make()
        peer = Peer()
        det.watch("p", peer)
        det.start()
        det.unwatch("p")
        peer.up = False
        env.run(until=1.0)
        assert det.events == []
        assert det.watched() == []
        det.unwatch("p")  # idempotent

    def test_stop_lets_the_simulation_drain(self):
        env, det = make()
        det.watch("p", Peer())
        det.start()
        env.run(until=0.2)
        det.stop()
        env.run()  # would never return with the loop still scheduled
        assert not det.running

    def test_double_start_rejected(self):
        _, det = make()
        det.start()
        with pytest.raises(SimulationError):
            det.start()

    def test_bad_intervals_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            FailureDetector(env, heartbeat_interval_s=0.0)
        with pytest.raises(ValueError):
            FailureDetector(
                env, heartbeat_interval_s=0.1, failure_timeout_s=0.1
            )


def probe_times(det, env, until):
    """Run the detector, recording the sim time of every probe round."""
    times = []
    original = det.probe_now

    def recording():
        times.append(env.now)
        original()

    det.probe_now = recording
    det.start()
    env.run(until=until)
    det.stop()
    return times


class TestHeartbeatJitter:
    def test_zero_jitter_keeps_fixed_interval_schedule(self):
        env = Environment()
        det = FailureDetector(env, heartbeat_interval_s=0.05, jitter=0.0)
        det.watch("p", Peer())
        times = probe_times(det, env, until=0.5)
        assert times == pytest.approx([0.05 * (i + 1) for i in range(len(times))])
        assert len(times) >= 9

    def test_jittered_schedule_is_seeded_and_deterministic(self):
        def schedule(seed):
            env = Environment()
            det = FailureDetector(
                env, heartbeat_interval_s=0.05, jitter=0.3, seed=seed
            )
            det.watch("p", Peer())
            return probe_times(det, env, until=0.5)

        a, b = schedule(7), schedule(7)
        assert a == b  # same seed: byte-identical probe schedule
        assert schedule(7) != schedule(8)

    def test_jittered_gaps_stay_within_the_band(self):
        env = Environment()
        det = FailureDetector(env, heartbeat_interval_s=0.05, jitter=0.2)
        det.watch("p", Peer())
        times = probe_times(det, env, until=1.0)
        gaps = [b - a for a, b in zip([0.0] + times, times)]
        assert all(0.05 * 0.8 - 1e-12 <= g <= 0.05 * 1.2 + 1e-12 for g in gaps)
        # De-synchronized: not every round lands on the exact interval.
        assert any(abs(g - 0.05) > 1e-9 for g in gaps)

    def test_jitter_does_not_break_detection(self):
        env = Environment()
        det = FailureDetector(
            env,
            heartbeat_interval_s=0.05,
            failure_timeout_s=0.25,
            jitter=0.4,
        )
        peer = Peer()
        det.watch("p", peer)
        det.start()
        env.run(until=0.11)
        peer.up = False
        env.run(until=2.0)
        assert det.state("p") == DEAD

    def test_bad_jitter_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            FailureDetector(env, jitter=1.0)
        with pytest.raises(ValueError):
            FailureDetector(env, jitter=-0.1)
