"""Tests for the per-peer circuit breaker state machine."""

import pytest

from repro.ft import CircuitBreaker
from repro.ft.breaker import CLOSED, HALF_OPEN, OPEN
from repro.sim import Environment


def make(threshold=3, reset_s=1.0):
    env = Environment()
    return env, CircuitBreaker(env, threshold=threshold, reset_s=reset_s)


class TestBreaker:
    def test_starts_closed_and_allows(self):
        _, b = make()
        assert b.state == CLOSED
        assert b.allow()

    def test_trips_after_threshold_consecutive_failures(self):
        _, b = make(threshold=3)
        b.record_failure()
        b.record_failure()
        assert b.state == CLOSED
        b.record_failure()
        assert b.state == OPEN
        assert b.trips == 1
        assert not b.allow()
        assert b.rejections == 1

    def test_success_resets_the_failure_streak(self):
        _, b = make(threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == CLOSED  # streak broken: 1+1 non-consecutive

    def test_half_open_after_reset_window(self):
        env, b = make(threshold=1, reset_s=1.0)
        b.record_failure()
        assert b.state == OPEN
        env.run(until=1.5)
        assert b.state == HALF_OPEN

    def test_half_open_allows_exactly_one_probe(self):
        env, b = make(threshold=1, reset_s=1.0)
        b.record_failure()
        env.run(until=1.5)
        assert b.allow()       # the probe
        assert not b.allow()   # concurrent calls still rejected

    def test_probe_success_closes(self):
        env, b = make(threshold=1, reset_s=1.0)
        b.record_failure()
        env.run(until=1.5)
        assert b.allow()
        b.record_success()
        assert b.state == CLOSED
        assert b.allow()

    def test_probe_failure_reopens_for_a_fresh_window(self):
        env, b = make(threshold=1, reset_s=1.0)
        b.record_failure()
        env.run(until=1.5)
        assert b.allow()
        b.record_failure()
        assert b.state == OPEN
        assert b.trips == 2
        env.run(until=2.0)  # 0.5s into the new window: still open
        assert b.state == OPEN
        env.run(until=2.6)
        assert b.state == HALF_OPEN

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            CircuitBreaker(env, threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(env, reset_s=0.0)
