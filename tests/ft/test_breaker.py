"""Tests for the per-peer circuit breaker state machine."""

import pytest

from repro.ft import CircuitBreaker
from repro.ft.breaker import CLOSED, HALF_OPEN, OPEN
from repro.sim import Environment


def make(threshold=3, reset_s=1.0):
    env = Environment()
    return env, CircuitBreaker(env, threshold=threshold, reset_s=reset_s)


class TestBreaker:
    def test_starts_closed_and_allows(self):
        _, b = make()
        assert b.state == CLOSED
        assert b.allow()

    def test_trips_after_threshold_consecutive_failures(self):
        _, b = make(threshold=3)
        b.record_failure()
        b.record_failure()
        assert b.state == CLOSED
        b.record_failure()
        assert b.state == OPEN
        assert b.trips == 1
        assert not b.allow()
        assert b.rejections == 1

    def test_success_resets_the_failure_streak(self):
        _, b = make(threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == CLOSED  # streak broken: 1+1 non-consecutive

    def test_half_open_after_reset_window(self):
        env, b = make(threshold=1, reset_s=1.0)
        b.record_failure()
        assert b.state == OPEN
        env.run(until=1.5)
        assert b.state == HALF_OPEN

    def test_half_open_allows_exactly_one_probe(self):
        env, b = make(threshold=1, reset_s=1.0)
        b.record_failure()
        env.run(until=1.5)
        assert b.allow()       # the probe
        assert not b.allow()   # concurrent calls still rejected

    def test_probe_success_closes(self):
        env, b = make(threshold=1, reset_s=1.0)
        b.record_failure()
        env.run(until=1.5)
        assert b.allow()
        b.record_success()
        assert b.state == CLOSED
        assert b.allow()

    def test_probe_failure_reopens_for_a_fresh_window(self):
        env, b = make(threshold=1, reset_s=1.0)
        b.record_failure()
        env.run(until=1.5)
        assert b.allow()
        b.record_failure()
        assert b.state == OPEN
        assert b.trips == 2
        env.run(until=2.0)  # 0.5s into the new window: still open
        assert b.state == OPEN
        env.run(until=2.6)
        assert b.state == HALF_OPEN

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            CircuitBreaker(env, threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(env, reset_s=0.0)


class TestAttemptTokens:
    """Stale stragglers — calls admitted before a trip — carry no news."""

    def test_allow_returns_distinct_truthy_tokens(self):
        _, b = make()
        t1, t2 = b.allow(), b.allow()
        assert t1 and t2 and t1 != t2

    def test_pre_open_straggler_cannot_retrip_recovered_breaker(self):
        env, b = make(threshold=2, reset_s=1.0)
        straggler = b.allow()       # slow call admitted while healthy
        b.record_failure(b.allow())
        b.record_failure(b.allow())
        assert b.state == OPEN
        env.run(until=1.5)
        probe = b.allow()
        b.record_success(probe)
        assert b.state == CLOSED
        # The straggler's failure finally lands — the trip already priced
        # that peer in, so the recovered breaker must stay closed.
        b.record_failure(straggler)
        assert b.state == CLOSED
        assert b.trips == 1
        assert b.stale_reports == 1

    def test_stale_failure_does_not_restart_open_window(self):
        env, b = make(threshold=1, reset_s=1.0)
        straggler = b.allow()
        b.record_failure(b.allow())
        assert b.state == OPEN
        env.run(until=0.8)
        b.record_failure(straggler)  # lands mid-window
        assert b.stale_reports == 1
        env.run(until=1.2)
        # Window measured from the original trip, not the stale report.
        assert b.state == HALF_OPEN
        assert b.trips == 1

    def test_non_probe_failure_while_open_is_stale(self):
        env, b = make(threshold=1, reset_s=1.0)
        b.record_failure(b.allow())
        env.run(until=1.5)
        probe = b.allow()
        # A different in-flight call (admitted this window via no token
        # path is legacy; here simulate a post-trip token that is not the
        # probe) failing must not count as the probe's outcome.
        b.record_failure(probe + 1000)
        assert b.state == HALF_OPEN
        assert b.stale_reports == 1
        b.record_success(probe)
        assert b.state == CLOSED

    def test_tokenless_failure_keeps_legacy_behaviour(self):
        env, b = make(threshold=1, reset_s=1.0)
        b.record_failure(b.allow())
        env.run(until=1.5)
        assert b.allow()
        b.record_failure()  # legacy caller: counts as the probe failing
        assert b.state == OPEN
        assert b.trips == 2

    def test_stale_success_still_closes(self):
        env, b = make(threshold=1, reset_s=1.0)
        straggler = b.allow()
        b.record_failure(b.allow())
        assert b.state == OPEN
        b.record_success(straggler)  # the peer answered: it is reachable
        assert b.state == CLOSED
