"""Tests for retry policies, backoff, deadlines, and retry_call."""

import random

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    NodeDownError,
)
from repro.ft import CircuitBreaker, RetryPolicy, retry_call, run_with_deadline
from repro.sim import Environment, run_sync


def flaky(env, log, fail_first, delay=0.01):
    """Factory of attempt generators that fail the first N tries."""

    def attempt():
        def gen():
            yield env.timeout(delay)
            log.append(env.now)
            if len(log) <= fail_first:
                raise NodeDownError("peer")
            return "ok"

        return gen()

    return attempt


class TestBackoff:
    def test_exponential_growth_capped(self):
        p = RetryPolicy(backoff_base_s=0.01, backoff_max_s=0.05, jitter=0.0)
        assert p.backoff_s(0) == pytest.approx(0.01)
        assert p.backoff_s(1) == pytest.approx(0.02)
        assert p.backoff_s(2) == pytest.approx(0.04)
        assert p.backoff_s(3) == pytest.approx(0.05)  # capped
        assert p.backoff_s(10) == pytest.approx(0.05)

    def test_jitter_is_bounded_and_deterministic(self):
        p = RetryPolicy(backoff_base_s=0.01, backoff_max_s=1.0, jitter=0.5)
        a = [p.backoff_s(2, random.Random(7)) for _ in range(20)]
        b = [p.backoff_s(2, random.Random(7)) for _ in range(20)]
        assert a == b  # same seed, same delays
        for d in a:
            assert 0.02 <= d <= 0.06  # 0.04 * [0.5, 1.5]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=0.1, backoff_max_s=0.01)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=-1)

    def test_from_config_maps_fields(self):
        from repro.core.config import DieselConfig

        cfg = DieselConfig(rpc_retries=5, rpc_backoff_base_s=0.01,
                           rpc_deadline_s=0.5)
        p = RetryPolicy.from_config(cfg)
        assert (p.retries, p.backoff_base_s, p.deadline_s) == (5, 0.01, 0.5)


class TestRetryCall:
    def test_transient_failures_are_retried_to_success(self):
        env = Environment()
        log = []
        p = RetryPolicy(retries=3, backoff_base_s=0.01, jitter=0.0)
        out = run_sync(env, retry_call(env, p, flaky(env, log, fail_first=2)))
        assert out == "ok"
        assert len(log) == 3
        # Elapsed: 3 attempts x 0.01 + backoffs 0.01 + 0.02.
        assert env.now == pytest.approx(0.06)

    def test_exhaustion_raises_the_last_error(self):
        env = Environment()
        log = []
        p = RetryPolicy(retries=2, backoff_base_s=0.01, jitter=0.0)
        with pytest.raises(NodeDownError):
            run_sync(env, retry_call(env, p, flaky(env, log, fail_first=99)))
        assert len(log) == 3  # 1 try + 2 retries

    def test_non_transient_error_propagates_immediately(self):
        env = Environment()

        def attempt():
            def gen():
                yield env.timeout(0.01)
                raise ValueError("bug, not an outage")

            return gen()

        p = RetryPolicy(retries=5, backoff_base_s=0.01)
        with pytest.raises(ValueError):
            run_sync(env, retry_call(env, p, attempt))
        assert env.now == pytest.approx(0.01)  # single attempt, no backoff

    def test_synchronously_raising_factory_is_retried(self):
        env = Environment()
        calls = []

        def attempt():
            calls.append(env.now)
            if len(calls) == 1:
                raise NodeDownError("peer")  # e.g. an up-front up check

            def gen():
                yield env.timeout(0.01)
                return "late ok"

            return gen()

        p = RetryPolicy(retries=1, backoff_base_s=0.01, jitter=0.0)
        assert run_sync(env, retry_call(env, p, attempt)) == "late ok"
        assert len(calls) == 2

    def test_zero_retries_is_single_attempt(self):
        env = Environment()
        log = []
        p = RetryPolicy(retries=0, backoff_base_s=0.01)
        with pytest.raises(NodeDownError):
            run_sync(env, retry_call(env, p, flaky(env, log, fail_first=1)))
        assert len(log) == 1


class TestDeadline:
    def test_fast_call_passes_value_through(self):
        env = Environment()

        def gen():
            yield env.timeout(0.01)
            return 42

        assert run_sync(env, run_with_deadline(env, gen(), 1.0)) == 42

    def test_slow_call_is_abandoned(self):
        env = Environment()
        released = []

        def gen():
            try:
                yield env.timeout(10.0)
            finally:
                released.append(env.now)

        with pytest.raises(DeadlineExceededError):
            run_sync(env, run_with_deadline(env, gen(), 0.1))
        assert env.now == pytest.approx(0.1)
        env.run()  # drain the interrupt delivery to the abandoned child
        assert released == [pytest.approx(0.1)]  # finally ran: no leak

    def test_child_failure_propagates_unchanged(self):
        env = Environment()

        def gen():
            yield env.timeout(0.01)
            raise NodeDownError("peer")

        with pytest.raises(NodeDownError):
            run_sync(env, run_with_deadline(env, gen(), 1.0))

    def test_deadline_failures_are_retryable(self):
        env = Environment()
        tries = []

        def attempt():
            def gen():
                tries.append(env.now)
                if len(tries) == 1:
                    yield env.timeout(10.0)  # hangs: deadline fires
                else:
                    yield env.timeout(0.01)
                return "recovered"

            return gen()

        p = RetryPolicy(retries=1, backoff_base_s=0.01, jitter=0.0,
                        deadline_s=0.1)
        assert run_sync(env, retry_call(env, p, attempt)) == "recovered"
        # deadline 0.1 + backoff 0.01 + second attempt 0.01.
        assert env.now == pytest.approx(0.12)


class TestBreakerIntegration:
    def test_open_breaker_fast_fails_without_attempting(self):
        env = Environment()
        breaker = CircuitBreaker(env, threshold=1, reset_s=10.0)
        breaker.record_failure()  # trip it
        log = []
        p = RetryPolicy(retries=3, backoff_base_s=0.01)
        with pytest.raises(CircuitOpenError):
            run_sync(env, retry_call(env, p, flaky(env, log, 0),
                                     breaker=breaker))
        assert log == []  # no attempt paid
        assert env.now == 0.0

    def test_success_closes_the_breaker(self):
        env = Environment()
        breaker = CircuitBreaker(env, threshold=3, reset_s=10.0)
        log = []
        p = RetryPolicy(retries=3, backoff_base_s=0.01, jitter=0.0)
        run_sync(env, retry_call(env, p, flaky(env, log, fail_first=2),
                                 breaker=breaker))
        assert breaker.state == "closed"
        assert breaker.trips == 0  # 2 failures < threshold, then success
