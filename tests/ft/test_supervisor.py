"""End-to-end self-healing: detector-driven cache + KV recovery."""

import pytest

from repro.core.dist_cache import CacheClient, TaskCache
from repro.core.recovery import verify_rebuild
from repro.ft import CacheSupervisor, FailureDetector, KVSupervisor, SUSPECT
from tests.core.conftest import build_deployment, small_files, write_dataset


def cache_rig(n_nodes=3, n_files=24, interval=0.02, timeout=0.05):
    dep = build_deployment(n_client_nodes=n_nodes)
    files = small_files(n_files, size=2048)
    writer = write_dataset(dep, "ds", files, chunk_size=8 * 1024)

    def load():
        blob = yield from writer.save_meta()
        yield from writer.load_meta(blob)

    dep.run(load())
    clients = [
        CacheClient(f"cc{i}", node, i)
        for i, node in enumerate(dep.client_nodes)
    ]
    cache = TaskCache(dep.env, dep.fabric, dep.server, "ds", clients)
    dep.run(cache.register())
    dep.run(cache.wait_warm())
    det = FailureDetector(dep.env, heartbeat_interval_s=interval,
                          failure_timeout_s=timeout)
    sup = CacheSupervisor(det, cache, fanout=2)
    det.start()
    return dep, cache, clients, files, writer.index, det, sup


class TestCacheSupervisor:
    def test_master_death_heals_with_no_operator_call(self):
        dep, cache, clients, files, index, det, sup = cache_rig()
        victim_node = dep.client_nodes[0]
        assert victim_node.name in cache.masters

        def scenario():
            yield dep.env.timeout(0.05)
            victim_node.kill()
            # Give the detector + healing process room to run.
            yield dep.env.timeout(2.0)

        dep.run(scenario())
        det.stop()
        dep.env.run()
        # The dead master was evicted and its chunks re-partitioned.
        assert victim_node.name not in cache.masters
        assert len(sup.recoveries) == 1
        assert sup.recoveries[0]["chunks_reloaded"] > 0
        # Every chunk is cached again on a live survivor.
        assert cache.cached_chunks() == len(index.chunk_ids())
        assert det.detection_latency_s("cache:cc0") is not None

    def test_reads_keep_succeeding_through_the_whole_episode(self):
        dep, cache, clients, files, index, det, sup = cache_rig()
        victim_node = dep.client_nodes[0]
        reader = next(c for c in clients
                      if c.node.name != victim_node.name)
        outcomes = {"ok": 0}

        def read_loop():
            for sweep in range(6):
                if sweep == 1:
                    victim_node.kill()
                for path, expected in files.items():
                    data = yield from cache.read_file(reader,
                                                      index.lookup(path))
                    assert data == expected
                    outcomes["ok"] += 1
                yield dep.env.timeout(0.05)

        dep.run(read_loop())
        det.stop()
        dep.env.run()
        assert outcomes["ok"] == 6 * len(files)
        assert len(sup.recoveries) == 1

    def test_inflight_failure_reports_into_the_detector(self):
        dep, cache, clients, files, index, det, sup = cache_rig(
            interval=10.0, timeout=20.0  # probes effectively never fire
        )
        victim_node = dep.client_nodes[0]
        victim_node.kill()
        reader = next(c for c in clients
                      if c.node.name != victim_node.name)
        victim_chunks = {
            cid for cid, m in cache._owner_of.items()
            if m.node.name == victim_node.name
        }
        path = next(p for p in files
                    if index.lookup(p).chunk_id.encode() in victim_chunks)

        def read():
            data = yield from cache.read_file(reader, index.lookup(path))
            return data

        assert dep.run(read()) == files[path]
        # No heartbeat ran, yet the failed read flagged the master.
        assert det.state("cache:cc0") == SUSPECT
        det.stop()


class TestKVSupervisor:
    def heal_rig(self, restart_delay=0.1):
        dep = build_deployment()
        files = small_files(30, size=1024)
        write_dataset(dep, "ds", files, chunk_size=8 * 1024)
        det = FailureDetector(dep.env, heartbeat_interval_s=0.05,
                              failure_timeout_s=0.2)
        sup = KVSupervisor(det, dep.server, dep.kv, ["ds"],
                           restart_delay_s=restart_delay)
        det.start()
        return dep, files, det, sup

    def test_shard_loss_is_restarted_and_rebuilt(self):
        dep, files, det, sup = self.heal_rig()
        victim = dep.kv.instances[1]
        keys_before = dep.kv.total_keys()

        def scenario():
            yield dep.env.timeout(0.1)
            victim.node.kill()
            yield dep.env.timeout(3.0)

        dep.run(scenario())
        det.stop()
        dep.env.run()  # drain the rebuild process
        assert victim.up  # auto-restarted
        assert len(sup.rebuilds) == 1
        assert sup.rebuilds[0]["shards"] == ["kv:kv1"]
        assert sup.rebuilds[0]["chunks_scanned"] > 0
        # Scenario (a): replay starts from the last-known-good second.
        assert sup.rebuilds[0]["from_timestamp"] == 0
        # Metadata is whole again: every pair replayed, nothing missing.
        assert dep.kv.total_keys() == keys_before
        expected = {p: len(b) for p, b in files.items()}
        assert verify_rebuild(dep.server, "ds", expected) == []

    def test_no_auto_restart_defers_until_operator_restore(self):
        dep = build_deployment()
        files = small_files(20, size=1024)
        write_dataset(dep, "ds", files, chunk_size=8 * 1024)
        det = FailureDetector(dep.env, heartbeat_interval_s=0.05,
                              failure_timeout_s=0.2)
        sup = KVSupervisor(det, dep.server, dep.kv, ["ds"],
                           auto_restart=False)
        det.start()
        victim = dep.kv.instances[2]

        def scenario():
            yield dep.env.timeout(0.1)
            victim.node.kill()
            yield dep.env.timeout(1.0)
            assert not victim.up  # supervisor did not touch it
            assert sup.rebuilds == []
            # Operator brings it back; the supervisor takes over.
            victim.node.restore()
            victim.restart()
            yield dep.env.timeout(2.0)

        dep.run(scenario())
        det.stop()
        dep.env.run()
        assert len(sup.rebuilds) == 1
        expected = {p: len(b) for p, b in files.items()}
        assert verify_rebuild(dep.server, "ds", expected) == []

    def test_restart_validation(self):
        dep = build_deployment()
        det = FailureDetector(dep.env)
        with pytest.raises(ValueError):
            KVSupervisor(det, dep.server, dep.kv, ["ds"],
                         restart_delay_s=-1.0)


class TestSharedTierRecovery:
    def shared_rig(self, n_nodes=3, n_files=24):
        from repro.core.shared_cache import SharedCacheRegistry

        dep = build_deployment(n_client_nodes=n_nodes)
        files = small_files(n_files, size=2048)
        writer = write_dataset(dep, "ds", files, chunk_size=8 * 1024)

        def load():
            blob = yield from writer.save_meta()
            yield from writer.load_meta(blob)

        dep.run(load())
        registry = SharedCacheRegistry(dep.env)
        det = FailureDetector(dep.env, heartbeat_interval_s=0.02,
                              failure_timeout_s=0.05)
        caches, sups = [], []
        for t in range(2):
            clients = [
                CacheClient(f"t{t}cc{i}", node, i)
                for i, node in enumerate(dep.client_nodes)
            ]
            cache = TaskCache(dep.env, dep.fabric, dep.server, "ds",
                              clients, shared=registry)
            dep.run(cache.register())
            dep.run(cache.wait_warm())
            caches.append(cache)
            sups.append(CacheSupervisor(det, cache, fanout=2))
        det.start()
        return dep, registry, caches, sups, files, writer.index, det

    def test_healing_restores_refcounts_without_duplicate_fetches(self):
        dep, registry, caches, sups, files, index, det = self.shared_rig()
        n_chunks = len(index.chunk_ids())
        victim = dep.client_nodes[0]
        dead_chunks = caches[0].masters[victim.name].cached_chunk_count

        def scenario():
            yield dep.env.timeout(0.05)
            fetches = dep.server.stats.chunk_reads
            victim.kill()
            yield dep.env.timeout(2.0)
            return dep.server.stats.chunk_reads - fetches

        refetched = dep.run(scenario())
        det.stop()
        dep.env.run()
        # Both supervisors healed; the dead node's chunks were fetched
        # from the backend exactly once (the second heal warm-admitted).
        assert all(len(s.recoveries) == 1 for s in sups)
        assert refetched == dead_chunks
        s = registry.stats
        assert s.refs == 2 * n_chunks
        assert s.chunks_resident == n_chunks
        # The recovery records attribute the re-pull per shared layer.
        # The two heal windows overlap, so each record sees the union of
        # both tasks' admissions: the dead chunks fetched cold exactly
        # once, plus the other task's warm refcount rebuild.
        recs = [s.recoveries[0] for s in sups]
        for r in recs:
            assert r["shared_cold_admissions"] == dead_chunks
            assert r["shared_warm_admissions"] == dead_chunks
            assert (r["shared_cold_admissions"]
                    + r["shared_warm_admissions"]
                    >= r["chunks_reloaded"])


class TestDiskTierRecovery:
    def _tiered_rig(self, ram_bytes=4 * 1024):
        """Shared tiered registry over two small-memory compute nodes.

        One node is drained so every chunk it admits overflows to the
        simulated NVMe tier — the residency that must survive a crash.
        """
        from repro.cluster.node import Node
        from repro.core.shared_cache import SharedCacheRegistry

        dep = build_deployment(n_client_nodes=1)
        files = small_files(24, size=2048)
        writer = write_dataset(dep, "ds", files, chunk_size=8 * 1024)

        def load():
            blob = yield from writer.save_meta()
            yield from writer.load_meta(blob)

        dep.run(load())
        registry = SharedCacheRegistry(dep.env, store="tiered")
        t0 = dep.fabric.add_node(Node(dep.env, "tier0"))
        t1 = dep.fabric.add_node(Node(dep.env, "tier1"))

        def drain():  # tier1 has no RAM to spare: admissions go to disk
            yield t1.memory.get(t1.memory.level - 64)

        dep.run(drain())
        clients = [CacheClient("cc0", t0, 0), CacheClient("cc1", t1, 1)]
        cache = TaskCache(dep.env, dep.fabric, dep.server, "ds", clients,
                          shared=registry)
        dep.run(cache.register())
        dep.run(cache.wait_warm())
        return dep, registry, cache, clients, files, writer.index, t1

    def test_disk_tier_survives_crash_and_supervised_restart(self):
        dep, registry, cache, clients, files, index, t1 = self._tiered_rig()
        tier1 = registry.for_node(t1)
        disk_before = tier1.store.stats.chunks_disk
        assert disk_before > 0  # the drained node overflowed to disk

        det = FailureDetector(dep.env, heartbeat_interval_s=0.02,
                              failure_timeout_s=0.05)
        sup = CacheSupervisor(det, cache, fanout=2)
        det.start()

        def scenario():
            yield dep.env.timeout(0.05)
            t1.kill()
            yield dep.env.timeout(2.0)

        dep.run(scenario())
        det.stop()
        dep.env.run()
        assert len(sup.recoveries) == 1
        assert t1.name not in cache.masters
        # The crash forgot tier1's RAM residency but kept its disk tier.
        assert tier1.store.stats.chunks_disk == disk_before
        assert tier1.stats.chunks_resident == disk_before

        # Node restarts; a fresh task re-registers over both nodes.
        t1.restore()
        clients2 = [CacheClient("r0", clients[0].node, 0),
                    CacheClient("r1", t1, 1)]
        cache2 = TaskCache(dep.env, dep.fabric, dep.server, "ds", clients2,
                           shared=registry)
        fetches = dep.server.stats.chunk_reads
        dep.run(cache2.register())
        dep.run(cache2.wait_warm())
        # Every chunk was resident somewhere (tier0 RAM after the heal,
        # tier1 disk across the restart): zero backend re-fetches.
        assert dep.server.stats.chunk_reads == fetches
        assert cache2.cached_chunks() == len(index.chunk_ids())

        # Reads through the restarted node come off its disk tier.
        hits_before = registry.store_stats.disk_hits

        def epoch():
            for path, expected in files.items():
                data = yield from cache2.read_file(clients2[1],
                                                   index.lookup(path))
                assert data == expected

        dep.run(epoch())
        assert registry.store_stats.disk_hits > hits_before
        assert cache2.stats.disk_hits > 0
