"""Tests for hedged reads and the per-peer EWMA latency tracker."""

import pytest

from repro.errors import InterruptError
from repro.ft.hedge import HedgeStats, PeerLatencyTracker, hedged_call
from repro.sim import Environment, Semaphore


class TestPeerLatencyTracker:
    def test_first_sample_seeds_mean_and_half_deviation(self):
        t = PeerLatencyTracker()
        t.observe("p", 0.010)
        assert t.mean("p") == pytest.approx(0.010)
        assert t.deviation("p") == pytest.approx(0.005)
        assert t.samples("p") == 1

    def test_jacobson_update(self):
        t = PeerLatencyTracker(alpha=0.5)
        t.observe("p", 0.010)  # mean=0.010 dev=0.005
        t.observe("p", 0.020)
        # err = 0.010; mean += 0.5*err; dev += 0.5*(|err| - dev)
        assert t.mean("p") == pytest.approx(0.015)
        assert t.deviation("p") == pytest.approx(0.0075)

    def test_hedge_delay_needs_min_samples(self):
        t = PeerLatencyTracker(alpha=1.0, dev_mult=4.0, min_samples=3)
        t.observe("p", 0.010)
        assert t.hedge_delay("p") is None
        t.observe("p", 0.010)
        assert t.hedge_delay("p") is None
        t.observe("p", 0.010)
        # alpha=1: mean=0.010, dev=0.0 after identical samples
        assert t.hedge_delay("p") == pytest.approx(0.010)

    def test_hedge_delay_applies_floor(self):
        t = PeerLatencyTracker(min_samples=1)
        t.observe("p", 0.001)
        assert t.hedge_delay("p", floor_s=0.5) == 0.5

    def test_unknown_peer_has_no_estimate(self):
        t = PeerLatencyTracker()
        assert t.mean("ghost") is None
        assert t.deviation("ghost") is None
        assert t.hedge_delay("ghost") is None
        assert t.samples("ghost") == 0

    def test_fastest_prefers_unobserved_then_lowest_mean(self):
        t = PeerLatencyTracker(min_samples=1)
        t.observe("slow", 0.100)
        t.observe("quick", 0.001)
        assert t.fastest(["slow", "quick"]) == "quick"
        # A never-observed peer ranks first (optimistically priced at 0).
        assert t.fastest(["slow", "quick", "new"]) == "new"
        assert t.fastest([]) is None

    def test_rows_sorted_slowest_first(self):
        t = PeerLatencyTracker(min_samples=3)
        t.observe("a", 0.001)
        t.observe("b", 0.100)
        rows = t.rows()
        assert [r["peer"] for r in rows] == ["b", "a"]
        assert rows[0]["samples"] == 1
        assert rows[0]["hedge_delay_s"] is None  # below min_samples

    def test_validation(self):
        with pytest.raises(ValueError):
            PeerLatencyTracker(alpha=0.0)
        with pytest.raises(ValueError):
            PeerLatencyTracker(alpha=1.5)
        with pytest.raises(ValueError):
            PeerLatencyTracker(dev_mult=0.0)
        with pytest.raises(ValueError):
            PeerLatencyTracker(min_samples=0)
        with pytest.raises(ValueError):
            PeerLatencyTracker().observe("p", -1.0)


def call(env, duration, value, log=None, tag="", error=None):
    """A fake remote call: sleep, then return (or raise)."""

    def gen():
        try:
            yield env.timeout(duration)
            if error is not None:
                raise error
            if log is not None:
                log.append((tag, env.now))
            return value
        except InterruptError:
            if log is not None:
                log.append((f"{tag}:cancelled", env.now))
            raise

    return gen


def drive(env, primary, backup, delay_s, stats=None):
    """Run one hedged_call to completion; return (outcome, error)."""
    box = {}

    def driver():
        try:
            box["out"] = yield from hedged_call(
                env, primary(), backup, delay_s, stats=stats
            )
        except BaseException as exc:  # noqa: BLE001 - recorded for asserts
            box["err"] = exc
        finally:
            box["t_done"] = env.now

    env.process(driver())
    env.run()
    return box.get("out"), box.get("err"), box["t_done"]


class TestHedgedCall:
    def test_fast_primary_wins_without_hedging(self):
        env = Environment()
        stats = HedgeStats()
        out, err, t_done = drive(
            env, call(env, 0.01, "data"), call(env, 0.01, "dup"), 1.0, stats
        )
        assert err is None
        assert out.winner == "primary"
        assert out.value == "data"
        assert not out.hedged and not out.duplicate
        assert out.primary_latency_s == pytest.approx(0.01)
        assert stats.reads == 1
        assert stats.primary_wins == 1
        assert stats.hedges_fired == 0
        assert stats.cancelled_losers == 0

    def test_backup_wins_and_loser_is_cancelled(self):
        env = Environment()
        stats = HedgeStats()
        log = []
        out, err, t_done = drive(
            env,
            call(env, 10.0, "slow", log, "primary"),
            call(env, 0.05, "fast", log, "backup"),
            0.1,
            stats,
        )
        assert err is None
        assert out.winner == "backup"
        assert out.value == "fast"
        assert out.hedged and not out.duplicate
        assert t_done == pytest.approx(0.15)  # delay + backup, not 10s
        assert stats.hedges_fired == 1
        assert stats.backup_wins == 1
        assert stats.cancelled_losers == 1
        assert stats.duplicate_transfers == 0
        # The straggling primary was torn down, not left running.
        assert ("primary:cancelled", pytest.approx(0.15)) in log

    def test_same_tick_loser_counts_as_duplicate(self):
        env = Environment()
        stats = HedgeStats()
        # Primary completes at exactly delay + backup duration: both land
        # in the same tick, the loser cannot be cancelled any more.
        out, err, t_done = drive(
            env, call(env, 0.2, "p"), call(env, 0.1, "b"), 0.1, stats
        )
        assert err is None
        assert out.winner == "primary"
        assert out.duplicate
        assert stats.duplicate_transfers == 1
        assert stats.cancelled_losers == 0

    def test_primary_failure_before_delay_fires_failover(self):
        env = Environment()
        stats = HedgeStats()
        out, err, t_done = drive(
            env,
            call(env, 0.01, None, error=RuntimeError("peer down")),
            call(env, 0.05, "rescued"),
            1.0,
            stats,
        )
        assert err is None
        assert out.winner == "backup"
        assert out.value == "rescued"
        assert not out.hedged  # failover, not a hedge
        assert isinstance(out.primary_error, RuntimeError)
        assert stats.failovers == 1
        assert stats.primary_failures == 1
        assert stats.hedges_fired == 0

    def test_primary_failure_after_hedge_backup_survives(self):
        env = Environment()
        stats = HedgeStats()
        out, err, t_done = drive(
            env,
            call(env, 0.2, None, error=RuntimeError("late fail")),
            call(env, 0.5, "backup-data"),
            0.1,
            stats,
        )
        assert err is None
        assert out.winner == "backup"
        assert out.value == "backup-data"
        assert stats.hedges_fired == 1
        assert stats.primary_failures == 1
        assert stats.backup_wins == 1

    def test_both_fail_raises_primary_error(self):
        env = Environment()
        stats = HedgeStats()
        primary_err = RuntimeError("primary boom")
        out, err, t_done = drive(
            env,
            call(env, 0.2, None, error=primary_err),
            call(env, 0.3, None, error=RuntimeError("backup boom")),
            0.1,
            stats,
        )
        assert out is None
        assert err is primary_err
        assert stats.primary_failures == 1
        assert stats.backup_failures == 1

    def test_caller_interrupt_tears_down_both_racers(self):
        env = Environment()
        stats = HedgeStats()
        log = []
        box = {}

        def driver():
            try:
                yield from hedged_call(
                    env,
                    call(env, 10.0, "p", log, "primary")(),
                    call(env, 10.0, "b", log, "backup"),
                    0.1,
                    stats=stats,
                )
            except InterruptError as exc:
                box["err"] = exc

        proc = env.process(driver())

        def killer():
            yield env.timeout(0.5)  # after the hedge fired, both in flight
            proc.interrupt("caller gone")

        env.process(killer())
        env.run()
        assert isinstance(box["err"], InterruptError)
        cancelled = {tag for tag, _ in log}
        assert cancelled == {"primary:cancelled", "backup:cancelled"}
        assert stats.hedges_fired == 1


class TestHedgeResourceDiscipline:
    """Satellite: a cancelled loser must not leak slots or pay fetches."""

    def test_cancelled_loser_frees_its_semaphore_slot(self):
        env = Environment()
        # Two slots so the backup can actually race the primary.
        sem = Semaphore(env, slots=2)
        fetches = []

        def guarded(duration, tag):
            def gen():
                slot = sem.acquire()
                try:
                    yield slot
                    yield env.timeout(duration)
                    fetches.append(tag)
                    return tag
                finally:
                    sem.abandon(slot)

            return gen

        out, err, t_done = drive(env, guarded(10.0, "primary"), guarded(0.05, "backup"), 0.1)
        assert err is None
        assert out.winner == "backup"
        # The cancelled primary's finally block released its slot: no
        # duplicate backend fetch was paid and nothing is still held.
        assert fetches == ["backup"]
        assert sem.in_flight == 0
        assert sem.queue_length == 0
        # The freed slot is immediately grantable again.
        assert sem.acquire().triggered

    def test_interrupt_during_hedge_leaves_semaphore_clean(self):
        env = Environment()
        sem = Semaphore(env, slots=2)

        def guarded(duration):
            def gen():
                slot = sem.acquire()
                try:
                    yield slot
                    yield env.timeout(duration)
                    return "done"
                finally:
                    sem.abandon(slot)

            return gen

        def driver():
            try:
                yield from hedged_call(
                    env, guarded(10.0)(), guarded(10.0), 0.1
                )
            except InterruptError:
                pass

        proc = env.process(driver())

        def killer():
            yield env.timeout(0.5)
            proc.interrupt("teardown")

        env.process(killer())
        env.run()
        assert sem.in_flight == 0
        assert sem.queue_length == 0
