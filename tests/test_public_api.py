"""API stability: the documented public surface must exist and import.

Guards against accidental breaks of the names README/DESIGN promise —
the contract a downstream user of this library programs against.
"""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.calibration",
    "repro.errors",
    "repro.util",
    "repro.sim",
    "repro.sim.trace",
    "repro.obs",
    "repro.ft",
    "repro.cluster",
    "repro.rpc",
    "repro.kvstore",
    "repro.objectstore",
    "repro.baselines",
    "repro.core",
    "repro.core.recovery",
    "repro.core.chunk_store",
    "repro.core.shared_cache",
    "repro.core.meta",
    "repro.tools",
    "repro.tools.dlcmd",
    "repro.dlt",
    "repro.dlt.sweep",
    "repro.workloads",
    "repro.workloads.mpi_tool",
    "repro.bench",
    "repro.bench.experiments",
    "repro.bench.metrics",
    "repro.bench.runner",
    "repro.bench.setups",
]


@pytest.mark.parametrize("module", PUBLIC_MODULES)
def test_module_imports(module):
    importlib.import_module(module)


def test_top_level_all_resolves():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_table3_api_surface():
    """Every Table 3 operation exists on the client (by its library name)."""
    from repro.core.client import DieselClient, connect

    for method in ("put", "flush", "get", "stat", "delete", "ls",
                   "save_meta", "load_meta", "enable_shuffle", "close",
                   "purge", "delete_dataset", "get_range", "put_overwrite"):
        assert callable(getattr(DieselClient, method)), method
    assert callable(connect)  # DL_connect


def test_experiment_registry_covers_every_artifact():
    from repro.bench.experiments import ALL_EXPERIMENTS

    assert set(ALL_EXPERIMENTS) == {
        "table2", "fig6", "fig9", "fig10a", "fig10b", "fig10c",
        "fig11a", "fig11b", "fig12", "fig13", "fig14", "fig15",
        "prefetch", "ingest", "fanout", "latency", "faults",
        "locality", "scale", "sharing", "capacity", "elastic",
        "metaplane",
    }


def test_version():
    import repro

    assert repro.__version__ == "1.10.0"


def test_docstrings_on_public_modules():
    for module in PUBLIC_MODULES:
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 20, module
