"""Smoke tests: every shipped example must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed\nstdout:\n{proc.stdout[-2000:]}\n"
        f"stderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "imagenet_training", "fault_tolerance",
            "memory_constrained_shuffle", "dlcmd_workflow"} <= names
