"""Tests for the Lustre baseline model."""

import pytest

from repro.baselines import LustreFS
from repro.calibration import LustreProfile
from repro.cluster import NetworkFabric, Node
from repro.cluster.devices import Device
from repro.errors import FileExistsInDatasetError, FileNotFoundInDatasetError
from repro.sim import Environment, run_sync


def make_lustre(n_mds=1, dne="none", profile=None):
    env = Environment()
    fabric = NetworkFabric(env)
    mds_nodes = [fabric.add_node(Node(env, f"mds{i}")) for i in range(n_mds)]
    client = fabric.add_node(Node(env, "client"))
    oss = Device(env, "oss", per_op_s=60e-6, bandwidth_bps=2.2 * 2**30, queue_depth=32)
    fs = LustreFS(env, fabric, mds_nodes, oss, profile=profile, dne=dne)
    return env, fs, client


class TestFunctional:
    def test_write_read_roundtrip(self):
        env, fs, client = make_lustre()

        def proc(env):
            yield from fs.write_file(client, "/data/a.jpg", b"JPEG-BYTES")
            data = yield from fs.read_file(client, "/data/a.jpg")
            return data

        assert run_sync(env, proc(env)) == b"JPEG-BYTES"

    def test_duplicate_create_rejected(self):
        env, fs, client = make_lustre()

        def proc(env):
            yield from fs.write_file(client, "/a", b"1")
            yield from fs.write_file(client, "/a", b"2")

        with pytest.raises(FileExistsInDatasetError):
            run_sync(env, proc(env))

    def test_read_missing_raises(self):
        env, fs, client = make_lustre()

        def proc(env):
            yield from fs.read_file(client, "/nope")

        with pytest.raises(FileNotFoundInDatasetError):
            run_sync(env, proc(env))

    def test_unlink(self):
        env, fs, client = make_lustre()

        def proc(env):
            yield from fs.write_file(client, "/a", b"1")
            yield from fs.unlink(client, "/a")
            return fs.ns.is_file("/a")

        assert run_sync(env, proc(env)) is False

    def test_readdir_lists_children(self):
        env, fs, client = make_lustre()

        def proc(env):
            yield from fs.write_file(client, "/d/x", b"")
            yield from fs.write_file(client, "/d/y", b"")
            yield from fs.write_file(client, "/d/sub/z", b"")
            entries = yield from fs.readdir(client, "/d")
            return entries

        assert run_sync(env, proc(env)) == ["/d/sub", "/d/x", "/d/y"]

    def test_stat_with_and_without_size(self):
        env, fs, client = make_lustre()

        def proc(env):
            yield from fs.write_file(client, "/f", b"12345")
            quick = yield from fs.stat(client, "/f", with_size=False)
            full = yield from fs.stat(client, "/f", with_size=True)
            return quick, full

        quick, full = run_sync(env, proc(env))
        assert quick["size"] is None  # size lives on the OSS
        assert full["size"] == 5

    def test_ls_recursive_counts(self):
        env, fs, client = make_lustre()

        def proc(env):
            for i in range(3):
                yield from fs.write_file(client, f"/root/c{i}/file", b"x")
            n = yield from fs.ls_recursive(client, "/root")
            return n

        # /root has 3 dirs; each dir has 1 file: 6 entries.
        assert run_sync(env, proc(env)) == 6


class TestCostModel:
    def test_small_writes_are_mds_bound(self):
        """Concurrent small-file writes saturate at roughly mds_qps/create_ops."""
        prof = LustreProfile(mds_qps=1000.0, create_mds_ops=2.0)
        env, fs, client = make_lustre(profile=prof)
        n_writers, per_writer = 64, 5

        def writer(env, w):
            for i in range(per_writer):
                yield from fs.write_file(client, f"/d/w{w}-f{i}", b"x" * 4096)

        procs = [env.process(writer(env, w)) for w in range(n_writers)]
        env.run(until=env.all_of(procs))
        total_files = n_writers * per_writer
        rate = total_files / env.now
        # Expected ceiling: 1000 MDS ops/s / 2 ops per create = 500 files/s.
        assert rate == pytest.approx(500, rel=0.25)

    def test_ls_lr_much_slower_than_ls_r(self):
        """Fig 10c: sizes-on-OSS make ls -lR several times slower."""
        env, fs, client = make_lustre()

        def populate(env):
            for i in range(200):
                yield from fs.write_file(client, f"/ds/c{i % 10}/f{i}", b"x")

        run_sync(env, populate(env))

        def timed_ls(env, with_sizes):
            t0 = env.now
            yield from fs.ls_recursive(client, "/ds", with_sizes=with_sizes)
            return env.now - t0

        t_plain = run_sync(env, timed_ls(env, False))
        t_sizes = run_sync(env, timed_ls(env, True))
        assert t_sizes > 3 * t_plain


class TestDne:
    def test_dne_requires_mode_for_multiple_mdts(self):
        with pytest.raises(ValueError):
            make_lustre(n_mds=2, dne="none")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            make_lustre(n_mds=2, dne="dne9")

    def test_dne1_pins_directory_to_one_mdt(self):
        """All files in one directory hit the same MDT (the §2.2 hotspot)."""
        env, fs, client = make_lustre(n_mds=4, dne="dne1")

        def proc(env):
            for i in range(40):
                yield from fs.write_file(client, f"/hot/f{i}", b"")

        run_sync(env, proc(env))
        calls = [m.stats.calls for m in fs._mdts]
        assert sum(1 for c in calls if c > 0) == 1

    def test_dne2_stripes_entries(self):
        """DNE2 spreads per-file ops over MDTs but readdir hits all."""
        env, fs, client = make_lustre(n_mds=4, dne="dne2")

        def proc(env):
            for i in range(40):
                yield from fs.write_file(client, f"/hot/f{i}", b"")

        run_sync(env, proc(env))
        create_calls = [m.stats.calls for m in fs._mdts]
        assert sum(1 for c in create_calls if c > 0) >= 3

        def lsproc(env):
            entries = yield from fs.readdir(client, "/hot")
            return entries

        entries = run_sync(env, lsproc(env))
        assert len(entries) == 40
        # readdir visited every MDT stripe.
        assert all(m.stats.calls > 0 for m in fs._mdts)

    def test_dne1_distributes_different_directories(self):
        env, fs, client = make_lustre(n_mds=4, dne="dne1")

        def proc(env):
            for d in range(16):
                yield from fs.write_file(client, f"/dir{d}/f", b"")

        run_sync(env, proc(env))
        used = sum(1 for m in fs._mdts if m.stats.calls > 0)
        assert used >= 3


class TestBatchedReads:
    def _populate(self, env, fs, client, n=16):
        files = {f"/d{i % 4}/f{i}.bin": bytes([i]) * 256 for i in range(n)}

        def proc(env):
            for p, b in files.items():
                yield from fs.write_file(client, p, b)

        run_sync(env, proc(env))
        return files

    def test_read_files_matches_per_file_reads(self):
        env, fs, client = make_lustre(n_mds=2, dne="dne1")
        files = self._populate(env, fs, client)

        def proc(env):
            one = yield from fs.read_files(client, list(files))
            batched = yield from fs.read_files(
                client, list(files), admission_batch=4
            )
            return one, batched

        one, batched = run_sync(env, proc(env))
        assert one == files
        assert batched == files

    def test_batched_admission_is_faster(self):
        env, fs, client = make_lustre()
        files = self._populate(env, fs, client, n=32)

        def proc(env):
            t0 = env.now
            yield from fs.read_files(client, list(files))
            serial = env.now - t0
            t0 = env.now
            yield from fs.read_files(client, list(files), admission_batch=8)
            batched = env.now - t0
            return serial, batched

        serial, batched = run_sync(env, proc(env))
        assert batched < serial

    def test_missing_file_raises(self):
        env, fs, client = make_lustre()
        self._populate(env, fs, client, n=4)

        def proc(env):
            yield from fs.read_files(
                client, ["/nope.bin"], admission_batch=2
            )

        with pytest.raises(FileNotFoundInDatasetError):
            run_sync(env, proc(env))

    def test_validation(self):
        env, fs, client = make_lustre()

        def proc(env):
            yield from fs.read_files(client, ["/x"], admission_batch=0)

        with pytest.raises(ValueError):
            run_sync(env, proc(env))
