"""Tests for the Memcached cluster baseline."""

import pytest

from repro.baselines import MemcachedCluster
from repro.calibration import MemcachedProfile
from repro.cluster import NetworkFabric, Node
from repro.errors import NodeDownError
from repro.sim import Environment, run_sync


def make_cluster(n_servers=4, **profile_kw):
    env = Environment()
    fabric = NetworkFabric(env)
    nodes = [fabric.add_node(Node(env, f"mc{i}")) for i in range(n_servers)]
    client = fabric.add_node(Node(env, "client"))
    profile = MemcachedProfile(**profile_kw) if profile_kw else None
    return env, MemcachedCluster(env, fabric, nodes, profile=profile), client


class TestMemcached:
    def test_needs_nodes(self):
        env = Environment()
        fabric = NetworkFabric(env)
        with pytest.raises(ValueError):
            MemcachedCluster(env, fabric, [])

    def test_set_get_roundtrip(self):
        env, mc, client = make_cluster()

        def proc(env):
            yield from mc.set(client, "k", b"value")
            v = yield from mc.get(client, "k")
            return v

        assert run_sync(env, proc(env)) == b"value"

    def test_miss_returns_none(self):
        env, mc, client = make_cluster()

        def proc(env):
            v = yield from mc.get(client, "missing")
            return v

        assert run_sync(env, proc(env)) is None

    def test_delete(self):
        env, mc, client = make_cluster()

        def proc(env):
            yield from mc.set(client, "k", b"v")
            removed = yield from mc.delete(client, "k")
            v = yield from mc.get(client, "k")
            return removed, v

        removed, v = run_sync(env, proc(env))
        assert removed is True and v is None

    def test_keys_spread(self):
        env, mc, client = make_cluster(n_servers=4)

        def proc(env):
            for i in range(200):
                yield from mc.set(client, f"k{i}", b"v")

        run_sync(env, proc(env))
        counts = [s.item_count() for s in mc.servers.values()]
        assert sum(counts) == 200
        # Consistent hashing is uneven for small clusters, but the keyspace
        # must not collapse onto one server.
        assert sum(1 for c in counts if c > 0) >= 3
        assert max(counts) < 150

    def test_dead_server_reads_miss(self):
        """Fig 6 mechanism: a disabled instance turns its keys into misses."""
        env, mc, client = make_cluster(n_servers=4)

        def fill(env):
            for i in range(100):
                yield from mc.set(client, f"k{i}", b"v")

        run_sync(env, fill(env))
        victim = mc.server_for("k0")
        mc.kill_server(victim.name)

        def read_all(env):
            hits = 0
            for i in range(100):
                v = yield from mc.get(client, f"k{i}")
                hits += v is not None
            return hits

        hits = run_sync(env, read_all(env))
        dead_share = victim.item_count() / 100
        assert hits == pytest.approx(100 * (1 - dead_share))
        assert hits < 100

    def test_set_to_dead_server_raises(self):
        env, mc, client = make_cluster(n_servers=2)
        victim = mc.server_for("key-x")
        mc.kill_server(victim.name)

        def proc(env):
            yield from mc.set(client, "key-x", b"v")

        with pytest.raises(NodeDownError):
            run_sync(env, proc(env))

    def test_full_mesh_connections(self):
        env, mc, client = make_cluster(n_servers=5)
        for c in range(8):
            assert mc.register_client(f"client{c}") == 5
        assert mc.connections.count() == 8 * 5

    def test_live_fraction(self):
        env, mc, client = make_cluster(n_servers=4)
        assert mc.live_fraction() == 1.0
        mc.kill_server("memcached0")
        assert mc.live_fraction() == 0.75

    def test_per_request_rpc_cost_binds_writes(self):
        """No batching: every SET is one RPC, so throughput is capped by
        the per-request service pipeline (write_speedup × server QPS),
        orders of magnitude below what batched chunk writes achieve."""
        env, mc, client = make_cluster(n_servers=1, server_qps=1000.0, proxy_extra_s=0.0)

        def writer(env):
            for i in range(100):
                yield from mc.set(client, f"k{i}", b"x")

        procs = [env.process(writer(env)) for _ in range(16)]
        env.run(until=env.all_of(procs))
        rate = 1600 / env.now
        cap = 1000.0 * mc.profile.write_speedup
        assert rate < cap * 1.2
        assert rate > cap * 0.5  # saturating clients do reach the cap

    def test_value_size_increases_cost(self):
        env, mc, client = make_cluster(n_servers=1)

        def timed_set(env, size):
            t0 = env.now
            yield from mc.set(client, "k", b"x" * size)
            return env.now - t0

        t_small = run_sync(env, timed_set(env, 10))
        t_big = run_sync(env, timed_set(env, 4 * 2**20))
        assert t_big > 3 * t_small


class TestBatchedGets:
    def test_get_many_matches_per_key_gets(self):
        env, mc, client = make_cluster()
        files = {f"/k{i}": bytes([i]) * 64 for i in range(16)}

        def proc(env):
            for k, v in files.items():
                yield from mc.set(client, k, v)
            one = yield from mc.get_many(client, list(files))
            batched = yield from mc.get_many(
                client, list(files), admission_batch=4
            )
            return one, batched

        one, batched = run_sync(env, proc(env))
        assert one == files
        assert batched == files

    def test_batched_admission_is_faster(self):
        env, mc, client = make_cluster()
        keys = [f"/k{i}" for i in range(32)]

        def proc(env):
            for k in keys:
                yield from mc.set(client, k, b"x" * 64)
            t0 = env.now
            yield from mc.get_many(client, keys, admission_batch=1)
            serial = env.now - t0
            t0 = env.now
            yield from mc.get_many(client, keys, admission_batch=8)
            batched = env.now - t0
            return serial, batched

        serial, batched = run_sync(env, proc(env))
        assert batched < serial

    def test_dead_server_keys_come_back_none(self):
        env, mc, client = make_cluster()
        keys = [f"/k{i}" for i in range(24)]

        def proc(env):
            for k in keys:
                yield from mc.set(client, k, b"v")
            victim = mc.server_for(keys[0]).name
            mc.kill_server(victim)
            result = yield from mc.get_many(client, keys, admission_batch=4)
            return victim, result

        victim, result = run_sync(env, proc(env))
        dead = [k for k in keys if mc.ring.lookup(k) == victim]
        assert dead
        for k in keys:
            expected = None if k in dead else b"v"
            assert result[k] == expected

    def test_validation(self):
        env, mc, client = make_cluster()

        def proc(env):
            yield from mc.get_many(client, ["k"], admission_batch=0)

        with pytest.raises(ValueError):
            run_sync(env, proc(env))
