"""Tests for the local XFS model."""

import pytest

from repro.baselines import LocalXfs
from repro.cluster import Node
from repro.sim import Environment, run_sync


def make_fs():
    env = Environment()
    node = Node(env, "local")
    return env, LocalXfs(env, node)


class TestLocalXfs:
    def test_write_read(self):
        env, fs = make_fs()
        fs.write_file("/d/a", b"hello")

        def proc(env):
            data = yield from fs.read_file("/d/a")
            return data

        assert run_sync(env, proc(env)) == b"hello"

    def test_readdir(self):
        env, fs = make_fs()
        fs.write_file("/d/a", b"")
        fs.write_file("/d/b", b"")

        def proc(env):
            entries = yield from fs.readdir("/d")
            return entries

        assert run_sync(env, proc(env)) == ["/d/a", "/d/b"]

    def test_stat(self):
        env, fs = make_fs()
        fs.write_file("/f", b"123")

        def proc(env):
            st_f = yield from fs.stat("/f")
            st_d = yield from fs.stat("/")
            return st_f, st_d

        st_f, st_d = run_sync(env, proc(env))
        assert st_f == {"path": "/f", "is_dir": False, "size": 3}
        assert st_d["is_dir"] is True

    def test_stat_missing(self):
        env, fs = make_fs()

        def proc(env):
            yield from fs.stat("/ghost")

        with pytest.raises(FileNotFoundError):
            run_sync(env, proc(env))

    def test_ls_recursive_counts_all(self):
        env, fs = make_fs()
        for i in range(10):
            fs.write_file(f"/ds/c{i % 2}/f{i}", b"x")

        def proc(env):
            n = yield from fs.ls_recursive("/ds")
            return n

        assert run_sync(env, proc(env)) == 12  # 2 class dirs + 10 files

    def test_lsl_costs_more_than_ls(self):
        env, fs = make_fs()
        for i in range(100):
            fs.write_file(f"/ds/f{i}", b"x")

        def timed(env, with_sizes):
            t0 = env.now
            yield from fs.ls_recursive("/ds", with_sizes=with_sizes)
            return env.now - t0

        t_plain = run_sync(env, timed(env, False))
        t_sizes = run_sync(env, timed(env, True))
        assert t_sizes > t_plain

    def test_file_count(self):
        env, fs = make_fs()
        fs.write_file("/a", b"")
        fs.write_file("/b/c", b"")
        assert fs.file_count == 2
