"""Unit tests for bench.reporting: tables, rows, JSON, verdicts."""

import json

import pytest

from repro.bench.harness import ExperimentResult
from repro.bench.reporting import (
    format_result,
    format_table,
    ratio,
    result_to_dict,
    shape_check,
    stats_row,
    write_json,
)


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"
        assert format_table([], title="t") == "t\n(no rows)"

    def test_alignment_and_column_union(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "c": "x"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        header = lines[1].split()
        assert header == ["a", "b", "c"]  # union, first-seen order
        assert len(lines) == 5  # title + header + rule + 2 rows
        # Missing cells render empty, not "None".
        assert "None" not in text

    def test_float_formatting(self):
        text = format_table([{"v": 0.00012345}, {"v": 12345.6}, {"v": 0.0}])
        assert "0.0001234" in text  # 4 significant digits
        assert "12,346" in text    # thousands separator
        lines = text.splitlines()
        assert lines[-1].strip() == "0"


class TestFormatResult:
    def test_includes_notes_and_wall_time(self):
        r = ExperimentResult("demo", "§0")
        r.add(x=1)
        r.note("a note")
        r.wall_seconds = 1.25
        text = format_result(r)
        assert "== demo (§0) ==" in text
        assert "note: a note" in text
        assert "1.25s wall" in text


class TestStatsRow:
    def test_dataclass_stats_all_keys(self):
        from repro.core.client import ClientStats
        from dataclasses import fields

        stats = ClientStats()
        row = stats_row(stats)
        assert set(row) == {f.name for f in fields(ClientStats)}

    def test_key_selection_and_prefix(self):
        from repro.core.client import ClientStats

        stats = ClientStats()
        stats.local_hits = 7
        row = stats_row(stats, ["local_hits"], prefix="rd_")
        assert row == {"rd_local_hits": 7}

    def test_every_stats_class_derives_keys_from_fields(self):
        # The satellite fix: to_dict() must track dataclass fields, so a
        # new counter can never silently drop out of experiment rows.
        from dataclasses import fields, is_dataclass
        from repro.core.client import ClientStats
        from repro.core.dist_cache import CacheMasterStats
        from repro.core.server import ServerStats
        from repro.rpc.endpoint import RpcStats

        for cls in (ClientStats, CacheMasterStats, ServerStats, RpcStats):
            assert is_dataclass(cls)
            inst = cls()
            assert set(inst.to_dict()) == {f.name for f in fields(cls)}

    def test_accepts_span_recorder(self):
        from repro.obs import SpanRecorder

        rec = SpanRecorder(lambda: 0.0)
        rec.record("get", "server", 0.5)
        rec.count("read", "server", n=2)
        row = stats_row(rec)
        assert row["get_server_n"] == 1
        assert row["read_server_count"] == 2


class TestJson:
    def test_round_trip(self, tmp_path):
        r = ExperimentResult("demo", "§0")
        r.add(x=1, y=2.5)
        r.note("n1")
        path = tmp_path / "out.json"
        write_json(r, path)
        data = json.loads(path.read_text())
        assert data == result_to_dict(r)
        assert data["rows"] == [{"x": 1, "y": 2.5}]
        assert data["notes"] == ["n1"]


class TestVerdicts:
    def test_shape_check_pass_fail(self):
        assert shape_check("c", 1.05, 1.0, 0.10)["ok"] == "PASS"
        assert shape_check("c", 1.25, 1.0, 0.10)["ok"] == "FAIL"

    def test_shape_check_zero_expected(self):
        assert shape_check("z", 0.0, 0.0, 0.01)["ok"] == "PASS"
        assert shape_check("z", 0.5, 0.0, 0.01)["ok"] == "FAIL"

    def test_ratio(self):
        assert ratio(4.0, 2.0) == 2.0
        assert ratio(1.0, 0.0) == float("inf")
