"""Tests for utilization metrics and bottleneck identification."""

import pytest

from repro.bench.metrics import bottleneck, device_utilization
from repro.bench.metrics import endpoint_utilization
from repro.bench.metrics import testbed_metrics as metrics_of  # avoid pytest name collision
from repro.bench.setups import (
    add_diesel,
    add_lustre,
    bulk_load_diesel,
    bulk_load_lustre,
    make_testbed,
)
from repro.cluster.devices import Device
from repro.sim import Environment, run_sync


class TestDeviceUtilization:
    def test_idle_device_is_zero(self):
        env = Environment()
        d = Device(env, "d", per_op_s=1e-3, bandwidth_bps=1e9)
        env.timeout(1.0)
        env.run()
        assert device_utilization(d, env.now) == 0.0

    def test_saturated_device_near_one(self):
        env = Environment()
        d = Device(env, "d", per_op_s=1e-3, bandwidth_bps=1e9, queue_depth=1)

        def hammer():
            for _ in range(100):
                yield from d.read(0)

        run_sync(env, hammer())
        assert device_utilization(d, env.now) == pytest.approx(1.0, rel=0.01)

    def test_half_loaded(self):
        env = Environment()
        d = Device(env, "d", per_op_s=1e-3, bandwidth_bps=1e9, queue_depth=2)

        def one_stream():
            for _ in range(50):
                yield from d.read(0)

        run_sync(env, one_stream())
        # One stream on a two-slot station: 50% utilization.
        assert device_utilization(d, env.now) == pytest.approx(0.5, rel=0.05)

    def test_zero_time(self):
        env = Environment()
        d = Device(env, "d", per_op_s=1e-3, bandwidth_bps=1e9)
        assert device_utilization(d, 0.0) == 0.0


class TestTestbedMetrics:
    def test_diesel_metrics_populated(self):
        tb = make_testbed(n_compute=1)
        add_diesel(tb)
        files = {f"/m/f{i}": b"x" * 1024 for i in range(10)}
        bulk_load_diesel(tb, "ds", files, chunk_size=4096)

        def reads():
            for path in files:
                yield from tb.diesel.call(
                    tb.compute_nodes[0], "get_file", "ds", path
                )

        tb.run(reads())
        m = metrics_of(tb)
        assert m["sim_time_s"] > 0
        assert m["diesel_data_calls"] == 10
        assert m["kv_pairs"] > 10
        assert 0 <= m["ssd_pool_utilization"] <= 1

    def test_lustre_bottleneck_is_oss_for_small_reads(self):
        tb = make_testbed(n_compute=2)
        add_lustre(tb)
        files = {f"/l/f{i}": b"x" * 4096 for i in range(40)}
        bulk_load_lustre(tb, files)

        def reader(node):
            for path in files:
                yield from tb.lustre.read_file(node, path)

        tb.run_all(reader(n) for n in tb.compute_nodes)
        m = metrics_of(tb)
        assert m["lustre_mds_calls"] == 80
        # Small random reads saturate the near-serial OSS path.
        assert m["lustre_oss_utilization"] > 0.5
        assert bottleneck(tb) == "lustre_oss"

    def test_endpoint_utilization_bounds(self):
        tb = make_testbed(n_compute=1)
        add_diesel(tb)
        for s in tb.diesel_servers:
            assert endpoint_utilization(s.endpoint, 1.0) == 0.0

    def test_bottleneck_without_services(self):
        tb = make_testbed(n_compute=1)
        # Only the ssd pool exists; bottleneck answers with it.
        assert bottleneck(tb) in ("ssd_pool", "none")
