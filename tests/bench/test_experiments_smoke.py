"""Fast smoke tests of every experiment function at reduced scale.

The full-scale runs live in ``benchmarks/``; these scaled-down variants
keep `pytest tests/` self-contained — every artifact still executes and
its most basic shape property still holds.
"""

import pytest

from repro.bench import experiments as E
from repro.calibration import KB


class TestExperimentSmoke:
    def test_table2(self):
        r = E.table2_read_bandwidth(reads_per_size=20)
        assert len(r.rows) == 7

    def test_fig6(self):
        r = E.fig6_cache_degradation(
            n_servers=6, n_clients=8, files_per_iteration=8,
            iterations=20, kill_at=(8,), n_files=200,
        )
        assert len(r.rows) == 20
        assert r.rows[-1]["hit_ratio"] < 1.0

    def test_fig9(self):
        r = E.fig9_write_throughput(files_per_proc=20, procs_per_node=4,
                                    sizes=(4 * KB,))
        row = r.one(file_size=4 * KB)
        assert row["diesel_files_per_s"] > row["lustre_files_per_s"]

    def test_fig10a(self):
        r = E.fig10a_metadata_scaling(
            server_counts=(1,), node_counts=(1, 4),
            threads_per_node=8, queries_per_thread=20,
        )
        assert r.one(servers=1, client_nodes=4)["qps"] >= \
            r.one(servers=1, client_nodes=1)["qps"]

    def test_fig10b(self):
        r = E.fig10b_snapshot_scaling(node_counts=(1, 2))
        assert r.rows[1]["qps"] == pytest.approx(2 * r.rows[0]["qps"],
                                                 rel=0.01)

    def test_fig10c(self):
        r = E.fig10c_ls_elapsed(n_files=400, n_dirs=20)
        lustre = r.one(system="lustre")
        assert lustre["ls_lR_seconds"] > lustre["ls_R_seconds"]

    def test_fig11a(self):
        r = E.fig11a_read_scaling(node_counts=(1,), clients_per_node=4,
                                  reads_per_client=10, n_files=200)
        row = r.rows[0]
        assert row["diesel_api_qps"] > row["lustre_qps"]

    def test_fig11b(self):
        r = E.fig11b_cache_recovery(n_files=300, n_nodes=2)
        assert any(x["system"] == "diesel" for x in r.rows)
        assert any(x["system"] == "memcached" for x in r.rows)

    def test_fig12(self):
        r = E.fig12_shuffle_bandwidth(
            n_nodes=2, threads_per_node=4, sizes=(4 * KB,),
            files_per_thread=15,
        )
        row = r.one(file_size=4 * KB)
        assert row["diesel_api_mbps"] > row["lustre_mbps"]

    def test_fig13(self):
        r = E.fig13_shuffle_accuracy(n_samples=800, epochs=6,
                                     group_sizes=(4,))
        assert {x["strategy"] for x in r.rows} == {"shuffle dataset",
                                                   "chunk-wise g=4"}

    def test_fig14(self):
        r = E.fig14_data_access_time(models=("alexnet",), epochs=2,
                                     n_files=300)
        lus = r.one(model="alexnet", system="lustre")
        dfu = r.one(model="alexnet", system="diesel-fuse")
        assert dfu["mean_fetch_s"] < lus["mean_fetch_s"]

    def test_fig15(self):
        r = E.fig15_training_time(models=("alexnet",), epochs=2,
                                  n_files=300)
        assert r.one(model="alexnet")["normalized_total"] < 1.0

    def test_ingest(self):
        r = E.ingest_pipeline(depths=(1, 4), n_chunks=8,
                              files_per_chunk=4, file_size=64 * KB)
        deep = r.one(depth=4)
        assert deep["ship_speedup"] > 1.0
        assert deep["ship_hwm"] > 1
        for row in r.rows:
            assert row["server_ingests"] == row["chunks_shipped"]

    def test_fanout(self):
        # 256 x 128 KB = 8 chunks of 4 MB: enough per-master work for
        # the fan-out to overlap at reduced scale.
        r = E.fanout_scatter_gather(fanouts=(1, 4), n_files=256,
                                    file_size=128 * KB, batch=24)
        deep = r.one(fanout=4)
        assert deep["warm_speedup"] > 1.0
        assert deep["read_speedup"] > 1.0
        assert deep["fetch_hwm"] > 1
        for row in r.rows:
            assert row["duplicate_reads"] == 0

    def test_faults(self):
        r = E.fig_faults(
            n_files=80, n_nodes=3, kill_cache_at=0.1, kill_kv_at=0.3,
            run_s=0.5, window_s=0.08,
        )
        cache_row = r.one(event="cache_master_killed")
        kv_row = r.one(event="kv_shards_killed")
        # Detector fired and recovery ran with no operator call.
        assert cache_row["detection_s"] > 0
        assert cache_row["chunks_reloaded"] > 0
        # Steady state back within 10% of the pre-kill window.
        assert 0.9 <= cache_row["post_over_pre"]
        # Shard loss healed by the timestamp-scoped rebuild; the warm
        # cache absorbed the outage with zero failed client reads.
        assert kv_row["verify_problems"] == 0
        assert kv_row["failed_reads"] == 0
        assert kv_row["chunks_scanned"] > 0

    def test_metaplane(self):
        r = E.fig_metaplane(
            n_files=400, registry_sizes=(200, 5000), page_limit=100,
            probe_stats=10, online_files=32, online_late=8,
        )
        delta = r.one(event="delta_reload")
        assert delta["delta_bytes_ratio"] <= 0.05
        assert delta["delta_refresh_s"] < delta["full_load_s"]
        assert r.one(event="pagination")["bit_identical"] is True
        grown = r.one(event="registry_scale", datasets=5000)
        assert grown["stat_ratio"] <= 1.2
        assert grown["load_meta_ratio"] <= 1.2
        online = r.one(event="online_ingest")
        assert online["lost_reads"] == 0
        assert online["duplicate_reads"] == 0
        assert online["committed_order_preserved"] is True

    def test_latency(self):
        r = E.latency_breakdown(n_files=128, batch=16)
        row = r.rows[0]
        # Per-layer read-resolution tallies cover every file read.
        assert row["read_group_cache_count"] + row["read_server_count"] \
            == row["files"] + 16
        # Per-(op, layer) percentile columns from the recorder.
        for col in ("get_group_cache_p50_ms", "get_group_cache_p99_ms",
                    "get_server_p50_ms", "get_server_p99_ms"):
            assert col in row and row[col] > 0.0
        # With prefetch_depth=4 most reads resolve locally.
        assert row["read_group_cache_count"] > row["read_server_count"]
