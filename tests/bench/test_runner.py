"""Tests for the experiment runner CLI."""

import pytest

from repro.bench import runner
from repro.bench.experiments import ALL_EXPERIMENTS


class TestRunnerCli:
    def test_list(self, capsys):
        assert runner.main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ALL_EXPERIMENTS:
            assert name in out

    def test_no_args_is_usage_error(self, capsys):
        assert runner.main([]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_unknown_experiment(self, capsys):
        assert runner.main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_one_experiment(self, capsys):
        # table2 is the fastest artifact (~10ms).
        assert runner.main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "files_per_s" in out

    def test_runs_multiple(self, capsys):
        assert runner.main(["table2", "fig10b"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Fig 10b" in out

    def test_failure_exit_code(self, capsys, monkeypatch):
        def boom():
            raise RuntimeError("injected")

        monkeypatch.setitem(ALL_EXPERIMENTS, "table2", boom)
        assert runner.main(["table2"]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_csv_export(self, capsys, tmp_path):
        out_dir = tmp_path / "csvs"
        assert runner.main(["table2", "fig10b", "--csv", str(out_dir)]) == 0
        t2 = out_dir / "table2.csv"
        assert t2.exists()
        import csv as csv_mod

        with t2.open() as fh:
            rows = list(csv_mod.DictReader(fh))
        assert len(rows) == 7  # one row per Table 2 file size
        assert "files_per_s" in rows[0]
        assert float(rows[0]["file_size"]) == 1024
        assert (out_dir / "fig10b.csv").exists()
