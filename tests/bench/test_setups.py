"""Tests for the experiment testbed builders."""

import pytest

from repro.bench.setups import (
    Testbed,
    add_diesel,
    add_lustre,
    add_memcached,
    bulk_load_diesel,
    bulk_load_lustre,
    bulk_load_memcached,
    dataset_files,
    diesel_client_with_snapshot,
    make_testbed,
)
from repro.objectstore import ObjectStore, TieredStore
from repro.workloads.datasets import CIFAR10


class TestMakeTestbed:
    def test_default_topology(self):
        tb = make_testbed()
        assert len(tb.compute_nodes) == 10  # Table 4
        assert len(tb.storage_nodes) == 6
        assert tb.ssd_pool.alive

    def test_nodes_registered_on_fabric(self):
        tb = make_testbed(n_compute=3, n_storage=2)
        assert "compute2" in tb.fabric
        assert "storage1" in tb.fabric

    def test_run_helpers(self):
        tb = make_testbed(n_compute=1)

        def proc():
            yield tb.env.timeout(1.5)
            return "ok"

        assert tb.run(proc()) == "ok"
        assert tb.env.now == 1.5
        tb.run_all(proc() for _ in range(3))
        assert tb.env.now == 3.0


class TestAddServices:
    def test_add_diesel_flat(self):
        tb = make_testbed(n_compute=1)
        servers = add_diesel(tb, n_servers=2)
        assert len(servers) == 2
        assert isinstance(tb.store, ObjectStore)
        assert tb.kv is not None
        assert len(tb.kv.instances) == 16  # Table 4's Redis cluster

    def test_add_diesel_tiered(self):
        tb = make_testbed(n_compute=1)
        add_diesel(tb, tiered=True)
        assert isinstance(tb.store, TieredStore)

    def test_config_published_to_etcd(self):
        from repro.core.config import DieselConfig

        tb = make_testbed(n_compute=1)
        cfg = DieselConfig(shuffle_group_size=7)
        add_diesel(tb, config=cfg)
        assert tb.config_store.get("diesel/config").shuffle_group_size == 7
        assert tb.diesel.config.shuffle_group_size == 7

    def test_add_lustre_and_memcached(self):
        tb = make_testbed(n_compute=4)
        fs = add_lustre(tb)
        mc = add_memcached(tb, n_servers=3)
        assert tb.lustre is fs
        assert tb.memcached is mc
        assert len(mc.servers) == 3


class TestBulkLoads:
    def test_bulk_load_requires_services(self):
        tb = make_testbed(n_compute=1)
        with pytest.raises(RuntimeError):
            bulk_load_diesel(tb, "ds", {"/a": b"1"})
        with pytest.raises(RuntimeError):
            bulk_load_lustre(tb, {"/a": b"1"})
        with pytest.raises(RuntimeError):
            bulk_load_memcached(tb, {"/a": b"1"})

    def test_bulk_load_diesel_costs_no_time(self):
        tb = make_testbed(n_compute=1)
        add_diesel(tb)
        chunks = bulk_load_diesel(tb, "ds", {f"/f{i}": b"x" * 100
                                             for i in range(20)},
                                  chunk_size=512)
        assert tb.env.now == 0.0  # fixture setup, outside measured time
        assert len(chunks) >= 3
        assert len(tb.store.list_keys()) == len(chunks)

    def test_snapshot_client_preloaded(self):
        tb = make_testbed(n_compute=1)
        add_diesel(tb)
        bulk_load_diesel(tb, "ds", {"/a": b"123"})
        client = diesel_client_with_snapshot(tb, "ds", tb.compute_nodes[0],
                                             "c0")
        assert client.snapshot_loaded
        assert client.index.file_count == 1


class TestDatasetFiles:
    def test_sizes_mode(self):
        spec = CIFAR10.scaled(0.0002)
        sizes = dataset_files(spec, content=False)
        assert all(isinstance(v, int) for v in sizes.values())

    def test_content_mode(self):
        spec = CIFAR10.scaled(0.0002)
        files = dataset_files(spec, content=True)
        assert all(isinstance(v, bytes) for v in files.values())
        assert all(len(v) == spec.mean_file_bytes for v in files.values())
