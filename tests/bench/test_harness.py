"""Tests for the experiment harness and reporting helpers."""

import pytest

from repro.bench.harness import ExperimentResult, timer
from repro.bench.reporting import format_result, format_table, ratio, shape_check


class TestExperimentResult:
    def make(self):
        r = ExperimentResult("test exp", "Fig 0")
        r.add(system="a", size=4, qps=100.0)
        r.add(system="b", size=4, qps=50.0)
        r.add(system="a", size=8, qps=80.0)
        return r

    def test_add_and_column(self):
        r = self.make()
        assert r.column("qps") == [100.0, 50.0, 80.0]

    def test_where(self):
        r = self.make()
        assert len(r.where(system="a")) == 2
        assert r.where(system="a", size=8)[0]["qps"] == 80.0
        assert r.where(system="zzz") == []

    def test_one(self):
        r = self.make()
        assert r.one(system="b")["qps"] == 50.0
        with pytest.raises(LookupError):
            r.one(system="a")  # two matches
        with pytest.raises(LookupError):
            r.one(system="none")  # zero matches

    def test_notes(self):
        r = self.make()
        r.note("hello")
        assert r.notes == ["hello"]

    def test_timer(self):
        r = ExperimentResult("t", "x")
        with timer(r):
            sum(range(10000))
        assert r.wall_seconds > 0


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"name": "a", "value": 1234.5678}, {"name": "bb", "value": 2}]
        out = format_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_table_heterogeneous_columns(self):
        rows = [{"a": 1}, {"b": 2}]
        out = format_table(rows)
        assert "a" in out and "b" in out

    def test_format_result_includes_notes(self):
        r = ExperimentResult("n", "Fig 1")
        r.add(x=1)
        r.note("important caveat")
        out = format_result(r)
        assert "Fig 1" in out and "important caveat" in out

    def test_number_formats(self):
        rows = [{"v": 0}, {"v": 12345.6}, {"v": 0.000123}, {"v": 3.14159}]
        out = format_table(rows)
        assert "12,346" in out
        assert "3.14" in out
        assert "0.000123" in out

    def test_shape_check(self):
        ok = shape_check("close", measured=95, expected=100, rel_tol=0.10)
        assert ok["ok"] == "PASS"
        bad = shape_check("far", measured=50, expected=100, rel_tol=0.10)
        assert bad["ok"] == "FAIL"
        zero = shape_check("zero", measured=0.0, expected=0.0, rel_tol=0.1)
        assert zero["ok"] == "PASS"

    def test_ratio(self):
        assert ratio(10, 2) == 5
        assert ratio(1, 0) == float("inf")
