"""Tests for the affinity epoch scheduler and task-cache reader."""

import pytest

from repro.bench.setups import (
    add_diesel,
    bulk_load_diesel,
    diesel_client_with_snapshot,
    make_testbed,
)
from repro.calibration import ModelProfile
from repro.core.dist_cache import TaskCache
from repro.dlt.dataloader import EpochScheduler
from repro.dlt.readers import CacheReader
from repro.dlt.trainer import run_task_training
from repro.errors import DieselError
from repro.util.ids import ChunkIdGenerator

GEN = ChunkIdGenerator(machine=b"\x07" * 6, pid=7)

FILES = {f"/ds/f{i:03d}.jpg": bytes([i % 251]) * 1024 for i in range(48)}


def make_dataset(n_chunks=8, files_per_chunk=6):
    return {
        cid: [f"/c{ci:03d}/f{fi}" for fi in range(files_per_chunk)]
        for ci, cid in enumerate(GEN.take(n_chunks))
    }


def make_locality_task(n_nodes=2, placement="locality", group_size=2,
                       hot_chunk_threshold=0):
    """A warmed multi-node task cache plus scheduler and per-node readers."""
    tb = make_testbed(n_compute=n_nodes)
    add_diesel(tb, n_servers=1)
    bulk_load_diesel(tb, "ds", FILES, chunk_size=8 * 1024)
    clients = [
        diesel_client_with_snapshot(
            tb, "ds", tb.compute_nodes[c], f"tc{c}", rank=c
        )
        for c in range(n_nodes)
    ]
    cache = TaskCache(
        tb.env, tb.fabric, tb.diesel, "ds",
        [c.as_cache_client() for c in clients],
        policy="oneshot", calibration=tb.cal, placement=placement,
        hot_chunk_threshold=hot_chunk_threshold,
    )
    tb.run(cache.register())
    tb.run(cache.wait_warm())
    worker_nodes = [n.name for n in tb.compute_nodes[:n_nodes]]
    scheduler = EpochScheduler(
        clients[0].index.files_by_chunk(), group_size,
        worker_nodes, cache=cache, seed=11,
    )
    readers = [
        CacheReader(scheduler, cache, c.as_cache_client(),
                    clients[0].index, w)
        for w, c in enumerate(clients)
    ]
    return tb, cache, scheduler, readers


class TestEpochScheduler:
    def test_shards_partition_the_dataset(self):
        data = make_dataset()
        sched = EpochScheduler(data, 2, ["n0", "n1", "n2"])
        spread = [
            f for w in range(sched.n_workers)
            for f in sched.shard(0, w).files
        ]
        assert sorted(spread) == sorted(
            f for files in data.values() for f in files
        )

    def test_shard_is_cached_per_epoch(self):
        sched = EpochScheduler(make_dataset(), 2, ["n0", "n1"])
        assert sched.shard(3, 0) is sched.shard(3, 0)

    def test_old_epochs_evicted(self):
        sched = EpochScheduler(make_dataset(), 2, ["n0", "n1"])
        sched.shard(0, 0)
        sched.shard(1, 0)
        sched.shard(5, 0)
        assert 0 not in sched._shards and 1 not in sched._shards
        assert 5 in sched._shards

    def test_cached_plan_repins_after_membership_change(self):
        class FakeCache:
            placement = "locality"

            def __init__(self, owners):
                self.owners = dict(owners)
                self.membership_version = 0

            def chunk_owner_node(self, cid):
                return self.owners.get(cid)

        data = make_dataset(n_chunks=8)
        cids = sorted(data)
        cache = FakeCache({cid: "n0" for cid in cids})
        sched = EpochScheduler(data, 2, ["n0", "n1"], cache=cache)
        before = [sched.shard(0, w) for w in range(2)]
        assert sched.repins == 0
        # A scale event moves half the chunks to the new node n1.
        for cid in cids[::2]:
            cache.owners[cid] = "n1"
        cache.membership_version += 1
        after = [sched.shard(0, w) for w in range(2)]
        assert sched.repins == 1
        # Read order is committed — only the owner tags refresh.
        for b, a in zip(before, after):
            assert a.files == b.files
            assert [g.chunk_ids for g in a.groups] == [
                g.chunk_ids for g in b.groups
            ]
        owners = {
            g.owner for plan in after for g in plan.groups if g.owner
        }
        assert "n1" in owners
        # Same version: the re-pinned plan is served from cache.
        assert sched.shard(0, 0) is after[0]
        assert sched.repins == 1
        # A fresh epoch builds against the current map — no repin needed.
        sched.shard(1, 0)
        assert sched.repins == 1

    def test_epochs_differ_but_are_deterministic(self):
        data = make_dataset()
        a = EpochScheduler(data, 2, ["n0", "n1"], seed=3)
        b = EpochScheduler(data, 2, ["n0", "n1"], seed=3)
        assert a.shard(0, 0).files == b.shard(0, 0).files
        assert a.shard(0, 0).files != a.shard(1, 0).files

    def test_validation(self):
        with pytest.raises(DieselError):
            EpochScheduler(make_dataset(), 0, ["n0"])
        with pytest.raises(DieselError):
            EpochScheduler(make_dataset(), 2, [])
        sched = EpochScheduler(make_dataset(), 2, ["n0"])
        with pytest.raises(DieselError):
            sched.shard(0, 1)

    def test_affinity_shards_are_owner_aligned(self):
        tb, cache, sched, _ = make_locality_task()
        for w, node in enumerate(sched._worker_nodes):
            for g in sched.shard(0, w).groups:
                assert g.owner == node

    def test_hash_placement_shards_unaligned(self):
        """Under the hash ring the scheduler falls back to a plain split."""
        tb, cache, sched, _ = make_locality_task(placement="hash")
        groups = [g for w in range(2) for g in sched.shard(0, w).groups]
        assert all(g.owner is None for g in groups)


class TestCacheReader:
    def test_begin_epoch_serves_the_shard(self):
        tb, cache, sched, readers = make_locality_task()

        def proc():
            order = yield from readers[0].begin_epoch(0)
            return order

        order = tb.run(proc())
        assert order == sched.shard(0, 0).files
        assert readers[0].last_plan is sched.shard(0, 0)

    def test_read_resolves_through_the_cache(self):
        tb, cache, sched, readers = make_locality_task()

        def proc():
            order = yield from readers[0].begin_epoch(0)
            data = yield from readers[0].read(order[0])
            return order[0], data

        path, data = tb.run(proc())
        assert data == FILES[path]
        assert cache.local_hits == 1  # affinity: the shard is co-located


class TestTaskTraining:
    def test_multi_worker_training_reads_everything_locally(self):
        tb, cache, sched, readers = make_locality_task()
        model = ModelProfile("toy", compute_s=1e-4)

        def proc():
            results = yield from run_task_training(
                tb.env, readers, model, epochs=2, batch_size=4
            )
            return results

        results = tb.run(proc())
        assert len(results) == len(readers)
        total_iters = sum(len(r.timings) for r in results)
        assert total_iters == 2 * len(FILES) / 4  # 2 epochs, batch 4
        # Every hit in a locality-placed, affinity-scheduled task is
        # node-local; nothing paid the cross-node hop.
        assert cache.local_hits == 2 * len(FILES)
        assert cache.remote_hits == 0

    def test_validation(self):
        tb, cache, sched, readers = make_locality_task()
        model = ModelProfile("toy", compute_s=1e-4)

        def proc():
            yield from run_task_training(tb.env, [], model, 1, 4)

        with pytest.raises(ValueError):
            tb.run(proc())
