"""Tests for the pipelined trainer and job arithmetic."""

import pytest

from repro.calibration import ModelProfile
from repro.dlt.models import TrainingJob, iterations_per_epoch, model_profile
from repro.dlt.trainer import run_training
from repro.sim import Environment, run_sync


class FakeReader:
    """Deterministic reader: fixed per-file read time, full order."""

    def __init__(self, env, paths, read_s, shuffle_s=0.0):
        self.env = env
        self.paths = list(paths)
        self.read_s = read_s
        self.shuffle_s = shuffle_s
        self.reads = 0

    def begin_epoch(self, epoch):
        yield self.env.timeout(self.shuffle_s)
        return list(self.paths)

    def read(self, path):
        yield self.env.timeout(self.read_s)
        self.reads += 1
        return b"x"


class TestJobArithmetic:
    def test_iterations_per_epoch(self):
        assert iterations_per_epoch(100, 10) == 10
        assert iterations_per_epoch(101, 10) == 11
        with pytest.raises(ValueError):
            iterations_per_epoch(0, 10)

    def test_paper_resnet50_anchor(self):
        """§6.6: 5005 iterations/epoch at batch 256 on ImageNet-1K."""
        job = TrainingJob.paper_resnet50()
        assert job.iters_per_epoch == 5005
        assert job.epochs == 90

    def test_model_lookup(self):
        assert model_profile("alexnet").compute_s < model_profile("resnet50").compute_s
        with pytest.raises(KeyError):
            model_profile("gpt17")

    def test_projected_time(self):
        job = TrainingJob(model_profile("resnet18"), n_files=1000, batch_size=100,
                          epochs=2)
        base = job.compute_time_total()
        assert job.projected_total_time(0.0) == pytest.approx(base)
        assert job.projected_total_time(0.05) > base


class TestPipelinedTrainer:
    def run(self, read_s, compute_s, n_files=64, batch=8, workers=4, epochs=1,
            prefetch=2, shuffle_s=0.0):
        env = Environment()
        model = ModelProfile("toy", compute_s=compute_s)
        reader = FakeReader(env, [f"/f{i}" for i in range(n_files)], read_s,
                            shuffle_s)
        result = run_sync(
            env,
            run_training(env, reader, model, epochs=epochs, batch_size=batch,
                         io_workers=workers, prefetch_depth=prefetch),
        )
        return env, reader, result

    def test_all_files_read_every_epoch(self):
        env, reader, result = self.run(read_s=1e-4, compute_s=1e-3, epochs=2)
        assert reader.reads == 2 * 64
        assert len(result.timings) == 2 * 8

    def test_compute_bound_hides_io(self):
        """Fast I/O + slow compute → stalls only on the cold first batch."""
        env, reader, result = self.run(read_s=1e-5, compute_s=1e-2)
        steady = [t.data_time_s for t in result.timings if t.iteration > 0]
        assert max(steady) < 1e-4
        first = result.timings[0]
        assert first.data_time_s > 0  # pipeline fill is visible

    def test_io_bound_stalls_every_iteration(self):
        """Slow I/O + fast compute → every iteration pays the read time."""
        env, reader, result = self.run(read_s=1e-2, compute_s=1e-4, workers=1)
        steady = [t.data_time_s for t in result.timings[1:]]
        # one worker: batch of 8 reads ≈ 80 ms each iteration
        assert min(steady) > 0.05

    def test_more_workers_reduce_stall(self):
        _, _, slow = self.run(read_s=2e-3, compute_s=1e-3, workers=1)
        _, _, fast = self.run(read_s=2e-3, compute_s=1e-3, workers=8)
        assert fast.mean_data_time() < slow.mean_data_time() / 2

    def test_first_iteration_spike_per_epoch(self):
        """Fig 14 shape: the shuffle + cold pipeline spikes iteration 0."""
        env, reader, result = self.run(
            read_s=1e-4, compute_s=5e-3, epochs=3, shuffle_s=0.05
        )
        per_epoch = result.epoch_data_times()
        for epoch_times in per_epoch:
            assert epoch_times[0] > 3 * max(epoch_times[1:])

    def test_epoch_wall_times_accumulate(self):
        env, reader, result = self.run(read_s=1e-4, compute_s=1e-3, epochs=2)
        assert len(result.epoch_walls) == 2
        assert result.total_time_s == pytest.approx(env.now)

    def test_aggregates(self):
        env, reader, result = self.run(read_s=1e-3, compute_s=1e-3)
        assert result.total_compute_time() == pytest.approx(8 * 1e-3)
        assert result.total_data_time() >= 0
        assert result.mean_data_time(skip_first_iteration=True) <= \
            result.timings[0].data_time_s + result.mean_data_time()

    def test_validation(self):
        env = Environment()
        model = ModelProfile("toy", compute_s=1e-3)
        reader = FakeReader(env, ["/a"], 1e-4)
        with pytest.raises(ValueError):
            run_sync(env, run_training(env, reader, model, epochs=0,
                                       batch_size=1))
