"""Tests for the numpy SGD classifiers and synthetic data."""

import numpy as np
import pytest

from repro.dlt.sgd import (
    MlpClassifier,
    SoftmaxClassifier,
    top_k_accuracy,
    train_with_orders,
)
from repro.dlt.synthetic import SyntheticDataset, decode_sample, encode_sample


class TestSynthetic:
    def test_shapes(self):
        ds = SyntheticDataset.make(n_samples=500, n_features=16, n_classes=7)
        assert ds.X.shape == (500, 16)
        assert ds.y.shape == (500,)
        assert set(np.unique(ds.y)) <= set(range(7))

    def test_deterministic(self):
        a = SyntheticDataset.make(seed=5)
        b = SyntheticDataset.make(seed=5)
        assert np.array_equal(a.X, b.X) and np.array_equal(a.y, b.y)

    def test_split(self):
        ds = SyntheticDataset.make(n_samples=1000)
        train, test = ds.split(test_fraction=0.2)
        assert len(train) == 800 and len(test) == 200
        with pytest.raises(ValueError):
            ds.split(test_fraction=0)

    def test_separable_data_is_learnable(self):
        ds = SyntheticDataset.make(n_samples=2000, class_sep=4.0, noise=0.5)
        train, test = ds.split()
        clf = SoftmaxClassifier(ds.X.shape[1], ds.n_classes, lr=0.5)
        rng = np.random.default_rng(0)
        for _ in range(10):
            clf.train_epoch(train.X, train.y, rng.permutation(len(train)), 32)
        acc = top_k_accuracy(clf.scores(test.X), test.y, 1)
        assert acc > 0.9

    def test_sample_codec_roundtrip(self):
        feats = np.arange(8, dtype=np.float32)
        blob = encode_sample(feats, 3)
        out_f, out_l = decode_sample(blob)
        assert np.array_equal(out_f, feats) and out_l == 3

    def test_sample_codec_validation(self):
        with pytest.raises(ValueError):
            encode_sample(np.zeros((2, 2), np.float32), 0)
        with pytest.raises(ValueError):
            encode_sample(np.zeros(4, np.float32), 1 << 16)

    def test_as_files_roundtrip(self):
        ds = SyntheticDataset.make(n_samples=50, n_features=4)
        files = ds.as_files()
        assert len(files) == 50
        rebuilt = SyntheticDataset.from_files(files, ds.n_classes)
        # Same multiset of (features, label) pairs.
        assert sorted(rebuilt.y.tolist()) == sorted(ds.y.tolist())
        assert rebuilt.X.shape == ds.X.shape


class TestTopK:
    def test_top1(self):
        scores = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert top_k_accuracy(scores, np.array([1, 0]), 1) == 1.0
        assert top_k_accuracy(scores, np.array([0, 1]), 1) == 0.0

    def test_topk_superset_of_top1(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=(200, 10))
        y = rng.integers(0, 10, 200)
        t1 = top_k_accuracy(scores, y, 1)
        t5 = top_k_accuracy(scores, y, 5)
        assert t5 >= t1
        assert abs(t5 - 0.5) < 0.15  # random scores: top-5 of 10 ≈ 0.5

    def test_k_clamped_to_classes(self):
        scores = np.array([[0.3, 0.7]])
        assert top_k_accuracy(scores, np.array([0]), 99) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros(3), np.zeros(3, int), 1)
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((3, 2)), np.zeros(3, int), 0)


class TestClassifiers:
    @pytest.mark.parametrize("cls", [SoftmaxClassifier, MlpClassifier])
    def test_training_reduces_error(self, cls):
        ds = SyntheticDataset.make(n_samples=1500, class_sep=3.0, seed=2)
        train, test = ds.split()
        clf = cls(ds.X.shape[1], ds.n_classes)
        acc0 = top_k_accuracy(clf.scores(test.X), test.y, 1)
        rng = np.random.default_rng(0)
        for _ in range(15):
            clf.train_epoch(train.X, train.y, rng.permutation(len(train)), 32)
        acc1 = top_k_accuracy(clf.scores(test.X), test.y, 1)
        assert acc1 > acc0 + 0.2

    def test_order_must_cover_dataset(self):
        clf = SoftmaxClassifier(4, 3)
        X = np.zeros((10, 4))
        y = np.zeros(10, int)
        with pytest.raises(ValueError):
            clf.train_epoch(X, y, [0, 1, 2], 2)

    def test_deterministic_given_seed_and_order(self):
        ds = SyntheticDataset.make(n_samples=300)
        order = np.arange(300)
        a = SoftmaxClassifier(ds.X.shape[1], ds.n_classes, seed=3)
        b = SoftmaxClassifier(ds.X.shape[1], ds.n_classes, seed=3)
        a.train_epoch(ds.X, ds.y, order, 32)
        b.train_epoch(ds.X, ds.y, order, 32)
        assert np.array_equal(a.W, b.W)

    def test_train_with_orders_history(self):
        ds = SyntheticDataset.make(n_samples=800, class_sep=3.0)
        train, test = ds.split()
        rng = np.random.default_rng(1)
        orders = [rng.permutation(len(train)) for _ in range(5)]
        history = train_with_orders(
            lambda: SoftmaxClassifier(ds.X.shape[1], ds.n_classes),
            train.X, train.y, test.X, test.y, orders,
        )
        assert len(history) == 5
        assert history[-1]["top1"] > history[0]["top1"] - 0.05
        assert all(h["top5"] >= h["top1"] for h in history)
