"""Tests for multi-task sweep scheduling (N trainers × 1 dataset)."""

import pytest

from repro.bench.setups import (
    add_diesel,
    bulk_load_diesel,
    diesel_client_with_snapshot,
    make_testbed,
)
from repro.calibration import ModelProfile
from repro.core.shared_cache import SharedCacheRegistry
from repro.dlt.sweep import build_sweep_task, run_sweep
from repro.errors import DieselError

FILES = {f"/d/f{i:03d}": bytes([i % 251]) * 2000 for i in range(64)}


def sweep_rig(n_tasks=3, n_nodes=4, shared=True, chunk_size=20_000):
    tb = make_testbed(n_nodes)
    add_diesel(tb, 2)
    chunks = bulk_load_diesel(tb, "ds", FILES, chunk_size=chunk_size)
    registry = SharedCacheRegistry(tb.env) if shared else None
    tasks = []
    for t in range(n_tasks):
        clients = [
            diesel_client_with_snapshot(tb, "ds", node, f"t{t}c{i}", i)
            for i, node in enumerate(tb.compute_nodes)
        ]
        tasks.append(build_sweep_task(
            f"task{t}", tb.env, tb.fabric, tb.diesel, "ds", clients,
            shared=registry, tenant=f"tenant{t % 2}",
        ))
    return tb, registry, tasks, chunks


class TestRunSweep:
    def test_all_tasks_train_and_backend_fetches_once(self):
        tb, registry, tasks, chunks = sweep_rig(n_tasks=3)
        model = ModelProfile("toy", compute_s=1e-4)
        results = tb.run(run_sweep(tb.env, tasks, model, epochs=1,
                                   batch_size=4))
        assert sorted(results) == [t.name for t in tasks]
        for t in tasks:
            per_worker = results[t.name]
            assert len(per_worker) == len(t.clients)
            # One iteration per batch of each worker's (uneven) shard.
            expected = sum(
                -(-len(r.last_plan.files) // 4) for r in t.readers
            )
            assert sum(len(r.timings) for r in per_worker) == expected
            assert sum(
                len(r.last_plan.files) for r in t.readers
            ) == len(FILES)
        # The whole sweep cost exactly one backend fetch per chunk.
        assert tb.diesel.stats.chunk_reads == len(chunks)
        assert registry.stats.refs == len(tasks) * len(chunks)

    def test_sweep_without_shared_tier_multiplies_fetches(self):
        tb, _, tasks, chunks = sweep_rig(n_tasks=3, shared=False)
        model = ModelProfile("toy", compute_s=1e-4)
        tb.run(run_sweep(tb.env, tasks, model, epochs=1, batch_size=4))
        # Task-private caches each pay the full fetch bill — the cost
        # the shared tier removes.
        assert tb.diesel.stats.chunk_reads == len(tasks) * len(chunks)

    def test_tenants_accounted_per_task(self):
        tb, registry, tasks, chunks = sweep_rig(n_tasks=2)
        model = ModelProfile("toy", compute_s=1e-4)
        tb.run(run_sweep(tb.env, tasks, model, epochs=1, batch_size=4))
        rows = {r["tenant"]: r for r in registry.tenant_rows()}
        assert set(rows) == {"tenant0", "tenant1"}
        for row in rows.values():
            assert row["total_usage_bytes"] > 0
            assert row["within_quota"]

    def test_validation(self):
        tb, registry, tasks, _ = sweep_rig(n_tasks=1)
        model = ModelProfile("toy", compute_s=1e-4)
        with pytest.raises(DieselError):
            tb.run(run_sweep(tb.env, [], model))
        with pytest.raises(DieselError):
            build_sweep_task(
                "t", tb.env, tb.fabric, tb.diesel, "ds", [],
            )
