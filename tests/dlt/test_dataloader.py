"""Tests for the PyTorch-style SimDataLoader."""

import pytest

from repro.dlt.dataloader import SimDataLoader
from repro.errors import DieselError
from repro.sim import Environment, run_sync


class SlowReader:
    """Fixed per-file read time; echoes path-derived bytes."""

    def __init__(self, env, paths, read_s=1e-3, shuffle_s=0.0):
        self.env = env
        self.paths = list(paths)
        self.read_s = read_s
        self.shuffle_s = shuffle_s

    def begin_epoch(self, epoch):
        yield self.env.timeout(self.shuffle_s)
        # rotate deterministically per epoch so orders differ
        k = epoch % max(1, len(self.paths))
        return self.paths[k:] + self.paths[:k]

    def read(self, path):
        yield self.env.timeout(self.read_s)
        return path.encode()


class BatchReader(SlowReader):
    """A reader exposing the optional batched read path.

    One flat ``read_s`` per *batch* (instead of per file), the shape a
    DIESEL ``get_many()`` backend has: the loader workers must prefer
    ``read_batch`` over per-file ``read`` calls.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.batch_calls = 0
        self.single_calls = 0

    def read(self, path):
        self.single_calls += 1
        return (yield from super().read(path))

    def read_batch(self, paths):
        self.batch_calls += 1
        yield self.env.timeout(self.read_s)
        return {p: p.encode() for p in paths}


def make_loader(n_files=20, batch=4, workers=2, read_s=1e-3, **kw):
    env = Environment()
    reader = SlowReader(env, [f"/f{i:02d}" for i in range(n_files)], read_s)
    return env, SimDataLoader(env, reader, batch_size=batch,
                              num_workers=workers, **kw)


class TestLoader:
    def test_validation(self):
        env = Environment()
        with pytest.raises(DieselError):
            SimDataLoader(env, None, batch_size=0)

    def test_batch_count_and_contents(self):
        env, loader = make_loader(n_files=10, batch=4)

        def proc():
            n = yield from loader.begin_epoch(0)
            batches = yield from loader.drain()
            return n, batches

        n, batches = run_sync(env, proc())
        assert n == 3  # 4+4+2
        assert [len(b.items) for b in batches] == [4, 4, 2]
        seen = [p for b in batches for p in b.paths]
        assert sorted(seen) == sorted(f"/f{i:02d}" for i in range(10))
        for b in batches:
            for path, data in b.items:
                assert data == path.encode()

    def test_drop_last(self):
        env, loader = make_loader(n_files=10, batch=4, drop_last=True)

        def proc():
            n = yield from loader.begin_epoch(0)
            yield from loader.drain()
            return n

        assert run_sync(env, proc()) == 2

    def test_next_before_epoch_raises(self):
        env, loader = make_loader()

        def proc():
            yield from loader.next_batch()

        with pytest.raises(DieselError):
            run_sync(env, proc())

    def test_new_epoch_before_drain_raises(self):
        env, loader = make_loader(n_files=8, batch=4)

        def proc():
            yield from loader.begin_epoch(0)
            yield from loader.begin_epoch(1)

        with pytest.raises(DieselError):
            run_sync(env, proc())

    def test_epoch_orders_differ(self):
        env, loader = make_loader(n_files=8, batch=8)

        def proc():
            yield from loader.begin_epoch(0)
            (b0,) = yield from loader.drain()
            yield from loader.begin_epoch(1)
            (b1,) = yield from loader.drain()
            return b0.paths, b1.paths

        o0, o1 = run_sync(env, proc())
        assert o0 != o1 and sorted(o0) == sorted(o1)

    def test_prefetch_hides_io_behind_compute(self):
        env, loader = make_loader(n_files=24, batch=4, workers=4,
                                  read_s=1e-4)

        def train():
            yield from loader.begin_epoch(0)
            while loader.batches_remaining:
                batch = yield from loader.next_batch()
                yield env.timeout(5e-3)  # compute dominates
            return loader.stats

        stats = run_sync(env, train())
        # After the cold start, waits are ~zero.
        assert stats.mean_wait() < stats.mean_fetch()
        assert stats.batches == 6

    def test_io_bound_consumer_stalls(self):
        env, loader = make_loader(n_files=24, batch=4, workers=1,
                                  read_s=2e-3)

        def train():
            yield from loader.begin_epoch(0)
            while loader.batches_remaining:
                yield from loader.next_batch()
                yield env.timeout(1e-4)  # compute is trivial
            return loader.stats

        stats = run_sync(env, train())
        assert stats.mean_wait() > 1e-3  # real stalls

    def test_batched_reader_preferred(self):
        env = Environment()
        reader = BatchReader(env, [f"/f{i:02d}" for i in range(10)], 1e-3)
        loader = SimDataLoader(env, reader, batch_size=4, num_workers=2)

        def proc():
            yield from loader.begin_epoch(0)
            batches = yield from loader.drain()
            return batches

        batches = run_sync(env, proc())
        # One read_batch per mini-batch, zero per-file reads.
        assert reader.batch_calls == 3
        assert reader.single_calls == 0
        # Item order inside each delivered batch follows the path order.
        for b in batches:
            for path, data in b.items:
                assert data == path.encode()
        seen = [p for b in batches for p in b.paths]
        assert sorted(seen) == sorted(f"/f{i:02d}" for i in range(10))

    def test_stats_accumulate(self):
        env, loader = make_loader(n_files=8, batch=4)

        def proc():
            yield from loader.begin_epoch(0)
            yield from loader.drain()

        run_sync(env, proc())
        assert loader.stats.files == 8
        assert loader.stats.bytes == sum(len(f"/f{i:02d}") for i in range(8))
        assert loader.stats.total_fetch_s > 0
