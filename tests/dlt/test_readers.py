"""Tests for the trainer's storage readers (Lustre / DIESEL-FUSE)."""

import pytest

from repro.bench.setups import (
    add_diesel,
    add_lustre,
    bulk_load_diesel,
    bulk_load_lustre,
    diesel_client_with_snapshot,
    make_testbed,
)
from repro.core.fuse import mount
from repro.dlt.readers import FuseReader, LustreReader

FILES = {f"/r/f{i:03d}": bytes([i]) * 1024 for i in range(30)}


def make_lustre_reader():
    tb = make_testbed(n_compute=1)
    fs = add_lustre(tb)
    bulk_load_lustre(tb, FILES)
    return tb, LustreReader(fs, tb.compute_nodes[0], list(FILES), seed=1)


def make_fuse_reader(chunk_wise=True):
    tb = make_testbed(n_compute=1)
    add_diesel(tb)
    bulk_load_diesel(tb, "ds", FILES, chunk_size=8 * 1024)
    client = diesel_client_with_snapshot(tb, "ds", tb.compute_nodes[0], "c0")
    client.enable_shuffle(group_size=2)
    return tb, FuseReader(mount([client]), chunk_wise=chunk_wise, seed=1)


class TestLustreReader:
    def test_epoch_order_is_permutation(self):
        tb, reader = make_lustre_reader()

        def proc():
            order = yield from reader.begin_epoch(0)
            return order

        order = tb.run(proc())
        assert sorted(order) == sorted(FILES)

    def test_epochs_differ(self):
        tb, reader = make_lustre_reader()

        def proc():
            o1 = yield from reader.begin_epoch(0)
            o2 = yield from reader.begin_epoch(1)
            return o1, o2

        o1, o2 = tb.run(proc())
        assert o1 != o2

    def test_read_returns_bytes(self):
        tb, reader = make_lustre_reader()

        def proc():
            data = yield from reader.read("/r/f005")
            return data

        assert tb.run(proc()) == FILES["/r/f005"]

    def test_shuffle_charges_time(self):
        tb, reader = make_lustre_reader()

        def proc():
            t0 = tb.env.now
            yield from reader.begin_epoch(0)
            return tb.env.now - t0

        assert tb.run(proc()) > 0


class TestFuseReader:
    @pytest.mark.parametrize("chunk_wise", [True, False])
    def test_epoch_order_is_permutation(self, chunk_wise):
        tb, reader = make_fuse_reader(chunk_wise)

        def proc():
            order = yield from reader.begin_epoch(0)
            return order

        assert sorted(tb.run(proc())) == sorted(FILES)

    def test_chunkwise_order_groups_chunks(self):
        tb, reader = make_fuse_reader(chunk_wise=True)
        client = reader.mount.clients[0]
        grouping = client.index.files_by_chunk()
        chunk_of = {f: cid for cid, fl in grouping.items() for f in fl}

        def proc():
            order = yield from reader.begin_epoch(0)
            return order

        order = tb.run(proc())
        # Consecutive same-chunk fraction far above a uniform shuffle's.
        same = sum(1 for a, b in zip(order, order[1:])
                   if chunk_of[a] == chunk_of[b])
        assert same / (len(order) - 1) > 0.2

    def test_read_through_fuse_verifies(self):
        tb, reader = make_fuse_reader()

        def proc():
            yield from reader.begin_epoch(0)
            data = yield from reader.read("/r/f010")
            return data

        assert tb.run(proc()) == FILES["/r/f010"]
