"""Cursor-based paginated pscan: per-table, sharded, and degraded."""

import pytest

from repro.sim import run_sync
from repro.kvstore import KVTable

from tests.kvstore.test_kv import build_cluster


def fill(table_or_kv, n, put):
    for i in range(n):
        put(f"k/{i:03d}", f"v{i}".encode())


class TestTableCursor:
    def make(self, n=25):
        t = KVTable()
        fill(t, n, t.put)
        return t

    def test_cursor_resumes_after_last_key(self):
        t = self.make()
        first = t.pscan("k/", 10)
        rest = t.pscan("k/", None, first[-1][0])
        assert first + rest == t.pscan("k/")

    def test_paged_walk_is_bit_identical_to_full_scan(self):
        t = self.make()
        for page_size in (1, 3, 7, 100):
            walked, cursor = [], None
            while True:
                page = t.pscan("k/", page_size, cursor)
                if not page:
                    break
                walked.extend(page)
                cursor = page[-1][0]
            assert walked == t.pscan("k/")

    def test_cursor_before_prefix_starts_at_prefix(self):
        # A cursor lexically below the prefix range must not push the
        # scan start before the range (it would bail on the first
        # non-matching key and return nothing).
        t = self.make(5)
        t.put("a/0", b"x")
        assert t.pscan("k/", None, "a/0") == t.pscan("k/")

    def test_cursor_past_range_returns_empty(self):
        t = self.make(5)
        assert t.pscan("k/", None, "k/999") == []

    def test_pcount_matches_pscan(self):
        t = self.make(12)
        t.put("a", b"x")
        t.put("z", b"y")
        assert t.pcount("k/") == len(t.pscan("k/")) == 12
        assert t.pcount("") == len(t)
        assert t.pcount("nope/") == 0


class TestShardedPages:
    def populated(self, n=60, n_instances=4):
        env, _, kv, clients = build_cluster(n_instances=n_instances)
        fill(kv, n, kv.local_put)
        return env, kv, clients[0]

    def test_local_page_walk_equals_unpaginated(self):
        _, kv, _ = self.populated()
        for page_size in (1, 7, 64, 1000):
            walked, cursor = [], None
            while True:
                page, cursor = kv.local_pscan_page(
                    "k/", cursor=cursor, limit=page_size
                )
                walked.extend(page)
                if cursor is None:
                    break
            assert walked == kv.local_pscan("k/")

    def test_rpc_page_walk_equals_unpaginated(self):
        env, kv, client = self.populated()

        def walk(env):
            walked, cursor = [], None
            while True:
                page, cursor = yield from kv.pscan_page(
                    client, "k/", cursor=cursor, limit=13
                )
                walked.extend(page)
                if cursor is None:
                    break
            return walked

        assert run_sync(env, walk(env)) == kv.local_pscan("k/")

    def test_no_limit_returns_everything_with_no_cursor(self):
        _, kv, _ = self.populated(20)
        page, cursor = kv.local_pscan_page("k/")
        assert page == kv.local_pscan("k/")
        assert cursor is None

    def test_exact_boundary_final_page(self):
        # n divisible by the page size: the last full page returns a
        # cursor, and the extra fetch comes back empty with cursor=None.
        _, kv, _ = self.populated(20)
        page, cursor = kv.local_pscan_page("k/", limit=20)
        assert len(page) == 20 and cursor is not None
        tail, cursor = kv.local_pscan_page("k/", cursor=cursor, limit=20)
        assert tail == [] and cursor is None

    def test_pscan_iter_streams_nonempty_pages(self):
        _, kv, _ = self.populated(10)
        pages = list(kv.local_pscan_iter("k/", 4))
        assert [len(p) for p in pages] == [4, 4, 2]
        assert [kv for p in pages for kv in p] == kv.local_pscan("k/")
        with pytest.raises(ValueError):
            next(kv.local_pscan_iter("k/", 0))

    def test_local_pcount_sums_shards(self):
        _, kv, _ = self.populated(33)
        assert kv.local_pcount("k/") == 33
        assert kv.local_pcount("zz/") == 0

    def test_skip_dead_page_walk_matches_skip_dead_scan(self):
        _, kv, _ = self.populated()
        victim = kv.instances[1]
        assert len(victim.table) > 0
        victim.node.kill()
        walked, cursor = [], None
        while True:
            page, cursor = kv.local_pscan_page(
                "k/", cursor=cursor, limit=9, skip_dead=True
            )
            walked.extend(page)
            if cursor is None:
                break
        assert walked == kv.local_pscan("k/", skip_dead=True)


class TestSkipDeadDeterminism:
    """Merge order must depend only on pair content, never shard fate.

    A key can transiently live on two shards (mid-rebalance, or a
    restarted shard rebuilt from chunks while the old owner drains);
    a key-only stable sort would then order the duplicates by shard
    enumeration, so which shard died changed the output order.
    """

    def duplicated(self):
        env, _, kv, clients = build_cluster(n_instances=3)
        fill(kv, 12, kv.local_put)
        # Plant the same key on two specific shards, with values sorting
        # *against* shard enumeration order: a key-only stable sort
        # would emit them in shard order and miss the regression.
        kv.instances[0].table.put("k/dup", b"z-from-shard-0")
        kv.instances[2].table.put("k/dup", b"a-from-shard-2")
        return env, kv, clients[0]

    def test_duplicate_keys_order_by_full_pair(self):
        _, kv, _ = self.duplicated()
        out = kv.local_pscan("k/")
        dups = [v for k, v in out if k == "k/dup"]
        assert dups == [b"a-from-shard-2", b"z-from-shard-0"]

    def test_order_is_invariant_to_which_shard_died(self):
        # Kill a bystander shard: surviving pairs must keep their
        # relative order no matter which shard dropped out.
        _, kv1, _ = self.duplicated()
        baseline = kv1.local_pscan("k/", skip_dead=True)
        _, kv2, _ = self.duplicated()
        kv2.instances[1].node.kill()
        lost = set()
        degraded = kv2.local_pscan("k/", skip_dead=True)
        lost = {k for k, _ in baseline} - {k for k, _ in degraded}
        survivors = [(k, v) for k, v in baseline if k not in lost]
        assert degraded == survivors

    def test_paged_merge_preserves_duplicate_order(self):
        _, kv, _ = self.duplicated()
        walked, cursor = [], None
        while True:
            page, cursor = kv.local_pscan_page("k/", cursor=cursor, limit=3)
            walked.extend(page)
            if cursor is None:
                break
        assert walked == kv.local_pscan("k/")
