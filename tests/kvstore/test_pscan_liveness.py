"""Liveness semantics of sharded scans and retry-wrapped shard RPCs."""

import pytest

from repro.errors import ShardUnavailableError
from repro.ft import RetryPolicy
from repro.sim import run_sync

from tests.kvstore.test_kv import build_cluster


def populate(env, kv, client, n=40):
    def writer(env):
        for i in range(n):
            yield from kv.put(client, f"k/{i:03d}", b"v" * 8)

    run_sync(env, writer(env))


class TestUpFrontValidation:
    def test_pscan_fails_fast_before_paying_any_shard(self):
        env, _, kv, (client,) = build_cluster(n_instances=4)
        populate(env, kv, client)
        kv.instances[2].node.kill()
        kv.instances[3].node.kill()
        t0 = env.now
        with pytest.raises(ShardUnavailableError) as exc_info:
            run_sync(env, kv.pscan(client, "k/"))
        # All dead shards named in one error, and no RPC cost was paid:
        # the scan rejected before touching even the live shards.
        assert "kv2" in str(exc_info.value)
        assert "kv3" in str(exc_info.value)
        assert env.now == t0

    def test_local_pscan_same_validation(self):
        env, _, kv, (client,) = build_cluster(n_instances=4)
        populate(env, kv, client)
        kv.instances[1].node.kill()
        with pytest.raises(ShardUnavailableError):
            kv.local_pscan("k/")
        survivors = kv.local_pscan("k/", skip_dead=True)
        assert 0 < len(survivors) < 40

    def test_all_alive_scan_is_complete_and_sorted(self):
        env, _, kv, (client,) = build_cluster(n_instances=4)
        populate(env, kv, client, n=25)
        out = run_sync(env, kv.pscan(client, "k/"))
        assert [k for k, _ in out] == sorted(f"k/{i:03d}" for i in range(25))


class TestSkipDeadDegradedMode:
    def test_skip_dead_returns_surviving_shards_only(self):
        env, _, kv, (client,) = build_cluster(n_instances=4)
        populate(env, kv, client)
        victim = kv.instances[1]
        lost = len(victim.table)
        assert lost > 0  # the victim actually owns some keys
        victim.node.kill()
        out = run_sync(env, kv.pscan(client, "k/", skip_dead=True))
        assert len(out) == 40 - lost
        local = kv.local_pscan("k/", skip_dead=True)
        assert [k for k, _ in out] == [k for k, _ in local]

    def test_shard_dying_mid_scan_is_skipped_not_fatal(self):
        # Slow shards so the scan is in flight long enough to kill one.
        env, _, kv, (client,) = build_cluster(n_instances=4, qps=100)
        populate(env, kv, client)
        victim = kv.instances[3]  # scanned last

        def scan_and_kill(env):
            def killer(env):
                yield env.timeout(1e-4)
                victim.node.kill()

            env.process(killer(env))
            result = yield from kv.pscan(client, "k/", skip_dead=True)
            return result

        out = run_sync(env, scan_and_kill(env))
        # The dead shard's keys are absent; everything else merged fine.
        assert 0 < len(out) < 40

    def test_shard_dying_mid_scan_raises_in_strict_mode(self):
        env, _, kv, (client,) = build_cluster(n_instances=4, qps=100)
        populate(env, kv, client)
        victim = kv.instances[3]

        def scan_and_kill(env):
            def killer(env):
                yield env.timeout(1e-4)
                victim.node.kill()

            env.process(killer(env))
            result = yield from kv.pscan(client, "k/")
            return result

        with pytest.raises(Exception) as exc_info:
            run_sync(env, scan_and_kill(env))
        assert exc_info.type.__name__ in (
            "NodeDownError", "ShardUnavailableError"
        )


class TestRetryWrappedOps:
    def test_get_survives_a_shard_blip(self):
        env, _, kv, (client,) = build_cluster(n_instances=2)
        populate(env, kv, client, n=10)
        kv.configure_ft(RetryPolicy(retries=3, backoff_base_s=0.01,
                                    jitter=0.0))
        victim = kv.owner("k/000")
        victim.node.kill()

        def restore_soon(env):
            yield env.timeout(0.015)  # back before retries run out
            victim.node.restore()
            victim.restart()

        env.process(restore_soon(env))

        def read(env):
            value = yield from kv.get_or_none(client, "k/000")
            return value

        # The pair was wiped by the cold restart, but the *call* succeeds
        # where the legacy path would have raised ShardUnavailableError.
        assert run_sync(env, read(env)) is None

    def test_exhausted_retries_surface_the_shard_error(self):
        env, _, kv, (client,) = build_cluster(n_instances=2)
        populate(env, kv, client, n=10)
        kv.configure_ft(RetryPolicy(retries=2, backoff_base_s=0.005,
                                    jitter=0.0))
        kv.owner("k/000").node.kill()
        with pytest.raises(ShardUnavailableError):
            run_sync(env, kv.get(client, "k/000"))

    def test_legacy_path_unchanged_without_configure_ft(self):
        env, _, kv, (client,) = build_cluster(n_instances=2)
        populate(env, kv, client, n=10)
        kv.owner("k/000").node.kill()
        t0 = env.now
        with pytest.raises(ShardUnavailableError):
            run_sync(env, kv.get(client, "k/000"))
        assert env.now == t0  # single up-check, no backoff paid
