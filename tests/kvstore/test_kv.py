"""Tests for KVTable / KVInstance / ShardedKV."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import NetworkProfile
from repro.cluster import NetworkFabric, Node
from repro.errors import KeyNotFoundError, NodeDownError, ShardUnavailableError
from repro.kvstore import KVInstance, KVTable, ShardedKV
from repro.sim import Environment, run_sync


class TestKVTable:
    def test_put_get_delete(self):
        t = KVTable()
        t.put("a", b"1")
        assert t.get("a") == b"1"
        assert "a" in t
        t.delete("a")
        assert "a" not in t
        with pytest.raises(KeyNotFoundError):
            t.get("a")
        with pytest.raises(KeyNotFoundError):
            t.delete("a")

    def test_get_or_none(self):
        t = KVTable()
        assert t.get_or_none("missing") is None
        t.put("k", b"v")
        assert t.get_or_none("k") == b"v"

    def test_overwrite(self):
        t = KVTable()
        t.put("k", b"v1")
        t.put("k", b"v2")
        assert t.get("k") == b"v2"
        assert len(t) == 1

    def test_type_validation(self):
        t = KVTable()
        with pytest.raises(TypeError):
            t.put(1, b"v")
        with pytest.raises(TypeError):
            t.put("k", "not-bytes")

    def test_pscan_sorted_and_prefix_bounded(self):
        t = KVTable()
        for k in ("b/2", "a/1", "b/1", "c/1", "b/10"):
            t.put(k, k.encode())
        result = t.pscan("b/")
        assert [k for k, _ in result] == ["b/1", "b/10", "b/2"]

    def test_pscan_limit(self):
        t = KVTable()
        for i in range(10):
            t.put(f"p/{i}", b"x")
        assert len(t.pscan("p/", 3)) == 3

    def test_pscan_empty_prefix_is_full_scan(self):
        t = KVTable()
        t.put("x", b"1")
        t.put("a", b"2")
        assert [k for k, _ in t.pscan("")] == ["a", "x"]

    def test_pscan_after_mutation(self):
        """The lazy sorted index must invalidate on writes and deletes."""
        t = KVTable()
        t.put("a", b"")
        assert t.keys() == ["a"]
        t.put("b", b"")
        assert t.keys() == ["a", "b"]
        t.delete("a")
        assert t.keys() == ["b"]

    def test_clear_and_load(self):
        t = KVTable()
        t.load([("a", b"1"), ("b", b"2")])
        assert len(t) == 2
        t.clear()
        assert len(t) == 0

    @settings(max_examples=30, deadline=None)
    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=10), st.binary(max_size=16), max_size=30
        ),
        st.text(max_size=3),
    )
    def test_pscan_matches_reference(self, data, prefix):
        t = KVTable()
        t.load(data.items())
        expected = sorted((k, v) for k, v in data.items() if k.startswith(prefix))
        assert t.pscan(prefix) == expected


def build_cluster(n_instances=4, n_client_nodes=1, qps=1e9):
    env = Environment()
    fabric = NetworkFabric(env, NetworkProfile(latency_s=0))
    instances = []
    for i in range(n_instances):
        node = fabric.add_node(Node(env, f"kv{i}"))
        instances.append(KVInstance(env, fabric, node, f"kv{i}", qps=qps))
    clients = [fabric.add_node(Node(env, f"c{i}")) for i in range(n_client_nodes)]
    return env, fabric, ShardedKV(instances), clients


class TestShardedKV:
    def test_requires_instances(self):
        with pytest.raises(ValueError):
            ShardedKV([])

    def test_put_get_roundtrip(self):
        env, _, kv, (client,) = build_cluster()

        def proc(env):
            yield from kv.put(client, "file/a", b"data-a")
            value = yield from kv.get(client, "file/a")
            return value

        assert run_sync(env, proc(env)) == b"data-a"

    def test_keys_spread_across_shards(self):
        env, _, kv, _ = build_cluster(n_instances=4)
        for i in range(400):
            kv.local_put(f"key-{i}", b"v")
        sizes = [len(inst.table) for inst in kv.instances]
        assert sum(sizes) == 400
        assert all(s > 0 for s in sizes)

    def test_owner_is_stable(self):
        env, _, kv, _ = build_cluster(n_instances=4)
        assert kv.owner("some-key") is kv.owner("some-key")

    def test_pscan_merges_across_shards(self):
        env, _, kv, (client,) = build_cluster(n_instances=4)
        for i in range(50):
            kv.local_put(f"ds/f{i:03d}", str(i).encode())

        def proc(env):
            result = yield from kv.pscan(client, "ds/")
            return result

        result = run_sync(env, proc(env))
        assert [k for k, _ in result] == [f"ds/f{i:03d}" for i in range(50)]

    def test_local_matches_rpc_view(self):
        env, _, kv, (client,) = build_cluster()
        kv.local_put("k", b"local-write")

        def proc(env):
            value = yield from kv.get(client, "k")
            return value

        assert run_sync(env, proc(env)) == b"local-write"
        assert kv.local_get("k") == b"local-write"

    def test_delete(self):
        env, _, kv, (client,) = build_cluster()
        kv.local_put("k", b"v")

        def proc(env):
            yield from kv.delete(client, "k")
            return (yield from kv.get_or_none(client, "k"))

        assert run_sync(env, proc(env)) is None

    def test_down_shard_raises(self):
        env, _, kv, (client,) = build_cluster(n_instances=2)
        kv.local_put("k", b"v")
        kv.owner("k").node.kill()

        def proc(env):
            yield from kv.get(client, "k")

        with pytest.raises((ShardUnavailableError, NodeDownError)):
            run_sync(env, proc(env))

    def test_lose_instance_clears_only_that_shard(self):
        env, _, kv, _ = build_cluster(n_instances=4)
        for i in range(200):
            kv.local_put(f"key-{i}", b"v")
        before = kv.total_keys()
        lost = kv.lose_instance(0)
        assert len(lost.table) == 0
        assert kv.total_keys() < before
        assert kv.total_keys() > 0

    def test_lose_all(self):
        env, _, kv, _ = build_cluster()
        kv.local_put("a", b"1")
        kv.lose_all()
        assert kv.total_keys() == 0

    def test_service_rate_limits_throughput(self):
        """The instance's aggregate QPS binds under saturating load.

        One instance capped at 1000 q/s, 16 saturating clients issuing
        192 calls total: ~192/1000 s.
        """
        env, _, kv, (client,) = build_cluster(n_instances=1, qps=1000)
        kv.local_put("k", b"v")

        def reader(env):
            for _ in range(12):
                yield from kv.get(client, "k")

        procs = [env.process(reader(env)) for _ in range(16)]
        env.run(until=env.all_of(procs))
        assert env.now == pytest.approx(192 / 1000, rel=0.1)


class TestShardFailover:
    """_live_owner routing when one shard's node dies (§4.1.2 scenario a)."""

    def setup_with_dead_shard(self, n_keys=200):
        env, _, kv, clients = build_cluster(n_instances=4)
        keys = [f"key-{i}" for i in range(n_keys)]
        for k in keys:
            kv.local_put(k, k.encode())
        victim = kv.instances[0]
        victim.node.kill()
        dead = [k for k in keys if kv.owner(k) is victim]
        live = [k for k in keys if kv.owner(k) is not victim]
        assert dead and live  # both populations exist at this key count
        return env, kv, clients, victim, dead, live

    def test_dead_shard_keys_raise_live_keys_unaffected(self):
        env, kv, _, victim, dead, live = self.setup_with_dead_shard()
        for k in dead[:5]:
            with pytest.raises(ShardUnavailableError):
                kv.local_get(k)
        for k in live[:5]:
            assert kv.local_get(k) == k.encode()

    def test_rpc_path_rejects_dead_owner_before_spending_time(self):
        env, kv, (client,), victim, dead, _ = self.setup_with_dead_shard()

        def proc(env):
            yield from kv.get(client, dead[0])

        t0 = env.now
        with pytest.raises(ShardUnavailableError):
            run_sync(env, proc(env))
        assert env.now == t0  # routing failed before any RPC cost accrued

    def test_routing_is_deterministic_across_calls(self):
        env, kv, _, victim, dead, live = self.setup_with_dead_shard()
        # The same key always maps to the same shard — dead keys stay
        # dead, live keys stay live, in any order of access.
        for k in (live[0], dead[0], live[1], dead[1], live[0]):
            if k in dead:
                with pytest.raises(ShardUnavailableError):
                    kv.local_get(k)
            else:
                assert kv.local_get(k) == k.encode()

    def test_pscan_refuses_partial_views(self):
        """A merged scan must never silently drop a dead shard's range."""
        env, kv, _, victim, dead, live = self.setup_with_dead_shard()
        with pytest.raises(ShardUnavailableError):
            kv.local_pscan("key-")

    def test_pscan_merged_ordering_deterministic(self):
        env, _, kv, (client,) = build_cluster(n_instances=4)
        keys = [f"key-{i:03d}" for i in range(60)]
        for k in reversed(keys):  # insert out of order on purpose
            kv.local_put(k, b"v")
        merged = kv.local_pscan("key-")
        assert [k for k, _ in merged] == sorted(keys)
        assert merged == kv.local_pscan("key-")
