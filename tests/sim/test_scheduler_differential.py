"""Differential tests: calendar-queue vs heapq scheduler.

The calendar queue must be *observationally identical* to the flat
binary heap — same event delivery order, same final state — on any
workload.  These tests drive randomized workloads (mixed timeout
magnitudes, interrupts, AllOf/AnyOf, semaphores) through both
schedulers and assert bit-identical traces, plus unit-level adversarial
tests of the calendar queue itself (year-boundary float rounding,
resize, the sparse far-tail fallback).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InterruptError
from repro.sim import Environment, Semaphore
from repro.sim.engine import _CalendarQueue, _HeapQueue


def _run_workload(scheduler: str, seed: int) -> tuple:
    """One randomized mixed workload; returns its full observable trace."""
    rng = random.Random(seed)
    env = Environment(scheduler=scheduler)
    trace = []

    def sleeper(env, tag, delay):
        try:
            yield env.timeout(delay)
            trace.append(("slept", tag, env.now))
        except InterruptError as exc:
            trace.append(("interrupted", tag, env.now, exc.cause))

    def condition_waiter(env, tag, delays, mode):
        events = [env.timeout(d) for d in delays]
        yield (env.all_of(events) if mode == "all" else env.any_of(events))
        trace.append((mode, tag, env.now))

    def sem_user(env, tag, sem, hold):
        slot = sem.acquire()
        yield slot
        trace.append(("acquired", tag, env.now))
        try:
            yield env.timeout(hold)
        finally:
            sem.release(slot)
        trace.append(("released", tag, env.now))

    def killer(env, victim, delay):
        yield env.timeout(delay)
        if victim.is_alive:
            victim.interrupt(cause="diff-test")

    sem = Semaphore(env, slots=rng.randint(1, 3))
    for tag in range(rng.randint(5, 25)):
        kind = rng.randrange(4)
        if kind == 0:
            # Mixed magnitudes: sub-width, width-scale, and far-future
            # delays, to cross calendar bucket-years and laps.
            delay = rng.choice([rng.uniform(0, 1e-4),
                                rng.uniform(0, 1.0),
                                rng.uniform(0, 500.0)])
            victim = env.process(sleeper(env, tag, delay))
            if rng.random() < 0.3:
                env.process(killer(env, victim, rng.uniform(0, 500.0)))
        elif kind == 1:
            delays = [rng.uniform(0, 50) for _ in range(rng.randint(1, 5))]
            mode = rng.choice(["all", "any"])
            env.process(condition_waiter(env, tag, delays, mode))
        else:
            env.process(sem_user(env, tag, sem, rng.uniform(0.01, 20)))
    env.run()
    stats = env.engine_stats()
    return tuple(trace), env.now, stats.sim_events, sem.high_water


class TestSchedulerDifferential:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000_000))
    def test_identical_trace_on_random_workload(self, seed):
        assert _run_workload("calendar", seed) == _run_workload("heap", seed)

    def test_identical_trace_on_dense_arrival_epoch(self):
        """Regression: a dense arrival stream (5000 events at exact
        ``i * (1/5000)`` instants) once tripped year-boundary float
        rounding in the calendar queue — an entry landed in a bucket
        the harvest revolution had already passed and was delivered a
        full lap late, so a later event ran first and the straggler
        popped with ``t < now`` ("scheduled time is in the past")."""

        def run(scheduler):
            env = Environment(scheduler=scheduler)
            fired = []
            gap = 1.0 / 5000

            def chain(env, i):
                yield env.timeout(i * gap)
                yield env.timeout(2e-6)  # RPC-ish sub-gap follow-up
                fired.append((i, env.now))

            for i in range(5000):
                env.process(chain(env, i))
            env.run()
            return fired, env.engine_stats().sim_events

        assert run("calendar") == run("heap")


class TestCalendarQueueUnit:
    def test_boundary_times_pop_sorted(self):
        """Times at and just around exact bucket-year boundaries must
        pop in global sorted order — int-year classification leaves no
        room for float drift between push and harvest."""
        q = _CalendarQueue(nbuckets=64, width=1e-3)
        times = []
        for k in range(300):
            for t in (k * 1e-3, k * 1e-3 * (1 + 1e-15), (k + 1) * 1e-3 - 1e-12):
                times.append(t)
        rng = random.Random(7)
        rng.shuffle(times)
        for seq, t in enumerate(times):
            q.push(t, seq, None)
        popped = [q.pop()[0] for _ in range(len(times))]
        assert popped == sorted(times)
        assert len(q) == 0

    def test_interleaved_push_pop_stays_sorted(self):
        """Steady-state churn across many harvest cycles (the regime
        where the old additive year accumulation drifted)."""
        q = _CalendarQueue(nbuckets=64, width=1e-3)
        rng = random.Random(11)
        now, seq, out = 0.0, 0, []
        for _ in range(200):
            q.push(now + rng.uniform(0, 0.05), seq, None)
            seq += 1
        for _ in range(5000):
            t, _, _ = q.pop()
            assert t >= now, "delivered into the past"
            now = t
            out.append(t)
            q.push(now + rng.uniform(0, 0.05), seq, None)
            seq += 1
        assert out == sorted(out)

    def test_sparse_far_tail_uses_direct_jump(self):
        """A pending set far beyond one calendar revolution must still
        pop correctly (the fruitless-revolution fallback)."""
        q = _CalendarQueue(nbuckets=64, width=1e-3)
        q.push(0.01, 0, None)
        assert q.pop()[0] == 0.01
        # 1e6 years away with 64 buckets: a full revolution finds nothing.
        q.push(1000.0, 1, None)
        q.push(2000.0, 2, None)
        assert q.peek_time() == 1000.0
        assert q.pop()[0] == 1000.0
        assert q.pop()[0] == 2000.0

    def test_resize_preserves_order_and_count(self):
        q = _CalendarQueue(nbuckets=64, width=1e-3)
        rng = random.Random(3)
        times = [rng.uniform(0, 100) for _ in range(5000)]  # forces growth
        for seq, t in enumerate(times):
            q.push(t, seq, None)
        assert q._nbuckets > 64
        popped = [q.pop()[0] for _ in range(len(times))]  # forces shrink
        assert popped == sorted(times)
        assert q._nbuckets == _CalendarQueue.MIN_BUCKETS

    def test_same_tick_fifo_by_seq(self):
        q = _CalendarQueue()
        for seq in (0, 1, 2, 3):
            q.push(5.0, seq, None)
        assert [q.pop()[1] for _ in range(4)] == [0, 1, 2, 3]

    def test_empty_pop_raises(self):
        q = _CalendarQueue()
        with pytest.raises(IndexError):
            q.pop()
        assert q.peek_time() == float("inf")

    def test_peak_tracks_occupancy(self):
        for cls in (_CalendarQueue, _HeapQueue):
            q = cls()
            for seq in range(10):
                q.push(float(seq), seq, None)
            for _ in range(5):
                q.pop()
            for seq in range(3):
                q.push(100.0 + seq, 10 + seq, None)
            assert q.peak == 10
