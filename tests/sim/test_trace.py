"""Tests for the DES event tracer."""

import pytest

from repro.sim import Environment, run_sync
from repro.sim.trace import Tracer


def workload(env, n=5):
    def ticker(env):
        for _ in range(n):
            yield env.timeout(1.0)
        return "done"

    env.process(ticker(env), name="ticker")
    env.run()  # drain everything, including the process-completion event


class TestTracer:
    def test_disabled_by_default(self):
        env = Environment()
        workload(env)
        assert env._tracer is None

    def test_records_events(self):
        env = Environment()
        tracer = Tracer.attach(env)
        workload(env, n=3)
        assert tracer.total_events > 0
        kinds = tracer.counts_by_kind()
        assert kinds.get("Timeout", 0) == 3
        assert kinds.get("Process", 0) == 1  # completion event

    def test_records_are_time_ordered(self):
        env = Environment()
        tracer = Tracer.attach(env)
        workload(env)
        times = [r.time for r in tracer.records()]
        assert times == sorted(times)

    def test_between_window(self):
        env = Environment()
        tracer = Tracer.attach(env)
        workload(env, n=5)
        window = list(tracer.between(1.5, 3.5))
        assert len(window) == 2  # timeouts at t=2 and t=3
        assert all(1.5 <= r.time < 3.5 for r in window)

    def test_capacity_ring(self):
        env = Environment()
        tracer = Tracer.attach(env, capacity=3)
        workload(env, n=10)
        assert len(tracer) == 3
        assert tracer.dropped > 0
        assert tracer.total_events == tracer.dropped + 3

    def test_busiest_and_summary(self):
        env = Environment()
        tracer = Tracer.attach(env)
        workload(env, n=4)
        top = tracer.busiest(2)
        assert top and top[0][1] >= 1
        text = tracer.summary()
        assert "traced" in text and "Timeout" in text

    def test_detach_stops_recording(self):
        env = Environment()
        tracer = Tracer.attach(env)
        workload(env, n=1)
        before = tracer.total_events
        Tracer.detach(env)
        workload(env, n=5)
        assert tracer.total_events == before

    def test_process_names_visible(self):
        env = Environment()
        tracer = Tracer.attach(env)

        def named(env):
            yield env.timeout(1)

        env.process(named(env), name="my-special-process")
        env.run()
        names = [r.name for r in tracer.records() if r.kind == "Process"]
        assert "my-special-process" in names

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
