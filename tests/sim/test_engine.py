"""Tests for the DES kernel: events, timeouts, processes, conditions."""

import pytest

from repro.errors import DeadlockError, InterruptError, SimulationError
from repro.sim import AllOf, AnyOf, Environment, run_sync


class TestClockAndTimeouts:
    def test_time_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_initial_time(self):
        assert Environment(initial_time=10.0).now == 10.0

    def test_timeout_advances_clock(self):
        env = Environment()

        def proc(env):
            yield env.timeout(2.5)
            return env.now

        assert run_sync(env, proc(env)) == 2.5

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_timeout_value(self):
        env = Environment()

        def proc(env):
            got = yield env.timeout(1, value="payload")
            return got

        assert run_sync(env, proc(env)) == "payload"

    def test_events_fire_in_time_order(self):
        env = Environment()
        order = []

        def proc(env, delay, tag):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc(env, 3, "c"))
        env.process(proc(env, 1, "a"))
        env.process(proc(env, 2, "b"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_fifo_at_same_time(self):
        env = Environment()
        order = []

        def proc(env, tag):
            yield env.timeout(1)
            order.append(tag)

        for tag in "abcd":
            env.process(proc(env, tag))
        env.run()
        assert order == list("abcd")

    def test_run_until_time(self):
        env = Environment()

        def ticker(env, log):
            while True:
                yield env.timeout(1)
                log.append(env.now)

        log = []
        env.process(ticker(env, log))
        env.run(until=3.5)
        assert log == [1, 2, 3]
        assert env.now == 3.5

    def test_run_until_past_raises(self):
        env = Environment()
        env.run(until=5)
        with pytest.raises(SimulationError):
            env.run(until=1)

    def test_peek(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(4)
        assert env.peek() == 4


class TestProcesses:
    def test_return_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)
            return 42

        assert run_sync(env, proc(env)) == 42

    def test_exception_propagates_through_run_until(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            run_sync(env, proc(env))

    def test_subroutine_yield_from(self):
        env = Environment()

        def inner(env):
            yield env.timeout(2)
            return "inner-result"

        def outer(env):
            result = yield from inner(env)
            return result + "!"

        assert run_sync(env, outer(env)) == "inner-result!"

    def test_wait_for_other_process(self):
        env = Environment()

        def worker(env):
            yield env.timeout(5)
            return "done"

        def waiter(env, worker_proc):
            result = yield worker_proc
            return (env.now, result)

        w = env.process(worker(env))
        assert run_sync(env, waiter(env, w)) == (5, "done")

    def test_waiting_on_finished_process_resumes_immediately(self):
        env = Environment()

        def worker(env):
            yield env.timeout(1)
            return "early"

        def late_waiter(env, w):
            yield env.timeout(10)
            result = yield w  # already processed
            return (env.now, result)

        w = env.process(worker(env))
        assert run_sync(env, late_waiter(env, w)) == (10, "early")

    def test_failed_process_propagates_to_waiter(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1)
            raise RuntimeError("inner failure")

        def waiter(env, p):
            yield p

        b = env.process(bad(env))
        w = env.process(waiter(env, b))
        with pytest.raises(RuntimeError, match="inner failure"):
            env.run(until=w)

    def test_waiter_can_catch_failure(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1)
            raise RuntimeError("x")

        def waiter(env, p):
            try:
                yield p
            except RuntimeError:
                return "caught"
            return "not caught"

        b = env.process(bad(env))
        assert run_sync(env, waiter(env, b)) == "caught"

    def test_yield_non_event_fails_process(self):
        env = Environment()

        def bad(env):
            yield 42

        p = env.process(bad(env))
        with pytest.raises(SimulationError, match="non-event"):
            env.run(until=p)

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_immediate_return(self):
        env = Environment()

        def noop(env):
            return "instant"
            yield  # pragma: no cover

        assert run_sync(env, noop(env)) == "instant"


class TestInterrupt:
    def test_interrupt_wakes_process(self):
        env = Environment()
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100)
            except InterruptError as exc:
                log.append((env.now, exc.cause))
            return "survived"

        def killer(env, victim):
            yield env.timeout(3)
            victim.interrupt(cause="failure")

        victim = env.process(sleeper(env))
        env.process(killer(env, victim))
        env.run()
        assert log == [(3, "failure")]
        assert victim.value == "survived"

    def test_uncaught_interrupt_fails_process(self):
        env = Environment()

        def sleeper(env):
            yield env.timeout(100)

        def killer(env, victim):
            yield env.timeout(1)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(killer(env, victim))
        with pytest.raises(InterruptError):
            env.run(until=victim)

    def test_interrupt_finished_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_self_interrupt_rejected(self):
        env = Environment()

        def selfish(env):
            env.active_process.interrupt()
            yield env.timeout(1)

        p = env.process(selfish(env))
        with pytest.raises(SimulationError):
            env.run(until=p)


class TestConditions:
    def test_all_of_waits_for_slowest(self):
        env = Environment()

        def proc(env):
            t1 = env.timeout(1, value="a")
            t2 = env.timeout(5, value="b")
            results = yield AllOf(env, [t1, t2])
            return (env.now, sorted(results.values()))

        assert run_sync(env, proc(env)) == (5, ["a", "b"])

    def test_any_of_returns_on_first(self):
        env = Environment()

        def proc(env):
            t1 = env.timeout(1, value="fast")
            t2 = env.timeout(5, value="slow")
            results = yield AnyOf(env, [t1, t2])
            return (env.now, list(results.values()))

        assert run_sync(env, proc(env)) == (1, ["fast"])

    def test_empty_all_of_fires_immediately(self):
        env = Environment()

        def proc(env):
            yield env.all_of([])
            return env.now

        assert run_sync(env, proc(env)) == 0

    def test_all_of_fails_fast(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1)
            raise ValueError("child died")

        def proc(env):
            p = env.process(bad(env))
            t = env.timeout(100)
            yield env.all_of([p, t])

        with pytest.raises(ValueError, match="child died"):
            run_sync(env, proc(env))

    def test_condition_rejects_foreign_events(self):
        env1, env2 = Environment(), Environment()
        with pytest.raises(SimulationError):
            AllOf(env1, [env2.timeout(1)])


class TestRun:
    def test_deadlock_detection(self):
        env = Environment()

        def waits_forever(env):
            yield env.event()  # never triggered

        p = env.process(waits_forever(env))
        with pytest.raises(DeadlockError):
            env.run(until=p)

    def test_run_to_exhaustion_returns_none(self):
        env = Environment()
        env.timeout(5)
        assert env.run() is None
        assert env.now == 5

    def test_double_trigger_rejected(self):
        env = Environment()
        evt = env.event()
        evt.succeed(1)
        with pytest.raises(SimulationError):
            evt.succeed(2)

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value
