"""Tests for Resource / Container / Store contention primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Container, Environment, Resource, Store, run_sync


class TestResource:
    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_grant_within_capacity_is_immediate(self):
        env = Environment()
        res = Resource(env, capacity=2)

        def proc(env, res):
            r1 = res.request()
            r2 = res.request()
            yield env.all_of([r1, r2])
            return env.now

        assert run_sync(env, proc(env, res)) == 0

    def test_fifo_queueing(self):
        """Capacity-1 resource serializes holders in arrival order."""
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def worker(env, res, tag, hold):
            req = res.request()
            yield req
            log.append((tag, "start", env.now))
            yield env.timeout(hold)
            res.release(req)
            log.append((tag, "end", env.now))

        env.process(worker(env, res, "a", 5))
        env.process(worker(env, res, "b", 3))
        env.process(worker(env, res, "c", 1))
        env.run()
        assert log == [
            ("a", "start", 0),
            ("a", "end", 5),
            ("b", "start", 5),
            ("b", "end", 8),
            ("c", "start", 8),
            ("c", "end", 9),
        ]

    def test_use_helper(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def worker(env, res):
            yield from res.use(4)
            return env.now

        env.process(worker(env, res))
        p = env.process(worker(env, res))
        assert env.run(until=p) == 8

    def test_multi_server_throughput(self):
        """k-server station: n jobs of time t finish in ceil(n/k)*t."""
        env = Environment()
        res = Resource(env, capacity=4)

        def job(env, res):
            yield from res.use(10)

        procs = [env.process(job(env, res)) for _ in range(10)]
        env.run(until=env.all_of(procs))
        assert env.now == 30  # ceil(10/4)=3 waves

    def test_release_without_hold_rejected(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def bad(env, res):
            req = res.request()
            yield req
            res.release(req)
            res.release(req)

        with pytest.raises(SimulationError):
            run_sync(env, bad(env, res))

    def test_cancel_queued_request(self):
        env = Environment()
        res = Resource(env, capacity=1)
        granted = []

        def holder(env, res):
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)

        def impatient(env, res):
            req = res.request()
            yield env.timeout(1)  # give up before grant
            res.cancel(req)

        def patient(env, res):
            yield env.timeout(0.5)
            req = res.request()
            yield req
            granted.append(env.now)
            res.release(req)

        env.process(holder(env, res))
        env.process(impatient(env, res))
        env.process(patient(env, res))
        env.run()
        # patient gets the slot at t=5 even though impatient queued first.
        assert granted == [5]

    def test_counters(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder(env, res):
            req = res.request()
            yield req
            assert res.count == 1
            yield env.timeout(1)
            res.release(req)

        def queuer(env, res):
            req = res.request()
            yield req
            res.release(req)

        env.process(holder(env, res))
        env.process(queuer(env, res))
        env.run(until=0.5)
        assert res.queue_length == 1
        env.run()
        assert res.count == 0 and res.queue_length == 0


class TestContainer:
    def test_validation(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Container(env, capacity=0)
        with pytest.raises(SimulationError):
            Container(env, capacity=10, init=11)

    def test_get_blocks_until_put(self):
        env = Environment()
        box = Container(env, capacity=100)

        def producer(env, box):
            yield env.timeout(5)
            yield box.put(10)

        def consumer(env, box):
            yield box.get(10)
            return env.now

        env.process(producer(env, box))
        assert run_sync(env, consumer(env, box)) == 5

    def test_put_blocks_at_capacity(self):
        env = Environment()
        box = Container(env, capacity=10, init=10)

        def producer(env, box):
            yield box.put(5)
            return env.now

        def consumer(env, box):
            yield env.timeout(3)
            yield box.get(5)

        env.process(consumer(env, box))
        assert run_sync(env, producer(env, box)) == 3

    def test_level_tracking(self):
        env = Environment()
        box = Container(env, capacity=50, init=20)

        def proc(env, box):
            yield box.get(5)
            yield box.put(30)
            return box.level

        assert run_sync(env, proc(env, box)) == 45

    def test_negative_amounts_rejected(self):
        env = Environment()
        box = Container(env, capacity=10)
        with pytest.raises(SimulationError):
            box.get(-1)
        with pytest.raises(SimulationError):
            box.put(-1)

    def test_oversized_put_rejected(self):
        env = Environment()
        box = Container(env, capacity=10)
        with pytest.raises(SimulationError):
            box.put(11)


class TestStore:
    def test_put_get_fifo(self):
        env = Environment()
        store = Store(env)

        def producer(env, store):
            for item in ("a", "b", "c"):
                yield store.put(item)

        def consumer(env, store):
            out = []
            for _ in range(3):
                item = yield store.get()
                out.append(item)
            return out

        env.process(producer(env, store))
        assert run_sync(env, consumer(env, store)) == ["a", "b", "c"]

    def test_get_blocks_until_item(self):
        env = Environment()
        store = Store(env)

        def producer(env, store):
            yield env.timeout(7)
            yield store.put("late")

        def consumer(env, store):
            item = yield store.get()
            return (env.now, item)

        env.process(producer(env, store))
        assert run_sync(env, consumer(env, store)) == (7, "late")

    def test_bounded_store_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)

        def producer(env, store):
            yield store.put(1)
            yield store.put(2)  # blocks until the consumer drains one
            return env.now

        def consumer(env, store):
            yield env.timeout(4)
            yield store.get()

        env.process(consumer(env, store))
        assert run_sync(env, producer(env, store)) == 4

    def test_len_and_items(self):
        env = Environment()
        store = Store(env)
        store.put("x")
        store.put("y")
        env.run()
        assert len(store) == 2
        assert store.items == ("x", "y")

    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Store(env, capacity=0)


class TestInterruptSafety:
    def test_interrupted_user_releases_its_slot(self):
        """`use()` must release the resource even when interrupted
        mid-hold — otherwise a killed cache peer would leak device slots."""
        from repro.errors import InterruptError

        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def holder(env):
            try:
                yield from res.use(100.0)
            except InterruptError:
                log.append(("interrupted", env.now))

        def killer(env, victim):
            yield env.timeout(2.0)
            victim.interrupt()

        def waiter(env):
            yield from res.use(1.0)
            log.append(("waiter-done", env.now))

        victim = env.process(holder(env))
        env.process(killer(env, victim))
        env.process(waiter(env))
        env.run()
        assert ("interrupted", 2.0) in log
        # The waiter got the slot right after the interrupt, not at t=100.
        assert ("waiter-done", 3.0) in log
        assert res.count == 0

    def test_interrupt_while_queued_then_cancel(self):
        from repro.errors import InterruptError

        env = Environment()
        res = Resource(env, capacity=1)
        outcome = []

        def holder(env):
            yield from res.use(5.0)

        def impatient(env):
            req = res.request()
            try:
                yield req
            except InterruptError:
                res.cancel(req)
                outcome.append("gave-up")

        def killer(env, victim):
            yield env.timeout(1.0)
            victim.interrupt()

        env.process(holder(env))
        victim = env.process(impatient(env))
        env.process(killer(env, victim))
        env.run()
        assert outcome == ["gave-up"]
        assert res.count == 0 and res.queue_length == 0
