"""Property-based tests of the DES kernel — the substrate every
experiment's correctness rests on."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource, run_sync


class TestTimeOrderingProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1,
                    max_size=30))
    def test_timeouts_fire_in_time_order(self, delays):
        env = Environment()
        fired = []

        def waiter(env, d):
            yield env.timeout(d)
            fired.append(env.now)

        for d in delays:
            env.process(waiter(env, d))
        env.run()
        assert fired == sorted(fired)
        assert fired == sorted(delays)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0.001, 10, allow_nan=False), min_size=1,
                    max_size=20))
    def test_clock_never_goes_backwards(self, delays):
        env = Environment()
        observed = []

        def chain(env):
            for d in delays:
                yield env.timeout(d)
                observed.append(env.now)

        run_sync(env, chain(env))
        assert observed == sorted(observed)
        assert observed[-1] == pytest.approx(sum(delays))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 20), st.integers(0, 10_000))
    def test_same_time_events_fire_fifo(self, n, seed):
        """Events scheduled for the same instant fire in creation order,
        regardless of how many there are — determinism depends on it."""
        env = Environment()
        order = []

        def proc(env, tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in range(n):
            env.process(proc(env, tag))
        env.run()
        assert order == list(range(n))


class TestResourceConservation:
    @settings(max_examples=25, deadline=None)
    @given(
        capacity=st.integers(1, 6),
        jobs=st.lists(st.floats(0.01, 5, allow_nan=False), min_size=1,
                      max_size=25),
    )
    def test_never_exceeds_capacity_and_all_jobs_finish(self, capacity, jobs):
        env = Environment()
        res = Resource(env, capacity=capacity)
        peak = [0]
        done = []

        def job(env, hold):
            req = res.request()
            yield req
            peak[0] = max(peak[0], res.count)
            try:
                yield env.timeout(hold)
            finally:
                res.release(req)
            done.append(hold)

        for hold in jobs:
            env.process(job(env, hold))
        env.run()
        assert peak[0] <= capacity
        assert len(done) == len(jobs)
        assert res.count == 0 and res.queue_length == 0

    @settings(max_examples=25, deadline=None)
    @given(
        capacity=st.integers(1, 4),
        n_jobs=st.integers(1, 20),
        hold=st.floats(0.5, 2.0, allow_nan=False),
    )
    def test_makespan_is_wave_count_times_hold(self, capacity, n_jobs, hold):
        """Identical jobs on a k-server: makespan = ceil(n/k) × hold."""
        env = Environment()
        res = Resource(env, capacity=capacity)

        def job(env):
            yield from res.use(hold)

        procs = [env.process(job(env)) for _ in range(n_jobs)]
        env.run(until=env.all_of(procs))
        waves = -(-n_jobs // capacity)
        assert env.now == pytest.approx(waves * hold)


class TestConditionAlgebra:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.1, 10, allow_nan=False), min_size=1,
                    max_size=10))
    def test_all_of_completes_at_max_any_of_at_min(self, delays):
        env = Environment()

        def proc(env):
            t_any = env.any_of([env.timeout(d) for d in delays])
            yield t_any
            any_at = env.now
            t_all = env.all_of([env.timeout(d) for d in delays])
            yield t_all
            all_at = env.now - any_at
            return any_at, all_at

        any_at, all_at = run_sync(env, proc(env))
        assert any_at == pytest.approx(min(delays))
        assert all_at == pytest.approx(max(delays))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 8), st.integers(0, 1000))
    def test_nested_conditions(self, n, seed):
        rng = random.Random(seed)
        delays = [rng.uniform(0.1, 5) for _ in range(n)]
        env = Environment()

        def proc(env):
            inner = [env.all_of([env.timeout(d)]) for d in delays]
            yield env.all_of(inner)
            return env.now

        assert run_sync(env, proc(env)) == pytest.approx(max(delays))


class TestDeterminismProperty:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_seeded_contention_is_bit_identical(self, seed):
        def run_once():
            env = Environment()
            res = Resource(env, capacity=2)
            rng = random.Random(seed)
            trace = []

            def job(env, jid, hold):
                yield from res.use(hold)
                trace.append((jid, env.now))

            for jid in range(10):
                env.process(job(env, jid, rng.uniform(0.1, 3)))
            env.run()
            return tuple(trace), env.now

        assert run_once() == run_once()
