"""Tests for the bounded scatter-gather layer: Semaphore + fan_out."""

import pytest

from repro.errors import InterruptError, SimulationError
from repro.sim import Environment, Semaphore, fan_out, run_sync


def task(env, delay, value, log=None):
    """A worker generator: sleep ``delay`` then return ``value``."""
    if log is not None:
        log.append(("start", value, env.now))
    yield env.timeout(delay)
    if log is not None:
        log.append(("end", value, env.now))
    return value


class TestSemaphore:
    def test_needs_at_least_one_slot(self):
        with pytest.raises(SimulationError):
            Semaphore(Environment(), 0)

    def test_immediate_grant_within_slots(self):
        env = Environment()
        sem = Semaphore(env, 2)
        a, b = sem.acquire(), sem.acquire()
        assert a.triggered and b.triggered
        assert sem.in_flight == 2

    def test_excess_acquires_queue(self):
        env = Environment()
        sem = Semaphore(env, 1)
        first = sem.acquire()
        second = sem.acquire()
        assert first.triggered and not second.triggered
        assert sem.queue_length == 1
        sem.release(first)
        assert second.triggered
        assert sem.in_flight == 1

    def test_release_unheld_slot_rejected(self):
        env = Environment()
        sem = Semaphore(env, 1)
        with pytest.raises(SimulationError):
            sem.release(env.event())

    def test_high_water_tracks_peak(self):
        env = Environment()
        sem = Semaphore(env, 3)
        slots = [sem.acquire() for _ in range(3)]
        for s in slots:
            sem.release(s)
        assert sem.high_water == 3
        assert sem.in_flight == 0

    def test_abandon_queued_request_never_granted(self):
        env = Environment()
        sem = Semaphore(env, 1)
        held = sem.acquire()
        queued = sem.acquire()
        third = sem.acquire()
        sem.abandon(queued)  # withdraw while waiting
        sem.release(held)
        # The grant skips the withdrawn request and goes to the third.
        assert third.triggered
        assert not queued.triggered

    def test_abandon_held_slot_releases_it(self):
        env = Environment()
        sem = Semaphore(env, 1)
        held = sem.acquire()
        waiting = sem.acquire()
        sem.abandon(held)
        assert waiting.triggered


class TestFanOut:
    def test_results_in_input_order(self):
        env = Environment()
        # Reverse delays: later inputs finish first.
        gens = [task(env, delay, i) for i, delay in enumerate([3, 2, 1])]

        def driver():
            out = yield from fan_out(env, gens, limit=3)
            return out

        assert run_sync(env, driver()) == [0, 1, 2]

    def test_empty_input(self):
        env = Environment()

        def driver():
            out = yield from fan_out(env, [], limit=4)
            return out

        assert run_sync(env, driver()) == []

    def test_limit_must_be_positive(self):
        env = Environment()

        def driver():
            yield from fan_out(env, [task(env, 1, 0)], limit=0)

        with pytest.raises(SimulationError):
            run_sync(env, driver())

    def test_limit_bounds_concurrency(self):
        env = Environment()
        log = []
        gens = [task(env, 1.0, i, log) for i in range(6)]

        def driver():
            yield from fan_out(env, gens, limit=2)

        run_sync(env, driver())
        # With 6 unit tasks at limit 2, the gather takes 3 time units
        # and at most 2 tasks are ever between start and end.
        assert env.now == pytest.approx(3.0)
        running = 0
        peak = 0
        for kind, _, _ in sorted(log, key=lambda e: e[2]):
            running += 1 if kind == "start" else -1
            peak = max(peak, running)
        assert peak <= 2

    def test_limit_one_is_serial(self):
        env = Environment()
        gens = [task(env, 1.0, i) for i in range(4)]

        def driver():
            out = yield from fan_out(env, gens, limit=1)
            return out

        assert run_sync(env, driver()) == [0, 1, 2, 3]
        assert env.now == pytest.approx(4.0)

    def test_watermark_reports_in_flight(self):
        env = Environment()
        seen = []
        gens = [task(env, 1.0, i) for i in range(5)]

        def driver():
            yield from fan_out(env, gens, limit=3, watermark=seen.append)

        run_sync(env, driver())
        assert max(seen) == 3

    def test_first_failure_propagates(self):
        env = Environment()

        def boom(env):
            yield env.timeout(1)
            raise ValueError("boom")

        gens = [task(env, 0.5, 0), boom(env), task(env, 5.0, 2)]

        def driver():
            yield from fan_out(env, gens, limit=3)

        with pytest.raises(ValueError, match="boom"):
            run_sync(env, driver())

    def test_failure_interrupts_running_workers(self):
        env = Environment()
        witness = []

        def slow(env):
            try:
                yield env.timeout(100)
                witness.append(("finished", env.now))
            except InterruptError:
                witness.append(("interrupted", env.now))
                raise

        def boom(env):
            yield env.timeout(1)
            raise ValueError("boom")

        def driver():
            try:
                yield from fan_out(env, [slow(env), boom(env)], limit=2)
            except ValueError:
                pass

        run_sync(env, driver())
        env.run()  # drain everything (incl. the orphaned 100s timer)
        # The slow worker was cut down at the failure instant, not at 100.
        assert [(k, t) for k, t in witness] == [("interrupted", 1.0)]

    # Regression (satellite): cancelling a fan-out mid-flight must
    # release every semaphore slot and leak no workers — the same
    # guarantee the prefetch pipeline's cancellation gives.
    def test_interrupting_gather_cancels_workers_and_slots(self):
        env = Environment()
        state = {"started": 0, "interrupted": 0, "finished": 0}

        def slow(env):
            state["started"] += 1
            try:
                yield env.timeout(100)
                state["finished"] += 1
            except InterruptError:
                state["interrupted"] += 1
                raise

        def driver():
            try:
                yield from fan_out(env, [slow(env) for _ in range(4)], limit=2)
            except InterruptError:
                return "cancelled"
            return "finished"

        def canceller(target):
            yield env.timeout(1)
            target.interrupt("stop")

        gather = env.process(driver())
        env.process(canceller(gather))
        env.run()
        assert gather.value == "cancelled"
        # Two workers were running (limit=2) and got interrupted; the
        # two queued ones were withdrawn before ever starting — every
        # slot came back, no worker leaked past the cancellation.
        assert state == {"started": 2, "interrupted": 2, "finished": 0}

    def test_queued_workers_reuse_freed_slots_after_failure(self):
        # After a failure aborts the gather, a fresh fan_out on a new
        # semaphore still works (no global state).
        env = Environment()

        def boom(env):
            yield env.timeout(1)
            raise RuntimeError("x")

        def driver():
            try:
                yield from fan_out(env, [boom(env)], limit=1)
            except RuntimeError:
                pass
            out = yield from fan_out(
                env, [task(env, 1, "ok")], limit=1
            )
            return out

        assert run_sync(env, driver()) == ["ok"]
