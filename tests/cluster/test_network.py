"""Tests for nodes, the network fabric and failure injection."""

import pytest

from repro.calibration import NetworkProfile
from repro.cluster import Cluster, ClusterSpec, FailureInjector, NetworkFabric, Node
from repro.errors import ClusterError, NodeDownError
from repro.sim import Environment, run_sync


def make_fabric(n=2, **profile_kw):
    env = Environment()
    fabric = NetworkFabric(env, NetworkProfile(**profile_kw))
    nodes = [fabric.add_node(Node(env, f"n{i}")) for i in range(n)]
    return env, fabric, nodes


class TestFabric:
    def test_transfer_time(self):
        env, fabric, (a, b) = make_fabric(2, bandwidth_bps=1e9, latency_s=1e-3)

        def proc(env):
            yield from fabric.transfer(a, b, 1_000_000)
            return env.now

        elapsed = run_sync(env, proc(env))
        assert elapsed == pytest.approx(1e-3 + 1e-3)

    def test_transfer_by_name(self):
        env, fabric, _ = make_fabric(2)

        def proc(env):
            yield from fabric.transfer("n0", "n1", 100)
            return True

        assert run_sync(env, proc(env))

    def test_unknown_node(self):
        env, fabric, _ = make_fabric(1)
        with pytest.raises(ClusterError):
            fabric.node("ghost")

    def test_duplicate_node_rejected(self):
        env, fabric, _ = make_fabric(1)
        with pytest.raises(ClusterError):
            fabric.add_node(Node(env, "n0"))

    def test_intra_node_transfer_is_fast(self):
        env, fabric, (a, b) = make_fabric(2, bandwidth_bps=1e9, latency_s=1e-3)

        def local(env):
            yield from fabric.transfer(a, a, 1_000_000)
            return env.now

        # Local copy skips NIC latency: must be far below network time.
        assert run_sync(env, local(env)) < 1e-3

    def test_transfer_to_dead_node_raises(self):
        env, fabric, (a, b) = make_fabric(2)
        b.kill()

        def proc(env):
            yield from fabric.transfer(a, b, 100)

        with pytest.raises(NodeDownError):
            run_sync(env, proc(env))

    def test_negative_bytes_rejected(self):
        env, fabric, (a, b) = make_fabric(2)

        def proc(env):
            yield from fabric.transfer(a, b, -1)

        with pytest.raises(ValueError):
            run_sync(env, proc(env))

    def test_ingress_contention_serializes(self):
        """Incast: many senders to one receiver share its ingress NIC."""
        env = Environment()
        fabric = NetworkFabric(env, NetworkProfile(bandwidth_bps=1e9, latency_s=0))
        dst = fabric.add_node(Node(env, "dst", nic_channels=1))
        senders = [
            fabric.add_node(Node(env, f"s{i}", nic_channels=1)) for i in range(4)
        ]

        def send(env, src):
            yield from fabric.transfer(src, dst, 1_000_000)

        procs = [env.process(send(env, s)) for s in senders]
        env.run(until=env.all_of(procs))
        # Four 1 ms transfers through a single ingress channel: ~4 ms total.
        assert env.now == pytest.approx(4e-3, rel=0.01)

    def test_stats(self):
        env, fabric, (a, b) = make_fabric(2)

        def proc(env):
            yield from fabric.transfer(a, b, 1000)
            yield from fabric.transfer(a, a, 50)

        run_sync(env, proc(env))
        assert fabric.stats.transfers == 2
        assert fabric.stats.bytes_moved == 1050
        assert fabric.stats.intra_node == 1


class TestNode:
    def test_kill_restore(self):
        env = Environment()
        n = Node(env, "x")
        assert n.alive
        n.kill()
        assert not n.alive
        with pytest.raises(ClusterError):
            n.kill()
        n.restore()
        assert n.alive
        with pytest.raises(ClusterError):
            n.restore()

    def test_on_fail_callbacks(self):
        env = Environment()
        n = Node(env, "x")
        fired = []
        n.on_fail(lambda: fired.append(1))
        n.on_fail(lambda: fired.append(2))
        n.kill()
        assert fired == [1, 2]

    def test_memory_container(self):
        env = Environment()
        n = Node(env, "x", memory_bytes=1000)
        assert n.memory.level == 1000

        def proc(env):
            yield n.memory.get(400)
            return n.memory.level

        assert run_sync(env, proc(env)) == 600


class TestFailureInjector:
    def test_kill_at(self):
        env = Environment()
        node = Node(env, "victim")
        inj = FailureInjector(env)
        inj.kill_at(node, when=5.0)
        env.run(until=4.9)
        assert node.alive
        env.run(until=5.1)
        assert not node.alive
        assert inj.log == [(5.0, "kill", "victim")]

    def test_restore_at(self):
        env = Environment()
        node = Node(env, "victim")
        inj = FailureInjector(env)
        inj.kill_at(node, when=1.0)
        inj.restore_at(node, when=2.0)
        env.run()
        assert node.alive
        assert [e[1] for e in inj.log] == ["kill", "restore"]

    def test_past_kill_rejected(self):
        env = Environment()
        env.timeout(10)
        env.run()
        node = Node(env, "v")
        inj = FailureInjector(env)
        with pytest.raises(ValueError):
            inj.kill_at(node, when=5.0)

    def test_trigger_kill(self):
        env = Environment()
        node = Node(env, "victim")
        inj = FailureInjector(env)
        counter = {"iters": 0}

        def workload(env):
            for _ in range(100):
                yield env.timeout(1e-3)
                counter["iters"] += 1

        inj.on_trigger(node, lambda: counter["iters"] >= 30)
        run_sync(env, workload(env))
        assert not node.alive
        # killed around iteration 30, certainly before the end
        assert counter["iters"] == 100


class TestCluster:
    def test_default_topology_matches_table4(self):
        c = Cluster()
        assert len(c.storage_nodes) == 6
        assert len(c.compute_nodes) == 10
        assert c.ssd_pool.alive and c.hdd_pool.alive

    def test_custom_spec(self):
        c = Cluster(ClusterSpec(storage_nodes=2, compute_nodes=3))
        assert len(c.compute_nodes) == 3
        assert c.compute(2).name == "compute2"
        assert c.storage(0).name == "storage0"

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            ClusterSpec(storage_nodes=0)
