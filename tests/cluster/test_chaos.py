"""Tests for the declarative chaos schedule (timed adversity windows)."""

import pytest

from repro.cluster.failure import ChaosSchedule
from repro.cluster.node import Node
from repro.sim import Environment


def rig(n=2):
    env = Environment()
    nodes = [Node(env, f"n{i}") for i in range(n)]
    return env, nodes, ChaosSchedule(env)


class TestWindows:
    def test_slow_node_applies_and_reverts_on_schedule(self):
        env, (node, _), chaos = rig()
        chaos.slow_node(node, factor=8.0, at=1.0, duration_s=2.0).start()
        env.run(until=0.5)
        assert not node.degraded
        env.run(until=1.5)
        assert node.nic_slow_factor == 8.0
        assert chaos.active() == ["slow_node:n0x8"]
        env.run(until=3.5)
        assert not node.degraded
        assert chaos.active() == []
        assert chaos.done

    def test_degrade_nic_sets_both_knobs(self):
        env, (node, _), chaos = rig()
        chaos.degrade_nic(
            node, factor=4.0, extra_latency_s=0.002, at=0.0, duration_s=1.0
        ).start()
        env.run(until=0.5)
        assert node.nic_slow_factor == 4.0
        assert node.nic_extra_latency_s == 0.002
        env.run()
        assert not node.degraded

    def test_latency_spikes_fire_inside_the_window(self):
        env, nodes, chaos = rig()
        chaos.latency_spikes(
            nodes, extra_latency_s=0.01, at=0.0, duration_s=1.0,
            spikes=3, spike_s=0.01,
        ).start()
        env.run()
        ons = [t for t, a, _ in chaos.log if a == "spike_on"]
        offs = [t for t, a, _ in chaos.log if a == "spike_off"]
        assert len(ons) == 3 and len(offs) == 3
        assert all(0.0 <= t <= 1.0 + 0.01 for t in ons + offs)
        assert all(n.nic_extra_latency_s == 0.0 for n in nodes)

    def test_spike_schedule_is_seeded(self):
        def spike_times(seed):
            env = Environment()
            node = Node(env, "n0")
            chaos = ChaosSchedule(env, seed=seed)
            chaos.latency_spikes([node], 0.01, at=0.0, duration_s=1.0).start()
            env.run()
            return [t for t, a, _ in chaos.log if a == "spike_on"]

        assert spike_times(1) == spike_times(1)
        assert spike_times(1) != spike_times(2)


class TestActions:
    def test_flash_crowd_launches_all_readers_at_once(self):
        env, nodes, chaos = rig()
        starts = []

        def reader(i):
            starts.append((i, env.now))
            yield env.timeout(0.1)

        chaos.flash_crowd(
            at=2.0, readers=lambda: [reader(i) for i in range(8)]
        ).start()
        env.run()
        assert sorted(i for i, _ in starts) == list(range(8))
        assert all(t == 2.0 for _, t in starts)
        assert chaos.done

    def test_churn_drives_generator_actions_inline(self):
        env, (node, _), chaos = rig()
        log = []

        def down():
            yield env.timeout(0.05)  # a drain takes time
            log.append(("down", env.now))

        def up():
            log.append(("up", env.now))
            return None

        chaos.churn(at=0.0, cycles=2, dwell_s=0.1, down=down, up=up).start()
        env.run()
        assert [a for a, _ in log] == ["down", "up", "down", "up"]
        churn_marks = [a for _, a, _ in chaos.log if a.startswith("churn")]
        assert churn_marks == ["churn_down", "churn_up"] * 2

    def test_at_escape_hatch_runs_once(self):
        env, nodes, chaos = rig()
        fired = []
        chaos.at(1.5, lambda: fired.append(env.now), label="poke").start()
        env.run()
        assert fired == [1.5]

    def test_log_records_apply_and_revert(self):
        env, (node, _), chaos = rig()
        chaos.slow_node(node, 2.0, at=1.0, duration_s=1.0).start()
        env.run()
        actions = [(a, lbl) for _, a, lbl in chaos.log]
        assert ("apply", "slow_node:n0x2") in actions
        assert ("revert", "slow_node:n0x2") in actions


class TestLifecycle:
    def test_describe_lists_scenarios_in_time_order(self):
        env, (n0, n1), chaos = rig()
        chaos.slow_node(n1, 2.0, at=5.0, duration_s=1.0)
        chaos.slow_node(n0, 2.0, at=1.0, duration_s=1.0)
        assert [d["at"] for d in chaos.describe()] == [1.0, 5.0]

    def test_double_start_and_late_builders_rejected(self):
        env, (node, _), chaos = rig()
        chaos.slow_node(node, 2.0, at=0.0, duration_s=0.1).start()
        with pytest.raises(RuntimeError):
            chaos.start()
        with pytest.raises(RuntimeError):
            chaos.slow_node(node, 2.0, at=1.0, duration_s=0.1)

    def test_validation(self):
        env, (node, _), chaos = rig()
        with pytest.raises(ValueError):
            chaos.slow_node(node, 2.0, at=-1.0, duration_s=0.1)
        with pytest.raises(ValueError):
            chaos.latency_spikes([node], 0.01, at=0.0, duration_s=1.0, spikes=0)
        with pytest.raises(ValueError):
            chaos.churn(at=0.0, cycles=0, dwell_s=0.1,
                        down=lambda: None, up=lambda: None)

    def test_not_done_until_every_window_closes(self):
        env, (node, _), chaos = rig()
        assert not chaos.done  # never started
        chaos.slow_node(node, 2.0, at=0.0, duration_s=1.0).start()
        env.run(until=0.5)
        assert not chaos.done
        env.run()
        assert chaos.done
