"""Edge cases for the failure injector's schedulers and watchers."""

import pytest

from repro.cluster.failure import FailureInjector
from repro.cluster.node import Node
from repro.sim import Environment


def rig():
    env = Environment()
    node = Node(env, "victim")
    return env, node, FailureInjector(env)


class TestRestoreEdgeCases:
    def test_restore_at_on_already_alive_node_is_a_noop(self):
        env, node, inj = rig()
        inj.restore_at(node, 1.0)  # node never died
        env.run()
        assert node.alive
        assert inj.log == []  # nothing happened, nothing logged

    def test_kill_at_on_already_dead_node_is_a_noop(self):
        env, node, inj = rig()
        node.kill()
        inj.kill_at(node, 1.0)
        env.run()
        assert not node.alive
        assert inj.log == []

    def test_past_times_rejected(self):
        env, node, inj = rig()
        env.run(until=5.0)
        with pytest.raises(ValueError):
            inj.kill_at(node, 1.0)
        with pytest.raises(ValueError):
            inj.restore_at(node, 1.0)


class TestOnTriggerEdgeCases:
    def test_watcher_terminates_when_node_dies_by_other_means(self):
        env, node, inj = rig()
        inj.on_trigger(node, lambda: False)  # predicate never fires

        def other_killer():
            yield env.timeout(0.5)
            node.kill()

        env.process(other_killer())
        # If the watcher did not notice the external death, this drain
        # would never return (it reschedules itself every millisecond).
        env.run()
        assert not node.alive
        # The watcher did not log a kill of its own.
        assert inj.log == []

    def test_trigger_fires_once_and_watcher_exits(self):
        env, node, inj = rig()
        fired = {"n": 0}

        def done():
            return env.now >= 0.25

        inj.on_trigger(node, done)
        env.run()
        fired["n"] = sum(1 for _, what, _name in inj.log if what == "kill")
        assert fired["n"] == 1
        assert not node.alive


class TestOrderingRaces:
    def test_kill_then_restore_at_the_same_instant(self):
        env, node, inj = rig()
        # Scheduled in this order, delivered in this order (stable heap
        # sequence numbers): the node ends the tick alive.
        inj.kill_at(node, 1.0)
        inj.restore_at(node, 1.0)
        env.run()
        assert node.alive
        assert [what for _, what, _ in inj.log] == ["kill", "restore"]

    def test_restore_scheduled_before_kill_never_resurrects(self):
        env, node, inj = rig()
        # The restore fires at 0.5 while the node is still alive (no-op);
        # the kill at 1.0 then sticks.
        inj.restore_at(node, 0.5)
        inj.kill_at(node, 1.0)
        env.run()
        assert not node.alive
        assert [what for _, what, _ in inj.log] == ["kill"]

    def test_duplicate_kill_at_does_not_double_kill(self):
        env, node, inj = rig()
        inj.kill_at(node, 1.0)
        inj.kill_at(node, 1.0)  # second killer finds it already dead
        env.run()
        assert not node.alive
        assert [what for _, what, _ in inj.log] == ["kill"]

    def test_kill_restore_kill_sequence(self):
        env, node, inj = rig()
        inj.kill_at(node, 1.0)
        inj.restore_at(node, 2.0)
        inj.kill_at(node, 3.0)
        env.run()
        assert not node.alive
        assert [what for _, what, _ in inj.log] == ["kill", "restore", "kill"]
