"""Tests for storage device models, including the Table 2 shape."""

import pytest

from repro.calibration import KB, MB, NvmeProfile
from repro.cluster.devices import Device
from repro.errors import NodeDownError
from repro.sim import Environment, run_sync


def read_n(env, device, nbytes, count):
    def proc(env):
        t0 = env.now
        for _ in range(count):
            yield from device.read(nbytes)
        return env.now - t0

    return run_sync(env, proc(env))


class TestDeviceModel:
    def test_op_time_components(self):
        env = Environment()
        d = Device(env, "d", per_op_s=1e-3, bandwidth_bps=1e6)
        assert d.op_time(0) == pytest.approx(1e-3)
        assert d.op_time(1_000_000) == pytest.approx(1e-3 + 1.0)

    def test_op_time_negative_rejected(self):
        env = Environment()
        d = Device(env, "d", per_op_s=0, bandwidth_bps=1)
        with pytest.raises(ValueError):
            d.op_time(-1)

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Device(env, "d", per_op_s=-1, bandwidth_bps=1)
        with pytest.raises(ValueError):
            Device(env, "d", per_op_s=0, bandwidth_bps=0)

    def test_sequential_reads_accumulate(self):
        env = Environment()
        d = Device(env, "d", per_op_s=0.01, bandwidth_bps=1e9, queue_depth=1)
        elapsed = read_n(env, d, 0, 10)
        assert elapsed == pytest.approx(0.1)

    def test_queue_depth_parallelism(self):
        env = Environment()
        d = Device(env, "d", per_op_s=1.0, bandwidth_bps=1e9, queue_depth=4)

        def one(env):
            yield from d.read(0)

        procs = [env.process(one(env)) for _ in range(8)]
        env.run(until=env.all_of(procs))
        assert env.now == pytest.approx(2.0)  # two waves of four

    def test_stats(self):
        env = Environment()
        d = Device(env, "d", per_op_s=0, bandwidth_bps=1e9)

        def proc(env):
            yield from d.read(100)
            yield from d.write(200)

        run_sync(env, proc(env))
        assert d.stats.read_ops == 1
        assert d.stats.read_bytes == 100
        assert d.stats.write_ops == 1
        assert d.stats.write_bytes == 200

    def test_failed_device_raises(self):
        env = Environment()
        d = Device(env, "d", per_op_s=0.001, bandwidth_bps=1e9)
        d.fail()

        def proc(env):
            yield from d.read(10)

        with pytest.raises(NodeDownError):
            run_sync(env, proc(env))
        d.restore()

        def ok(env):
            yield from d.read(10)
            return True

        assert run_sync(env, ok(env))


class TestTable2Shape:
    """The NVMe profile must reproduce the paper's Table 2 within ~15 %."""

    PAPER_ROWS = {  # file size -> files/second (Table 2)
        1 * KB: 34353.45,
        4 * KB: 32841.47,
        16 * KB: 29724.48,
        64 * KB: 21072.64,
        256 * KB: 10903.72,
        1 * MB: 3104.26,
        4 * MB: 799.42,
    }

    def test_files_per_second_close_to_paper(self):
        prof = NvmeProfile()
        for size, paper_fps in self.PAPER_ROWS.items():
            model_fps = 1.0 / (prof.per_op_s + size / prof.bandwidth_bps)
            assert model_fps == pytest.approx(paper_fps, rel=0.15), size

    def test_4mb_4k_iops_is_25x_of_4kb(self):
        """§4.3: 'with 4MB size reads, the equivalent 4K-IOPS is about 25×
        greater than the 4KB reads'."""
        prof = NvmeProfile()

        def iops_4k(size):
            fps = 1.0 / (prof.per_op_s + size / prof.bandwidth_bps)
            return fps * (size / (4 * KB))

        ratio = iops_4k(4 * MB) / iops_4k(4 * KB)
        assert 20 <= ratio <= 30

    def test_simulated_reads_match_model(self):
        env = Environment()
        d = Device.nvme(env)
        n = 50
        elapsed = read_n(env, d, 64 * KB, n)
        expected = n * d.op_time(64 * KB)
        assert elapsed == pytest.approx(expected)
