"""Tests for workspace persistence (chunks on disk + recovery on load)."""

import pytest

from repro.errors import ChunkFormatError
from repro.tools.workspace import DieselWorkspace


def populate(ws, dataset="ds", n=20):
    client = ws.client(dataset)
    files = {f"/data/class{i % 3}/f{i:03d}.bin": bytes([i]) * 512
             for i in range(n)}
    for path, data in files.items():
        client.put(path, data)
    client.flush()
    return files


class TestWorkspace:
    def test_fresh_workspace_is_empty(self):
        ws = DieselWorkspace()
        assert ws.datasets() == []

    def test_put_get_within_session(self):
        ws = DieselWorkspace()
        files = populate(ws)
        client = ws.client("ds")
        for path, data in files.items():
            assert client.get(path) == data

    def test_save_load_roundtrip(self, tmp_path):
        ws = DieselWorkspace()
        files = populate(ws)
        target = tmp_path / "test.workspace"
        nbytes = ws.save(target)
        assert nbytes == target.stat().st_size

        loaded = DieselWorkspace.load(target)
        assert loaded.datasets() == ["ds"]
        client = loaded.client("ds")
        for path, data in files.items():
            assert client.get(path) == data

    def test_load_rebuilds_metadata_from_chunks(self, tmp_path):
        """The file stores only chunks; metadata comes from §4.1.2 recovery."""
        ws = DieselWorkspace()
        populate(ws)
        target = tmp_path / "w"
        ws.save(target)
        loaded = DieselWorkspace.load(target)
        # KV was rebuilt: dataset record, file records, dir entries exist.
        assert loaded.tb.kv.total_keys() > 20
        listing = loaded.client("ds").ls("/data")
        assert listing == ["class0", "class1", "class2"]

    def test_multiple_datasets_persist(self, tmp_path):
        ws = DieselWorkspace()
        populate(ws, dataset="alpha", n=5)
        populate(ws, dataset="beta", n=5)
        ws.save(tmp_path / "w")
        loaded = DieselWorkspace.load(tmp_path / "w")
        assert sorted(loaded.datasets()) == ["alpha", "beta"]

    def test_open_missing_creates_fresh(self, tmp_path):
        ws = DieselWorkspace.open(tmp_path / "nope")
        assert ws.datasets() == []

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad"
        bad.write_bytes(b"not a workspace at all")
        with pytest.raises(ChunkFormatError):
            DieselWorkspace.load(bad)

    def test_load_rejects_trailing_garbage(self, tmp_path):
        ws = DieselWorkspace()
        populate(ws, n=3)
        target = tmp_path / "w"
        ws.save(target)
        target.write_bytes(target.read_bytes() + b"EXTRA")
        with pytest.raises(ChunkFormatError):
            DieselWorkspace.load(target)

    def test_save_after_delete_and_purge(self, tmp_path):
        ws = DieselWorkspace()
        files = populate(ws)
        client = ws.client("ds")
        victim = next(iter(files))
        client.delete(victim)
        client.purge()
        ws.save(tmp_path / "w")
        loaded = DieselWorkspace.load(tmp_path / "w")
        lclient = loaded.client("ds")
        with pytest.raises(Exception):
            lclient.get(victim)
        survivor = list(files)[1]
        assert lclient.get(survivor) == files[survivor]
