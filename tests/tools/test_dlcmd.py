"""Tests for the DLCMD command-line tool."""

import pytest

from repro.tools import dlcmd


def run(tmp_path, *argv, dataset="ds"):
    """Invoke dlcmd against a workspace in tmp_path, capturing exit code."""
    ws_file = str(tmp_path / "test.workspace")
    return dlcmd.main(["-w", ws_file, "-d", dataset, *argv])


@pytest.fixture
def local_tree(tmp_path):
    src = tmp_path / "src"
    (src / "sub").mkdir(parents=True)
    (src / "a.bin").write_bytes(b"AAAA")
    (src / "b.bin").write_bytes(b"BBBBBB")
    (src / "sub" / "c.bin").write_bytes(b"CC")
    return src


class TestDlcmd:
    def test_put_single_file_and_get(self, tmp_path, local_tree, capsys):
        assert run(tmp_path, "put", str(local_tree / "a.bin"), "/data/a.bin") == 0
        out = tmp_path / "fetched.bin"
        assert run(tmp_path, "get", "/data/a.bin", str(out)) == 0
        assert out.read_bytes() == b"AAAA"

    def test_put_directory_recursive(self, tmp_path, local_tree, capsys):
        assert run(tmp_path, "put", str(local_tree), "/tree") == 0
        captured = capsys.readouterr().out
        assert "3 file(s)" in captured
        assert run(tmp_path, "ls", "/tree") == 0
        listing = capsys.readouterr().out
        assert "a.bin" in listing and "sub" in listing

    def test_ls_long(self, tmp_path, local_tree, capsys):
        run(tmp_path, "put", str(local_tree / "b.bin"), "/d/b.bin")
        capsys.readouterr()
        assert run(tmp_path, "ls", "-l", "/d") == 0
        out = capsys.readouterr().out
        assert "6" in out and "b.bin" in out

    def test_stat(self, tmp_path, local_tree, capsys):
        run(tmp_path, "put", str(local_tree / "a.bin"), "/x/a.bin")
        capsys.readouterr()
        assert run(tmp_path, "stat", "/x/a.bin") == 0
        out = capsys.readouterr().out
        assert "size:  4" in out
        assert "chunk:" in out

    def test_rm_and_purge(self, tmp_path, local_tree, capsys):
        run(tmp_path, "put", str(local_tree), "/t")
        assert run(tmp_path, "rm", "/t/a.bin") == 0
        assert run(tmp_path, "purge") == 0
        out = capsys.readouterr().out
        assert "rewrote 1 chunk" in out
        # removed file is gone; sibling survives.
        assert run(tmp_path, "get", "/t/a.bin", str(tmp_path / "x")) == 1
        assert run(tmp_path, "get", "/t/b.bin", str(tmp_path / "y")) == 0
        assert (tmp_path / "y").read_bytes() == b"BBBBBB"

    def test_save_meta(self, tmp_path, local_tree, capsys):
        run(tmp_path, "put", str(local_tree), "/t")
        snap = tmp_path / "meta.snap"
        assert run(tmp_path, "save-meta", str(snap)) == 0
        from repro.core.snapshot import MetadataSnapshot

        loaded = MetadataSnapshot.deserialize(snap.read_bytes())
        assert loaded.file_count == 3

    def test_datasets_and_info(self, tmp_path, local_tree, capsys):
        run(tmp_path, "put", str(local_tree / "a.bin"), "/a", dataset="one")
        run(tmp_path, "put", str(local_tree / "b.bin"), "/b", dataset="two")
        capsys.readouterr()
        assert run(tmp_path, "datasets") == 0
        out = capsys.readouterr().out
        assert "one" in out and "two" in out
        assert run(tmp_path, "info") == 0
        out = capsys.readouterr().out
        assert "datasets:     2" in out

    def test_missing_source_errors(self, tmp_path, capsys):
        assert run(tmp_path, "put", str(tmp_path / "ghost"), "/x") == 1
        assert "error" in capsys.readouterr().err

    def test_get_missing_file_errors(self, tmp_path, capsys):
        assert run(tmp_path, "get", "/nope", str(tmp_path / "out")) == 1

    def test_persistence_across_invocations(self, tmp_path, local_tree, capsys):
        """Each dlcmd run is a fresh process-equivalent: state must persist."""
        run(tmp_path, "put", str(local_tree / "a.bin"), "/persist/a.bin")
        capsys.readouterr()
        # A second, completely fresh invocation sees the data.
        assert run(tmp_path, "ls", "/persist") == 0
        assert "a.bin" in capsys.readouterr().out

    def test_stats_prints_layer_table(self, tmp_path, local_tree, capsys):
        run(tmp_path, "put", str(local_tree), "/t")
        capsys.readouterr()
        assert run(tmp_path, "-j", "2", "stats", "-n", "2") == 0
        out = capsys.readouterr().out
        header = out.splitlines()[0].split()
        assert header[:2] == ["op", "layer"]
        assert "get" in out and "server" in out
        assert "rpc_get_file" in out

    def test_stats_empty_dataset_errors(self, tmp_path, capsys):
        assert run(tmp_path, "stats") == 1
        assert "error" in capsys.readouterr().err

    def test_trace_writes_chrome_json(self, tmp_path, local_tree, capsys):
        import json

        run(tmp_path, "put", str(local_tree), "/t")
        capsys.readouterr()
        dest = tmp_path / "trace.json"
        assert run(tmp_path, "trace", str(dest), "-n", "3") == 0
        assert "trace events" in capsys.readouterr().out
        events = json.loads(dest.read_text())
        assert isinstance(events, list) and events
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X"}
        # Spans carry sim-microsecond timing and a layer attribution.
        span = next(e for e in events if e["ph"] == "X")
        assert span["dur"] >= 0 and "layer" in span["args"]

    def test_bad_sample_count_errors(self, tmp_path, local_tree, capsys):
        run(tmp_path, "put", str(local_tree / "a.bin"), "/a.bin")
        capsys.readouterr()
        assert run(tmp_path, "stats", "-n", "0") == 1
        assert "--sample" in capsys.readouterr().err

    def test_verify_clean_workspace(self, tmp_path, local_tree, capsys):
        run(tmp_path, "put", str(local_tree), "/t")
        capsys.readouterr()
        assert run(tmp_path, "verify") == 0
        out = capsys.readouterr().out
        assert "3 files verified, 0 problems" in out

    def test_verify_empty_dataset_errors(self, tmp_path, capsys):
        assert run(tmp_path, "verify") == 1
        assert "no such dataset" in capsys.readouterr().err

    def test_locality_compares_placements(self, tmp_path, local_tree, capsys):
        run(tmp_path, "put", str(local_tree), "/t")
        capsys.readouterr()
        assert run(tmp_path, "locality", "-N", "2") == 0
        out = capsys.readouterr().out
        assert "placement probe: 2 task node(s)" in out
        assert "hash:" in out and "locality:" in out
        assert "local_hits" in out and "coalesced_pulls" in out
        assert "chunks per master:" in out

    def test_locality_empty_dataset_errors(self, tmp_path, capsys):
        assert run(tmp_path, "locality") == 1
        assert "no such dataset" in capsys.readouterr().err

    def test_stats_includes_locality_counters(self, tmp_path, local_tree, capsys):
        run(tmp_path, "put", str(local_tree), "/t")
        capsys.readouterr()
        assert run(tmp_path, "stats", "-n", "2") == 0
        out = capsys.readouterr().out
        assert "task cache locality" in out
        assert "local_hits" in out and "replicated_chunks" in out

    def test_scale_probe_needs_no_workspace(self, tmp_path, capsys):
        # Pure simulation-substrate probe: runs against a nonexistent
        # workspace file and prints the two-variant comparison table.
        assert run(tmp_path, "scale", "-n", "500", "-N", "10", "-b", "16") == 0
        out = capsys.readouterr().out
        assert "engine scale" in out
        assert "heap+per-request" in out and "calendar+batched" in out
        assert "events_per_sec" in out and "speedup" in out

    def test_scale_rejects_bad_sizes(self, tmp_path, capsys):
        assert run(tmp_path, "scale", "-n", "0") == 1
        assert "must be >= 1" in capsys.readouterr().err

    def test_tenants_probe_prints_usage_and_counters(self, tmp_path,
                                                     local_tree, capsys):
        run(tmp_path, "put", str(local_tree), "/t")
        capsys.readouterr()
        assert run(tmp_path, "tenants", "-N", "3") == 0
        out = capsys.readouterr().out
        assert "shared-tier probe: 3 concurrent task(s)" in out
        assert "tenant0" in out and "tenant2" in out
        assert "interactive" in out and "batch" in out
        assert "warm_admissions" in out and "qos_denied" in out
        assert "quota_rejections" in out
        assert "NO" not in out  # every tenant within quota

    def test_tenants_quota_flag_is_reported(self, tmp_path, local_tree,
                                            capsys):
        run(tmp_path, "put", str(local_tree), "/t")
        capsys.readouterr()
        assert run(tmp_path, "tenants", "-N", "2", "-q", "1000000") == 0
        out = capsys.readouterr().out
        assert "976.56 KiB" in out  # the quota column, humanized

    def test_tenants_rejects_bad_args(self, tmp_path, local_tree, capsys):
        run(tmp_path, "put", str(local_tree), "/t")
        capsys.readouterr()
        assert run(tmp_path, "tenants", "-N", "0") == 1
        assert "--tasks must be >= 1" in capsys.readouterr().err

    def test_tenants_empty_dataset_errors(self, tmp_path, capsys):
        assert run(tmp_path, "tenants") == 1
        assert "no such dataset" in capsys.readouterr().err

    def test_tiers_probe_reports_disk_overflow(self, tmp_path, local_tree,
                                               capsys):
        run(tmp_path, "put", str(local_tree), "/t")
        capsys.readouterr()
        # A RAM budget far below the dataset: chunks overflow to disk.
        assert run(tmp_path, "tiers", "-m", "64") == 0
        out = capsys.readouterr().out
        assert "tiered-store probe" in out
        assert "tiers-n0" in out and "tiers-n1" in out
        assert "disk admits" in out
        assert "compression off" in out

    def test_tiers_compression_summary(self, tmp_path, local_tree, capsys):
        run(tmp_path, "put", str(local_tree), "/t")
        capsys.readouterr()
        assert run(tmp_path, "tiers", "-m", "64", "-z") == 0
        out = capsys.readouterr().out
        assert "compression on" in out
        assert "chunks compressed" in out
        assert "logical stored as" in out

    def test_tiers_rejects_bad_args(self, tmp_path, local_tree, capsys):
        run(tmp_path, "put", str(local_tree), "/t")
        capsys.readouterr()
        assert run(tmp_path, "tiers", "-m", "0") == 1
        assert "--ram must be >= 1" in capsys.readouterr().err

    def test_meta_probe_reports_journal_and_registry(self, tmp_path,
                                                     local_tree, capsys):
        run(tmp_path, "put", str(local_tree), "/t")
        run(tmp_path, "put", str(local_tree / "a.bin"), "/a", dataset="other")
        capsys.readouterr()
        assert run(tmp_path, "meta") == 0
        out = capsys.readouterr().out
        assert "registry:         2 dataset(s)" in out
        assert "journal horizon:" in out
        # One row per dataset with version, depth and retained span.
        assert "ds" in out and "other" in out
        for line in out.splitlines():
            if line.startswith("ds "):
                assert "v" in line.split()[-1]  # span column populated

    def test_meta_probe_on_empty_workspace(self, tmp_path, capsys):
        assert run(tmp_path, "meta") == 0
        out = capsys.readouterr().out
        assert "registry:         0 dataset(s)" in out
        assert "(no datasets)" in out

    def test_chaos_probe_prints_the_operator_view(self, tmp_path, local_tree,
                                                  capsys):
        run(tmp_path, "put", str(local_tree), "/t")
        capsys.readouterr()
        assert run(tmp_path, "chaos") == 0
        out = capsys.readouterr().out
        assert "chaos probe: 3 task node(s) + 1 live joiner" in out
        # Membership grew by the live joiner and records the scale event.
        assert "membership (version 1): 4 master(s)" in out
        assert "scale event" in out and "scale_up chaos-j3" in out
        assert "[NIC degraded]" in out
        # EWMA rows and hedge counters populated by the three passes.
        assert "peer latency (EWMA, slowest first):" in out
        assert "sample(s), ewma" in out
        assert "hedge counters:" in out
        assert "hedges fired" in out
        # The armed schedule with its applied window.
        assert "chaos schedule:" in out
        assert "degrade_nic:" in out
        assert "apply degrade_nic" in out

    def test_chaos_probe_single_node(self, tmp_path, local_tree, capsys):
        run(tmp_path, "put", str(local_tree / "a.bin"), "/a")
        capsys.readouterr()
        assert run(tmp_path, "chaos", "-N", "1") == 0
        out = capsys.readouterr().out
        assert "membership (version 1): 2 master(s)" in out

    def test_chaos_rejects_bad_args(self, tmp_path, local_tree, capsys):
        run(tmp_path, "put", str(local_tree), "/t")
        capsys.readouterr()
        assert run(tmp_path, "chaos", "-N", "0") == 1
        assert "--nodes must be >= 1" in capsys.readouterr().err

    def test_chaos_empty_dataset_errors(self, tmp_path, local_tree, capsys):
        run(tmp_path, "put", str(local_tree / "a.bin"), "/a")
        run(tmp_path, "rm", "/a")
        capsys.readouterr()
        assert run(tmp_path, "chaos") == 1
        assert "no files to probe" in capsys.readouterr().err

    def test_chaos_does_not_mutate_the_workspace(self, tmp_path, local_tree,
                                                 capsys):
        run(tmp_path, "put", str(local_tree / "a.bin"), "/a")
        capsys.readouterr()
        ws_file = tmp_path / "test.workspace"
        before = ws_file.read_bytes()
        assert run(tmp_path, "chaos") == 0
        assert ws_file.read_bytes() == before
