"""Tests for the RPC layer."""

import pytest

from repro.calibration import NetworkProfile, RpcProfile
from repro.cluster import NetworkFabric, Node
from repro.errors import NodeDownError
from repro.rpc import ConnectionTable, RpcEndpoint
from repro.sim import Environment, run_sync


def setup_rpc(service_s=0.0, workers=16, latency=0.0):
    env = Environment()
    fabric = NetworkFabric(env, NetworkProfile(latency_s=latency))
    server_node = fabric.add_node(Node(env, "server"))
    client_node = fabric.add_node(Node(env, "client"))
    calls = []

    def handler(method, *args):
        calls.append((method, args))
        if method == "echo":
            return args[0]
        if method == "boom":
            raise ValueError("handler exploded")
        return None

    ep = RpcEndpoint(
        env,
        fabric,
        server_node,
        "svc",
        handler,
        service_s=service_s,
        workers=workers,
        profile=RpcProfile(per_call_s=0.0, per_byte_s=0.0),
    )
    return env, fabric, client_node, server_node, ep, calls


class TestRpcEndpoint:
    def test_call_returns_handler_result(self):
        env, _, client, _, ep, calls = setup_rpc()

        def proc(env):
            result = yield from ep.call(client, "echo", b"hello")
            return result

        assert run_sync(env, proc(env)) == b"hello"
        assert calls == [("echo", (b"hello",))]

    def test_handler_exception_propagates(self):
        env, _, client, _, ep, _ = setup_rpc()

        def proc(env):
            yield from ep.call(client, "boom")

        with pytest.raises(ValueError, match="handler exploded"):
            run_sync(env, proc(env))
        assert ep.stats.errors == 1

    def test_service_time_charged(self):
        env, _, client, _, ep, _ = setup_rpc(service_s=0.01)

        def proc(env):
            t0 = env.now
            yield from ep.call(client, "echo", b"x")
            return env.now - t0

        assert run_sync(env, proc(env)) == pytest.approx(0.01, rel=1e-3)

    def test_worker_pool_limits_throughput(self):
        env, _, client, _, ep, _ = setup_rpc(service_s=1.0, workers=2)

        def one(env):
            yield from ep.call(client, "echo", b"x")

        procs = [env.process(one(env)) for _ in range(6)]
        env.run(until=env.all_of(procs))
        assert env.now == pytest.approx(3.0, rel=1e-6)  # 6 calls / 2 workers

    def test_dead_endpoint_raises(self):
        env, _, client, server, ep, _ = setup_rpc()
        server.kill()

        def proc(env):
            yield from ep.call(client, "echo", b"x")

        with pytest.raises(NodeDownError):
            run_sync(env, proc(env))

    def test_death_mid_flight_raises(self):
        env, _, client, server, ep, _ = setup_rpc(service_s=1.0)

        def caller(env):
            yield from ep.call(client, "echo", b"x")

        def killer(env):
            yield env.timeout(0.5)
            server.kill()

        p = env.process(caller(env))
        env.process(killer(env))
        with pytest.raises(NodeDownError):
            env.run(until=p)

    def test_stats(self):
        env, _, client, _, ep, _ = setup_rpc()

        def proc(env):
            yield from ep.call(client, "echo", b"abcd", request_bytes=100)

        run_sync(env, proc(env))
        assert ep.stats.calls == 1
        assert ep.stats.request_bytes == 100
        assert ep.stats.response_bytes == 4  # len(b"abcd")

    def test_explicit_response_bytes(self):
        env, _, client, _, ep, _ = setup_rpc()

        def proc(env):
            yield from ep.call(client, "echo", b"ab", response_bytes=4096)

        run_sync(env, proc(env))
        assert ep.stats.response_bytes == 4096

    def test_service_time_callable(self):
        env = Environment()
        fabric = NetworkFabric(env, NetworkProfile(latency_s=0))
        server = fabric.add_node(Node(env, "s"))
        client = fabric.add_node(Node(env, "c"))
        ep = RpcEndpoint(
            env,
            fabric,
            server,
            "svc",
            lambda m, *a: b"****",
            service_s=lambda method, nbytes: nbytes * 1e-3,
            profile=RpcProfile(per_call_s=0, per_byte_s=0),
        )

        def proc(env):
            t0 = env.now
            yield from ep.call(client, "get")
            return env.now - t0

        assert run_sync(env, proc(env)) == pytest.approx(4e-3, rel=1e-2)


class TestConnectionTable:
    def test_connect_dedup(self):
        t = ConnectionTable()
        assert t.connect("a", "b")
        assert not t.connect("a", "b")
        assert t.count() == 1

    def test_self_connection_ignored(self):
        t = ConnectionTable()
        assert not t.connect("a", "a")
        assert t.count() == 0

    def test_fan_in_out(self):
        t = ConnectionTable()
        t.connect("c1", "s")
        t.connect("c2", "s")
        t.connect("c1", "s2")
        assert t.fan_in("s") == 2
        assert t.fan_out("c1") == 2

    def test_drop_endpoint(self):
        t = ConnectionTable()
        t.connect("c1", "s")
        t.connect("c2", "s")
        t.connect("c1", "other")
        assert t.drop_endpoint("s") == 2
        assert t.count() == 1

    def test_full_mesh_count(self):
        """n clients all-to-all is n*(n-1) — the §4.2 baseline."""
        t = ConnectionTable()
        n = 8
        names = [f"cl{i}" for i in range(n)]
        for a in names:
            for b in names:
                t.connect(a, b)
        assert t.count() == n * (n - 1)

    def test_memory_overhead(self):
        t = ConnectionTable(NetworkProfile(connection_overhead_bytes=100))
        t.connect("a", "b")
        t.connect("b", "a")
        assert t.memory_overhead_bytes() == 200
