"""Tests for chunk-ID generation and codec (paper Table 1, §4.1.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.ids import (
    CHUNK_ID_BYTES,
    ENCODED_LENGTH,
    MAX_IDS_PER_SECOND,
    ChunkId,
    ChunkIdGenerator,
    decode_chunk_id,
)

MACHINE = bytes.fromhex("001122334455")


class TestChunkIdLayout:
    """Byte layout exactly per Table 1 of the paper."""

    def test_total_length_is_16_bytes(self):
        assert CHUNK_ID_BYTES == 16

    def test_field_extraction(self):
        cid = ChunkId.from_parts(0x01020304, MACHINE, 0x0A0B0C, 0x112233)
        assert cid.timestamp == 0x01020304
        assert cid.machine == MACHINE
        assert cid.pid == 0x0A0B0C
        assert cid.counter == 0x112233
        # Field byte ranges per Table 1.
        assert cid.raw[0:4] == bytes.fromhex("01020304")
        assert cid.raw[4:10] == MACHINE
        assert cid.raw[10:13] == bytes.fromhex("0A0B0C")
        assert cid.raw[13:16] == bytes.fromhex("112233")

    def test_capacity_exceeds_16_7_million_per_second(self):
        # Paper: "more than 16.7 million unique chunk IDs per second".
        assert MAX_IDS_PER_SECOND > 16_700_000

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            ChunkId(b"\x00" * 15)

    @pytest.mark.parametrize(
        "ts,machine,pid,counter",
        [
            (1 << 32, MACHINE, 0, 0),
            (-1, MACHINE, 0, 0),
            (0, b"\x00" * 5, 0, 0),
            (0, MACHINE, 1 << 24, 0),
            (0, MACHINE, 0, 1 << 24),
        ],
    )
    def test_out_of_range_parts_rejected(self, ts, machine, pid, counter):
        with pytest.raises(ValueError):
            ChunkId.from_parts(ts, machine, pid, counter)


class TestOrdering:
    def test_timestamp_dominates_ordering(self):
        older = ChunkId.from_parts(100, b"\xff" * 6, 999, 999)
        newer = ChunkId.from_parts(101, b"\x00" * 6, 0, 0)
        assert older < newer

    def test_counter_breaks_ties(self):
        a = ChunkId.from_parts(100, MACHINE, 1, 0)
        b = ChunkId.from_parts(100, MACHINE, 1, 1)
        assert a < b

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    def test_encoded_order_matches_byte_order(self, raw_a, raw_b):
        """The printable encoding must preserve sort order (recovery §4.1.2)."""
        a, b = ChunkId(raw_a), ChunkId(raw_b)
        assert (a.encode() < b.encode()) == (raw_a < raw_b)
        assert (a.encode() == b.encode()) == (raw_a == raw_b)


class TestCodec:
    @given(st.binary(min_size=16, max_size=16))
    def test_roundtrip(self, raw):
        cid = ChunkId(raw)
        assert decode_chunk_id(cid.encode()) == cid

    def test_encoded_length(self):
        cid = ChunkId(b"\xab" * 16)
        assert len(cid.encode()) == ENCODED_LENGTH

    def test_base64_roundtrip_via_manual_decode(self):
        import base64

        cid = ChunkId(bytes(range(16)))
        enc = cid.encode_base64()
        pad = "=" * (-len(enc) % 4)
        assert base64.urlsafe_b64decode(enc + pad) == cid.raw

    def test_decode_garbage_raises(self):
        with pytest.raises(ValueError):
            decode_chunk_id("!!notvalid!!")


class TestGenerator:
    def test_uniqueness_within_second(self):
        gen = ChunkIdGenerator(machine=MACHINE, pid=42)
        ids = [gen.next() for _ in range(10_000)]
        assert len(set(ids)) == len(ids)

    def test_monotone(self):
        gen = ChunkIdGenerator(machine=MACHINE, pid=42)
        ids = [gen.next() for _ in range(1000)]
        assert ids == sorted(ids)

    def test_uses_supplied_clock(self):
        t = [1000.0]
        gen = ChunkIdGenerator(machine=MACHINE, pid=1, clock=lambda: t[0])
        a = gen.next()
        t[0] = 2000.0
        b = gen.next()
        assert a.timestamp == 1000
        assert b.timestamp == 2000
        assert b.counter == 0  # counter resets on new second

    def test_counter_increments_within_second(self):
        gen = ChunkIdGenerator(machine=MACHINE, pid=1, clock=lambda: 5.0)
        a, b = gen.next(), gen.next()
        assert (a.timestamp, a.counter) == (5, 0)
        assert (b.timestamp, b.counter) == (5, 1)

    def test_clock_going_backwards_keeps_monotone(self):
        t = [100.0]
        gen = ChunkIdGenerator(machine=MACHINE, pid=1, clock=lambda: t[0])
        a = gen.next()
        t[0] = 50.0  # clock reset
        b = gen.next()
        assert b > a

    def test_pid_wraps_to_3_bytes(self):
        gen = ChunkIdGenerator(machine=MACHINE, pid=(1 << 24) + 7)
        assert gen.next().pid == 7

    def test_take(self):
        gen = ChunkIdGenerator(machine=MACHINE, pid=1)
        ids = list(gen.take(5))
        assert len(ids) == 5
        assert len(set(ids)) == 5

    def test_two_processes_never_collide(self):
        g1 = ChunkIdGenerator(machine=MACHINE, pid=1, clock=lambda: 0.0)
        g2 = ChunkIdGenerator(machine=MACHINE, pid=2, clock=lambda: 0.0)
        ids1 = {g1.next() for _ in range(100)}
        ids2 = {g2.next() for _ in range(100)}
        assert not ids1 & ids2
