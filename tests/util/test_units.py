"""Tests for byte-size parsing and formatting."""

import pytest

from repro.util.units import format_bytes, format_rate, parse_size


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", 0),
            ("512", 512),
            ("4k", 4096),
            ("4K", 4096),
            ("4KB", 4096),
            ("4KiB", 4096),
            ("4MB", 4 * 1024**2),
            ("1.5MB", int(1.5 * 1024**2)),
            ("2GB", 2 * 1024**3),
            ("1TiB", 1024**4),
            (" 128 kb ", 128 * 1024),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    def test_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_float_truncates(self):
        assert parse_size(10.9) == 10

    @pytest.mark.parametrize("bad", ["", "abc", "4XB", "-5KB", "4 4MB"])
    def test_invalid_raises(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    def test_negative_int_raises(self):
        with pytest.raises(ValueError):
            parse_size(-1)


class TestFormat:
    def test_bytes(self):
        assert format_bytes(0) == "0 B"
        assert format_bytes(512) == "512 B"
        assert format_bytes(4 * 1024**2) == "4.00 MiB"
        assert format_bytes(3.3 * 1024**3) == "3.30 GiB"

    def test_large_stays_tib(self):
        assert format_bytes(5 * 1024**5).endswith("TiB")

    def test_rate(self):
        assert format_rate(1024**2) == "1.00 MiB/s"

    def test_roundtrip_consistency(self):
        for n in (1, 1024, 4096, 10**9):
            text = format_bytes(n)
            # parse back within 1% (formatting rounds to 2 decimals)
            parsed = parse_size(text.replace(" ", "").replace("iB", "B"))
            assert abs(parsed - n) <= max(0.01 * n, 1)
