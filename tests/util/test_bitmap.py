"""Tests for the deletion bitmap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitmap import Bitmap


class TestBasics:
    def test_new_bitmap_all_clear(self):
        bm = Bitmap(10)
        assert len(bm) == 10
        assert bm.count() == 0
        assert not bm.any()

    def test_set_get_clear(self):
        bm = Bitmap(16)
        bm.set(3)
        assert bm.get(3)
        assert bm[3]
        assert not bm[4]
        bm.clear(3)
        assert not bm.get(3)

    def test_negative_index(self):
        bm = Bitmap(8)
        bm.set(-1)
        assert bm.get(7)

    def test_out_of_range(self):
        bm = Bitmap(8)
        with pytest.raises(IndexError):
            bm.set(8)
        with pytest.raises(IndexError):
            bm.get(-9)

    def test_zero_size(self):
        bm = Bitmap(0)
        assert len(bm) == 0
        assert not bm.any()
        assert bm.all()  # vacuous truth
        assert bm.to_bytes() == b""

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Bitmap(-1)

    def test_all(self):
        bm = Bitmap(9)
        for i in range(9):
            bm.set(i)
        assert bm.all()

    def test_iter_set_and_clear_partition(self):
        bm = Bitmap(20)
        for i in (0, 7, 8, 19):
            bm.set(i)
        assert list(bm.iter_set()) == [0, 7, 8, 19]
        assert sorted(list(bm.iter_set()) + list(bm.iter_clear())) == list(range(20))

    def test_equality_and_copy(self):
        a = Bitmap(12)
        a.set(5)
        b = a.copy()
        assert a == b
        b.set(6)
        assert a != b

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Bitmap(4))


class TestSerialization:
    @given(st.integers(0, 200), st.data())
    def test_roundtrip(self, size, data):
        bm = Bitmap(size)
        if size:
            for idx in data.draw(
                st.lists(st.integers(0, size - 1), max_size=size, unique=True)
            ):
                bm.set(idx)
        restored = Bitmap.from_bytes(bm.to_bytes(), size)
        assert restored == bm

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            Bitmap.from_bytes(b"\x00\x00", 3)

    def test_padding_garbage_rejected(self):
        # size 4 uses the low nibble only; a high bit set is invalid.
        with pytest.raises(ValueError):
            Bitmap.from_bytes(b"\xf0", 4)
