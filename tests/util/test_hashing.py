"""Tests for stable hashing and the consistent-hash ring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.hashing import ConsistentHashRing, fnv1a_64, stable_hash


class TestFnv:
    def test_known_vector(self):
        # FNV-1a 64-bit of empty input is the offset basis.
        assert fnv1a_64(b"") == 0xCBF29CE484222325

    def test_str_and_bytes_agree(self):
        assert fnv1a_64("hello") == fnv1a_64(b"hello")

    def test_deterministic(self):
        assert fnv1a_64("diesel") == fnv1a_64("diesel")

    def test_distinct_inputs_differ(self):
        assert fnv1a_64("a") != fnv1a_64("b")

    def test_stable_hash_buckets(self):
        for key in ("x", "y", "z"):
            assert 0 <= stable_hash(key, 10) < 10

    def test_stable_hash_bad_buckets(self):
        with pytest.raises(ValueError):
            stable_hash("x", 0)


class TestRing:
    def test_empty_ring_lookup_raises(self):
        with pytest.raises(LookupError):
            ConsistentHashRing().lookup("key")

    def test_single_node_owns_everything(self):
        ring = ConsistentHashRing(["n0"])
        assert all(ring.lookup(f"k{i}") == "n0" for i in range(100))

    def test_duplicate_add_rejected(self):
        ring = ConsistentHashRing(["n0"])
        with pytest.raises(ValueError):
            ring.add("n0")

    def test_remove_missing_rejected(self):
        with pytest.raises(KeyError):
            ConsistentHashRing(["n0"]).remove("n1")

    def test_balance(self):
        """With virtual nodes, key shares should be roughly even."""
        nodes = [f"n{i}" for i in range(10)]
        ring = ConsistentHashRing(nodes, replicas=256)
        counts = {n: 0 for n in nodes}
        for i in range(20_000):
            counts[ring.lookup(f"file-{i}")] += 1
        share = [c / 20_000 for c in counts.values()]
        assert min(share) > 0.04  # no node starved (ideal share 0.10)
        assert max(share) < 0.20  # no node doubled

    def test_removal_only_remaps_dead_nodes_keys(self):
        """The property Fig 6 relies on: killing one node only misses its keys."""
        nodes = [f"n{i}" for i in range(10)]
        ring = ConsistentHashRing(nodes, replicas=128)
        keys = [f"img/{i}.jpg" for i in range(5000)]
        before = {k: ring.lookup(k) for k in keys}
        ring.remove("n3")
        after = {k: ring.lookup(k) for k in keys}
        for k in keys:
            if before[k] != "n3":
                assert after[k] == before[k]
            else:
                assert after[k] != "n3"

    @settings(max_examples=25, deadline=None)
    @given(st.sets(st.integers(0, 50), min_size=2, max_size=12).map(sorted))
    def test_lookup_stable_under_add_order(self, node_ids):
        """Ring assignment must not depend on insertion order."""
        names = [f"node-{i}" for i in node_ids]
        a = ConsistentHashRing(names, replicas=64)
        b = ConsistentHashRing(reversed(names), replicas=64)
        for i in range(200):
            key = f"key-{i}"
            assert a.lookup(key) == b.lookup(key)

    def test_partition_covers_all_keys(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        keys = [f"k{i}" for i in range(100)]
        parts = ring.partition(keys)
        assert sorted(sum(parts.values(), [])) == sorted(keys)

    def test_partition_deterministic_and_order_preserving(self):
        """Fan-out layers partition a chunk list per owner; the result
        must be reproducible and keep each owner's keys in input order."""
        ring = ConsistentHashRing(["a", "b", "c"], replicas=64)
        keys = [f"chunk-{i:04d}" for i in range(200)]
        first = ring.partition(keys)
        second = ring.partition(keys)
        assert first == second
        assert set(first) == {"a", "b", "c"}  # every node listed, even if empty
        for node, owned in first.items():
            assert owned == [k for k in keys if ring.lookup(k) == node]

    def test_partition_after_remove_only_moves_lost_keys(self):
        ring = ConsistentHashRing([f"n{i}" for i in range(6)], replicas=128)
        keys = [f"img/{i}.jpg" for i in range(1000)]
        before = ring.partition(keys)
        ring.remove("n2")
        after = ring.partition(keys)
        assert "n2" not in after
        for node in after:
            # Surviving nodes keep everything they had (plus adoptees).
            assert set(before[node]) <= set(after[node])
        assert sorted(sum(after.values(), [])) == sorted(keys)
