"""Tests for dataset path canonicalization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import pathutil

segment = st.text(
    alphabet=st.characters(blacklist_characters="/", blacklist_categories=("Cs",)),
    min_size=1,
    max_size=8,
).filter(lambda s: s not in (".", ".."))


class TestNormalize:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("/a/b/c", "/a/b/c"),
            ("a/b/c", "/a/b/c"),
            ("a//b///c", "/a/b/c"),
            ("/a/./b", "/a/b"),
            ("/", "/"),
            ("", "/"),
            (".", "/"),
            ("/a/b/", "/a/b"),
        ],
    )
    def test_cases(self, raw, expected):
        assert pathutil.normalize(raw) == expected

    def test_dotdot_rejected(self):
        with pytest.raises(ValueError):
            pathutil.normalize("/a/../b")

    def test_non_str_rejected(self):
        with pytest.raises(TypeError):
            pathutil.normalize(123)

    @given(st.lists(segment, max_size=6))
    def test_idempotent(self, parts):
        p = pathutil.normalize("/".join(parts))
        assert pathutil.normalize(p) == p


class TestComponents:
    def test_split_join_roundtrip(self):
        assert pathutil.split("/a/b/c") == ("a", "b", "c")
        assert pathutil.join("a", "b", "c") == "/a/b/c"
        assert pathutil.split("/") == ()

    def test_dirname_basename(self):
        assert pathutil.dirname("/a/b/c") == "/a/b"
        assert pathutil.basename("/a/b/c") == "c"
        assert pathutil.dirname("/a") == "/"
        assert pathutil.dirname("/") == "/"
        assert pathutil.basename("/") == ""

    def test_iter_ancestors(self):
        assert list(pathutil.iter_ancestors("/a/b/c")) == ["/a/b", "/a", "/"]
        assert list(pathutil.iter_ancestors("/a")) == ["/"]
        assert list(pathutil.iter_ancestors("/")) == []

    def test_is_under(self):
        assert pathutil.is_under("/a/b", "/a")
        assert pathutil.is_under("/a/b", "/")
        assert not pathutil.is_under("/a", "/a")
        assert not pathutil.is_under("/ab", "/a")
        assert not pathutil.is_under("/", "/")

    @given(st.lists(segment, min_size=1, max_size=6))
    def test_dirname_is_ancestor(self, parts):
        p = pathutil.join(*parts)
        assert pathutil.dirname(p) == next(pathutil.iter_ancestors(p))
