"""SpanRecorder unit tests: attach/detach, recording, flattening."""

import pytest

from repro.obs import Span, SpanRecorder
from repro.sim import Environment


class FakeComponent:
    def __init__(self, env):
        self.env = env
        self.recorder = None


def make_recorder():
    env = Environment()
    comp = FakeComponent(env)
    rec = SpanRecorder.attach(comp)
    return env, comp, rec


class TestAttach:
    def test_attach_sets_recorder_and_clock(self):
        env, comp, rec = make_recorder()
        assert comp.recorder is rec
        assert rec.now() == env.now

    def test_attach_many(self):
        env = Environment()
        comps = [FakeComponent(env) for _ in range(3)]
        rec = SpanRecorder.attach(*comps)
        assert all(c.recorder is rec for c in comps)

    def test_detach(self):
        env, comp, rec = make_recorder()
        SpanRecorder.detach(comp)
        assert comp.recorder is None

    def test_attach_requires_env(self):
        class NoEnv:
            pass

        with pytest.raises(ValueError):
            SpanRecorder.attach(NoEnv())

    def test_attach_requires_components(self):
        with pytest.raises(ValueError):
            SpanRecorder.attach()


class TestRecording:
    def test_start_finish_span(self):
        env, comp, rec = make_recorder()
        span = rec.start("get", actor="c0")

        def job():
            yield env.timeout(1.5)

        proc = env.process(job())
        env.run(until=proc)
        rec.finish(span, layer="server", chunk="abc")
        assert span.duration == pytest.approx(1.5)
        assert span.layer == "server"
        assert span.tags == {"chunk": "abc"}
        assert len(rec) == 1

    def test_record_backdates_start(self):
        env, comp, rec = make_recorder()
        rec.record("get", "server", 0.25, actor="c0")
        (span,) = rec.spans()
        assert span.start == pytest.approx(env.now - 0.25)
        assert span.duration == pytest.approx(0.25)

    def test_open_span_duration_is_zero(self):
        env, comp, rec = make_recorder()
        span = rec.start("get")
        assert span.duration == 0.0
        assert "get" in repr(span)

    def test_histogram_per_op_layer(self):
        env, comp, rec = make_recorder()
        rec.record("get", "server", 0.2)
        rec.record("get", "server", 0.4)
        rec.record("get", "group_cache", 0.001)
        assert rec.histogram("get", "server").count == 2
        assert rec.histogram("get", "group_cache").count == 1
        assert rec.histogram("get", "nope").count == 0
        assert set(rec.histograms) == {("get", "server"),
                                       ("get", "group_cache")}

    def test_counters_and_layers(self):
        env, comp, rec = make_recorder()
        rec.count("read", "group_cache", n=5)
        rec.count("read", "server")
        rec.record("read", "task_cache", 0.1)
        assert rec.counts[("read", "group_cache")] == 5
        assert rec.layers("read") == {"group_cache": 5, "server": 1,
                                      "task_cache": 1}

    def test_capacity_ring_drops_oldest(self):
        env = Environment()
        comp = FakeComponent(env)
        rec = SpanRecorder.attach(comp, capacity=4)
        for i in range(6):
            rec.record("op", "layer", 0.001 * i)
        assert len(rec) == 4
        assert rec.dropped == 2
        # Histograms are cumulative even when spans drop out of the ring.
        assert rec.histogram("op", "layer").count == 6

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            SpanRecorder(lambda: 0.0, capacity=0)


class TestFlattening:
    def test_to_dict_keys(self):
        env, comp, rec = make_recorder()
        rec.record("get", "server", 0.2)
        rec.count("read", "server", n=3)
        d = rec.to_dict()
        assert d["get_server_n"] == 1
        assert d["get_server_p50_ms"] == pytest.approx(200.0)
        assert d["get_server_p99_ms"] == pytest.approx(200.0)
        assert d["read_server_count"] == 3

    def test_to_dict_sanitizes_names(self):
        env, comp, rec = make_recorder()
        rec.record("rpc:get file", "queue/fast", 0.1)
        keys = rec.to_dict()
        assert "rpc_get_file_queue_fast_n" in keys

    def test_stats_row_accepts_recorder(self):
        from repro.bench.reporting import stats_row

        env, comp, rec = make_recorder()
        rec.record("get", "server", 0.2)
        row = stats_row(rec, prefix="obs_")
        assert row["obs_get_server_n"] == 1

    def test_summary_table(self):
        env, comp, rec = make_recorder()
        rec.record("get", "server", 0.2)
        rec.count("read", "server", n=3)
        text = rec.summary()
        lines = text.splitlines()
        assert lines[0].split()[:2] == ["op", "layer"]
        assert any("get" in ln and "server" in ln for ln in lines[1:])
        assert any("read" in ln and "-" in ln for ln in lines[1:])


def test_span_slots():
    span = Span("get", "c0", 0.0)
    with pytest.raises(AttributeError):
        span.other = 1
