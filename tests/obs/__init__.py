"""Tests for the observability layer (repro.obs)."""
