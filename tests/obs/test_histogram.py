"""Histogram unit tests: percentile edge cases and bucket boundaries."""

import math

import pytest

from repro.obs import Histogram


class TestEmpty:
    def test_empty_percentiles_are_zero(self):
        h = Histogram()
        assert h.percentile(0) == 0.0
        assert h.p50 == 0.0
        assert h.p99 == 0.0
        assert h.mean == 0.0
        assert len(h) == 0

    def test_empty_to_dict(self):
        d = Histogram().to_dict()
        assert d == {"n": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                     "p99": 0.0, "max": 0.0}


class TestSingleSample:
    def test_single_sample_exact_at_every_percentile(self):
        # Clamping to [min, max] must make one sample exact everywhere,
        # regardless of where the bucket midpoint falls.
        h = Histogram()
        h.add(3.7e-3)
        for q in (0, 1, 50, 90, 99, 100):
            assert h.percentile(q) == pytest.approx(3.7e-3)
        assert h.mean == pytest.approx(3.7e-3)
        assert h.to_dict()["max"] == pytest.approx(3.7e-3)

    def test_single_zero_sample(self):
        h = Histogram()
        h.add(0.0)
        assert h.p50 == 0.0
        assert h.p99 == 0.0
        assert h.count == 1


class TestBoundaries:
    def test_negative_clamps_to_zero(self):
        h = Histogram()
        h.add(-1.0)
        assert h.count == 1
        assert h.min == 0.0
        assert h.p50 == 0.0

    def test_underflow_bucket(self):
        # Values below min_value are "effectively free", not errors.
        h = Histogram(min_value=1e-6)
        for _ in range(10):
            h.add(1e-9)
        assert h.p50 == pytest.approx(1e-9)
        assert h.p99 == pytest.approx(1e-9)

    def test_value_exactly_min_value_lands_in_bucket_zero(self):
        h = Histogram(min_value=1e-6)
        h.add(1e-6)
        assert h._buckets.get(0) == 1
        assert h._underflow == 0

    def test_bucket_edge_consistency(self):
        # A sample on (or within float error of) a bucket edge must land
        # in exactly one bucket and still report within the relative
        # error bound implied by the bucket width.
        factor = 2 ** 0.25
        h = Histogram(min_value=1e-9, factor=factor)
        edges = [1e-9 * factor ** i for i in range(1, 40)]
        for v in edges:
            h.add(v)
        assert h.count == len(edges)
        assert sum(h._buckets.values()) + h._underflow == len(edges)

    def test_percentile_relative_error_bound(self):
        # Midpoint-of-bucket estimates stay within the bucket's ~19%
        # width of the true value across decades.
        h = Histogram()
        values = [10 ** (-7 + i * 0.01) for i in range(900)]
        for v in values:
            h.add(v)
        values.sort()
        for q in (10, 50, 90, 99):
            true = values[min(len(values) - 1,
                              math.ceil(q / 100 * len(values)) - 1)]
            assert h.percentile(q) == pytest.approx(true, rel=0.12)

    def test_percentiles_monotonic(self):
        h = Histogram()
        for i in range(1, 200):
            h.add(i * 1e-4)
        last = 0.0
        for q in range(0, 101, 5):
            p = h.percentile(q)
            assert p >= last
            last = p
        # p100 is a bucket-midpoint estimate clamped to the observed max.
        assert h.percentile(100) <= h.max
        assert h.percentile(100) == pytest.approx(h.max, rel=0.12)

    def test_invalid_q_rejected(self):
        h = Histogram()
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Histogram(min_value=0)
        with pytest.raises(ValueError):
            Histogram(factor=1.0)
