"""Integration tests: spans recorded across the instrumented stack."""

from repro.bench.setups import (
    add_diesel,
    bulk_load_diesel,
    diesel_client_with_snapshot,
    make_testbed,
)
from repro.calibration import KB, MB
from repro.core.config import DieselConfig
from repro.core.dist_cache import TaskCache
from repro.obs import SpanRecorder

FILES = {f"/obs/f{i:04d}.bin": b"\x11" * (64 * KB) for i in range(128)}


def loaded_testbed(n_compute=1, n_servers=2):
    tb = make_testbed(n_compute=n_compute)
    add_diesel(tb, n_servers=n_servers)
    bulk_load_diesel(tb, "obs", FILES, chunk_size=1 * MB)
    return tb


class TestReadPath:
    def test_read_layers_cover_every_read(self):
        tb = loaded_testbed()
        client = diesel_client_with_snapshot(
            tb, "obs", tb.compute_nodes[0], "c0",
            config=DieselConfig(shuffle_group_size=2, prefetch_depth=2),
        )
        rec = SpanRecorder.attach(client, *tb.diesel_servers)
        client.enable_shuffle()
        plan = client.epoch_file_list(seed=5)

        def job():
            for path in plan.files:
                yield from client.get(path)

        tb.run(job())
        layers = rec.layers("read")
        assert set(layers) <= {"group_cache", "task_cache", "server"}
        assert sum(layers.values()) == len(plan.files)
        # With the prefetcher on, local resolutions dominate.
        assert layers.get("group_cache", 0) > layers.get("server", 0)
        # Per-layer get percentiles exist and local hits beat fetches.
        assert rec.histogram("get", "group_cache").count > 0
        assert rec.histogram("get", "server").count > 0
        assert rec.histogram("get", "server").p50 > \
            rec.histogram("get", "group_cache").p50
        # Prefetch lead spans were recorded for pipelined chunks.
        assert rec.histogram("prefetch", "lead").count > 0

    def test_get_many_spans_and_counts(self):
        tb = loaded_testbed()
        client = diesel_client_with_snapshot(
            tb, "obs", tb.compute_nodes[0], "c0",
            config=DieselConfig(shuffle_group_size=8, read_fanout=4),
        )
        rec = SpanRecorder.attach(client, *tb.diesel_servers)
        client.enable_shuffle()
        paths = sorted(FILES)[::8][:12]
        got = tb.run(client.get_many(paths))
        assert len(got) == 12
        assert rec.histogram("get_many", "total").count == 1
        assert sum(rec.layers("read").values()) == 12

    def test_rpc_and_objectstore_spans(self):
        tb = loaded_testbed()
        client = diesel_client_with_snapshot(
            tb, "obs", tb.compute_nodes[0], "c0",
        )
        rec = SpanRecorder.attach(client, *tb.diesel_servers)
        tb.run(client.get(sorted(FILES)[0]))
        ops = {op for op, _ in rec.histograms}
        assert any(op.startswith("rpc_") for op in ops)
        # Both queue and service sides of at least one RPC were timed.
        rpc_layers = {layer for op, layer in rec.histograms
                      if op.startswith("rpc_")}
        assert {"queue", "service"} <= rpc_layers
        # The server attributed its store read to the objectstore layer.
        assert any(layer == "objectstore" for _, layer in rec.histograms)


class TestWritePath:
    def test_put_flush_spans(self):
        tb = make_testbed(n_compute=1)
        add_diesel(tb, n_servers=2)
        from repro.core.client import DieselClient

        client = DieselClient(
            tb.env, tb.compute_nodes[0], tb.diesel_servers, "w",
            name="writer", calibration=tb.cal,
        )
        rec = SpanRecorder.attach(client, *tb.diesel_servers)

        def job():
            for i in range(8):
                yield from client.put(f"/w/f{i}.bin", b"\x22" * (512 * KB))
            yield from client.flush()

        tb.run(job())
        # Most puts only pack; the one that seals the 4 MB chunk ships.
        put_layers = rec.layers("put")
        assert sum(put_layers.values()) == 8
        assert put_layers.get("pack", 0) >= 6
        assert put_layers.get("ship", 0) >= 1
        assert rec.histogram("flush", "drain").count == 1
        assert rec.histogram("chunk_send", "server").count >= 1
        assert rec.histogram("ingest", "objectstore").count >= 1


class TestCachePath:
    def _cache(self, tb, clients, **kw):
        return TaskCache(
            tb.env, tb.fabric, tb.diesel, "obs",
            [c.as_cache_client() for c in clients],
            policy="oneshot", calibration=tb.cal, **kw,
        )

    def test_warmup_and_recover_spans(self):
        tb = loaded_testbed(n_compute=2)
        clients = [
            diesel_client_with_snapshot(
                tb, "obs", tb.compute_nodes[c], f"c{c}", rank=c
            )
            for c in range(2)
        ]
        # warmup_fanout > 1 takes the fan-out recovery path, where each
        # surviving master times its own re-stream.
        cache = self._cache(tb, clients, warmup_fanout=2)
        rec = SpanRecorder.attach(clients[0], cache)
        tb.run(cache.register())
        tb.run(cache.wait_warm())
        assert rec.histogram("warmup", "master").count == len(cache.masters)
        victim = cache.masters[sorted(cache.masters)[0]]
        victim.node.kill()
        tb.run(cache.recover())
        assert rec.histogram("recover", "total").count == 1
        assert rec.histogram("recover", "master").count >= 1

    def test_task_cache_resolution_layers(self):
        tb = loaded_testbed(n_compute=2)
        clients = [
            diesel_client_with_snapshot(
                tb, "obs", tb.compute_nodes[c], f"c{c}", rank=c
            )
            for c in range(2)
        ]
        cache = self._cache(tb, clients)
        reader = clients[1]
        reader.attach_cache(cache)
        rec = SpanRecorder.attach(reader, cache)
        tb.run(cache.register())
        tb.run(cache.wait_warm())

        def job():
            for path in sorted(FILES)[:16]:
                yield from reader.get(path)

        tb.run(job())
        # Warm oneshot cache: every read resolves at the task cache and
        # the cache's own spans say where *it* found the bytes.
        assert rec.layers("read").get("task_cache", 0) == 16
        assert rec.histogram("cache_read", "task_cache").count == 16
