"""Chrome trace export tests."""

import json

import pytest

from repro.obs import SpanRecorder, chrome_trace_events, write_chrome_trace
from repro.sim import Environment


class Comp:
    def __init__(self, env):
        self.env = env
        self.recorder = None


def recorder_with_spans():
    env = Environment()
    rec = SpanRecorder.attach(Comp(env))
    rec.record("get", "server", 0.002, actor="client", chunk="abc123")
    rec.record("get", "group_cache", 0.0001, actor="client")
    rec.record("rpc_get_file", "service", 0.0005, actor="diesel0.rpc")
    return rec


class TestChromeTrace:
    def test_metadata_events_come_first(self):
        events = list(chrome_trace_events(recorder_with_spans()))
        phases = [e["ph"] for e in events]
        n_meta = phases.count("M")
        assert n_meta == 2  # two distinct actors
        assert phases[:n_meta] == ["M"] * n_meta
        assert set(phases[n_meta:]) == {"X"}

    def test_span_event_fields(self):
        events = [e for e in chrome_trace_events(recorder_with_spans())
                  if e["ph"] == "X"]
        get = next(e for e in events if e["name"] == "get:server")
        assert get["cat"] == "get"
        assert get["dur"] == pytest.approx(2000.0)  # 2 ms in µs
        assert get["args"]["layer"] == "server"
        assert get["args"]["chunk"] == "abc123"
        assert get["pid"] == 1

    def test_actor_thread_mapping_is_stable(self):
        events = list(chrome_trace_events(recorder_with_spans()))
        names = {e["args"]["name"]: e["tid"] for e in events
                 if e["ph"] == "M"}
        for e in events:
            if e["ph"] == "X" and e["args"].get("layer") == "service":
                assert e["tid"] == names["diesel0.rpc"]

    def test_written_file_is_valid_json_array(self, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(recorder_with_spans(), path)
        assert n == 5  # 2 metadata + 3 spans
        data = json.loads(path.read_text())
        assert isinstance(data, list) and len(data) == 5
        # One event per line => usable as a JSONL-style log too.
        lines = path.read_text().splitlines()
        assert len(lines) == n + 2  # events + "[" and "]"
        json.loads(lines[1].rstrip(","))

    def test_empty_recorder_writes_empty_array(self, tmp_path):
        env = Environment()
        rec = SpanRecorder.attach(Comp(env))
        path = tmp_path / "empty.json"
        assert write_chrome_trace(rec, path) == 0
        assert json.loads(path.read_text()) == []
