"""Regression: attaching a recorder must not change what it measures.

The observability contract is *zero cost when disabled and read-only
when enabled*: every instrumentation site is a single ``if recorder is
None`` guard around pure bookkeeping, so an identical workload must
produce byte-identical stats counters and identical simulated elapsed
time whether or not a recorder is attached.
"""

from repro.bench.setups import (
    add_diesel,
    bulk_load_diesel,
    diesel_client_with_snapshot,
    make_testbed,
)
from repro.calibration import KB, MB
from repro.core.client import DieselClient
from repro.core.config import DieselConfig
from repro.obs import SpanRecorder
from repro.util import ids as _ids

FILES = {f"/zc/f{i:04d}.bin": b"\x77" * (64 * KB) for i in range(96)}


def _pin_id_counter():
    # Chunk IDs embed a process-global generator-instance counter, so
    # chunk→server placement (stable_hash of the id) differs between
    # *any* two invocations.  Pin the counter so paired runs mint
    # identical ids and per-server stats are comparable exactly.
    with _ids._instance_lock:
        _ids._instance_counter = 1 << 20


def read_workload(attach: bool):
    """A Fig 14-style shuffled read epoch plus a batched get_many."""
    _pin_id_counter()
    tb = make_testbed(n_compute=1)
    add_diesel(tb, n_servers=2)
    bulk_load_diesel(tb, "zc", FILES, chunk_size=1 * MB)
    client = diesel_client_with_snapshot(
        tb, "zc", tb.compute_nodes[0], "reader",
        config=DieselConfig(
            shuffle_group_size=2, prefetch_depth=2, read_fanout=2
        ),
    )
    if attach:
        SpanRecorder.attach(client, *tb.diesel_servers)
    client.enable_shuffle()
    plan = client.epoch_file_list(seed=13)

    def job():
        for path in plan.files:
            yield from client.get(path)
        yield from client.get_many(sorted(FILES)[::7][:10])

    t0 = tb.env.now
    tb.run(job())
    return (
        tb.env.now - t0,
        client.stats.to_dict(),
        [s.stats.to_dict() for s in tb.diesel_servers],
        [s.endpoint.stats.to_dict() for s in tb.diesel_servers],
    )


def write_workload(attach: bool):
    """A Fig 9-style pipelined ingest."""
    _pin_id_counter()
    tb = make_testbed(n_compute=1)
    add_diesel(tb, n_servers=2)
    client = DieselClient(
        tb.env, tb.compute_nodes[0], tb.diesel_servers, "zw",
        name="writer",
        config=DieselConfig(ingest_pipeline_depth=2),
        calibration=tb.cal,
    )
    if attach:
        SpanRecorder.attach(client, *tb.diesel_servers)
    items = [(f"/zw/f{i:04d}.bin", b"\x66" * (256 * KB)) for i in range(24)]
    t0 = tb.env.now
    tb.run(client.put_many(items))
    return (
        tb.env.now - t0,
        client.stats.to_dict(),
        [s.stats.to_dict() for s in tb.diesel_servers],
    )


class TestZeroOverhead:
    def test_read_path_identical_with_and_without_recorder(self):
        plain = read_workload(attach=False)
        observed = read_workload(attach=True)
        assert plain == observed  # elapsed, client, server, rpc stats

    def test_write_path_identical_with_and_without_recorder(self):
        plain = write_workload(attach=False)
        observed = write_workload(attach=True)
        assert plain == observed

    def test_detached_hot_path_records_nothing(self):
        tb = make_testbed(n_compute=1)
        add_diesel(tb)
        bulk_load_diesel(tb, "zc", FILES, chunk_size=1 * MB)
        client = diesel_client_with_snapshot(
            tb, "zc", tb.compute_nodes[0], "reader"
        )
        rec = SpanRecorder.attach(client, tb.diesel)
        SpanRecorder.detach(client, tb.diesel)
        tb.run(client.get(sorted(FILES)[0]))
        assert len(rec) == 0
        assert rec.to_dict() == {}
