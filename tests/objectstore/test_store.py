"""Tests for the object store and the tiered (SSD cache) store."""

import pytest

from repro.cluster.devices import Device
from repro.errors import ObjectNotFoundError
from repro.objectstore import ObjectStore, TieredStore
from repro.sim import Environment, run_sync


def make_store(per_op=0.0, bw=1e12):
    env = Environment()
    dev = Device(env, "ssd", per_op_s=per_op, bandwidth_bps=bw, queue_depth=8)
    return env, ObjectStore(dev)


class TestObjectStore:
    def test_put_get_roundtrip(self):
        env, store = make_store()

        def proc(env):
            yield from store.put("k1", b"hello world")
            data = yield from store.get("k1")
            return data

        assert run_sync(env, proc(env)) == b"hello world"

    def test_get_missing_raises(self):
        env, store = make_store()

        def proc(env):
            yield from store.get("ghost")

        with pytest.raises(ObjectNotFoundError):
            run_sync(env, proc(env))

    def test_get_range(self):
        env, store = make_store()
        store.load([("k", b"0123456789")])

        def proc(env):
            data = yield from store.get_range("k", 2, 5)
            return data

        assert run_sync(env, proc(env)) == b"23456"

    @pytest.mark.parametrize("off,length", [(-1, 2), (0, 11), (8, 5), (0, -1)])
    def test_get_range_bounds(self, off, length):
        env, store = make_store()
        store.load([("k", b"0123456789")])

        def proc(env):
            yield from store.get_range("k", off, length)

        with pytest.raises(ValueError):
            run_sync(env, proc(env))

    def test_delete(self):
        env, store = make_store()
        store.load([("k", b"x")])

        def proc(env):
            yield from store.delete("k")

        run_sync(env, proc(env))
        assert "k" not in store
        assert len(store) == 0

    def test_put_rejects_non_bytes(self):
        env, store = make_store()

        def proc(env):
            yield from store.put("k", "a string")

        with pytest.raises(TypeError):
            run_sync(env, proc(env))

    def test_list_keys_sorted(self):
        env, store = make_store()
        store.load([("b", b""), ("a", b""), ("c", b"")])
        assert store.list_keys() == ["a", "b", "c"]

    def test_list_keys_after(self):
        env, store = make_store()
        store.load([(f"k{i}", b"") for i in range(5)])
        assert store.list_keys(after="k2") == ["k3", "k4"]
        assert store.list_keys(after="zzz") == []

    def test_read_time_scales_with_size(self):
        env, store = make_store(per_op=0.0, bw=1e6)  # 1 MB/s
        store.load([("k", b"x" * 500_000)])

        def proc(env):
            t0 = env.now
            yield from store.get("k")
            return env.now - t0

        assert run_sync(env, proc(env)) == pytest.approx(0.5)

    def test_size_accounting(self):
        env, store = make_store()
        store.load([("a", b"12345"), ("b", b"123")])
        assert store.size_bytes() == 8
        assert store.object_size("a") == 5


def make_tiered(ssd_capacity=10_000, promote=True):
    env = Environment()
    ssd = Device(env, "ssd", per_op_s=1e-4, bandwidth_bps=1e9, queue_depth=8)
    hdd = Device(env, "hdd", per_op_s=1e-2, bandwidth_bps=1e8, queue_depth=4)
    return env, TieredStore(ssd, hdd, ssd_capacity_bytes=ssd_capacity, promote_on_miss=promote)


class TestTieredStore:
    def test_first_read_misses_then_hits(self):
        env, store = make_tiered()

        def proc(env):
            yield from store.put("k", b"x" * 1000)
            yield from store.get("k")  # miss + promote
            yield from store.get("k")  # hit
            return None

        run_sync(env, proc(env))
        assert store.stats.ssd_misses == 1
        assert store.stats.ssd_hits == 1
        assert store.stats.promotions == 1
        assert store.in_ssd("k")

    def test_hit_is_faster_than_miss(self):
        env, store = make_tiered()

        def timed_get(env, key):
            t0 = env.now
            yield from store.get(key)
            return env.now - t0

        def proc(env):
            yield from store.put("k", b"x" * 1000)
            miss_t = yield from timed_get(env, "k")
            hit_t = yield from timed_get(env, "k")
            return miss_t, hit_t

        miss_t, hit_t = run_sync(env, proc(env))
        assert hit_t < miss_t / 10

    def test_lru_eviction(self):
        env, store = make_tiered(ssd_capacity=2500)

        def proc(env):
            for key in ("a", "b", "c"):
                yield from store.put(key, b"x" * 1000)
            yield from store.get("a")
            yield from store.get("b")
            yield from store.get("c")  # evicts a (LRU)
            return None

        run_sync(env, proc(env))
        assert not store.in_ssd("a")
        assert store.in_ssd("b") and store.in_ssd("c")
        assert store.stats.evictions == 1
        assert store.ssd_used_bytes() == 2000

    def test_oversized_object_never_promoted(self):
        env, store = make_tiered(ssd_capacity=100)

        def proc(env):
            yield from store.put("big", b"x" * 1000)
            yield from store.get("big")
            return None

        run_sync(env, proc(env))
        assert not store.in_ssd("big")
        assert store.stats.promotions == 0

    def test_promote_disabled(self):
        env, store = make_tiered(promote=False)

        def proc(env):
            yield from store.put("k", b"x")
            yield from store.get("k")
            yield from store.get("k")
            return None

        run_sync(env, proc(env))
        assert store.stats.ssd_misses == 2
        assert store.stats.promotions == 0

    def test_get_range_through_tiers(self):
        env, store = make_tiered()

        def proc(env):
            yield from store.put("k", b"0123456789")
            part = yield from store.get_range("k", 3, 4)
            return part

        assert run_sync(env, proc(env)) == b"3456"

    def test_missing_raises(self):
        env, store = make_tiered()

        def proc(env):
            yield from store.get("nope")

        with pytest.raises(ObjectNotFoundError):
            run_sync(env, proc(env))

    def test_hit_ratio(self):
        env, store = make_tiered()

        def proc(env):
            yield from store.put("k", b"z")
            for _ in range(4):
                yield from store.get("k")
            return None

        run_sync(env, proc(env))
        assert store.stats.hit_ratio == pytest.approx(0.75)

    def test_invalid_capacity(self):
        env = Environment()
        d = Device(env, "d", per_op_s=0, bandwidth_bps=1)
        with pytest.raises(ValueError):
            TieredStore(d, d, ssd_capacity_bytes=0)
