#!/usr/bin/env python3
"""Markdown link checker (stdlib only, for the CI docs job).

Scans the given markdown files (or the repo's default documentation
set) for inline links and verifies that every *relative* target exists
on disk, including ``#anchor`` fragments against the target file's
headings.  External URLs (``http://``, ``https://``, ``mailto:``) are
syntax-checked only — CI must not depend on network reachability.

Beyond per-link checks, ``docs/INDEX.md`` is treated as the landing
page: every ``*.md`` file under ``docs/`` must be reachable from it
(linked directly), so a new doc cannot be added without an index
entry.

Exit status: 0 when every link resolves, 1 otherwise (broken links are
listed one per line as ``file:line: target — reason``).

Usage::

    python scripts/check_doc_links.py [FILE.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

DEFAULT_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CONTRIBUTING.md",
    "CHANGELOG.md",
    *sorted(str(p.relative_to(REPO)) for p in (REPO / "docs").glob("*.md")),
]

# Inline links/images: [text](target) — tolerates one level of nested
# brackets in the text; skips fenced code blocks below.
LINK_RE = re.compile(r"!?\[(?:[^\[\]]|\[[^\]]*\])*\]\(([^()\s]+)[^)]*\)")
EXTERNAL = ("http://", "https://", "mailto:")


def heading_anchors(path: Path) -> set[str]:
    """GitHub-style anchors for every heading in ``path``."""
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence or not line.startswith("#"):
            continue
        title = line.lstrip("#").strip()
        # Strip markdown emphasis/code, then slugify the GitHub way.
        title = re.sub(r"[`*_]", "", title)
        slug = re.sub(r"[^\w\s-]", "", title.lower())
        slug = re.sub(r"\s+", "-", slug.strip())
        anchors.add(slug)
    return anchors


def _display(md: Path) -> Path:
    try:
        return md.relative_to(REPO)
    except ValueError:
        return md


def check_file(md: Path) -> list[str]:
    errors: list[str] = []
    in_fence = False
    for lineno, line in enumerate(
        md.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(EXTERNAL):
                continue
            if target.startswith("#"):
                if target[1:] not in heading_anchors(md):
                    errors.append(
                        f"{_display(md)}:{lineno}: {target} "
                        "— no such heading"
                    )
                continue
            path_part, _, fragment = target.partition("#")
            dest = (md.parent / path_part).resolve()
            if not dest.exists():
                errors.append(
                    f"{_display(md)}:{lineno}: {target} "
                    "— file not found"
                )
                continue
            if fragment and dest.suffix == ".md":
                if fragment not in heading_anchors(dest):
                    errors.append(
                        f"{_display(md)}:{lineno}: {target} "
                        f"— no heading #{fragment} in {path_part}"
                    )
    return errors


def check_index_coverage() -> list[str]:
    """Every ``docs/*.md`` must be linked from the docs landing page."""
    index = REPO / "docs" / "INDEX.md"
    if not index.exists():
        return ["docs/INDEX.md: file not found (docs landing page)"]
    linked: set[Path] = set()
    in_fence = False
    for line in index.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            path_part = target.partition("#")[0]
            linked.add((index.parent / path_part).resolve())
    return [
        f"docs/INDEX.md: docs/{md.name} is not linked from the index"
        for md in sorted((REPO / "docs").glob("*.md"))
        if md.name != "INDEX.md" and md.resolve() not in linked
    ]


def main(argv: list[str]) -> int:
    names = argv or DEFAULT_FILES
    errors: list[str] = []
    for name in names:
        md = (REPO / name) if not Path(name).is_absolute() else Path(name)
        if not md.exists():
            errors.append(f"{name}: file not found")
            continue
        errors.extend(check_file(md))
    if not argv:  # default set: also enforce the docs landing page
        errors.extend(check_index_coverage())
    for err in errors:
        print(err)
    checked = len(names)
    if errors:
        print(f"\n{len(errors)} broken link(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"all links OK across {checked} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
