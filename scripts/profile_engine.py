#!/usr/bin/env python
"""Profile the DES kernel's hot path and print the top-N frames.

Runs a synthetic epoch (pre-scheduled arrivals + ticker processes +
RPC-style machinery via the scale experiment's workload) under cProfile
and prints the hottest frames by cumulative and internal time, so a
scheduler or event-core regression can be diagnosed in one command::

    PYTHONPATH=src python scripts/profile_engine.py
    PYTHONPATH=src python scripts/profile_engine.py --scheduler heap \\
        --requests 50000 --top 30

The default workload is the smoke-scale epoch (CI-sized); crank
``--requests`` for a longer profile.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile the simulation engine's hot loop"
    )
    parser.add_argument("--scheduler", choices=("calendar", "heap"),
                        default="calendar",
                        help="event queue to profile (default: calendar)")
    parser.add_argument("--nodes", type=int, default=50,
                        help="client nodes in the epoch (default: 50)")
    parser.add_argument("--requests", type=int, default=20_000,
                        help="requests in the epoch (default: 20000)")
    parser.add_argument("--batch", type=int, default=1,
                        help="admission batch size; 1 = per-request "
                             "(default: 1 — the expensive path is the "
                             "interesting one to profile)")
    parser.add_argument("--top", type=int, default=20,
                        help="frames to print per ranking (default: 20)")
    args = parser.parse_args(argv)

    from repro.bench.experiments import (
        _scale_handler,
        _ScaleCounters,
    )
    from repro.calibration import DEFAULT
    from repro.cluster.network import NetworkFabric
    from repro.cluster.node import Node
    from repro.rpc.endpoint import RpcEndpoint
    from repro.sim import Environment

    env = Environment(scheduler=args.scheduler)
    fabric = NetworkFabric(env, DEFAULT.network)
    server = fabric.add_node(Node(env, "srv0", nic_channels=8))
    clients = [fabric.add_node(Node(env, f"cl{i}"))
               for i in range(args.nodes)]
    ctr = _ScaleCounters()
    ep = RpcEndpoint(env, fabric, server, "exec0",
                     handler=_scale_handler(ctr),
                     service_s=2e-6, workers=64)
    epoch_s = 1.0
    if args.batch <= 1:
        gap = epoch_s / args.requests

        def arrive(evt):
            i = evt.value
            env.process(ep.call(clients[i % args.nodes], "read_one", i))

        for i in range(args.requests):
            env.timeout(i * gap, value=i).callbacks.append(arrive)
    else:
        n_batches = -(-args.requests // args.batch)
        gap = epoch_s / n_batches

        def arrive(evt):
            b = evt.value
            lo, hi = b * args.batch, min((b + 1) * args.batch, args.requests)
            env.process(ep.call_batch(
                clients[lo % args.nodes], [("read_range", lo, hi)]
            ))

        for b in range(n_batches):
            env.timeout(b * gap, value=b).callbacks.append(arrive)

    profiler = cProfile.Profile()
    profiler.enable()
    env.run()
    profiler.disable()

    es = env.engine_stats()
    print(f"scheduler={es.scheduler}  sim_events={es.sim_events:,}  "
          f"wall={es.run_wall_s:.3f}s  "
          f"events/sec={es.events_per_sec:,.0f}  "
          f"peak_occupancy={es.peak_occupancy:,}  "
          f"reads={ctr.reads:,} hits={ctr.hits:,}")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    for ranking in ("cumulative", "tottime"):
        print(f"\n=== top {args.top} frames by {ranking} ===")
        stats.sort_stats(ranking).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
