#!/usr/bin/env python3
"""Failure containment and recovery in the task-grained cache (§4.2) and
metadata recovery from self-contained chunks (§4.1.2).

Three scenes:
  1. two DLT tasks share a cluster; a node running task A's cache dies —
     task B never notices (containment);
  2. task A recovers by re-partitioning and re-streaming whole chunks;
  3. the entire in-memory KV metadata store is wiped (data-center power
     failure) and rebuilt by scanning chunk headers in written order.

Run:  python examples/fault_tolerance.py
"""

from repro.bench.setups import (
    add_diesel,
    bulk_load_diesel,
    diesel_client_with_snapshot,
    make_testbed,
)
from repro.core import recovery
from repro.core.dist_cache import TaskCache


def main() -> None:
    tb = make_testbed(n_compute=6)
    add_diesel(tb)

    files_a = {f"/a/f{i:03d}": bytes([i % 251]) * 4096 for i in range(120)}
    files_b = {f"/b/f{i:03d}": bytes([(i * 7) % 251]) * 4096 for i in range(120)}
    bulk_load_diesel(tb, "task-a", files_a, chunk_size=64 * 1024)
    bulk_load_diesel(tb, "task-b", files_b, chunk_size=64 * 1024)

    # Task A on nodes 0-2, task B on nodes 3-5; 2 clients per node.
    def build_task(dataset, nodes, prefix):
        clients = [
            diesel_client_with_snapshot(tb, dataset, tb.compute_nodes[n],
                                        f"{prefix}{r}", rank=r)
            for r, n in enumerate(n for n in nodes for _ in range(2))
        ]
        cache = TaskCache(
            tb.env, tb.fabric, tb.diesel, dataset,
            [c.as_cache_client() for c in clients], policy="oneshot",
        )
        tb.run(cache.register())
        tb.run(cache.wait_warm())
        return clients, cache

    clients_a, cache_a = build_task("task-a", (0, 1, 2), "a")
    clients_b, cache_b = build_task("task-b", (3, 4, 5), "b")
    print(f"task A: {len(cache_a.masters)} masters, "
          f"{cache_a.connection_count()} connections "
          f"(p*(n-1) = {cache_a.expected_connection_count()})")

    # --- Scene 1: kill one of task A's nodes ---------------------------
    victim = tb.compute_nodes[0]
    victim.kill()
    print(f"\nkilled {victim.name} (runs one of task A's cache masters)")

    def read_all(cache, clients, files, index):
        ok = 0
        live = next(c for c in clients if c.node.alive)
        for path, expected in files.items():
            data = yield from cache.read_file(
                live.as_cache_client(), index.lookup(path)
            )
            ok += data == expected
        return ok

    ok_b = tb.run(read_all(cache_b, clients_b, files_b, clients_b[0].index))
    print(f"task B after the failure: {ok_b}/{len(files_b)} reads OK, "
          f"hit ratio {cache_b.hit_ratio():.0%}  (containment)")

    ok_a = tb.run(read_all(cache_a, clients_a, files_a, clients_a[0].index))
    print(f"task A still serves {ok_a}/{len(files_a)} reads "
          f"(dead partition falls back to the server)")

    # --- Scene 2: chunk-granular cache recovery ------------------------
    t0 = tb.env.now
    reloaded = tb.run(cache_a.recover())
    print(f"\ntask A recovery: re-streamed {reloaded} chunks onto "
          f"{len(cache_a.masters)} surviving masters in "
          f"{(tb.env.now - t0) * 1e3:.1f} simulated ms")
    ok_a = tb.run(read_all(cache_a, clients_a, files_a, clients_a[0].index))
    print(f"task A after recovery: {ok_a}/{len(files_a)} reads OK")

    # --- Scene 3: total metadata loss + rebuild from chunks ------------
    print("\nsimulating data-center power failure: wiping the KV cluster")
    tb.kv.lose_all()
    assert tb.kv.total_keys() == 0
    rebuilt = tb.run(recovery.rebuild_all(tb.diesel))
    print(f"rebuilt metadata by scanning chunk headers: {rebuilt}")
    problems = recovery.verify_rebuild(
        tb.diesel, "task-a", {p: len(d) for p, d in files_a.items()}
    )
    print(f"verification: {'clean' if not problems else problems}")


if __name__ == "__main__":
    main()
