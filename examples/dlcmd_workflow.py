#!/usr/bin/env python3
"""DLCMD workflow: manage datasets from the command line (paper §5).

Mirrors the paper's operator workflow — "users use DLCMD (similar to
s3cmd) to store files into DIESEL; after that, the metadata snapshot can
be downloaded from a DIESEL server to local disk" — using the real CLI
entry points.  Everything persists in a workspace file whose only
contents are self-contained chunks; metadata is rebuilt from chunk
headers on every invocation (§4.1.2 exercised on every command).

Run:  python examples/dlcmd_workflow.py
"""

import tempfile
from pathlib import Path

from repro.tools import dlcmd


def sh(ws, *argv, dataset="imagenet"):
    """Run one dlcmd invocation, echoing it shell-style."""
    pretty = " ".join(argv)
    print(f"$ dlcmd -d {dataset} {pretty}")
    rc = dlcmd.main(["-w", str(ws), "-d", dataset, *argv])
    assert rc == 0, f"dlcmd exited {rc}"
    print()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        ws = tmp / "demo.workspace"

        # Stage a local dataset directory to upload.
        src = tmp / "raw"
        for cls in ("cat", "dog"):
            (src / cls).mkdir(parents=True)
            for i in range(5):
                (src / cls / f"{i:03d}.jpg").write_bytes(
                    f"{cls}-{i}".encode() * 100
                )

        sh(ws, "put", str(src), "/train")
        sh(ws, "ls", "/train")
        sh(ws, "ls", "-l", "/train/cat")
        sh(ws, "stat", "/train/dog/002.jpg")

        # Fetch one file back and verify it.
        out = tmp / "fetched.jpg"
        sh(ws, "get", "/train/cat/001.jpg", str(out))
        assert out.read_bytes() == b"cat-1" * 100
        print("fetched bytes verified OK\n")

        # Export the metadata snapshot a training job would load.
        sh(ws, "save-meta", str(tmp / "imagenet.snapshot"))

        # Housekeeping: delete + purge, then confirm the hole is gone.
        sh(ws, "rm", "/train/dog/000.jpg")
        sh(ws, "purge")
        sh(ws, "info")

        print(f"workspace file: {ws.stat().st_size} bytes "
              f"(chunks only — metadata rebuilds from their headers)")


if __name__ == "__main__":
    main()
