#!/usr/bin/env python3
"""Chunk-wise shuffle in a memory-constrained setting (§4.3, Fig 8/13).

Demonstrates the paper's third contribution end to end:

  1. the epoch order is random (different every epoch) yet groupable
     into whole-chunk reads;
  2. the client's working set stays bounded by group_size × chunk_size
     — ~1.3% of this dataset — while reads stay fast;
  3. a real SGD classifier trained in chunk-wise order matches
     full-shuffle accuracy.

Run:  python examples/memory_constrained_shuffle.py
"""

import random

import numpy as np

from repro.bench.setups import (
    add_diesel,
    bulk_load_diesel,
    diesel_client_with_snapshot,
    make_testbed,
)
from repro.core.shuffle import chunk_adjacency
from repro.dlt.sgd import SoftmaxClassifier, top_k_accuracy
from repro.dlt.synthetic import SyntheticDataset, decode_sample


def main() -> None:
    # A synthetic classification dataset stored as one file per sample.
    data = SyntheticDataset.make(n_samples=2000, n_features=16,
                                 n_classes=10, class_sep=2.5, seed=3)
    train, test = data.split(test_fraction=0.25, seed=3)
    files = train.as_files(prefix="/synth")

    tb = make_testbed(n_compute=1)
    add_diesel(tb)
    bulk_load_diesel(tb, "synth", files, chunk_size=8 * 1024)
    client = diesel_client_with_snapshot(tb, "synth", tb.compute_nodes[0],
                                         "trainer")
    n_chunks = len(client.index.chunk_ids())
    dataset_bytes = sum(len(v) for v in files.values())
    print(f"dataset: {len(files)} sample-files in {n_chunks} chunks "
          f"({dataset_bytes / 1024:.0f} KiB)")

    group_size = 4
    client.enable_shuffle(group_size=group_size)

    # --- 1+2: read an epoch in chunk-wise order, tracking the working set
    plan = client.epoch_file_list(seed=0)
    grouping = client.index.files_by_chunk()
    print(f"epoch plan: {len(plan.groups)} groups of <= {group_size} chunks; "
          f"same-chunk adjacency {chunk_adjacency(plan.files, grouping):.2f} "
          f"(sequential would be ~0.97)")

    peak_ws = 0

    def read_epoch():
        nonlocal peak_ws
        for path in plan.files:
            yield from client.get(path)
            peak_ws = max(peak_ws, client.working_set_bytes())

    tb.run(read_epoch())
    print(f"reads: {client.stats.local_hits} from the group cache, "
          f"{client.stats.server_reads} chunk fetches from storage")
    print(f"peak working set: {peak_ws / 1024:.0f} KiB "
          f"({peak_ws / dataset_bytes:.1%} of the dataset) — the paper's "
          f"ImageNet run needed ~2 GB for a 150 GB dataset")

    # --- 3: accuracy parity with full shuffle ---------------------------
    paths_sorted = sorted(files)
    index_of = {p: i for i, p in enumerate(paths_sorted)}
    X = np.stack([decode_sample(files[p])[0] for p in paths_sorted])
    y = np.asarray([decode_sample(files[p])[1] for p in paths_sorted])

    def train_model(order_fn, epochs=25):
        clf = SoftmaxClassifier(X.shape[1], 10, lr=0.1, seed=1)
        for epoch in range(epochs):
            order = order_fn(epoch)
            clf.train_epoch(X, y, order, batch_size=32)
        return top_k_accuracy(clf.scores(test.X), test.y, 1)

    def chunkwise_order(epoch):
        plan = client.epoch_file_list(seed=100 + epoch)
        return [index_of[p] for p in plan.files]

    def full_order(epoch):
        rng = random.Random(200 + epoch)
        order = list(range(len(y)))
        rng.shuffle(order)
        return order

    acc_cw = train_model(chunkwise_order)
    acc_full = train_model(full_order)
    print(f"\ntop-1 accuracy after 25 epochs: chunk-wise {acc_cw:.3f} "
          f"vs full shuffle {acc_full:.3f} (delta {acc_cw - acc_full:+.3f})")


if __name__ == "__main__":
    main()
