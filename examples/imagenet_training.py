#!/usr/bin/env python3
"""Train four models over an ImageNet-like dataset: Lustre vs DIESEL-FUSE.

Reproduces the paper's §6.6 workflow end to end on a scaled dataset:
ingest files into DIESEL, mount it FUSE-style, run a pipelined training
loop (I/O workers + compute) for each model on both storage backends,
and report per-iteration data access times and projected 90-epoch totals.

Run:  python examples/imagenet_training.py
"""

from repro.bench.experiments import fig14_data_access_time, fig15_training_time
from repro.bench.reporting import format_result


def main() -> None:
    print("Running the Fig 14 experiment (per-iteration data access time)")
    print("with AlexNet and ResNet-50 over 2 epochs each ...\n")
    access = fig14_data_access_time(
        models=("alexnet", "resnet50"), epochs=2, n_files=800
    )
    print(format_result(access))

    print("\nProjecting full 90-epoch ImageNet-1K jobs (Fig 15) ...\n")
    totals = fig15_training_time(
        models=("alexnet", "resnet50"), epochs=2, n_files=800
    )
    print(format_result(totals))

    row = totals.one(model="resnet50")
    saved_h = row["lustre_total_h"] - row["diesel_total_h"]
    print(
        f"\nResNet-50/ImageNet-1K, 90 epochs: DIESEL-FUSE saves "
        f"~{saved_h:.1f} hours ({row['total_reduction']:.0%} of total time) "
        f"without changing a line of training code."
    )


if __name__ == "__main__":
    main()
