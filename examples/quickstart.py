#!/usr/bin/env python3
"""Quickstart: write a dataset into DIESEL, snapshot it, read it back.

Walks the full libDIESEL surface (Table 3 of the paper) against an
in-simulation deployment: a DIESEL server over a sharded KV store and an
NVMe-backed object store.

Run:  python examples/quickstart.py
"""

from repro.bench.setups import add_diesel, make_testbed
from repro.core.client import DieselClient, SyncDieselClient
from repro.core.config import DieselConfig


def main() -> None:
    # 1. Build a small simulated cluster and deploy DIESEL on it.
    tb = make_testbed(n_compute=2, n_storage=2)
    add_diesel(tb, n_servers=1)

    # 2. DL_connect: a client context bound to the 'demo' dataset.
    client = SyncDieselClient(
        DieselClient(
            tb.env,
            tb.compute_nodes[0],
            tb.diesel_servers,
            dataset="demo",
            name="quickstart",
            config=DieselConfig(chunk_size=64 * 1024),  # small for the demo
        )
    )

    # 3. DL_put + DL_flush: small files are packed into chunks client-side.
    print("writing 100 files ...")
    for i in range(100):
        client.put(f"/train/class{i % 4}/img{i:03d}.jpg", bytes([i]) * 2048)
    client.flush()
    print(f"  chunks shipped: {client.client.stats.chunks_sent}")

    # 4. DL_save_meta / DL_load_meta: download the metadata snapshot; all
    #    further metadata ops are served locally in O(1).
    snapshot_blob = client.save_meta()
    index = client.load_meta(snapshot_blob)
    print(f"snapshot: {index.file_count} files, "
          f"{len(index.chunk_ids())} chunks, {len(snapshot_blob)} bytes")

    # 5. DL_ls / DL_stat: local, no server round trips.
    print("ls / ->", client.ls("/"))
    print("ls /train ->", client.ls("/train"))
    info = client.stat("/train/class0/img000.jpg")
    print(f"stat img000: size={info['size']}, chunk={info['chunk_id']}")

    # 6. DL_get: read data back and verify.
    data = client.get("/train/class1/img001.jpg")
    assert data == bytes([1]) * 2048
    print(f"read back img001: {len(data)} bytes OK")

    # 7. DL_shuffle: chunk-wise shuffled epoch orders (§4.3).
    client.enable_shuffle(group_size=2)
    epoch1 = client.epoch_file_list().files
    epoch2 = client.epoch_file_list().files
    assert sorted(epoch1) == sorted(epoch2)
    assert epoch1 != epoch2
    print(f"epoch orders differ: first five of epoch 1 = {epoch1[:5]}")

    # 8. Housekeeping: DL_delete + DL_purge rewrite holey chunks.
    client.delete("/train/class0/img000.jpg")
    rewritten = client.purge()
    print(f"deleted one file; purge rewrote {rewritten} chunk(s)")

    # 9. DL_close.
    client.close()
    print(f"done (simulated time spent: {tb.env.now * 1e3:.2f} ms)")


if __name__ == "__main__":
    main()
