"""Self-healing under injected failures: detect, recover, rebuild."""

import pytest

from repro.bench.experiments import fig_faults


@pytest.mark.benchmark(group="faults")
def test_fig_faults(experiment):
    result = experiment(fig_faults)
    cache_row = result.one(event="cache_master_killed")
    kv_row = result.one(event="kv_shards_killed")
    # The detector fires within timeout + one heartbeat of the kill.
    assert 0 < cache_row["detection_s"] <= 0.04 + 0.01 + 1e-9
    # Healing is automatic and re-streams every orphaned chunk.
    assert cache_row["chunks_reloaded"] > 0
    assert cache_row["recovery_s"] > 0
    # Degraded reads were served by the server, never failed.
    assert cache_row["degraded_reads"] > 0
    # Steady-state throughput returns to within 10% of pre-kill.
    assert cache_row["post_over_pre"] >= 0.9
    # The cold-restarted shards are healed by the timestamp-scoped
    # rebuild, leaving the metadata byte-identical to expectations.
    assert kv_row["verify_problems"] == 0
    assert kv_row["chunks_scanned"] > 0
    # Headline criterion: zero failed client reads across both faults.
    assert kv_row["failed_reads"] == 0
