"""Pipelined chunk prefetch: stall vs depth, zero duplicate transfers."""

import pytest

from repro.bench.experiments import prefetch_pipeline

DEPTHS = (0, 1, 2, 4)


@pytest.mark.benchmark(group="prefetch")
def test_prefetch_pipeline(experiment):
    result = experiment(prefetch_pipeline, depths=DEPTHS)
    base = result.one(prefetch_depth=0)
    for depth in DEPTHS:
        row = result.one(prefetch_depth=depth)
        # The single-flight map keeps the pipeline and demand fetches
        # from ever moving the same chunk twice in the cold epoch.
        assert row["duplicate_reads"] == 0, depth
    # Pipelining measurably cuts the consumer stall on the same epoch
    # plan, and deeper pipelines never make it worse.
    for depth in (2, 4):
        row = result.one(prefetch_depth=depth)
        assert row["mean_wait_s"] < 0.9 * base["mean_wait_s"], depth
    waits = [result.one(prefetch_depth=d)["mean_wait_s"] for d in DEPTHS]
    assert waits == sorted(waits, reverse=True)
    # At full-group depth the pipeline covers every chunk access.
    deepest = result.one(prefetch_depth=4)
    assert deepest["prefetch_misses"] == 0
    assert deepest["prefetch_hits"] > 0
