"""Fig 6: global cache read speed collapses under partial node failure."""

import numpy as np
import pytest

from repro.bench.experiments import fig6_cache_degradation


@pytest.mark.benchmark(group="fig6")
def test_fig6_cache_degradation(experiment):
    result = experiment(fig6_cache_degradation)
    speeds = result.column("read_speed_files_per_s")
    hits = result.column("hit_ratio")
    healthy = float(np.mean(speeds[5:25]))
    one_dead = float(np.mean(speeds[45:65]))
    two_dead = float(np.mean(speeds[85:]))
    # Hit ratio steps down at each kill...
    assert min(hits[:30]) > 0.999
    assert 0.90 < float(np.mean(hits[40:65])) < 0.99
    assert float(np.mean(hits[85:])) < float(np.mean(hits[40:65]))
    # ...and a few percent of misses destroys a disproportionate share of
    # the read speed (paper: ~90% loss at ~5% misses).
    assert one_dead < 0.6 * healthy
    assert two_dead < 0.4 * healthy
    assert two_dead < one_dead
