"""Fig 13: chunk-wise shuffle does not hurt model accuracy/convergence."""

import numpy as np
import pytest

from repro.bench.experiments import fig13_shuffle_accuracy


@pytest.mark.benchmark(group="fig13")
def test_fig13_shuffle_accuracy(experiment):
    result = experiment(fig13_shuffle_accuracy)
    strategies = sorted({r["strategy"] for r in result.rows})
    assert "shuffle dataset" in strategies

    def final_top1(strategy):
        rows = result.where(strategy=strategy)
        return float(np.mean([r["top1"] for r in rows[-5:]]))

    def final_top5(strategy):
        rows = result.where(strategy=strategy)
        return float(np.mean([r["top5"] for r in rows[-5:]]))

    base1, base5 = final_top1("shuffle dataset"), final_top5("shuffle dataset")
    # The model genuinely learned (10 classes: chance is 0.1 / 0.5).
    assert base1 > 0.45
    assert base5 > 0.85
    for s in strategies:
        if s == "shuffle dataset":
            continue
        # Accuracy within 1.5 points of full shuffle (paper: curves overlap).
        assert abs(final_top1(s) - base1) < 0.015, s
        assert abs(final_top5(s) - base5) < 0.015, s
        # Convergence speed: mid-training accuracy also matches.
        mid_base = result.where(strategy="shuffle dataset")[15]["top1"]
        mid_s = result.where(strategy=s)[15]["top1"]
        assert abs(mid_s - mid_base) < 0.05, s
