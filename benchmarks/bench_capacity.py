"""Tiered cache store: datasets 0.5×–10× of aggregate RAM."""

import pytest

from repro.bench.experiments import capacity


@pytest.mark.benchmark(group="capacity")
def test_capacity_sweep(experiment):
    result = experiment(capacity)
    runs = result.where(event="run")
    assert len(runs) == 10  # 5 ratios × {compression off, on}
    for row in runs:
        # Nothing is ever lost to the overflow: every chunk stays
        # resident on some tier, every read returns correct bytes, and
        # the RAM gauge never exceeds the per-node budget.
        assert row["lost_chunks"] == 0
        assert row["failed_reads"] == 0
        assert row["ram_bound_ok"]
        assert row["max_ram_bytes"] <= row["aggregate_ram_bytes"]
        # Warmup absorbed the whole dataset: the epoch never falls
        # through to the backend.
        assert row["epoch_backend_fetches"] == 0
    # The 10× runs completed with the working set overwhelmingly on
    # disk (RAM covers a sliver).
    ten = result.one(event="run", ratio=10.0, compression=False)
    assert ten["tier_disk_hits"] > ten["tier_ram_hits"]
    # Throughput floor at 2× RAM: the disk tier must sustain at least
    # 100 MB/s (RAM-only at 0.5× runs ~1.1 GB/s; pure-disk chunk reads
    # bottom out near 90 MB/s at 10×).
    two = result.one(event="run", ratio=2.0, compression=False)
    assert two["read_throughput_bps"] >= 100e6
    # Compression pays off once the disk tier serves most reads: at
    # ≥ 4× dataset:RAM the compressed runs are at least as fast.
    for ratio in (4.0, 10.0):
        gain = result.one(event="compression_gain", ratio=ratio)
        assert gain["throughput_gain"] >= 1.0
