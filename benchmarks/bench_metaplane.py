"""Delta metadata plane: journal deltas, pagination, registry scale."""

import pytest

from repro.bench.experiments import fig_metaplane


@pytest.mark.benchmark(group="metaplane")
def test_metaplane(experiment):
    result = experiment(fig_metaplane)
    # Delta reload: a 1% append moves ≤5% of the full snapshot's bytes,
    # and the simulated refresh is cheaper than a full save/load round.
    delta = result.one(event="delta_reload")
    assert delta["delta_bytes_ratio"] <= 0.05
    assert delta["delta_refresh_s"] < delta["full_load_s"]
    assert delta["delta_ops"] > 0
    # Cursor-paginated pscan at 1k pages is bit-identical to the
    # unpaginated scan of the same keyspace.
    page = result.one(event="pagination")
    assert page["bit_identical"] is True
    assert page["n_pages"] > 1
    # Registry at 1M datasets: per-client stat/load_meta costs stay
    # flat (≤1.2x of the 1k-dataset baseline) and one listing page
    # still returns promptly.
    grown = result.one(event="registry_scale", datasets=1_000_000)
    assert grown["stat_ratio"] <= 1.2
    assert grown["load_meta_ratio"] <= 1.2
    assert grown["page_names"] > 0
    # Online ingest: files appended mid-epoch are picked up via the
    # delta path and tail-appended — nothing lost, nothing doubled,
    # committed read order bit-identical.
    online = result.one(event="online_ingest")
    assert online["delta_reloads"] == 1
    assert online["lost_reads"] == 0
    assert online["duplicate_reads"] == 0
    assert online["committed_order_preserved"] is True
