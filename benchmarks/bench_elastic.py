"""Elastic membership, hedged reads and chaos: the hostile-world floors."""

import pytest

from repro.bench.experiments import fig_elastic


@pytest.mark.benchmark(group="elastic")
def test_elastic(experiment):
    result = experiment(fig_elastic)
    # Scale-up mid-epoch: the stolen partitions warm-admit from peers —
    # zero backend fetches means no cold restart — and the next epoch
    # reaches steady-state node-local reads over the grown membership.
    scale = result.one(event="scale_up")
    assert scale["backend_fetches_during_scale"] == 0
    assert scale["warmed_chunks"] == scale["moved_chunks"]
    assert scale["peer_warmed"] > 0
    post = result.one(event="epoch", epoch=1)
    assert post["workers"] == 4
    assert post["local_frac"] >= 0.75
    assert post["epoch_backend_fetches"] == 0
    # Churn drains: every leave/rejoin cycle lands its chunks on a
    # successor before ownership flips — nothing lost, no client read
    # ever fails.
    churn = result.one(event="churn")
    assert churn["lost_chunks"] == 0
    assert churn["failed_reads"] == 0
    assert churn["drained_chunks"] > 0
    assert churn["scale_downs"] == churn["cycles"]
    # Straggler hedging: with one hostile NIC, hedged reads cut p99 by
    # at least 2x over hedging-off at under 5% duplicate transfers.
    gain = result.one(event="straggler_gain")
    assert gain["p99_ratio"] >= 2.0
    assert gain["hedges_fired"] > 0
    assert gain["backup_wins"] > 0
    assert gain["duplicate_rate"] < 0.05
    # Flash crowd: a simultaneous stampede of tasks onto one dataset
    # stays within 1.2x of a single task's backend fetches.
    crowd = result.one(event="flash_crowd")
    assert crowd["fetch_ratio_vs_single"] <= 1.2
