"""Fig 14: per-iteration data access time, Lustre vs DIESEL-FUSE."""

import pytest

from repro.bench.experiments import fig14_data_access_time

MODELS = ("alexnet", "vgg11", "resnet18", "resnet50")


@pytest.mark.benchmark(group="fig14")
def test_fig14_data_access_time(experiment):
    result = experiment(fig14_data_access_time)
    for model in MODELS:
        lustre = result.one(model=model, system="lustre")
        diesel = result.one(model=model, system="diesel-fuse")
        # DIESEL-FUSE cuts batch fetch time to well under Lustre's
        # (paper: about half on every model).
        assert diesel["mean_fetch_s"] < 0.6 * lustre["mean_fetch_s"], model
        # Both systems show the epoch-start spike (shuffle + cold pipe).
        assert lustre["epoch_start_spike_s"] > 3 * lustre["mean_stall_s"]
        assert diesel["epoch_start_spike_s"] > diesel["mean_stall_s"]
        # The stall (unhidden part) shrinks even more than the fetch time.
        assert diesel["mean_stall_s"] < lustre["mean_stall_s"]
