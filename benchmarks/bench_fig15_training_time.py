"""Fig 15: normalized total training time over 90 ImageNet epochs."""

import pytest

from repro.bench.experiments import fig15_training_time

MODELS = ("alexnet", "vgg11", "resnet18", "resnet50")


@pytest.mark.benchmark(group="fig15")
def test_fig15_training_time(experiment):
    result = experiment(fig15_training_time)
    for model in MODELS:
        row = result.one(model=model)
        # DIESEL always reduces total time; reductions land in the
        # paper's regime (15-27%, more for lighter models).
        assert 0.05 < row["total_reduction"] < 0.50, model
        assert row["io_reduction"] > 0.5, model  # paper: 51-58%
        assert row["normalized_total"] < 1.0
    # Lighter models (more IO-bound) save a larger share than ResNet-50.
    assert (
        result.one(model="alexnet")["total_reduction"]
        > result.one(model="resnet50")["total_reduction"]
    )
    # Projected job lengths are in the paper's tens-of-hours regime.
    for model in MODELS:
        row = result.one(model=model)
        assert 10 < row["lustre_total_h"] < 80
        assert row["diesel_total_h"] < row["lustre_total_h"]
