"""Fig 12: read bandwidth with chunk-wise shuffle (memory-constrained)."""

import pytest

from repro.bench.experiments import fig12_shuffle_bandwidth
from repro.calibration import KB


@pytest.mark.benchmark(group="fig12")
def test_fig12_shuffle_bandwidth(experiment):
    result = experiment(fig12_shuffle_bandwidth)
    r4k = result.one(file_size=4 * KB)
    r128k = result.one(file_size=128 * KB)
    # 4KB: chunk-wise reads transform Lustre's ~60MB/s into GB/s
    # (paper: 71.7x API / 57.8x FUSE; scaled run: >15x).
    assert r4k["lustre_mbps"] == pytest.approx(60.2, rel=0.25)
    assert r4k["api_speedup"] > 15
    assert r4k["fuse_speedup"] > 12
    # 128KB: both move real bytes; DIESEL is storage-bandwidth-bound and
    # several-fold faster (paper: 5.0x / 4.4x).
    assert 3 < r128k["api_speedup"] < 12
    assert 3 < r128k["fuse_speedup"] < 12
    assert r128k["diesel_api_mbps"] == pytest.approx(10_095, rel=0.5)
    # FUSE never beats the native API.
    assert r4k["diesel_fuse_mbps"] <= r4k["diesel_api_mbps"]
    assert r128k["diesel_fuse_mbps"] <= r128k["diesel_api_mbps"]
