"""Engine scale benchmark: the DES kernel under a large epoch.

Smoke-mode version of the ``scale`` experiment (50 nodes, 10⁴ requests
— CI-sized; the full artifact is the 1000-node, 10⁶-request epoch in
``BENCH_scale.json``).  Guards three properties:

* **semantic equivalence** — the heap+per-request and calendar+batched
  variants produce identical read/hit/stat counters;
* **vectorized-admission speedup** — epoch-normalized sim-events/sec of
  the batched variant is ≥ 3× the heapq baseline (the full-scale run
  is far higher; 3× is the regression floor);
* **kernel throughput floor** — the baseline kernel itself sustains a
  minimum raw event rate, so a scheduler or event-core regression
  fails the build rather than just slowing it.
"""

import pytest

from repro.bench.experiments import scale_engine

#: Conservative raw-kernel floor (events/sec) for CI machines; local
#: runs sustain several times this.
KERNEL_FLOOR = 50_000
#: Epoch-normalized speedup floor (the acceptance bar; full scale is
#: orders of magnitude above it).
SPEEDUP_FLOOR = 3.0


@pytest.mark.benchmark(group="scale")
def test_engine_scale_smoke(experiment):
    result = experiment(scale_engine, n_nodes=50, n_requests=10_000, batch=64)

    base = result.one(variant="heap+per-request")
    fast = result.one(variant="calendar+batched")
    speedup = result.one(variant="speedup")

    # Semantic equivalence: same epoch, same counters, both variants.
    for key in ("reads", "hits", "stat_calls"):
        assert base[key] == fast[key], key
    assert base["reads"] == 10_000

    # Occupancy: the per-request variant pre-schedules the full epoch;
    # batching collapses it by ~the batch factor.
    assert base["peak_occupancy"] == 10_000
    assert fast["peak_occupancy"] < base["peak_occupancy"] / 10

    # Throughput floors.
    assert base["kernel_events_per_sec"] > KERNEL_FLOOR
    assert speedup["events_per_sec"] >= SPEEDUP_FLOOR


@pytest.mark.benchmark(group="scale")
def test_engine_scale_scheduler_only(benchmark):
    """Scheduler A/B at fixed admission: calendar must not lose to heap
    by more than noise on the identical per-request workload."""
    from repro.sim import Environment

    def run():
        rates = {}
        for scheduler in ("heap", "calendar"):
            env = Environment(scheduler=scheduler)
            # Bimodal pending set: a large far-future backlog plus a
            # near-term tick stream — the fabric-like regime.
            for i in range(50_000):
                env.timeout(100.0 + i * 1e-5)

            def ticker(env, n):
                for _ in range(n):
                    yield env.timeout(1e-4)

            for _ in range(100):
                env.process(ticker(env, 500))
            env.run(until=99.0)
            es = env.engine_stats()
            rates[scheduler] = es.events_per_sec
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nheap: {rates['heap']:,.0f} ev/s  "
          f"calendar: {rates['calendar']:,.0f} ev/s "
          f"({rates['calendar'] / rates['heap']:.2f}x)")
    # The calendar queue must at least hold its own against the C heapq
    # at high occupancy (it typically wins; 0.8 bounds the regression).
    assert rates["calendar"] > 0.8 * rates["heap"]
