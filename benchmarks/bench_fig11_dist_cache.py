"""Fig 11a/11b: task-grained distributed cache read scaling + recovery."""

import pytest

from repro.bench.experiments import fig11a_read_scaling, fig11b_cache_recovery


@pytest.mark.benchmark(group="fig11")
def test_fig11a_read_scaling(experiment):
    result = experiment(fig11a_read_scaling)
    last = result.rows[-1]
    # Ordering at 10 nodes: API > FUSE > Memcached > Lustre (paper).
    assert last["diesel_api_qps"] > last["diesel_fuse_qps"]
    assert last["diesel_fuse_qps"] > last["memcached_qps"]
    assert last["memcached_qps"] > last["lustre_qps"]
    # Magnitudes: API ~1.2M (paper), FUSE >50% of API, Lustre ~tens of k.
    assert last["diesel_api_qps"] == pytest.approx(1.2e6, rel=0.35)
    assert last["fuse_to_api"] > 0.5
    assert last["lustre_qps"] < 100_000
    # DIESEL scales with client count; Lustre does not.
    first = result.rows[0]
    assert last["diesel_api_qps"] > 5 * first["diesel_api_qps"]
    assert last["lustre_qps"] < 1.5 * first["lustre_qps"]


@pytest.mark.benchmark(group="fig11")
def test_fig11b_cache_recovery(experiment):
    result = experiment(fig11b_cache_recovery)
    diesel = [r for r in result.rows if r["system"] == "diesel"]
    memcached = [r for r in result.rows if r["system"] == "memcached"]
    # DIESEL finishes loading 100% long before Memcached refills 20%
    # (chunk-granular streaming vs per-file RPC + Lustre reads).
    assert diesel[-1]["at_s"] < memcached[-1]["at_s"] / 10
    # DIESEL batch read times stabilize low once warm.
    assert diesel[-1]["batch_read_s"] < diesel[0]["batch_read_s"]
    # Memcached batches improve as the cache refills.
    assert memcached[-1]["batch_read_s"] < memcached[0]["batch_read_s"]
