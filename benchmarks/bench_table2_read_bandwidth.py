"""Table 2: read bandwidth and IOPS versus file size (SSD cluster)."""

import pytest

from repro.bench.experiments import PAPER, table2_read_bandwidth
from repro.calibration import KB, MB


@pytest.mark.benchmark(group="table2")
def test_table2_read_bandwidth(experiment):
    result = experiment(table2_read_bandwidth)
    # Every row within 20% of the paper's measurement.
    for row in result.rows:
        assert row["files_per_s"] == pytest.approx(
            row["paper_files_per_s"], rel=0.20
        ), f"size {row['file_size']}"
    # Headline shape: 4MB reads deliver ~25x the 4K-IOPS of 4KB reads.
    iops_4k = result.one(file_size=4 * KB)["iops_4k"]
    iops_4m = result.one(file_size=4 * MB)["iops_4k"]
    assert 20 <= iops_4m / iops_4k <= 30
    # Bandwidth grows monotonically with request size.
    mbps = result.column("mbps")
    assert mbps == sorted(mbps)
