"""Cross-task shared chunk tier: N trainers × 1 dataset (model selection)."""

import pytest

from repro.bench.experiments import model_selection


@pytest.mark.benchmark(group="sharing")
def test_model_selection(experiment):
    result = experiment(model_selection)
    # Warm register: the second task warms from the first task's
    # resident chunks — a small fraction of the cold warmup, with zero
    # extra backend I/O (every admission is a warm refcount bump).
    warm = result.one(event="warm_register")
    assert warm["warm_ratio"] < 0.25
    assert warm["shared_warm_admissions"] == warm["chunks"]
    # Sweep scaling: backend fetches stay ~constant as the task count
    # grows — the headline criterion is 16 tasks at ≤ 1.2× the
    # single-task fetch count.
    single = result.one(event="sweep", tasks=1)
    wide = result.one(event="sweep", tasks=16)
    assert wide["backend_chunk_fetches"] <= 1.2 * single["backend_chunk_fetches"]
    for row in result.where(event="sweep"):
        assert row["quota_ok"]
        assert row["max_node_usage_bytes"] <= row["quota_bytes"]
        # Refcounts track every registered task: tasks × chunks refs.
        assert row["shared_refs"] == row["tasks"] * row["chunks"]
    # Quota pressure: the capped tenant is refused past its quota and
    # its resident usage never crosses it.
    capped = result.one(event="quota_pressure")
    assert capped["shared_quota_rejections"] > 0
    assert capped["quota_ok"]
    assert capped["tenant_usage_bytes"] <= capped["quota_bytes"]
