"""Real wall-clock micro-benchmarks of the library's hot paths.

Unlike the ``bench_fig*`` files (which reproduce the paper's simulated
experiments), these measure the actual Python implementation: chunk
encode/decode throughput, snapshot serialization, O(1) snapshot lookups,
chunk-wise shuffle generation, consistent-hash lookups, and KV prefix
scans.  They guard the data structures the simulation's fidelity rests
on.
"""

import random

import pytest

from repro.core.chunk import Chunk
from repro.core.meta import FileRecord
from repro.core.shuffle import chunkwise_shuffle
from repro.core.snapshot import MetadataSnapshot, SnapshotIndex, build_snapshot
from repro.kvstore.kv import KVTable
from repro.util.hashing import ConsistentHashRing
from repro.util.ids import ChunkIdGenerator

GEN = ChunkIdGenerator(machine=b"\x0b" * 6, pid=11)


def make_chunk(n_files=256, file_size=4096):
    items = [(f"/bench/f{i:05d}", bytes([i % 256]) * file_size)
             for i in range(n_files)]
    return Chunk.build(GEN.next(), items)


def make_snapshot(n_files=20_000, n_chunks=64):
    cids = sorted(GEN.take(n_chunks))
    files = [
        FileRecord(f"/ds/class{i % 100:03d}/img{i:06d}.jpg",
                   cids[i % n_chunks], (i // n_chunks) * 4096, 4096, i)
        for i in range(n_files)
    ]
    return build_snapshot("bench", 1, files, cids)


@pytest.mark.benchmark(group="micro-chunk")
def test_chunk_encode(benchmark):
    chunk = make_chunk()
    blob = benchmark(chunk.encode)
    assert len(blob) > 256 * 4096


@pytest.mark.benchmark(group="micro-chunk")
def test_chunk_decode(benchmark):
    blob = make_chunk().encode()
    chunk = benchmark(Chunk.decode, blob)
    assert len(chunk) == 256


@pytest.mark.benchmark(group="micro-chunk")
def test_chunk_header_only_decode(benchmark):
    """Recovery's fast path: header decode must not touch payloads."""
    blob = make_chunk().encode()
    shell, _ = benchmark(Chunk.decode_header, blob)
    assert len(shell.files) == 256


@pytest.mark.benchmark(group="micro-snapshot")
def test_snapshot_serialize(benchmark):
    snap = make_snapshot()
    blob = benchmark(snap.serialize)
    assert len(blob) / snap.file_count < 80  # compactness (§4.1.3)


@pytest.mark.benchmark(group="micro-snapshot")
def test_snapshot_load(benchmark):
    blob = make_snapshot().serialize()

    def load():
        return SnapshotIndex(MetadataSnapshot.deserialize(blob))

    index = benchmark(load)
    assert index.file_count == 20_000


@pytest.mark.benchmark(group="micro-snapshot")
def test_snapshot_deserialize(benchmark):
    """The columnar decode path alone (no index build): one
    ``iter_unpack`` sweep over the entry section, one split over the
    NUL-joined path section."""
    blob = make_snapshot().serialize()
    snap = benchmark(MetadataSnapshot.deserialize, blob)
    assert snap.file_count == 20_000
    per_file = benchmark.stats["mean"] / 20_000
    assert per_file < 2e-6, f"snapshot decode too slow: {per_file:.2e}s/file"


@pytest.mark.benchmark(group="micro-snapshot")
def test_snapshot_apply_delta(benchmark):
    """In-place delta application must stay O(delta), not O(dataset).

    One 20k-file index lives across all rounds; each round decodes and
    applies a fresh 100-op journal delta (the versions keep advancing,
    as they would on a training client refreshing mid-epoch).  The time
    bound holds per *op*, on an index 200× the delta's size.
    """
    from repro.core.meta_journal import JournalEntry, JournalOp, OP_APPEND

    base = make_snapshot()
    cid = base.chunk_ids[0]
    index = SnapshotIndex(base)
    blobs = [
        JournalEntry(
            i,  # placeholder ts; re-stamped per round below
            (
                JournalOp(
                    OP_APPEND,
                    f"/ds/late/img{i:04d}.jpg",
                    FileRecord(
                        f"/ds/late/img{i:04d}.jpg", cid, i * 4096, 4096, i
                    ).encode(),
                ),
            ),
        ).ops
        for i in range(100)
    ]

    def apply():
        ts = index.update_ts
        entries = [
            JournalEntry(ts + 1 + i, ops) for i, ops in enumerate(blobs)
        ]
        return index.apply_delta(entries)

    assert benchmark(apply) == 100
    per_op = benchmark.stats["mean"] / 100
    assert per_op < 2e-5, f"delta apply too slow: {per_op:.2e}s/op"


@pytest.mark.benchmark(group="micro-snapshot")
def test_snapshot_lookup(benchmark):
    """The Fig 10b hot path: must be well under 2µs per lookup."""
    index = SnapshotIndex(make_snapshot())
    paths = index.all_paths()
    rng = random.Random(0)
    sample = [rng.choice(paths) for _ in range(1000)]

    def lookups():
        total = 0
        for p in sample:
            total += index.lookup(p).length
        return total

    assert benchmark(lookups) == 1000 * 4096
    per_lookup = benchmark.stats["mean"] / 1000
    assert per_lookup < 2e-6, f"snapshot lookup too slow: {per_lookup:.2e}s"


@pytest.mark.benchmark(group="micro-shuffle")
def test_chunkwise_shuffle_generation(benchmark):
    index = SnapshotIndex(make_snapshot())
    grouping = index.files_by_chunk()

    plan = benchmark(chunkwise_shuffle, grouping, 8, random.Random(0))
    assert plan.file_count == 20_000


@pytest.mark.benchmark(group="micro-hash")
def test_consistent_hash_lookup(benchmark):
    ring = ConsistentHashRing([f"node{i}" for i in range(20)], replicas=128)
    keys = [f"/img/f{i}" for i in range(1000)]

    def lookups():
        return [ring.lookup(k) for k in keys]

    owners = benchmark(lookups)
    assert len(set(owners)) > 10


@pytest.mark.benchmark(group="micro-kv")
def test_kv_pscan(benchmark):
    table = KVTable()
    for i in range(50_000):
        table.put(f"f:ds:/class{i % 100:03d}/img{i:06d}", b"x" * 40)
    table.keys()  # build the index outside the timed region

    result = benchmark(table.pscan, "f:ds:/class042/")
    assert len(result) == 500
