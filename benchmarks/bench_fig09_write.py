"""Fig 9: small-file write throughput — DIESEL vs Memcached vs Lustre."""

import pytest

from repro.bench.experiments import fig9_write_throughput
from repro.calibration import KB


@pytest.mark.benchmark(group="fig9")
def test_fig9_write_throughput(experiment):
    result = experiment(fig9_write_throughput)
    r4k = result.one(file_size=4 * KB)
    r128k = result.one(file_size=128 * KB)
    # Ordering at both sizes: DIESEL > Memcached >> Lustre.
    for row in (r4k, r128k):
        assert row["diesel_files_per_s"] > row["memcached_files_per_s"]
        assert row["memcached_files_per_s"] > row["lustre_files_per_s"]
    # Magnitudes: DIESEL writes >1M 4KB files/s (paper: >2M);
    # >100x faster than Lustre at 4KB (paper: 366x), >30x at 128KB.
    assert r4k["diesel_files_per_s"] > 1_000_000
    assert r4k["speedup_vs_lustre"] > 100
    assert r128k["speedup_vs_lustre"] > 30
    # Memcached gap widens with value size (no batching, per-byte proxy
    # cost): paper 1.79x -> 17.3x.
    assert r128k["speedup_vs_memcached"] > 2 * r4k["speedup_vs_memcached"]
