"""Fig 10a/10b/10c: metadata access efficiency and snapshots."""

import pytest

from repro.bench.experiments import (
    fig10a_metadata_scaling,
    fig10b_snapshot_scaling,
    fig10c_ls_elapsed,
)


@pytest.mark.benchmark(group="fig10")
def test_fig10a_server_scaling(experiment):
    result = experiment(fig10a_metadata_scaling)

    def qps(servers, nodes):
        return result.one(servers=servers, client_nodes=nodes)["qps"]

    # One server saturates by ~2 client nodes: 10 nodes add <15% over 2.
    assert qps(1, 10) < 1.15 * qps(1, 2)
    # Three servers keep scaling past where one flattened...
    assert qps(3, 7) > 2.5 * qps(1, 10) * 0.9
    # ...and flatten themselves by ~7 nodes.
    assert qps(3, 10) < 1.15 * qps(3, 7)
    # Five servers approach the Redis cluster cap (~0.97M QPS).
    assert qps(5, 10) > 0.85e6
    assert qps(5, 10) < 1.25e6


@pytest.mark.benchmark(group="fig10")
def test_fig10b_snapshot_linear_scaling(experiment):
    result = experiment(fig10b_snapshot_scaling)
    rows = result.rows
    # Within 10% of the paper at both ends (8.83M at 1 node, 88.77M at 10).
    assert rows[0]["qps"] == pytest.approx(8.83e6, rel=0.10)
    assert rows[-1]["qps"] == pytest.approx(88.77e6, rel=0.10)
    # Strictly linear: qps/node constant.
    per_node = [r["qps"] / r["client_nodes"] for r in rows]
    assert max(per_node) / min(per_node) < 1.01
    # ~1300x over a Lustre MDS bound at 68k QPS.
    assert rows[-1]["qps"] / 68_000 > 1000


@pytest.mark.benchmark(group="fig10")
def test_fig10c_ls_elapsed(experiment):
    result = experiment(fig10c_ls_elapsed)
    lustre = result.one(system="lustre")
    fuse = result.one(system="diesel-fuse")
    xfs = result.one(system="xfs")
    # ls -R is client-bound and similar for Lustre and DIESEL-FUSE
    # (paper: both 30-40s for 1.28M files).
    assert 25 < lustre["ls_R_seconds"] < 50
    assert 25 < fuse["ls_R_seconds"] < 50
    # ls -lR blows up on Lustre (sizes live on the OSS)...
    assert lustre["ls_lR_seconds"] > 3 * lustre["ls_R_seconds"]
    assert lustre["ls_lR_seconds"] > 120
    # ...but stays nearly flat for DIESEL-FUSE (O(1) snapshot lookups).
    assert fuse["ls_lR_seconds"] < 1.6 * fuse["ls_R_seconds"]
    # DIESEL-FUSE beats the local XFS on the stat-heavy walk too.
    assert fuse["ls_lR_seconds"] < xfs["ls_lR_seconds"]
