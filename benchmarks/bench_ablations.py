"""Ablations of DIESEL's design choices (beyond the paper's figures).

Each test removes or degrades one design decision and shows the claimed
benefit disappear:

* chunk size — the §4 "≥4 MB" rule: too-small chunks forfeit the write
  batching and IOPS wins;
* request executor — §4's sort+merge of batched small reads into
  chunk-wise ranges;
* master-per-node election — §4.2's p×(n−1) vs full-mesh n×(n−1);
* chunk-wise shuffle group size — §4.3/Fig 13's "hundreds of chunks per
  group is sufficient": with an aggressive learning rate and
  class-sorted chunks, *too-small* groups measurably hurt accuracy,
  which is exactly why the knob exists.
"""

import random

import numpy as np
import pytest

from repro.bench.setups import (
    add_diesel,
    bulk_load_diesel,
    diesel_client_with_snapshot,
    make_testbed,
)
from repro.calibration import KB, MB
from repro.core.client import DieselClient
from repro.core.config import DieselConfig
from repro.core.dist_cache import CacheClient, TaskCache
from repro.dlt.sgd import SoftmaxClassifier, train_with_orders
from repro.dlt.synthetic import SyntheticDataset


@pytest.mark.benchmark(group="ablation")
def test_chunk_size_ablation(benchmark):
    """Large chunks cut cache warm-up and metadata recovery time (§4.1.2,
    §4.2: "the recovery time of the caching system is reduced greatly").

    Same dataset packed as 64 KB vs 4 MB chunks; measures (a) task-cache
    oneshot warm-up and (b) full metadata rebuild after losing the KV
    store.  Both are dominated by per-chunk fixed costs, so small chunks
    lose badly.
    """

    def run():
        from repro.core import recovery

        out = {}
        files = {f"/a/f{i:04d}": b"q" * (16 * KB) for i in range(2000)}
        for chunk_size in (64 * KB, 4 * MB):
            tb = make_testbed(n_compute=2)
            add_diesel(tb)
            bulk_load_diesel(tb, "ds", files, chunk_size=chunk_size)
            n_chunks = len(tb.store.list_keys())
            clients = [
                diesel_client_with_snapshot(
                    tb, "ds", tb.compute_nodes[r % 2], f"c{r}", rank=r
                )
                for r in range(4)
            ]
            cache = TaskCache(
                tb.env, tb.fabric, tb.diesel, "ds",
                [c.as_cache_client() for c in clients],
            )
            t0 = tb.env.now
            tb.run(cache.register())
            tb.run(cache.wait_warm())
            warm_s = tb.env.now - t0

            tb.kv.lose_all()
            t0 = tb.env.now
            tb.run(recovery.rebuild_dataset(tb.diesel, "ds"))
            rebuild_s = tb.env.now - t0
            out[chunk_size] = (n_chunks, warm_s, rebuild_s)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    (n_small, warm_small, rec_small) = out[64 * KB]
    (n_big, warm_big, rec_big) = out[4 * MB]
    print(f"\n64KB chunks: n={n_small}, warm={warm_small * 1e3:.1f}ms, "
          f"rebuild={rec_small * 1e3:.1f}ms")
    print(f"4MB  chunks: n={n_big}, warm={warm_big * 1e3:.1f}ms, "
          f"rebuild={rec_big * 1e3:.1f}ms")
    assert n_small > 50 * n_big
    assert warm_big < warm_small / 2
    assert rec_big < rec_small / 3


@pytest.mark.benchmark(group="ablation")
def test_request_executor_merge_ablation(benchmark):
    """Batched sort+merge reads vs per-file reads (§4 request executor)."""

    def run():
        tb = make_testbed(n_compute=1)
        add_diesel(tb)
        files = {f"/d/f{i:04d}": b"y" * 4096 for i in range(256)}
        bulk_load_diesel(tb, "ds", files, chunk_size=4 * MB)
        node = tb.compute_nodes[0]
        paths = list(files)

        def batched():
            t0 = tb.env.now
            yield from tb.diesel.call(node, "read_files", "ds", paths)
            return tb.env.now - t0

        def individual():
            t0 = tb.env.now
            for p in paths:
                yield from tb.diesel.call(node, "get_file", "ds", p)
            return tb.env.now - t0

        return tb.run(batched()), tb.run(individual())

    t_batched, t_individual = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n256-file batch: merged={t_batched * 1e3:.2f}ms, "
          f"per-file={t_individual * 1e3:.2f}ms "
          f"({t_individual / t_batched:.1f}x slower)")
    assert t_batched < t_individual / 5


@pytest.mark.benchmark(group="ablation")
def test_master_election_connection_ablation(benchmark):
    """p×(n−1) with masters vs n×(n−1) full mesh (§4.2, Fig 7)."""

    def run():
        tb = make_testbed(n_compute=8)
        add_diesel(tb)
        files = {f"/c/f{i:03d}": b"z" * 2048 for i in range(64)}
        bulk_load_diesel(tb, "ds", files, chunk_size=16 * KB)
        clients = [
            CacheClient(f"cc{r}", tb.compute_nodes[r % 8], r)
            for r in range(8 * 8)  # 8 nodes x 8 I/O procs
        ]
        cache = TaskCache(tb.env, tb.fabric, tb.diesel, "ds", clients)
        tb.run(cache.register())
        return cache

    cache = benchmark.pedantic(run, rounds=1, iterations=1)
    p, n = 8, 64
    measured = cache.connection_count()
    full_mesh = n * (n - 1)
    print(f"\nconnections: masters={measured} vs full mesh={full_mesh} "
          f"({full_mesh / measured:.1f}x reduction)")
    assert measured == p * (n - 1)
    assert full_mesh / measured == pytest.approx(n / p, rel=0.01)


@pytest.mark.benchmark(group="ablation")
def test_shuffle_group_size_accuracy_ablation(benchmark):
    """Too-small groups + hot lr hurt accuracy; adequate groups recover it.

    The inverse of Fig 13: demonstrates *why* the group size knob exists.
    Chunks are class-sorted; with lr=1.0 the end-of-epoch recency bias
    is clear for g=1 and mostly recovered by g=32.  (At the Fig 13
    operating point, lr=0.1, all group sizes match full shuffle.)
    """

    def run():
        data = SyntheticDataset.make(n_samples=4000, n_features=32,
                                     n_classes=10, class_sep=2.2,
                                     noise=1.2, seed=11)
        train, test = data.split(0.25, seed=11)
        spc = 25
        order_by_class = np.argsort(train.y, kind="stable")
        chunks = {}
        for pos, si in enumerate(order_by_class):
            chunks.setdefault(pos // spc, []).append(int(si))

        def cw_orders(g, epochs=30):
            out = []
            for e in range(epochs):
                rng = random.Random(1000 + e)
                cids = list(chunks)
                rng.shuffle(cids)
                order = []
                for lo in range(0, len(cids), g):
                    pooled = []
                    for c in cids[lo:lo + g]:
                        pooled.extend(chunks[c])
                    rng.shuffle(pooled)
                    order.extend(pooled)
                out.append(np.asarray(order))
            return out

        def final_acc(orders):
            history = train_with_orders(
                lambda: SoftmaxClassifier(32, 10, lr=1.0, seed=11),
                train.X, train.y, test.X, test.y, orders, batch_size=32,
            )
            return float(np.mean([h["top1"] for h in history[-5:]]))

        rng = np.random.default_rng(11)
        full = final_acc([rng.permutation(len(train)) for _ in range(30)])
        return {"full": full, 1: final_acc(cw_orders(1)),
                32: final_acc(cw_orders(32))}

    acc = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ntop-1 @lr=1.0: full={acc['full']:.3f}, "
          f"g=1: {acc[1]:.3f}, g=32: {acc[32]:.3f}")
    # g=1 degrades clearly; larger groups recover most of the gap.
    assert acc["full"] - acc[1] > 0.02
    assert acc[32] - acc[1] > 0.008


@pytest.mark.benchmark(group="ablation")
def test_server_cache_tier_ablation(benchmark):
    """HDD-backed storage with vs without the SSD server cache (Fig 4).

    On HDD-resident datasets, the first epoch faults chunks through the
    slow tier; with the SSD cache enabled, later epochs are served from
    the fast tier, recovering most of the NVMe-resident performance.
    """

    def run():
        times = {}
        for cached in (False, True):
            tb = make_testbed(n_compute=1)
            add_diesel(tb, tiered=True)
            tb.store.promote_on_miss = cached
            files = {f"/s/f{i:03d}": b"h" * (64 * KB) for i in range(64)}
            bulk_load_diesel(tb, "ds", files, chunk_size=1 * MB)
            node = tb.compute_nodes[0]

            def epoch():
                t0 = tb.env.now
                for path in files:
                    yield from tb.diesel.call(node, "get_file", "ds", path)
                return tb.env.now - t0

            cold = tb.run(epoch())
            warm = tb.run(epoch())
            times[cached] = (cold, warm)
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    cold_off, warm_off = times[False]
    cold_on, warm_on = times[True]
    print(f"\nserver cache off: epoch1={cold_off * 1e3:.1f}ms, "
          f"epoch2={warm_off * 1e3:.1f}ms")
    print(f"server cache on:  epoch1={cold_on * 1e3:.1f}ms, "
          f"epoch2={warm_on * 1e3:.1f}ms")
    # Without the tier, every epoch pays HDD; with it, epoch 2 is fast.
    assert warm_off == pytest.approx(cold_off, rel=0.2)
    assert warm_on < warm_off / 3


@pytest.mark.benchmark(group="ablation")
def test_lustre_dne_ablation(benchmark):
    """§2.2's DNE discussion, quantified.

    DNE1 pins each directory to one MDT: a hot directory saturates that
    single server no matter how many MDTs exist.  DNE2 stripes entries
    over all MDTs, fixing the hot-directory case — but readdir must then
    visit every stripe.  Both drawbacks the paper calls out emerge here.
    """
    from repro.baselines.lustre import LustreFS
    from repro.bench.setups import make_testbed
    from repro.calibration import LustreProfile
    from repro.cluster.devices import Device

    N_FILES, N_MDTS, N_WRITERS = 240, 4, 16
    # Low MDS cap + effectively unlimited OSS so metadata is the
    # bottleneck under test.
    prof = LustreProfile(mds_qps=5_000)

    def run():
        out = {}
        for dne in ("dne1", "dne2"):
            # Hot-directory creates: all files into one directory.
            tb = make_testbed(n_compute=4)
            oss = Device(tb.env, "fast-oss", 1e-7, 1e13, queue_depth=64)
            fs = LustreFS(tb.env, tb.fabric, tb.storage_nodes[:N_MDTS],
                          oss, profile=prof, dne=dne)

            def writer(w, fs=fs, tb=tb):
                node = tb.compute_nodes[w % 4]
                for i in range(N_FILES // N_WRITERS):
                    yield from fs.write_file(node, f"/hot/w{w}f{i}", b"x")

            t0 = tb.env.now
            tb.run_all(writer(w) for w in range(N_WRITERS))
            create_rate = N_FILES / (tb.env.now - t0)

            def timed_readdir(fs=fs, tb=tb):
                t0 = tb.env.now
                yield from fs.readdir(tb.compute_nodes[0], "/hot")
                return tb.env.now - t0

            readdir_s = tb.run(timed_readdir())
            out[dne] = (create_rate, readdir_s)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    (rate1, rd1), (rate2, rd2) = out["dne1"], out["dne2"]
    print(f"\nhot-dir creates: DNE1 {rate1:,.0f}/s vs DNE2 {rate2:,.0f}/s "
          f"({rate2 / rate1:.1f}x)")
    print(f"readdir: DNE1 {rd1 * 1e6:.0f}us vs DNE2 {rd2 * 1e6:.0f}us "
          f"({rd2 / rd1:.1f}x slower)")
    # DNE2 spreads the hot directory's creates over all MDTs...
    assert rate2 > 1.8 * rate1
    # ...but its readdir must traverse every stripe.
    assert rd2 > 1.8 * rd1


@pytest.mark.benchmark(group="ablation")
def test_failure_containment_vs_global_cache(benchmark):
    """The Fig 6 counterpoint: the same failure, DIESEL's task-grained
    cache vs the global Memcached cache.

    Kill one cache node mid-run.  The global cache's misses fall into the
    op-limited shared filesystem forever (Fig 6); DIESEL falls back to
    its own chunk store, then `recover()` re-streams the lost partition
    in whole chunks and restores full speed.
    """
    import random as _random

    from repro.bench.setups import (
        add_lustre, add_memcached, bulk_load_lustre, bulk_load_memcached,
        diesel_client_with_snapshot, make_testbed,
    )

    N_NODES, FILES, ITER_FILES, ITERS = 6, 600, 24, 30
    payload = b"\xaa" * (16 * KB)
    file_map = {f"/fc/f{i:04d}": payload for i in range(FILES)}

    def speed(times):
        return ITER_FILES / (sum(times) / len(times))

    def run():
        out = {}

        # --- DIESEL task-grained cache ---
        tb = make_testbed(n_compute=N_NODES)
        add_diesel(tb)
        bulk_load_diesel(tb, "ds", file_map, chunk_size=1 * MB)
        clients = [
            diesel_client_with_snapshot(tb, "ds", tb.compute_nodes[c],
                                        f"c{c}", rank=c)
            for c in range(N_NODES)
        ]
        cache = TaskCache(tb.env, tb.fabric, tb.diesel, "ds",
                          [c.as_cache_client() for c in clients])
        tb.run(cache.register())
        tb.run(cache.wait_warm())
        reader = clients[1]
        index = reader.index
        rng = _random.Random(0)
        paths = list(file_map)

        def diesel_phase(n_iters):
            times = []
            for _ in range(n_iters):
                t0 = tb.env.now
                for _ in range(ITER_FILES):
                    yield from cache.read_file(
                        reader.as_cache_client(),
                        index.lookup(rng.choice(paths)),
                    )
                times.append(tb.env.now - t0)
            return times

        healthy = tb.run(diesel_phase(ITERS))
        tb.compute_nodes[0].kill()  # one master's partition gone
        degraded = tb.run(diesel_phase(ITERS))
        tb.run(cache.recover())
        recovered = tb.run(diesel_phase(ITERS))
        out["diesel"] = (speed(healthy), speed(degraded), speed(recovered))

        # --- global Memcached cache, same failure pattern ---
        tb = make_testbed(n_compute=N_NODES + 1)
        mc = add_memcached(tb, n_servers=N_NODES)
        fs = add_lustre(tb)
        bulk_load_memcached(tb, file_map)
        bulk_load_lustre(tb, file_map)
        node = tb.compute_nodes[N_NODES]
        rng = _random.Random(0)

        def mc_phase(n_iters):
            times = []
            for _ in range(n_iters):
                t0 = tb.env.now
                for _ in range(ITER_FILES):
                    path = rng.choice(paths)
                    value = yield from mc.get(node, path)
                    if value is None:
                        yield from fs.read_file(node, path)
                times.append(tb.env.now - t0)
            return times

        healthy = tb.run(mc_phase(ITERS))
        mc.kill_server(sorted(mc.servers)[0])
        degraded = tb.run(mc_phase(ITERS))
        # Memcached has no chunk-granular recovery; it refills file by
        # file as misses occur — still degraded over this window.
        later = tb.run(mc_phase(ITERS))
        out["memcached"] = (speed(healthy), speed(degraded), speed(later))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    d_h, d_d, d_r = out["diesel"]
    m_h, m_d, m_l = out["memcached"]
    print(f"\nDIESEL files/s:    healthy={d_h:,.0f} degraded={d_d:,.0f} "
          f"recovered={d_r:,.0f}")
    print(f"Memcached files/s: healthy={m_h:,.0f} degraded={m_d:,.0f} "
          f"later={m_l:,.0f}")
    # DIESEL recovers to (near-)healthy speed after chunk re-streaming.
    assert d_r > 0.9 * d_h
    # The global cache stays degraded (no partition re-streaming).
    assert m_l < 0.9 * m_h
    # And DIESEL's degraded mode (chunk-store fallback) still outruns
    # the global cache at its *healthy* speed.  (Relative loss vs
    # healthy stopped being a meaningful comparison once locality-aware
    # placement sped DIESEL's healthy path past the RPC-bound baseline:
    # a faster healthy numerator makes the same absolute degraded rate
    # look "worse" even though it serves files twice as fast.)
    assert d_d > m_h
