"""Scatter-gather parallel I/O: ingest pipelining and read/warmup/recovery
fan-out, with single-flight and exactly-once invariants held throughout."""

import pytest

from repro.bench.experiments import fanout_scatter_gather, ingest_pipeline

DEPTHS = (1, 2, 4)
FANOUTS = (1, 2, 4)


@pytest.mark.benchmark(group="scatter-gather")
def test_ingest_pipeline(experiment):
    result = experiment(ingest_pipeline, depths=DEPTHS)
    for depth in DEPTHS:
        row = result.one(depth=depth)
        # Exactly-once delivery at every depth: the servers ingested
        # each shipped chunk once, nothing dropped or duplicated.
        assert row["server_ingests"] == row["chunks_shipped"], depth
        if depth == 1:
            assert row["ship_hwm"] == 1
    # Shipping pre-sealed chunks overlaps transfer + journal across the
    # round-robin servers: ≥2x at depth 4, with the high-water mark as
    # proof the overlap actually happened.
    deep = result.one(depth=4)
    assert deep["ship_speedup"] >= 2.0
    assert deep["ship_hwm"] > 1
    # End-to-end put is packing-bound but still improves.
    assert deep["put_speedup"] > 1.3
    ships = [result.one(depth=d)["ship_s"] for d in DEPTHS]
    assert ships == sorted(ships, reverse=True)


@pytest.mark.benchmark(group="scatter-gather")
def test_fanout_scatter_gather(experiment):
    result = experiment(fanout_scatter_gather, fanouts=FANOUTS)
    for f in FANOUTS:
        row = result.one(fanout=f)
        # Single-flight survives concurrency: one transfer per distinct
        # chunk in the batch, at every fan-out.
        assert row["duplicate_reads"] == 0, f
    base = result.one(fanout=1)
    deep = result.one(fanout=4)
    # Concurrent warmup, recovery, and batched reads all clear 2x.
    assert deep["warm_speedup"] >= 2.0
    assert deep["recover_speedup"] >= 2.0
    assert deep["read_speedup"] >= 2.0
    assert deep["pull_hwm"] > 1 and deep["fetch_hwm"] > 1
    assert base["pull_hwm"] == 1 and base["fetch_hwm"] == 1
    # The same work was done either way.
    assert deep["chunks_reloaded"] == base["chunks_reloaded"]
