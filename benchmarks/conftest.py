"""Benchmark harness glue.

Each ``bench_*`` module regenerates one table/figure of the paper via
``pytest --benchmark-only benchmarks/``.  The benchmark clock measures
the harness wall time (the experiments run a discrete-event simulation);
the *reproduced quantities* are the simulated rates/latencies, which are
printed as a paper-style table and verified with shape assertions.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_result


def run_experiment(benchmark, experiment_fn, **kwargs):
    """Run ``experiment_fn`` once under the benchmark timer and print its
    paper-style table; returns the ExperimentResult for shape checks."""
    result = benchmark.pedantic(
        lambda: experiment_fn(**kwargs), rounds=1, iterations=1
    )
    print()
    print(format_result(result))
    return result


@pytest.fixture
def experiment(benchmark):
    def _run(fn, **kwargs):
        return run_experiment(benchmark, fn, **kwargs)

    return _run
