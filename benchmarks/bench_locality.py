"""Locality placement vs hash ring: local hits, epoch time, coalescing."""

import pytest

from repro.bench.experiments import fig_locality


@pytest.mark.benchmark(group="locality")
def test_fig_locality(experiment):
    result = experiment(fig_locality)
    loc = result.one(placement="locality")
    hsh = result.one(placement="hash")
    # Headline criterion: ≥90% of a balanced multi-node epoch's hits
    # are node-local under locality placement, vs ≈1/p under hash.
    assert loc["local_frac"] >= 0.9
    assert hsh["local_frac"] <= 1.5 / loc["nodes"]
    # Skipping the network hop must show up as a faster epoch.
    assert loc["epoch_read_s"] < hsh["epoch_read_s"]
    # Obs spans attribute every read to a local/remote layer.
    assert loc["span_local"] == loc["cache_local_hits"]
    assert hsh["span_remote"] == hsh["cache_remote_hits"]
    # Pull storm: the single-flight map keeps the backend at exactly
    # one fetch per chunk, with the rest coalesced in flight.
    storm = result.one(event="pull_storm")
    assert storm["coalesced_pulls"] > 0
    assert storm["duplicate_backend_fetches"] == 0
    # Read skew: the hot chunk was replicated and reads went local.
    hot = result.one(event="hot_replication")
    assert hot["replicated_chunks"] >= 1
    assert hot["post_replication_local"] == 1
