"""Self-verifying random file content.

§6.1: "we divide a list of file names evenly among MPI processes, and let
each process write random contents and a hash code to the files.  Then in
the reading tests, each process reads files and checks the contents as
well as the hash code for correctness."  This module reproduces that:
content is pseudorandom from (path, seed) and carries an embedded CRC so
any read path can be verified end to end.

Layout: ``crc32(body) (4 bytes BE) ‖ body``.  Minimum file size is 4.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.util.hashing import fnv1a_64

_CRC = struct.Struct(">I")
HEADER_BYTES = _CRC.size


def generate_file(path: str, size: int, seed: int = 0) -> bytes:
    """Deterministic pseudorandom content of exactly ``size`` bytes."""
    if size < HEADER_BYTES:
        raise ValueError(f"file size must be >= {HEADER_BYTES}, got {size}")
    body_len = size - HEADER_BYTES
    rng = np.random.default_rng(fnv1a_64(path) ^ seed)
    body = rng.integers(0, 256, size=body_len, dtype=np.uint8).tobytes()
    return _CRC.pack(zlib.crc32(body)) + body


def verify_file(data: bytes) -> bool:
    """Check the embedded checksum; False on any corruption/truncation."""
    if len(data) < HEADER_BYTES:
        return False
    (stored,) = _CRC.unpack_from(data, 0)
    return zlib.crc32(data[HEADER_BYTES:]) == stored


def expected_content(path: str, size: int, seed: int = 0) -> bytes:
    """Alias making read-back comparisons self-documenting."""
    return generate_file(path, size, seed)
