"""The paper's MPI file-operation tool, reproduced (§6.1).

"We use our own MPI tool to execute file operations (writing/reading)
concurrently on multiple nodes to simulate the I/O patterns of real DLT
training frameworks.  Specifically, we divide a list of file names
evenly among MPI processes, and let each process write random contents
and a hash code to the files.  Then in the reading tests, each process
reads files and checks the contents as well as the hash code for
correctness."

:class:`MpiIoTool` does exactly that against any backend implementing
the small :class:`IoBackend` protocol (adapters for DIESEL, Lustre and
Memcached included).  It returns throughput plus a verification report —
corrupted or missing files are counted, never silently ignored.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, Protocol, Sequence

from repro.cluster.node import Node
from repro.sim.engine import Environment, Event
from repro.workloads.filegen import generate_file, verify_file


class IoBackend(Protocol):  # pragma: no cover - typing aid
    """What the tool needs from a storage system."""

    def write(self, rank_node: Node, path: str, data: bytes
              ) -> Generator[Event, Any, None]: ...

    def read(self, rank_node: Node, path: str
             ) -> Generator[Event, Any, Optional[bytes]]: ...

    def finalize_writes(self, rank_node: Node
                        ) -> Generator[Event, Any, None]: ...


@dataclass
class MpiReport:
    """One phase's outcome."""

    phase: str
    files: int
    bytes: int
    elapsed_s: float
    verified_ok: int = 0
    corrupted: int = 0
    missing: int = 0

    @property
    def files_per_s(self) -> float:
        return self.files / self.elapsed_s if self.elapsed_s else float("inf")

    @property
    def bandwidth_bps(self) -> float:
        return self.bytes / self.elapsed_s if self.elapsed_s else float("inf")

    @property
    def clean(self) -> bool:
        return self.corrupted == 0 and self.missing == 0


@dataclass
class MpiIoTool:
    """Divide a file list among ranks; run write then read-verify phases."""

    env: Environment
    backend: IoBackend
    rank_nodes: Sequence[Node]  # node each rank runs on (len == n_ranks)
    paths: Sequence[str]
    file_size: int = 4096
    seed: int = 0
    _assignments: List[List[str]] = field(init=False)

    def __post_init__(self) -> None:
        if not self.rank_nodes:
            raise ValueError("need at least one rank")
        n = len(self.rank_nodes)
        # Even round-robin division, as in the paper's tool.
        self._assignments = [list(self.paths[r::n]) for r in range(n)]

    @property
    def n_ranks(self) -> int:
        return len(self.rank_nodes)

    def assignment(self, rank: int) -> List[str]:
        return list(self._assignments[rank])

    def _content(self, path: str) -> bytes:
        return generate_file(path, self.file_size, self.seed)

    # ----------------------------------------------------------- phases
    def run_write_phase(self) -> MpiReport:
        """All ranks write their files concurrently; barrier at the end."""
        t0 = self.env.now

        def rank_proc(rank: int):
            node = self.rank_nodes[rank]
            for path in self._assignments[rank]:
                yield from self.backend.write(node, path, self._content(path))
            yield from self.backend.finalize_writes(node)

        procs = [
            self.env.process(rank_proc(r), name=f"mpi-w{r}")
            for r in range(self.n_ranks)
        ]
        self.env.run(until=self.env.all_of(procs))
        return MpiReport(
            phase="write",
            files=len(self.paths),
            bytes=len(self.paths) * self.file_size,
            elapsed_s=self.env.now - t0,
        )

    def run_read_phase(self, shuffled: bool = True) -> MpiReport:
        """All ranks read + verify their files (shuffled order, like DLT)."""
        t0 = self.env.now
        tallies = {"ok": 0, "corrupted": 0, "missing": 0}

        def rank_proc(rank: int):
            node = self.rank_nodes[rank]
            order = list(self._assignments[rank])
            if shuffled:
                random.Random(self.seed + rank).shuffle(order)
            for path in order:
                data = yield from self.backend.read(node, path)
                if data is None:
                    tallies["missing"] += 1
                elif data != self._content(path) or not verify_file(data):
                    tallies["corrupted"] += 1
                else:
                    tallies["ok"] += 1

        procs = [
            self.env.process(rank_proc(r), name=f"mpi-r{r}")
            for r in range(self.n_ranks)
        ]
        self.env.run(until=self.env.all_of(procs))
        return MpiReport(
            phase="read",
            files=len(self.paths),
            bytes=len(self.paths) * self.file_size,
            elapsed_s=self.env.now - t0,
            verified_ok=tallies["ok"],
            corrupted=tallies["corrupted"],
            missing=tallies["missing"],
        )


# ------------------------------------------------------------- adapters
class DieselBackend:
    """Adapter over per-rank DIESEL clients."""

    def __init__(self, clients) -> None:
        self._by_node = {}
        for c in clients:
            self._by_node.setdefault(c.node.name, c)

    def _client(self, node: Node):
        return self._by_node[node.name]

    def write(self, node: Node, path: str, data: bytes):
        yield from self._client(node).put(path, data)

    def read(self, node: Node, path: str):
        data = yield from self._client(node).get(path)
        return data

    def finalize_writes(self, node: Node):
        yield from self._client(node).flush()


class LustreBackend:
    """Adapter over the Lustre baseline."""

    def __init__(self, fs) -> None:
        self.fs = fs

    def write(self, node: Node, path: str, data: bytes):
        yield from self.fs.write_file(node, path, data)

    def read(self, node: Node, path: str):
        data = yield from self.fs.read_file(node, path)
        return data

    def finalize_writes(self, node: Node):
        yield self.fs.env.timeout(0)


class MemcachedBackend:
    """Adapter over the Memcached cluster (misses read as missing)."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster

    def write(self, node: Node, path: str, data: bytes):
        yield from self.cluster.set(node, path, data)

    def read(self, node: Node, path: str):
        data = yield from self.cluster.get(node, path)
        return data

    def finalize_writes(self, node: Node):
        yield self.cluster.env.timeout(0)
