"""Dataset shape specifications (ImageNet-1K, CIFAR-10, Open Images).

Shapes from the paper's §1/§6: ImageNet-1K has ~1.28 M files averaging
~110 KB over 1000 classes; Open Images ~9 M files at ~60 KB; CIFAR-10 is
60 K tiny records.  ``scaled()`` shrinks a spec for tractable experiment
runs while preserving per-file statistics; experiment harnesses report
*rates*, which are scale-invariant once steady state is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class DatasetSpec:
    """Shape parameters of a training dataset of small files."""

    name: str
    n_files: int
    mean_file_bytes: int
    n_classes: int
    #: Lognormal sigma of the size distribution (0 → constant size).
    size_sigma: float = 0.35
    min_file_bytes: int = 512
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.n_files < 1 or self.n_classes < 1:
            raise ValueError("n_files and n_classes must be positive")
        if self.mean_file_bytes < self.min_file_bytes:
            raise ValueError("mean_file_bytes below min_file_bytes")

    def total_bytes(self) -> int:
        """Approximate dataset size (mean × count)."""
        return self.n_files * self.mean_file_bytes

    def scaled(self, factor: float, name: str | None = None) -> "DatasetSpec":
        """A spec with ``factor`` × the file count (≥ n_classes kept)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        n = max(self.n_classes, int(round(self.n_files * factor)))
        return replace(self, n_files=n, name=name or f"{self.name}-x{factor:g}")

    def path_of(self, index: int) -> str:
        """Deterministic path for the ``index``-th file."""
        cls = index % self.n_classes
        return f"/{self.name}/train/class{cls:04d}/img{index:07d}.jpg"

    def size_of(self, index: int) -> int:
        """Deterministic per-file size drawn from a lognormal."""
        if self.size_sigma == 0:
            return self.mean_file_bytes
        rng = np.random.default_rng(self.seed + index)
        # lognormal with the requested mean: mean = exp(mu + sigma^2/2)
        mu = np.log(self.mean_file_bytes) - self.size_sigma**2 / 2
        size = int(rng.lognormal(mu, self.size_sigma))
        return max(self.min_file_bytes, size)

    def iter_files(self) -> Iterator[tuple[str, int]]:
        """Yield (path, size) for every file in the dataset."""
        for i in range(self.n_files):
            yield self.path_of(i), self.size_of(i)

    def sizes(self) -> np.ndarray:
        """Vectorized per-file sizes (fast path for large specs)."""
        if self.size_sigma == 0:
            return np.full(self.n_files, self.mean_file_bytes, dtype=np.int64)
        rng = np.random.default_rng(self.seed)
        mu = np.log(self.mean_file_bytes) - self.size_sigma**2 / 2
        sizes = rng.lognormal(mu, self.size_sigma, size=self.n_files)
        return np.maximum(self.min_file_bytes, sizes.astype(np.int64))


#: ImageNet-1K (§1): 1.28 M files, ~110 KB average, 1000 categories.
IMAGENET_1K = DatasetSpec(
    "imagenet-1k", n_files=1_281_167, mean_file_bytes=110 * 1024, n_classes=1000
)

#: Open Images V4 (§1): ~9 M images at ~60 KB.
OPEN_IMAGES = DatasetSpec(
    "open-images", n_files=9_000_000, mean_file_bytes=60 * 1024, n_classes=600
)

#: CIFAR-10 (§6): 60 K tiny images (~3 KB each as stored files).
CIFAR10 = DatasetSpec(
    "cifar-10",
    n_files=60_000,
    mean_file_bytes=3 * 1024,
    n_classes=10,
    size_sigma=0.0,
    min_file_bytes=512,
)
