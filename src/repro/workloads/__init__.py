"""Synthetic dataset workloads standing in for ImageNet-1K / CIFAR-10.

The paper's I/O experiments use "hundreds of millions of files with
random contents" plus the real ImageNet-1K/CIFAR-10 datasets (§6).  Only
file *counts, sizes and directory shapes* affect I/O behaviour, so these
generators synthesize datasets with the same shape parameters, with
content that is deterministic, seeded, and self-verifying (each file
embeds a checksum, mirroring the paper's MPI read-back verification).
"""

from repro.workloads.datasets import (
    CIFAR10,
    IMAGENET_1K,
    OPEN_IMAGES,
    DatasetSpec,
)
from repro.workloads.filegen import generate_file, verify_file

__all__ = [
    "CIFAR10",
    "DatasetSpec",
    "IMAGENET_1K",
    "OPEN_IMAGES",
    "generate_file",
    "verify_file",
]
