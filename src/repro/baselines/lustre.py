"""Lustre baseline: metadata server(s) + object storage servers.

The model captures what makes Lustre slow for DLT workloads (§2.2):

* every file operation pays one or more MDS round trips (lookup, create,
  lock) against a service with finite QPS (``LustreProfile.mds_qps``,
  measured at ~68 k in the paper);
* file *sizes* live on the OSS, so a full ``stat`` costs extra RPCs —
  the reason ``ls -lR`` on ImageNet-1K takes ~170 s vs ~35 s for
  ``ls -R`` (Fig 10c);
* small random reads each pay MDS + OSS per-op costs, so effective
  bandwidth collapses at 4 KB (Fig 12: ~60 MB/s vs DIESEL's ~4.3 GB/s).

DNE (Distributed NamEspace) is modelled as in the paper's discussion:
``dne1`` hashes each *directory* to one MDT (a hot directory still
saturates one server); ``dne2`` stripes directory entries over all MDTs
(readdir must visit every stripe).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Literal, Sequence

from repro.calibration import LustreProfile, RpcProfile
from repro.errors import (
    FileExistsInDatasetError,
    FileNotFoundInDatasetError,
)
from repro.cluster.devices import Device
from repro.cluster.network import NetworkFabric
from repro.cluster.node import Node
from repro.rpc.endpoint import RpcEndpoint
from repro.sim.engine import Environment, Event
from repro.util import pathutil
from repro.util.hashing import stable_hash

DneMode = Literal["none", "dne1", "dne2"]


class _Namespace:
    """The real directory tree: dirs → children, files → bytes."""

    def __init__(self) -> None:
        self._files: Dict[str, bytes] = {}
        self._dirs: Dict[str, set[str]] = {"/": set()}

    def _ensure_parents(self, path: str) -> None:
        """Create every ancestor directory and link it to its parent."""
        comps = pathutil.split(path)
        for depth in range(1, len(comps)):
            p = "/" + "/".join(comps[:depth])
            self._dirs.setdefault(p, set())
            self._dirs[pathutil.dirname(p)].add(p)

    def create_file(self, path: str, data: bytes) -> None:
        path = pathutil.normalize(path)
        if path in self._files:
            raise FileExistsInDatasetError(path)
        self._ensure_parents(path)
        self._files[path] = data
        self._dirs[pathutil.dirname(path)].add(path)

    def read_file(self, path: str) -> bytes:
        path = pathutil.normalize(path)
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundInDatasetError(path) from None

    def unlink(self, path: str) -> None:
        path = pathutil.normalize(path)
        if path not in self._files:
            raise FileNotFoundInDatasetError(path)
        del self._files[path]
        self._dirs[pathutil.dirname(path)].discard(path)

    def is_file(self, path: str) -> bool:
        return pathutil.normalize(path) in self._files

    def is_dir(self, path: str) -> bool:
        return pathutil.normalize(path) in self._dirs

    def list_dir(self, path: str) -> list[str]:
        path = pathutil.normalize(path)
        try:
            return sorted(self._dirs[path])
        except KeyError:
            raise FileNotFoundInDatasetError(path) from None

    def file_size(self, path: str) -> int:
        return len(self.read_file(path))

    def walk(self, root: str = "/") -> Generator[str, None, None]:
        """Yield every directory path under ``root`` (inclusive), DFS."""
        stack = [pathutil.normalize(root)]
        while stack:
            d = stack.pop()
            yield d
            for child in sorted(self._dirs.get(d, ()), reverse=True):
                if child in self._dirs:
                    stack.append(child)

    @property
    def file_count(self) -> int:
        return len(self._files)


class LustreFS:
    """A Lustre-like distributed filesystem with a calibrated cost model."""

    def __init__(
        self,
        env: Environment,
        fabric: NetworkFabric,
        mds_nodes: Sequence[Node],
        oss_device: Device,
        profile: LustreProfile | None = None,
        dne: DneMode = "none",
    ) -> None:
        if not mds_nodes:
            raise ValueError("LustreFS needs at least one MDS node")
        if dne not in ("none", "dne1", "dne2"):
            raise ValueError(f"unknown DNE mode: {dne!r}")
        if dne == "none" and len(mds_nodes) > 1:
            raise ValueError("multiple MDTs require a DNE mode")
        self.env = env
        self.fabric = fabric
        self.profile = profile or LustreProfile()
        self.dne = dne
        self.ns = _Namespace()
        self.oss = oss_device
        # Each MDT serves mds_qps aggregate with mds_latency_s unloaded
        # service latency (workers derived via Little's law).
        self._mdts = [
            RpcEndpoint.for_capacity(
                env,
                fabric,
                node,
                f"mdt{i}",
                handler=self._mds_handle,
                qps=self.profile.mds_qps,
                latency_s=self.profile.mds_latency_s,
                profile=RpcProfile(),
            )
            for i, node in enumerate(mds_nodes)
        ]

    # The MDS handler performs the real namespace mutation; cost is charged
    # by the RPC machinery plus explicit extra MDS ops below.
    def _mds_handle(self, method: str, *args: Any) -> Any:
        if method == "create":
            self.ns.create_file(args[0], b"")
            return None
        if method == "lookup":
            if not (self.ns.is_file(args[0]) or self.ns.is_dir(args[0])):
                raise FileNotFoundInDatasetError(args[0])
            return True
        if method == "readdir":
            return self.ns.list_dir(args[0])
        if method == "unlink":
            self.ns.unlink(args[0])
            return None
        if method == "noop":
            return None
        raise ValueError(f"unknown MDS method {method!r}")

    def _mdt_for(self, path: str) -> RpcEndpoint:
        """Pick the MDT serving ``path``'s *parent directory*."""
        if len(self._mdts) == 1:
            return self._mdts[0]
        directory = pathutil.dirname(pathutil.normalize(path))
        if self.dne == "dne1":
            # Whole directory pinned to one MDT.
            return self._mdts[stable_hash(directory, len(self._mdts))]
        # DNE2: entries striped; per-entry operations hash on the full path.
        return self._mdts[stable_hash(pathutil.normalize(path), len(self._mdts))]

    def _mds_call(
        self, client: Node, path: str, method: str, *args: Any, ops: float = 1.0
    ) -> Generator[Event, Any, Any]:
        """One logical metadata operation costing ``ops`` MDS service units."""
        mdt = self._mdt_for(path)
        result = yield from mdt.call(client, method, *args)
        extra = ops - 1.0
        if extra > 0:
            # Additional same-server round trips (e.g. lock acquisition).
            for _ in range(int(round(extra))):
                yield from mdt.call(client, "noop")
        return result

    # -- public POSIX-ish operations ---------------------------------------
    def write_file(
        self, client: Node, path: str, data: bytes
    ) -> Generator[Event, Any, None]:
        """Create + write one file (MDS create ops + OSS write)."""
        p = self.profile
        yield self.env.timeout(p.client_posix_s)
        yield from self._mds_call(client, path, "create", path, ops=p.create_mds_ops)
        # Creates amplify on the OSS (journal + lock + object create).
        yield from self.oss.write(len(data), op_multiplier=p.write_amplification)
        # Attach the payload after the simulated write completes.
        self.ns._files[pathutil.normalize(path)] = bytes(data)

    def read_file(self, client: Node, path: str) -> Generator[Event, Any, bytes]:
        """Open + read one file (MDS lookup + OSS read)."""
        p = self.profile
        yield self.env.timeout(p.client_posix_s)
        yield from self._mds_call(client, path, "lookup", path, ops=p.open_mds_ops)
        data = self.ns.read_file(path)
        yield from self.oss.read(len(data))
        return data

    def read_files(
        self, client: Node, paths: Sequence[str], admission_batch: int = 1
    ) -> Generator[Event, Any, Dict[str, bytes]]:
        """Batched reads: up to ``admission_batch`` lookups per MDS RPC.

        ``admission_batch=1`` loops :meth:`read_file` (the legacy
        one-round-trip-per-open POSIX path); larger values admit the
        opens of a batch to their MDT as one vectorized call — statahead
        -style metadata pipelining — so the baseline's admission
        discipline matches DIESEL's ``admission_batch`` in batched-read
        comparisons.  Data still moves per file through the OSS: only
        the metadata round trips amortize, which is exactly why the
        chunk-grained systems keep their edge.
        """
        if admission_batch < 1:
            raise ValueError("admission_batch must be >= 1")
        results: Dict[str, bytes] = {}
        if admission_batch == 1:
            for path in paths:
                results[path] = yield from self.read_file(client, path)
            return results
        p = self.profile
        groups: Dict[str, list] = {}
        for path in paths:
            groups.setdefault(self._mdt_for(path).name, []).append(path)
        mdts = {m.name: m for m in self._mdts}
        extra_ops = int(round(p.open_mds_ops - 1.0))
        for name, group in groups.items():
            mdt = mdts[name]
            for i in range(0, len(group), admission_batch):
                batch = group[i:i + admission_batch]
                # POSIX open() overhead is per file regardless of how
                # the metadata traffic is admitted.
                yield self.env.timeout(p.client_posix_s * len(batch))
                calls: list[tuple] = []
                for path in batch:
                    calls.append(("lookup", path))
                    calls.extend(("noop",) for _ in range(extra_ops))
                yield from mdt.call_batch(client, calls)
                for path in batch:
                    data = self.ns.read_file(path)
                    yield from self.oss.read(len(data))
                    results[path] = data
        return results

    def unlink(self, client: Node, path: str) -> Generator[Event, Any, None]:
        yield self.env.timeout(self.profile.client_posix_s)
        yield from self._mds_call(client, path, "unlink", path, ops=1.0)

    def readdir(self, client: Node, path: str) -> Generator[Event, Any, list[str]]:
        """List one directory.

        Under DNE2 the directory's entries are striped over all MDTs, so a
        readdir must visit every stripe (the §2.2 drawback).
        """
        yield self.env.timeout(self.profile.client_posix_s)
        if self.dne == "dne2" and len(self._mdts) > 1:
            names: list[str] = []
            for mdt in self._mdts:
                part = yield from mdt.call(client, "readdir", path)
                names = part  # every stripe returns the authoritative list
            return names
        result = yield from self._mds_call(client, path, "readdir", path)
        return result

    def stat(
        self, client: Node, path: str, with_size: bool = False
    ) -> Generator[Event, Any, dict]:
        """Stat a file; ``with_size`` adds the OSS round trips (Fig 10c)."""
        p = self.profile
        yield self.env.timeout(p.client_posix_s)
        yield from self._mds_call(client, path, "lookup", path, ops=1.0)
        info = {"path": pathutil.normalize(path), "is_dir": self.ns.is_dir(path)}
        if with_size and self.ns.is_file(path):
            for _ in range(p.stat_extra_rpcs):
                yield from self.oss.read(0)
                yield from self.fabric.transfer(client, self._mdts[0].node, 64)
            info["size"] = self.ns.file_size(path)
        elif self.ns.is_file(path):
            info["size"] = None
        return info

    def ls_recursive(
        self, client: Node, root: str = "/", with_sizes: bool = False
    ) -> Generator[Event, Any, int]:
        """``ls -R`` / ``ls -lR``: returns number of entries visited."""
        count = 0
        for directory in self.ns.walk(root):
            entries = yield from self.readdir(client, directory)
            for entry in entries:
                count += 1
                if with_sizes:
                    yield from self.stat(client, entry, with_size=True)
        return count
