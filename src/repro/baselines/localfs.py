"""Local-filesystem (XFS) model for the Fig 10c metadata comparison.

The paper runs ``ls -R`` and ``ls -lR`` against XFS on a local NVMe SSD.
A local FS pays no network RPCs; its per-entry costs are syscall-bound.
The defaults below (~6 µs per readdir entry, ~17 µs per stat, with dentry
cache warm) put ImageNet-1K (1.28 M files) at ~10 s for ``ls -R`` and
~30 s for ``ls -lR`` — fast relative to Lustre's 35 s / 170 s, slower
than DIESEL-FUSE's O(1) in-memory snapshot for sizes, which is the
ordering Fig 10c shows.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.cluster.node import Node
from repro.sim.engine import Environment, Event
from repro.util import pathutil


class LocalXfs:
    """A single-node local filesystem with per-entry syscall costs."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        readdir_entry_s: float = 6e-6,
        stat_s: float = 17e-6,
        open_read_s: float = 30e-6,
        bandwidth_bps: float = 3.0 * 2**30,
    ) -> None:
        self.env = env
        self.node = node
        self.readdir_entry_s = readdir_entry_s
        self.stat_s = stat_s
        self.open_read_s = open_read_s
        self.bandwidth_bps = bandwidth_bps
        self._files: dict[str, bytes] = {}
        self._dirs: dict[str, set[str]] = {"/": set()}

    def write_file(self, path: str, data: bytes) -> None:
        """Populate without simulated cost (fixture setup)."""
        path = pathutil.normalize(path)
        comps = pathutil.split(path)
        for depth in range(1, len(comps)):
            d = "/" + "/".join(comps[:depth])
            self._dirs.setdefault(d, set())
            self._dirs[pathutil.dirname(d)].add(d)
        self._files[path] = bytes(data)
        self._dirs[pathutil.dirname(path)].add(path)

    def read_file(self, path: str) -> Generator[Event, Any, bytes]:
        data = self._files[pathutil.normalize(path)]
        yield self.env.timeout(self.open_read_s + len(data) / self.bandwidth_bps)
        return data

    def readdir(self, path: str) -> Generator[Event, Any, list[str]]:
        entries = sorted(self._dirs[pathutil.normalize(path)])
        yield self.env.timeout(self.readdir_entry_s * max(1, len(entries)))
        return entries

    def stat(self, path: str) -> Generator[Event, Any, dict]:
        path = pathutil.normalize(path)
        yield self.env.timeout(self.stat_s)
        if path in self._files:
            return {"path": path, "is_dir": False, "size": len(self._files[path])}
        if path in self._dirs:
            return {"path": path, "is_dir": True, "size": 0}
        raise FileNotFoundError(path)

    def ls_recursive(
        self, root: str = "/", with_sizes: bool = False
    ) -> Generator[Event, Any, int]:
        """``ls -R`` (names only) or ``ls -lR`` (plus stat per entry)."""
        count = 0
        stack = [pathutil.normalize(root)]
        while stack:
            d = stack.pop()
            entries = yield from self.readdir(d)
            for entry in entries:
                count += 1
                if with_sizes:
                    yield from self.stat(entry)
                if entry in self._dirs:
                    stack.append(entry)
        return count

    @property
    def file_count(self) -> int:
        return len(self._files)
