"""Memcached + Twemproxy baseline (the global in-memory cache, §6).

The cluster spreads keys across per-node memcached servers with
consistent hashing.  Two properties drive the paper's results:

* **No write batching** (§6.2): libMemcached issues one RPC per SET, so
  caching a dataset of small files is per-file-RPC-bound (Fig 9, 11b).
* **Failure → keyspace holes** (§4.2, Fig 6): when a node dies, gets for
  its share of keys miss and fall back to the backing store; a few
  percent of misses collapse aggregate read speed because the fallback
  (Lustre small-file reads) is orders of magnitude slower.

Every client keeps a connection to every server (full mesh), unlike
DIESEL's per-node masters.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Sequence

from repro.calibration import MemcachedProfile
from repro.errors import NodeDownError
from repro.cluster.network import NetworkFabric
from repro.cluster.node import Node
from repro.rpc.connections import ConnectionTable
from repro.rpc.endpoint import RpcEndpoint
from repro.sim.engine import Environment, Event
from repro.util.hashing import ConsistentHashRing


class MemcachedNode:
    """One memcached server instance on a cluster node."""

    def __init__(
        self,
        env: Environment,
        fabric: NetworkFabric,
        node: Node,
        name: str,
        profile: MemcachedProfile | None = None,
        threads: int = 16,
    ) -> None:
        self.env = env
        self.node = node
        self.name = name
        self.profile = profile or MemcachedProfile()
        self._data: Dict[str, bytes] = {}
        p = self.profile

        # GETs are served at server_qps aggregate with ~latency_s unloaded
        # latency; SETs are cheaper at the server because twemproxy
        # pipelines them (write_speedup); value size adds a copy term.
        def extra(method: str, nbytes: int) -> float:
            cost = p.proxy_extra_s + nbytes * p.per_byte_s
            if method == "set":
                workers = max(1, round(p.server_qps * p.latency_s))
                base = workers / p.server_qps
                cost -= base * (1.0 - 1.0 / p.write_speedup)
            return cost

        self.endpoint = RpcEndpoint.for_capacity(
            env, fabric, node, name,
            handler=self._handle, qps=p.server_qps, latency_s=p.latency_s,
            extra_service=extra,
        )

    def _handle(self, method: str, *args: Any) -> Any:
        if method == "get":
            return self._data.get(args[0])
        if method == "set":
            self._data[args[0]] = args[1]
            return True
        if method == "delete":
            return self._data.pop(args[0], None) is not None
        raise ValueError(f"unknown memcached method {method!r}")

    @property
    def up(self) -> bool:
        return self.endpoint.up

    def item_count(self) -> int:
        return len(self._data)

    def flush(self) -> None:
        self._data.clear()


class MemcachedCluster:
    """Consistent-hash cluster of memcached nodes behind proxies."""

    def __init__(
        self,
        env: Environment,
        fabric: NetworkFabric,
        nodes: Sequence[Node],
        profile: MemcachedProfile | None = None,
        threads_per_server: int = 16,
        ring_replicas: int = 128,
    ) -> None:
        if not nodes:
            raise ValueError("MemcachedCluster needs at least one node")
        self.env = env
        self.profile = profile or MemcachedProfile()
        self.servers: Dict[str, MemcachedNode] = {}
        for i, node in enumerate(nodes):
            name = f"memcached{i}"
            self.servers[name] = MemcachedNode(
                env, fabric, node, name, self.profile, threads_per_server
            )
        self.ring = ConsistentHashRing(self.servers.keys(), replicas=ring_replicas)
        self.connections = ConnectionTable()

    def server_for(self, key: str) -> MemcachedNode:
        return self.servers[self.ring.lookup(key)]

    def register_client(self, client_name: str) -> int:
        """A client connects to every server (full mesh); returns fan-out."""
        for name in self.servers:
            self.connections.connect(client_name, name)
        return self.connections.fan_out(client_name)

    def get(
        self, client: Node, key: str
    ) -> Generator[Event, Any, Optional[bytes]]:
        """GET; returns None on miss *or* when the owning server is down.

        A dead server behaves as a miss (the twemproxy ejects the host and
        the client falls back to the backing store), matching the Fig 6
        experiment where disabled instances redirect reads to Lustre.
        GETs in flight when the instance dies surface the same way — a
        reset connection is a miss to libMemcached.
        """
        server = self.server_for(key)
        if not server.up:
            return None
        try:
            value = yield from server.endpoint.call(
                client, "get", key, request_bytes=64 + len(key)
            )
        except NodeDownError:
            return None
        return value

    def get_many(
        self, client: Node, keys: Sequence[str], admission_batch: int = 1
    ) -> Generator[Event, Any, Dict[str, Optional[bytes]]]:
        """Batched GETs: up to ``admission_batch`` keys per server RPC.

        ``admission_batch=1`` reproduces libMemcached's one-RPC-per-GET
        behaviour exactly (loops :meth:`get`); larger values model a
        multi-get pipeline (``memcached_get_multi``) so the baseline's
        admission discipline matches DIESEL's ``admission_batch`` — the
        apples-to-apples configuration for batched-read comparisons.
        Keys are grouped by owning server first; a dead server's keys
        all come back None (miss → backing-store fallback), same as
        :meth:`get`.
        """
        if admission_batch < 1:
            raise ValueError("admission_batch must be >= 1")
        results: Dict[str, Optional[bytes]] = {}
        if admission_batch == 1:
            for key in keys:
                results[key] = yield from self.get(client, key)
            return results
        by_server: Dict[str, list] = {}
        for key in keys:
            by_server.setdefault(self.ring.lookup(key), []).append(key)
        for name, group in by_server.items():
            server = self.servers[name]
            if not server.up:
                for key in group:
                    results[key] = None
                continue
            for i in range(0, len(group), admission_batch):
                batch = group[i:i + admission_batch]
                try:
                    values = yield from server.endpoint.call_batch(
                        client,
                        [("get", k) for k in batch],
                        request_bytes_each=64 + max(len(k) for k in batch),
                    )
                except NodeDownError:
                    values = [None] * len(batch)
                for k, v in zip(batch, values):
                    results[k] = v
        return results

    def set(
        self, client: Node, key: str, value: bytes
    ) -> Generator[Event, Any, bool]:
        """SET; one RPC per call — libMemcached has no batch mode (§6.2).

        The client pays libMemcached+twemproxy marshalling per call
        (per-op plus per-byte; the per-byte term dominates large values,
        which is why 128 KB writes trail DIESEL by ~17× in Fig 9).
        """
        server = self.server_for(key)
        if not server.up:
            raise NodeDownError(server.node.name, f"memcached {server.name} down")
        p = self.profile
        yield self.env.timeout(
            p.write_per_op_s + len(value) * p.write_per_byte_s
        )
        yield from server.endpoint.call(
            client,
            "set",
            key,
            bytes(value),
            request_bytes=64 + len(key) + len(value),
            response_bytes=8,
        )
        return True

    def delete(self, client: Node, key: str) -> Generator[Event, Any, bool]:
        server = self.server_for(key)
        if not server.up:
            return False
        result = yield from server.endpoint.call(client, "delete", key)
        return result

    def kill_server(self, name: str) -> None:
        """Disable one memcached instance (its node stays up)."""
        server = self.servers[name]
        server.endpoint._up = False
        self.connections.drop_endpoint(name)

    def live_fraction(self) -> float:
        live = sum(1 for s in self.servers.values() if s.up)
        return live / len(self.servers)

    def total_items(self) -> int:
        return sum(s.item_count() for s in self.servers.values())
