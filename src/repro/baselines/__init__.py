"""Baseline systems the paper compares DIESEL against.

* :class:`LustreFS` — the shared distributed filesystem (MDS + OSS model
  with optional DNE namespace distribution), §2.2 / §6.
* :class:`MemcachedCluster` — the global in-memory cache baseline
  (consistent hashing via a twemproxy-like layer, per-request RPCs,
  no write batching), §6.1 / §6.4.
* :class:`LocalXfs` — a local-filesystem model for the Fig 10c metadata
  comparison.

All three really store/serve bytes; their cost models are calibrated in
:mod:`repro.calibration`.
"""

from repro.baselines.localfs import LocalXfs
from repro.baselines.lustre import LustreFS
from repro.baselines.memcached import MemcachedCluster, MemcachedNode

__all__ = ["LocalXfs", "LustreFS", "MemcachedCluster", "MemcachedNode"]
