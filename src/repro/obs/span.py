"""Sim-clock spans and the zero-cost-when-detached span recorder.

The recorder follows :class:`repro.sim.trace.Tracer`'s attach pattern:
instrumented components carry a ``recorder`` attribute that defaults to
``None``, and every instrumentation site is guarded by a single
``if recorder is None`` check — with no recorder attached the hot path
pays one attribute read and allocates nothing.

A :class:`Span` times one operation on the simulation clock and is
tagged with the **layer** that resolved it (for reads: ``group_cache |
task_cache | server | objectstore``, the Fig 4 chain; for writes and
cache maintenance: the pipeline stage).  Finished spans feed one
:class:`~repro.obs.histogram.Histogram` per ``(op, layer)`` pair, so
``p50/p90/p99`` per layer fall out for free, and are retained in a
bounded ring for trace export (:mod:`repro.obs.export`).

Usage::

    rec = SpanRecorder.attach(client, server, cache)
    ... run the workload ...
    rec.to_dict()                  # flat row for bench.reporting.stats_row
    rec.histogram("get", "server").p99
    write_chrome_trace(rec, "trace.json")
    SpanRecorder.detach(client, server, cache)
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.obs.histogram import Histogram


def _sanitize(name: str) -> str:
    """Make an op/layer name safe as a flat column-name fragment."""
    return name.replace(":", "_").replace("/", "_").replace(" ", "_")


class Span:
    """One timed operation: ``op`` on ``actor``, resolved by ``layer``."""

    __slots__ = ("op", "actor", "start", "end", "layer", "tags")

    def __init__(self, op: str, actor: str, start: float) -> None:
        """Open a span at sim time ``start`` (use ``SpanRecorder.start``)."""
        self.op = op
        self.actor = actor
        self.start = start
        self.end: Optional[float] = None
        self.layer = ""
        self.tags: Optional[Dict[str, Any]] = None

    @property
    def duration(self) -> float:
        """Elapsed sim seconds (0.0 while the span is still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def __repr__(self) -> str:
        """Debug form: op/layer plus timing."""
        return (
            f"Span({self.op!r}, layer={self.layer!r}, actor={self.actor!r}, "
            f"start={self.start:.9f}, dur={self.duration:.9f})"
        )


class SpanRecorder:
    """Collects spans, per-(op, layer) histograms, and event counters.

    ``clock`` is any zero-argument callable returning the current time —
    normally ``env.now`` of the simulation driving the instrumented
    components (``attach`` wires this up automatically).  Finished spans
    are kept in a bounded ring (``capacity``); histograms and counters
    are cumulative and never dropped.
    """

    def __init__(self, clock, capacity: int = 100_000) -> None:
        """Create a recorder reading time from ``clock``."""
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._clock = clock
        self.capacity = capacity
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self.dropped = 0
        self._hist: Dict[Tuple[str, str], Histogram] = {}
        self._counts: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------- lifecycle
    @classmethod
    def attach(cls, *components: Any, capacity: int = 100_000
               ) -> "SpanRecorder":
        """Create a recorder and set it on every component.

        The sim clock is taken from the first component's ``env``.  Each
        component's ``recorder`` attribute is assigned; components whose
        ``recorder`` is a propagating property (servers, task caches, KV
        instances) forward the assignment to their internal endpoints.
        """
        if not components:
            raise ValueError("attach needs at least one component")
        env = getattr(components[0], "env", None)
        if env is None:
            raise ValueError(
                f"{components[0]!r} has no .env to take the clock from"
            )
        recorder = cls(lambda: env.now, capacity=capacity)
        for comp in components:
            comp.recorder = recorder
        return recorder

    @staticmethod
    def detach(*components: Any) -> None:
        """Remove the recorder from every component (hot path goes dark)."""
        for comp in components:
            comp.recorder = None

    # ------------------------------------------------------------ recording
    def now(self) -> float:
        """Current sim time as seen by this recorder."""
        return self._clock()

    def start(self, op: str, actor: str = "") -> Span:
        """Open a span for ``op`` at the current sim time."""
        return Span(op, actor, self._clock())

    def finish(self, span: Span, layer: str = "", **tags: Any) -> Span:
        """Close ``span``, attributing it to ``layer``; records it."""
        span.end = self._clock()
        span.layer = layer
        if tags:
            span.tags = tags
        self._store(span)
        return span

    def record(
        self, op: str, layer: str, duration: float, actor: str = "",
        **tags: Any,
    ) -> None:
        """Record a completed operation without an open span object.

        The span's start is back-dated by ``duration`` from now — the
        one-call form for sites that already know elapsed time.
        """
        end = self._clock()
        span = Span(op, actor, end - duration)
        span.end = end
        span.layer = layer
        if tags:
            span.tags = tags
        self._store(span)

    def count(self, op: str, layer: str = "", n: int = 1) -> None:
        """Bump the ``(op, layer)`` event counter by ``n`` (no timing)."""
        key = (op, layer)
        self._counts[key] = self._counts.get(key, 0) + n

    def _store(self, span: Span) -> None:
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)
        key = (span.op, span.layer)
        hist = self._hist.get(key)
        if hist is None:
            hist = self._hist[key] = Histogram()
        hist.add(span.duration)

    # -------------------------------------------------------------- queries
    def spans(self) -> list:
        """Finished spans still in the retained window (oldest first)."""
        return list(self._spans)

    def __len__(self) -> int:
        """Number of retained spans."""
        return len(self._spans)

    def histogram(self, op: str, layer: str = "") -> Histogram:
        """The ``(op, layer)`` latency histogram (empty one if unseen)."""
        return self._hist.get((op, layer)) or Histogram()

    @property
    def histograms(self) -> Dict[Tuple[str, str], Histogram]:
        """All per-(op, layer) histograms."""
        return dict(self._hist)

    @property
    def counts(self) -> Dict[Tuple[str, str], int]:
        """All ``(op, layer)`` event counters."""
        return dict(self._counts)

    def layers(self, op: str) -> Dict[str, int]:
        """Per-layer resolution counts for ``op`` (histogram ∪ counters)."""
        out: Dict[str, int] = {}
        for (o, layer), hist in self._hist.items():
            if o == op:
                out[layer] = out.get(layer, 0) + hist.count
        for (o, layer), n in self._counts.items():
            if o == op:
                out[layer] = out.get(layer, 0) + n
        return out

    def to_dict(self) -> Dict[str, Any]:
        """Flatten everything into one row of plain numbers.

        For every timed ``(op, layer)``: ``{op}_{layer}_n``,
        ``{op}_{layer}_p50_ms`` and ``{op}_{layer}_p99_ms``; for every
        counter: ``{op}_{layer}_count``.  The format
        ``bench.reporting.stats_row`` consumes — a recorder can be
        passed to it exactly like a stats object.
        """
        out: Dict[str, Any] = {}
        for (op, layer) in sorted(self._hist):
            hist = self._hist[(op, layer)]
            base = _sanitize(f"{op}_{layer}" if layer else op)
            out[f"{base}_n"] = hist.count
            out[f"{base}_p50_ms"] = hist.p50 * 1e3
            out[f"{base}_p99_ms"] = hist.p99 * 1e3
        for (op, layer) in sorted(self._counts):
            base = _sanitize(f"{op}_{layer}" if layer else op)
            out[f"{base}_count"] = self._counts[(op, layer)]
        return out

    def summary(self) -> str:
        """Human-readable per-(op, layer) table (for dlcmd stats)."""
        lines = [f"{'op':<18} {'layer':<12} {'n':>7} {'p50 ms':>10} "
                 f"{'p99 ms':>10} {'mean ms':>10}"]
        for (op, layer) in sorted(self._hist):
            hist = self._hist[(op, layer)]
            lines.append(
                f"{op:<18} {layer:<12} {hist.count:>7} "
                f"{hist.p50 * 1e3:>10.4f} {hist.p99 * 1e3:>10.4f} "
                f"{hist.mean * 1e3:>10.4f}"
            )
        for (op, layer) in sorted(self._counts):
            lines.append(
                f"{op:<18} {layer:<12} {self._counts[(op, layer)]:>7} "
                f"{'-':>10} {'-':>10} {'-':>10}"
            )
        return "\n".join(lines)
