"""Request observability: span tracing + latency histograms.

The paper's argument is a latency-breakdown argument — the Fig 4 read
chain (group cache → task-grained cache → DIESEL server → object store)
wins because each hop it removes is measurable.  This package makes the
breakdown first-class for the reproduction:

* :class:`~repro.obs.span.Span` / :class:`~repro.obs.span.SpanRecorder`
  — sim-clock-timed spans tagged with the layer that resolved each
  request, zero-cost when no recorder is attached (the
  ``sim.trace.Tracer`` attach pattern);
* :class:`~repro.obs.histogram.Histogram` — log-bucketed latency
  histograms with p50/p90/p99, one per (op, layer);
* :func:`~repro.obs.export.write_chrome_trace` — span dump loadable in
  ``chrome://tracing``; ``SpanRecorder.to_dict()`` merges into
  ``bench.reporting.stats_row`` for experiment tables.

Fault tolerance reports through the same recorder under ``ft_*`` ops:
retries and backoff (``ft_retry``, ``ft_backoff``, ``ft_deadline``,
``ft_attempt_failed``, ``ft_exhausted``), breakers
(``ft_breaker_reject``), detector transitions (``ft_alive`` /
``ft_suspect`` / ``ft_dead``, ``ft_detect``), degraded-path events
(``ft_peer_failure``, ``ft_dropped_pull``) and healing
(``ft_recover``, ``ft_rebuild``).  Same zero-overhead contract: every
site is one ``None`` check when no recorder is attached.

See ``docs/OBSERVABILITY.md`` for the model and a worked example,
``docs/FAULTS.md`` for the fault-tolerance ops.
"""

from repro.obs.export import chrome_trace_events, write_chrome_trace
from repro.obs.histogram import Histogram
from repro.obs.span import Span, SpanRecorder

__all__ = [
    "Histogram",
    "Span",
    "SpanRecorder",
    "chrome_trace_events",
    "write_chrome_trace",
]
