"""Log-bucketed latency histograms with percentile estimation.

A :class:`Histogram` keeps geometric buckets: bucket ``i`` covers
``[min_value * factor**i, min_value * factor**(i+1))``.  With the
default ``factor = 2**0.25`` every bucket is at most ~19% wide, so a
percentile read off a bucket midpoint is within ~9% of the true value —
plenty for "where did this request spend its time" questions, at O(1)
memory per decade of dynamic range.

Exact extremes are tracked separately: percentile estimates are clamped
to ``[min, max]``, which makes a single-sample histogram report that
sample *exactly* at every percentile, and keeps p99 from overshooting
the slowest thing that actually happened.
"""

from __future__ import annotations

import math
from typing import Dict


class Histogram:
    """A log-bucketed histogram of non-negative samples (seconds).

    Values below ``min_value`` (including 0) land in a dedicated
    underflow bucket whose representative is 0 — sub-resolution
    latencies are "effectively free", not errors.
    """

    __slots__ = (
        "min_value", "_log_factor", "_buckets", "count", "total",
        "min", "max", "_underflow",
    )

    def __init__(self, min_value: float = 1e-9, factor: float = 2 ** 0.25):
        """Create an empty histogram.

        ``min_value`` is the smallest distinguishable sample;
        ``factor`` the geometric bucket growth (> 1).
        """
        if min_value <= 0:
            raise ValueError("min_value must be positive")
        if factor <= 1:
            raise ValueError("factor must be > 1")
        self.min_value = min_value
        self._log_factor = math.log(factor)
        self._buckets: Dict[int, int] = {}
        self._underflow = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def _index(self, value: float) -> int:
        return int(math.log(value / self.min_value) / self._log_factor)

    def add(self, value: float) -> None:
        """Record one sample (negative values are clamped to 0)."""
        if value < 0:
            value = 0.0
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value < self.min_value:
            self._underflow += 1
        else:
            i = self._index(value)
            self._buckets[i] = self._buckets.get(i, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0 <= q <= 100).

        Walks the cumulative bucket counts and returns the geometric
        midpoint of the bucket holding the target rank, clamped to the
        exact observed ``[min, max]``.  Empty histograms return 0.0.
        """
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * self.count))
        seen = self._underflow
        if rank <= seen:
            return max(0.0, self.min)
        for i in sorted(self._buckets):
            seen += self._buckets[i]
            if rank <= seen:
                lo = self.min_value * math.exp(i * self._log_factor)
                hi = self.min_value * math.exp((i + 1) * self._log_factor)
                mid = math.sqrt(lo * hi)
                return min(self.max, max(self.min, mid))
        return self.max  # pragma: no cover - unreachable (counts add up)

    @property
    def p50(self) -> float:
        """Median estimate."""
        return self.percentile(50)

    @property
    def p90(self) -> float:
        """90th-percentile estimate."""
        return self.percentile(90)

    @property
    def p99(self) -> float:
        """99th-percentile estimate."""
        return self.percentile(99)

    def to_dict(self) -> Dict[str, float]:
        """Summary as plain numbers (the bench-reporting seam)."""
        return {
            "n": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.max if self.count else 0.0,
        }

    def __len__(self) -> int:
        """Number of recorded samples."""
        return self.count

    def __repr__(self) -> str:
        """Debug form with count and key percentiles."""
        return (
            f"Histogram(n={self.count}, p50={self.p50:.3g}, "
            f"p99={self.p99:.3g})"
        )
