"""Trace export: spans → the Chrome Trace Event format.

``write_chrome_trace`` dumps a recorder's retained spans as a JSON
array of complete ("ph": "X") trace events, one event per line, that
loads directly in ``chrome://tracing`` / Perfetto's legacy importer.
Actors (client names, endpoint names) map to thread tracks, so the Fig 4
resolution chain of one request reads as nested bars on one track, and
concurrent fan-out reads as parallel tracks.

Timestamps are sim-clock microseconds (the Trace Event unit).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List

from repro.obs.span import SpanRecorder


def chrome_trace_events(recorder: SpanRecorder) -> Iterator[Dict[str, Any]]:
    """Yield Trace Event dicts for every retained span.

    Thread-name metadata events come first so the tracks are labeled;
    span tags ride along in ``args``.
    """
    tids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for span in recorder.spans():
        actor = span.actor or "unattributed"
        tid = tids.get(actor)
        if tid is None:
            tid = tids[actor] = len(tids) + 1
        args: Dict[str, Any] = {"layer": span.layer}
        if span.tags:
            args.update(span.tags)
        events.append({
            "name": f"{span.op}:{span.layer}" if span.layer else span.op,
            "cat": span.op,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": 1,
            "tid": tid,
            "args": args,
        })
    for actor, tid in tids.items():
        yield {
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": actor},
        }
    yield from events


def write_chrome_trace(recorder: SpanRecorder, path) -> int:
    """Write the trace as line-delimited JSON events; returns the count.

    The file is a valid JSON array (loads with ``json.load`` and in
    ``chrome://tracing``) laid out one event per line, so it also greps
    and tails like a JSONL log.
    """
    lines = [json.dumps(e, sort_keys=True) for e in chrome_trace_events(recorder)]
    body = "[\n" + ",\n".join(lines) + "\n]\n" if lines else "[]\n"
    Path(path).write_text(body)
    return len(lines)
