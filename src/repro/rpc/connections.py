"""Connection accounting.

§4.2 of the paper: a naive task-grained cache needs n×(n−1) peer
connections (n = DIESEL client instances); electing one master client per
physical node cuts this to p×(n−1) (p = physical nodes).  The table
tracks live (client, server) pairs so tests and experiments can assert
those exact counts and estimate per-connection memory overhead.
"""

from __future__ import annotations

from repro.calibration import NetworkProfile


class ConnectionTable:
    """A registry of directed client→server connections."""

    def __init__(self, profile: NetworkProfile | None = None) -> None:
        self._conns: set[tuple[str, str]] = set()
        self._profile = profile or NetworkProfile()

    def connect(self, client: str, server: str) -> bool:
        """Record a connection; returns False if it already existed."""
        if client == server:
            return False
        key = (client, server)
        if key in self._conns:
            return False
        self._conns.add(key)
        return True

    def disconnect(self, client: str, server: str) -> None:
        self._conns.discard((client, server))

    def drop_endpoint(self, name: str) -> int:
        """Remove every connection touching ``name``; returns count dropped."""
        dead = {c for c in self._conns if name in c}
        self._conns -= dead
        return len(dead)

    def count(self) -> int:
        return len(self._conns)

    def fan_in(self, server: str) -> int:
        """Number of clients connected to ``server``."""
        return sum(1 for _, s in self._conns if s == server)

    def fan_out(self, client: str) -> int:
        return sum(1 for c, _ in self._conns if c == client)

    def memory_overhead_bytes(self) -> int:
        """Estimated aggregate memory pinned by connections."""
        return self.count() * self._profile.connection_overhead_bytes

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self._conns

    def __repr__(self) -> str:
        return f"ConnectionTable({self.count()} connections)"
