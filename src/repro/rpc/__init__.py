"""Thrift-like RPC layer over the simulated fabric.

The paper uses Apache Thrift between DIESEL clients and servers and
between cache peers (§5).  This package models an RPC as: client-side
serialization → network transfer → FIFO service at the endpoint's worker
pool → response transfer, all in simulated time, while the endpoint's
*handler* runs real Python logic on real data.

Connection accounting (:class:`ConnectionTable`) exists because the
task-grained cache's headline design point is reducing the client mesh
from n×(n−1) to p×(n−1) connections (§4.2, Fig 7).
"""

from repro.rpc.connections import ConnectionTable
from repro.rpc.endpoint import RpcEndpoint, RpcStats

__all__ = ["ConnectionTable", "RpcEndpoint", "RpcStats"]
