"""RPC endpoints: real handlers, simulated cost."""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Callable, Generator, Optional

from repro.calibration import RpcProfile
from repro.errors import NodeDownError
from repro.cluster.network import NetworkFabric
from repro.cluster.node import Node
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource


@dataclass(slots=True)
class RpcStats:
    """Cumulative per-endpoint call counters."""

    calls: int = 0
    request_bytes: int = 0
    response_bytes: int = 0
    errors: int = 0
    #: Total worker-seconds spent in service (for utilization).
    busy_time: float = 0.0
    #: Vectorized admissions (one ``call_batch`` = one batch, however
    #: many calls it carried; ``calls`` still counts every call).
    batches: int = 0

    def to_dict(self) -> dict:
        """All counters as ``{name: value}``, derived from the dataclass
        fields so a new counter can never silently drop out of rows."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class RpcEndpoint:
    """A named service bound to a node.

    ``handler(method, *args)`` executes the service's real logic and
    returns ``(result, response_bytes)``; if it returns a bare value the
    response size is estimated from it.  ``service_time(method, nbytes)``
    gives the server-side CPU cost per call (defaults to a constant).
    """

    def __init__(
        self,
        env: Environment,
        fabric: NetworkFabric,
        node: Node,
        name: str,
        handler: Callable[..., Any],
        service_s: float | Callable[[str, int], float] = 5e-6,
        workers: int = 16,
        profile: RpcProfile | None = None,
    ) -> None:
        self.env = env
        self.fabric = fabric
        self.node = node
        self.name = name
        self._handler = handler
        self._service_s = service_s
        self._pool = Resource(env, workers)
        self.profile = profile or RpcProfile()
        self.stats = RpcStats()
        #: Attached observability recorder (None = zero-cost hot path).
        self.recorder = None
        node.on_fail(self._on_node_fail)
        self._up = True

    @classmethod
    def for_capacity(
        cls,
        env: Environment,
        fabric: NetworkFabric,
        node: Node,
        name: str,
        handler: Callable[..., Any],
        qps: float,
        latency_s: float,
        profile: RpcProfile | None = None,
        extra_service: Callable[[str, int], float] | None = None,
    ) -> "RpcEndpoint":
        """An endpoint with aggregate throughput ``qps`` and unloaded
        per-call service latency ``latency_s``.

        Little's law fixes the worker count: ``workers = qps × latency``
        servers each taking ``latency`` per op give exactly ``qps``
        aggregate at saturation while an unloaded call still costs only
        ``latency`` — the property naive (workers, workers/qps) choices
        get wrong.  ``extra_service(method, nbytes)`` adds per-call cost
        (e.g. value-size terms) without changing the base capacity.
        """
        if qps <= 0 or latency_s <= 0:
            raise ValueError("qps and latency_s must be positive")
        workers = max(1, round(qps * latency_s))
        base = workers / qps

        def service(method: str, nbytes: int) -> float:
            extra = extra_service(method, nbytes) if extra_service else 0.0
            return base + extra

        return cls(
            env, fabric, node, name,
            handler=handler, service_s=service, workers=workers,
            profile=profile,
        )

    def _on_node_fail(self) -> None:
        self._up = False

    @property
    def up(self) -> bool:
        return self._up and self.node.alive

    def restart(self) -> None:
        """Bring the service back after its node was restored.

        ``Node.restore`` models the *machine* coming back; the services
        that died with it stay down until something restarts them — in
        this codebase, the fault-tolerance supervisors
        (:mod:`repro.ft.supervisor`) or a test doing it by hand.
        """
        if not self.node.alive:
            raise NodeDownError(
                self.node.name, f"cannot restart endpoint {self.name!r}"
            )
        self._up = True

    def _service_time(self, method: str, nbytes: int) -> float:
        if callable(self._service_s):
            return self._service_s(method, nbytes)
        return self._service_s

    @staticmethod
    def _sizeof(value: Any) -> int:
        if value is None:
            return 16
        if isinstance(value, (bytes, bytearray, memoryview)):
            return len(value)
        if isinstance(value, str):
            return len(value.encode("utf-8"))
        if isinstance(value, (list, tuple, set, frozenset)):
            return 16 + sum(RpcEndpoint._sizeof(v) for v in value)
        if isinstance(value, dict):
            return 16 + sum(
                RpcEndpoint._sizeof(k) + RpcEndpoint._sizeof(v)
                for k, v in value.items()
            )
        return 32

    def call(
        self,
        client: Node,
        method: str,
        *args: Any,
        request_bytes: int = 128,
        response_bytes: Optional[int] = None,
    ) -> Generator[Event, Any, Any]:
        """Invoke ``method`` from ``client``; returns the handler's result.

        Charges, in order: client serialization, request transfer, queueing
        + service at the endpoint, response serialization, response
        transfer.  Raises :class:`NodeDownError` if the endpoint's node is
        down at dispatch or dies while the call is in flight.
        """
        if not self.up:
            raise NodeDownError(self.node.name, f"endpoint {self.name!r} down")
        prof = self.profile
        rec = self.recorder
        # Client-side marshalling.
        yield self.env.timeout(prof.per_call_s + request_bytes * prof.per_byte_s)
        yield from self.fabric.transfer(client, self.node, request_bytes)
        if not self.up:
            raise NodeDownError(self.node.name, f"endpoint {self.name!r} down")
        # Server-side queue + service; the handler's real logic runs when
        # the worker picks the request up.
        t_arrive = self.env.now if rec is not None else 0.0
        req = self._pool.request()
        try:
            yield req
        except BaseException:
            # Interrupted/failed while queued (or racing the grant):
            # withdraw so the slot cannot leak.
            self._pool.abandon(req)
            raise
        t_grant = self.env.now if rec is not None else 0.0
        try:
            try:
                result = self._handler(method, *args)
                if hasattr(result, "send") and hasattr(result, "throw"):
                    # Generator handler: the worker thread drives server-side
                    # simulated I/O (device reads, nested RPCs) while holding
                    # its pool slot — a blocked thread, as in a real server.
                    result = yield from result
            except Exception:
                self.stats.errors += 1
                raise
            resp_nbytes = (
                response_bytes if response_bytes is not None else self._sizeof(result)
            )
            service = self._service_time(method, resp_nbytes)
            yield self.env.timeout(service)
            self.stats.busy_time += service
            if rec is not None:
                # Queue = arrival to worker grant; service = worker-held
                # time (handler-driven I/O + the calibrated CPU charge).
                rec.record("rpc_" + method, "queue", t_grant - t_arrive,
                           actor=self.name)
                rec.record("rpc_" + method, "service",
                           self.env.now - t_grant, actor=self.name)
        finally:
            self._pool.release(req)
        if not self.up:
            raise NodeDownError(self.node.name, f"endpoint {self.name!r} down")
        # Response marshalling + transfer back.
        yield self.env.timeout(prof.per_call_s + resp_nbytes * prof.per_byte_s)
        yield from self.fabric.transfer(self.node, client, resp_nbytes)
        self.stats.calls += 1
        self.stats.request_bytes += request_bytes
        self.stats.response_bytes += resp_nbytes
        return result

    def call_batch(
        self,
        client: Node,
        calls: "list[tuple]",
        *,
        request_bytes_each: int = 128,
        response_bytes: Optional[int] = None,
    ) -> Generator[Event, Any, list]:
        """Admit ``calls`` — ``(method, *args)`` tuples — as one batch.

        Vectorized admission: the whole batch costs one client
        marshalling charge, one request transfer, one worker-pool entry,
        one aggregated service charge and one response transfer — one
        scheduler entry per phase per *batch* instead of per call — while
        every handler still runs its real logic.  Returns the handlers'
        results in call order.  Semantically equivalent to looping
        :meth:`call` (same handlers, same counters via ``stats.calls``),
        just admitted together; ``stats.batches`` counts the admissions.

        Feeds the warmup/recovery chunk pulls (``admission_batch``) and
        any fan-out that targets one endpoint with many small calls.
        """
        if not calls:
            return []
        if not self.up:
            raise NodeDownError(self.node.name, f"endpoint {self.name!r} down")
        n = len(calls)
        prof = self.profile
        rec = self.recorder
        # One client-side marshalling charge for the whole batch.
        yield self.env.timeout(
            prof.per_call_s + n * request_bytes_each * prof.per_byte_s
        )
        yield from self.fabric.transfer(
            client, self.node, n * request_bytes_each
        )
        if not self.up:
            raise NodeDownError(self.node.name, f"endpoint {self.name!r} down")
        t_arrive = self.env.now if rec is not None else 0.0
        req = self._pool.request()
        try:
            yield req
        except BaseException:
            self._pool.abandon(req)
            raise
        t_grant = self.env.now if rec is not None else 0.0
        try:
            results: list = []
            try:
                for call in calls:
                    result = self._handler(call[0], *call[1:])
                    if hasattr(result, "send") and hasattr(result, "throw"):
                        result = yield from result
                    results.append(result)
            except Exception:
                self.stats.errors += 1
                raise
            if response_bytes is not None:
                resp_nbytes = response_bytes
                sizes = [response_bytes // n] * n
            else:
                sizes = [self._sizeof(r) for r in results]
                resp_nbytes = sum(sizes)
            # Aggregate queue/service accounting: one timeout covers the
            # batch's summed per-call service.
            service = 0.0
            for call, nbytes in zip(calls, sizes):
                service += self._service_time(call[0], nbytes)
            yield self.env.timeout(service)
            self.stats.busy_time += service
            if rec is not None:
                rec.record("rpc_batch", "queue", t_grant - t_arrive,
                           actor=self.name)
                rec.record("rpc_batch", "service",
                           self.env.now - t_grant, actor=self.name)
        finally:
            self._pool.release(req)
        if not self.up:
            raise NodeDownError(self.node.name, f"endpoint {self.name!r} down")
        yield self.env.timeout(prof.per_call_s + resp_nbytes * prof.per_byte_s)
        yield from self.fabric.transfer(self.node, client, resp_nbytes)
        self.stats.calls += n
        self.stats.batches += 1
        self.stats.request_bytes += n * request_bytes_each
        self.stats.response_bytes += resp_nbytes
        return results

    def call_with_retry(
        self,
        policy,
        client: Node,
        method: str,
        *args: Any,
        rng=None,
        breaker=None,
        **kw: Any,
    ) -> Generator[Event, Any, Any]:
        """:meth:`call` under a :class:`repro.ft.retry.RetryPolicy`.

        Each attempt is a fresh :meth:`call` generator; backoff, per-call
        deadlines, and the optional per-peer ``breaker`` follow the
        policy.  A generator — drive it with ``yield from``.
        """
        from repro.ft.retry import retry_call

        result = yield from retry_call(
            self.env,
            policy,
            lambda: self.call(client, method, *args, **kw),
            rng=rng,
            breaker=breaker,
            recorder=self.recorder,
            op=f"rpc_{method}",
            actor=self.name,
        )
        return result

    def __repr__(self) -> str:
        return f"RpcEndpoint({self.name!r} on {self.node.name!r})"
