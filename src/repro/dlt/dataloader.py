"""A PyTorch-style DataLoader over simulated storage.

The paper's training jobs consume data through PyTorch's ``DataLoader``
(§6.6): N worker processes prefetch mini-batches through the filesystem
while the training loop iterates ready batches.  :class:`SimDataLoader`
reproduces that execution model over any :class:`repro.dlt.readers`
backend, exposing a generator-iterator the training loop drives in
simulated time::

    loader = SimDataLoader(env, reader, batch_size=32, num_workers=4)
    batches = yield from loader.begin_epoch(epoch)
    for _ in range(batches):
        batch = yield from loader.next_batch()
        # batch.items: list of (path, bytes); batch.wait_s: the stall

It reports both the stall (time the consumer waited) and the fetch time
(worker wall time per batch) — the two quantities Fig 14 is about.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Mapping, Optional, Sequence, Tuple

from repro.core.shuffle import EpochPlan, chunkwise_shuffle
from repro.errors import DieselError
from repro.sim.engine import Environment, Event
from repro.sim.resources import Store


@dataclass
class Batch:
    """One delivered mini-batch."""

    epoch: int
    index: int
    items: List[Tuple[str, bytes]]
    #: Worker wall time spent fetching this batch (hidden or not).
    fetch_s: float
    #: Time the consumer stalled waiting for this batch.
    wait_s: float

    @property
    def paths(self) -> List[str]:
        return [p for p, _ in self.items]

    @property
    def nbytes(self) -> int:
        return sum(len(d) for _, d in self.items)


@dataclass
class LoaderStats:
    batches: int = 0
    files: int = 0
    bytes: int = 0
    total_wait_s: float = 0.0
    total_fetch_s: float = 0.0

    def mean_wait(self) -> float:
        return self.total_wait_s / self.batches if self.batches else 0.0

    def mean_fetch(self) -> float:
        return self.total_fetch_s / self.batches if self.batches else 0.0


class EpochScheduler:
    """Task-wide affinity epoch scheduler (§4.3 meets §4.2 placement).

    A multi-worker task draws **one** chunk-wise plan per epoch and
    splits it into per-worker shards.  With a locality-placed
    :class:`~repro.core.dist_cache.TaskCache` attached, the plan is
    owner-bucketed and each shuffle group is pinned to the worker
    co-located with the master owning its chunks — so steady-state
    reads are node-local memory copies — while the group order inside
    every shard is still permuted per epoch (the Fig 13 shuffle
    contract).  Without a cache (or under hash placement) shards are
    dealt least-loaded, reproducing a plain balanced split.

    Shards are built lazily per epoch and cached, so workers may call
    :meth:`shard` out of order; ``worker_nodes[i]`` names the node
    worker *i* runs on (the affinity key).
    """

    def __init__(
        self,
        files_by_chunk: Mapping,
        group_size: int,
        worker_nodes: Sequence[str],
        cache=None,
        seed: int = 0,
    ) -> None:
        if group_size < 1:
            raise DieselError("group_size must be >= 1")
        if not worker_nodes:
            raise DieselError("need at least one worker node")
        self._files_by_chunk = dict(files_by_chunk)
        self._group_size = group_size
        self._worker_nodes = list(worker_nodes)
        self._cache = cache
        self._seed = seed
        self._shards: Dict[int, List[EpochPlan]] = {}
        #: Cache membership version each cached epoch was built against.
        self._shard_versions: Dict[int, int] = {}
        #: Epochs whose cached shards were re-pinned after a scale event.
        self.repins = 0

    @property
    def n_workers(self) -> int:
        return len(self._worker_nodes)

    def affinity(self) -> Dict[str, int]:
        """Owner-node → worker-index map for ``EpochPlan.partition``."""
        return {name: i for i, name in enumerate(self._worker_nodes)}

    def _membership_version(self) -> int:
        return getattr(self._cache, "membership_version", 0) if (
            self._cache is not None) else 0

    def shard(self, epoch: int, worker: int) -> EpochPlan:
        """This worker's slice of the epoch's shared plan."""
        if not 0 <= worker < self.n_workers:
            raise DieselError(f"worker index {worker} out of range")
        if epoch not in self._shards:
            self._shards[epoch] = self._build(epoch)
            self._shard_versions[epoch] = self._membership_version()
            # Bound memory: workers only ever straddle two epochs.
            for old in [e for e in self._shards if e < epoch - 1]:
                del self._shards[old]
                self._shard_versions.pop(old, None)
        elif self._shard_versions.get(epoch) != self._membership_version():
            # Elastic membership changed under a cached plan: re-pin the
            # shards' owner tags to the new chunk→master map without
            # reshuffling (the epoch's read order is already committed;
            # a reshuffle would re-read some files and drop others).
            owner_of = getattr(self._cache, "chunk_owner_node", None)
            if owner_of is not None:
                self._shards[epoch] = [
                    plan.repin(owner_of) for plan in self._shards[epoch]
                ]
                self.repins += 1
            self._shard_versions[epoch] = self._membership_version()
        return self._shards[epoch][worker]

    def _build(self, epoch: int) -> List[EpochPlan]:
        # Seed mixing mirrors DieselClient._epoch_seed: the epoch
        # sequence is reproducible, successive epochs differ.
        rng = random.Random(hash((self._seed, epoch)))
        owner_of = None
        affinity = None
        if (
            self._cache is not None
            and getattr(self._cache, "placement", "hash") == "locality"
        ):
            owner_of = self._cache.chunk_owner_node
            affinity = self.affinity()
        plan = chunkwise_shuffle(
            self._files_by_chunk, self._group_size, rng, owner_of=owner_of
        )
        return plan.partition(self.n_workers, rng, affinity=affinity)


class SimDataLoader:
    """Worker-pool prefetching loader over an EpochReader backend."""

    def __init__(
        self,
        env: Environment,
        reader,
        batch_size: int = 32,
        num_workers: int = 4,
        prefetch_depth: int = 2,
        drop_last: bool = False,
    ) -> None:
        if batch_size < 1 or num_workers < 1 or prefetch_depth < 1:
            raise DieselError(
                "batch_size, num_workers and prefetch_depth must be >= 1"
            )
        self.env = env
        self.reader = reader
        self.batch_size = batch_size
        self.num_workers = num_workers
        self.prefetch_depth = prefetch_depth
        self.drop_last = drop_last
        self.stats = LoaderStats()
        self._epoch: Optional[int] = None
        self._ready: Optional[Store] = None
        self._workers: list = []
        self._remaining = 0
        self._batch_index = 0

    # ------------------------------------------------------------ epochs
    def begin_epoch(self, epoch: int) -> Generator[Event, Any, int]:
        """Shuffle, partition into batches, start workers.

        Returns the number of batches this epoch will deliver.
        """
        if self._remaining:
            raise DieselError(
                f"epoch {self._epoch} still has {self._remaining} undelivered "
                f"batches; drain them (or call abort()) first"
            )
        order = yield from self.reader.begin_epoch(epoch)
        batches = [
            order[i : i + self.batch_size]
            for i in range(0, len(order), self.batch_size)
        ]
        if self.drop_last and batches and len(batches[-1]) < self.batch_size:
            batches.pop()
        self._epoch = epoch
        self._batch_index = 0
        self._remaining = len(batches)
        todo: Store = Store(self.env)
        self._ready = Store(self.env, capacity=self.prefetch_depth)
        for b in batches:
            todo.put(b)
        for _ in range(self.num_workers):
            todo.put(None)  # stop sentinel per worker

        read_batch = getattr(self.reader, "read_batch", None)

        def worker():
            while True:
                paths = yield todo.get()
                if paths is None:
                    return
                t0 = self.env.now
                if read_batch is not None:
                    # One batched read per mini-batch (DIESEL get_many()).
                    got = yield from read_batch(paths)
                    items = [(p, got[p]) for p in paths]
                else:
                    items = []
                    for path in paths:
                        data = yield from self.reader.read(path)
                        items.append((path, data))
                yield self._ready.put((items, self.env.now - t0))

        self._workers = [
            self.env.process(worker(), name=f"loader-w{w}")
            for w in range(self.num_workers)
        ]
        return len(batches)

    def next_batch(self) -> Generator[Event, Any, Batch]:
        """Block until the next prefetched batch is ready."""
        if self._ready is None or self._remaining == 0:
            raise DieselError("no batches pending; call begin_epoch first")
        t0 = self.env.now
        items, fetch_s = yield self._ready.get()
        wait_s = self.env.now - t0
        batch = Batch(self._epoch, self._batch_index, items, fetch_s, wait_s)
        self._batch_index += 1
        self._remaining -= 1
        self.stats.batches += 1
        self.stats.files += len(items)
        self.stats.bytes += batch.nbytes
        self.stats.total_wait_s += wait_s
        self.stats.total_fetch_s += fetch_s
        return batch

    def drain(self) -> Generator[Event, Any, List[Batch]]:
        """Deliver every remaining batch of the current epoch."""
        out: List[Batch] = []
        while self._remaining:
            batch = yield from self.next_batch()
            out.append(batch)
        yield self.env.all_of(self._workers)
        return out

    @property
    def batches_remaining(self) -> int:
        return self._remaining
