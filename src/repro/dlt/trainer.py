"""Pipelined training loop in simulated time (Figs 14–15).

Reproduces the PyTorch dataloader execution model the paper measures
(§6.6): a compute process consumes mini-batches while ``io_workers``
worker processes prefetch the next batches through a storage reader.
"Data access time" per iteration is the stall the compute process
experiences waiting for its next ready batch — near zero when I/O keeps
up, the full read time when it does not, with a spike at each epoch's
first iteration where the shuffle + cold pipeline cannot be hidden.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Sequence

from repro.calibration import ModelProfile
from repro.sim.engine import Environment, Event
from repro.sim.resources import Store


@dataclass(frozen=True)
class IterationTiming:
    epoch: int
    iteration: int
    #: Stall: time the compute process waited for its next ready batch.
    data_time_s: float
    compute_time_s: float
    #: Wall time an I/O worker spent fetching one batch (start→ready),
    #: whether or not it was hidden behind compute — the quantity a
    #: dataloader's internal instrumentation reports (Fig 14).
    fetch_time_s: float = 0.0


@dataclass
class TrainingResult:
    """Per-iteration timings plus aggregate views."""

    model_name: str
    timings: List[IterationTiming] = field(default_factory=list)
    epoch_walls: List[float] = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        return sum(self.epoch_walls)

    def mean_data_time(self, skip_first_iteration: bool = False) -> float:
        times = [
            t.data_time_s
            for t in self.timings
            if not (skip_first_iteration and t.iteration == 0)
        ]
        return sum(times) / len(times) if times else 0.0

    def mean_fetch_time(self, skip_first_iteration: bool = False) -> float:
        times = [
            t.fetch_time_s
            for t in self.timings
            if not (skip_first_iteration and t.iteration == 0)
        ]
        return sum(times) / len(times) if times else 0.0

    def epoch_data_times(self) -> list[list[float]]:
        """Per-epoch lists of per-iteration data access times (Fig 14)."""
        n_epochs = max((t.epoch for t in self.timings), default=-1) + 1
        out: list[list[float]] = [[] for _ in range(n_epochs)]
        for t in self.timings:
            out[t.epoch].append(t.data_time_s)
        return out

    def total_data_time(self) -> float:
        return sum(t.data_time_s for t in self.timings)

    def total_compute_time(self) -> float:
        return sum(t.compute_time_s for t in self.timings)


def run_training(
    env: Environment,
    reader,
    model: ModelProfile,
    epochs: int,
    batch_size: int,
    io_workers: int = 4,
    prefetch_depth: int = 2,
    model_name: str | None = None,
) -> Generator[Event, Any, TrainingResult]:
    """Run a pipelined training job; returns a :class:`TrainingResult`.

    ``reader`` follows :class:`repro.dlt.readers.EpochReader`: it yields
    the epoch file order (charging shuffle cost) and reads single files.
    """
    if epochs < 1 or batch_size < 1 or io_workers < 1 or prefetch_depth < 1:
        raise ValueError("epochs/batch_size/io_workers/prefetch_depth must be >= 1")
    result = TrainingResult(model_name or model.name)

    for epoch in range(epochs):
        epoch_start = env.now
        order = yield from reader.begin_epoch(epoch)
        batches = [
            order[i : i + batch_size] for i in range(0, len(order), batch_size)
        ]
        todo: Store = Store(env)
        ready: Store = Store(env, capacity=max(1, prefetch_depth))
        for b in batches:
            todo.put(b)
        for _ in range(io_workers):
            todo.put(None)  # one stop sentinel per worker

        read_batch = getattr(reader, "read_batch", None)

        def io_worker(env=env, todo=todo, ready=ready):
            while True:
                batch = yield todo.get()
                if batch is None:
                    return
                t0 = env.now
                if read_batch is not None:
                    # Single batched read per mini-batch (get_many()).
                    yield from read_batch(batch)
                else:
                    for path in batch:
                        yield from reader.read(path)
                yield ready.put(env.now - t0)

        workers = [
            env.process(io_worker(), name=f"io{w}") for w in range(io_workers)
        ]

        for iteration in range(len(batches)):
            t0 = env.now
            fetch_time = yield ready.get()
            data_time = env.now - t0
            yield env.timeout(model.compute_s)
            result.timings.append(
                IterationTiming(
                    epoch, iteration, data_time, model.compute_s, fetch_time
                )
            )
        # Workers drain their sentinels and exit.
        yield env.all_of(workers)
        result.epoch_walls.append(env.now - epoch_start)
    return result


def run_task_training(
    env: Environment,
    readers: Sequence,
    model: ModelProfile,
    epochs: int,
    batch_size: int,
    io_workers: int = 1,
    prefetch_depth: int = 2,
    model_name: str | None = None,
) -> Generator[Event, Any, List[TrainingResult]]:
    """Run one pipelined training job per task worker, concurrently.

    The multi-worker execution model behind affinity epoch scheduling:
    each reader (typically a :class:`~repro.dlt.readers.CacheReader`
    bound to one worker's shard of the shared
    :class:`~repro.dlt.dataloader.EpochScheduler` plan) drives its own
    :func:`run_training` loop; all workers advance in parallel in
    simulated time.  Returns the per-worker results in reader order.
    """
    if not readers:
        raise ValueError("need at least one reader")
    procs = [
        env.process(
            run_training(
                env, reader, model, epochs, batch_size,
                io_workers, prefetch_depth, model_name,
            ),
            name=f"task-train{w}",
        )
        for w, reader in enumerate(readers)
    ]
    results: List[TrainingResult] = []
    for proc in procs:
        res = yield proc
        results.append(res)
    return results
