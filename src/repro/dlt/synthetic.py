"""Synthetic multi-class data for the shuffle-accuracy experiment (Fig 13).

The paper trains ResNet-50/ImageNet and ResNet-18/CIFAR-10 to show that
chunk-wise shuffle matches shuffle-over-dataset accuracy.  That claim is
*order-statistical* — it depends on the stream of training examples, not
on the vision architecture — so the reproduction trains a real numpy
classifier on a Gaussian-mixture dataset instead (see DESIGN.md §2).

Samples can be serialized to per-sample "files" so the exact DIESEL
chunk/shuffle machinery (not a shortcut) produces the training order.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

_SAMPLE_HEAD = struct.Struct(">HH")  # n_features, label


def encode_sample(features: np.ndarray, label: int) -> bytes:
    """Pack one sample as a standalone file payload."""
    feats = np.asarray(features, dtype=np.float32)
    if feats.ndim != 1:
        raise ValueError("features must be a 1-D vector")
    if not 0 <= label < 1 << 16:
        raise ValueError("label out of range")
    return _SAMPLE_HEAD.pack(feats.shape[0], label) + feats.tobytes()


def decode_sample(blob: bytes) -> tuple[np.ndarray, int]:
    n_features, label = _SAMPLE_HEAD.unpack_from(blob, 0)
    feats = np.frombuffer(blob, dtype=np.float32, offset=_SAMPLE_HEAD.size,
                          count=n_features).copy()
    return feats, label


@dataclass
class SyntheticDataset:
    """A seeded Gaussian-mixture classification dataset."""

    X: np.ndarray  # (n, d) float32
    y: np.ndarray  # (n,) int64
    n_classes: int

    @classmethod
    def make(
        cls,
        n_samples: int = 4000,
        n_features: int = 32,
        n_classes: int = 10,
        class_sep: float = 2.0,
        noise: float = 1.0,
        seed: int = 0,
    ) -> "SyntheticDataset":
        """Gaussian blobs: one random unit-ish mean per class + noise."""
        if n_classes < 2:
            raise ValueError("need at least two classes")
        rng = np.random.default_rng(seed)
        means = rng.normal(0.0, 1.0, size=(n_classes, n_features))
        means *= class_sep / np.linalg.norm(means, axis=1, keepdims=True)
        y = rng.integers(0, n_classes, size=n_samples)
        X = means[y] + rng.normal(0.0, noise, size=(n_samples, n_features))
        return cls(X.astype(np.float32), y.astype(np.int64), n_classes)

    def split(self, test_fraction: float = 0.25, seed: int = 1):
        """(train, test) split with shuffled assignment."""
        if not 0 < test_fraction < 1:
            raise ValueError("test_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        n = len(self.y)
        order = rng.permutation(n)
        n_test = int(n * test_fraction)
        test_idx, train_idx = order[:n_test], order[n_test:]
        train = SyntheticDataset(self.X[train_idx], self.y[train_idx], self.n_classes)
        test = SyntheticDataset(self.X[test_idx], self.y[test_idx], self.n_classes)
        return train, test

    def __len__(self) -> int:
        return len(self.y)

    def as_files(self, prefix: str = "/synth") -> dict[str, bytes]:
        """Serialize every sample as its own file (path → payload)."""
        return {
            f"{prefix}/class{int(self.y[i]):03d}/sample{i:06d}.bin":
                encode_sample(self.X[i], int(self.y[i]))
            for i in range(len(self.y))
        }

    @classmethod
    def from_files(cls, files: dict[str, bytes], n_classes: int) -> "SyntheticDataset":
        """Rebuild (in path order) from per-sample files."""
        feats, labels = [], []
        for path in sorted(files):
            f, l = decode_sample(files[path])
            feats.append(f)
            labels.append(l)
        return cls(
            np.stack(feats) if feats else np.zeros((0, 0), np.float32),
            np.asarray(labels, dtype=np.int64),
            n_classes,
        )
