"""Real mini-batch SGD classifiers (numpy, fully vectorized).

Used by the Fig 13 reproduction: train the same model with different
epoch *orders* (shuffle-over-dataset vs chunk-wise shuffle at several
group sizes) and compare top-1/top-5 accuracy trajectories.  The training
step is ordinary cross-entropy SGD; nothing about the order is special-
cased, so any accuracy difference between orders is genuine.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def top_k_accuracy(scores: np.ndarray, y: np.ndarray, k: int = 1) -> float:
    """Fraction of rows whose true label is within the top-k scores."""
    if scores.ndim != 2:
        raise ValueError("scores must be (n, classes)")
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, scores.shape[1])
    # argpartition: top-k indices per row in O(n·C)
    topk = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    return float(np.mean((topk == y[:, None]).any(axis=1)))


class SoftmaxClassifier:
    """Multinomial logistic regression trained with mini-batch SGD."""

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        lr: float = 0.1,
        weight_decay: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if n_features < 1 or n_classes < 2:
            raise ValueError("invalid dimensions")
        rng = np.random.default_rng(seed)
        self.W = rng.normal(0, 0.01, size=(n_features, n_classes)).astype(np.float64)
        self.b = np.zeros(n_classes)
        self.lr = lr
        self.weight_decay = weight_decay

    def scores(self, X: np.ndarray) -> np.ndarray:
        return X @ self.W + self.b

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.scores(X).argmax(axis=1)

    def loss(self, X: np.ndarray, y: np.ndarray) -> float:
        p = _softmax(self.scores(X))
        nll = -np.log(np.clip(p[np.arange(len(y)), y], 1e-12, None))
        return float(nll.mean())

    def _step(self, X: np.ndarray, y: np.ndarray) -> None:
        n = len(y)
        p = _softmax(self.scores(X))
        p[np.arange(n), y] -= 1.0
        grad_W = X.T @ p / n + self.weight_decay * self.W
        grad_b = p.mean(axis=0)
        self.W -= self.lr * grad_W
        self.b -= self.lr * grad_b

    def train_epoch(
        self,
        X: np.ndarray,
        y: np.ndarray,
        order: Sequence[int],
        batch_size: int = 32,
    ) -> None:
        """One pass over the data in the *given* order."""
        order = np.asarray(order)
        if order.shape[0] != len(y):
            raise ValueError("order must index every sample exactly once")
        for start in range(0, len(order), batch_size):
            idx = order[start : start + batch_size]
            self._step(X[idx], y[idx])


class MlpClassifier:
    """One-hidden-layer ReLU MLP with SGD (a stronger Fig 13 subject)."""

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        hidden: int = 64,
        lr: float = 0.05,
        weight_decay: float = 1e-4,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        scale1 = np.sqrt(2.0 / n_features)
        scale2 = np.sqrt(2.0 / hidden)
        self.W1 = rng.normal(0, scale1, size=(n_features, hidden))
        self.b1 = np.zeros(hidden)
        self.W2 = rng.normal(0, scale2, size=(hidden, n_classes))
        self.b2 = np.zeros(n_classes)
        self.lr = lr
        self.weight_decay = weight_decay

    def scores(self, X: np.ndarray) -> np.ndarray:
        h = np.maximum(X @ self.W1 + self.b1, 0.0)
        return h @ self.W2 + self.b2

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.scores(X).argmax(axis=1)

    def _step(self, X: np.ndarray, y: np.ndarray) -> None:
        n = len(y)
        h_pre = X @ self.W1 + self.b1
        h = np.maximum(h_pre, 0.0)
        p = _softmax(h @ self.W2 + self.b2)
        p[np.arange(n), y] -= 1.0
        p /= n
        grad_W2 = h.T @ p + self.weight_decay * self.W2
        grad_b2 = p.sum(axis=0)
        dh = p @ self.W2.T
        dh[h_pre <= 0] = 0.0
        grad_W1 = X.T @ dh + self.weight_decay * self.W1
        grad_b1 = dh.sum(axis=0)
        self.W2 -= self.lr * grad_W2
        self.b2 -= self.lr * grad_b2
        self.W1 -= self.lr * grad_W1
        self.b1 -= self.lr * grad_b1

    def train_epoch(
        self,
        X: np.ndarray,
        y: np.ndarray,
        order: Sequence[int],
        batch_size: int = 32,
    ) -> None:
        order = np.asarray(order)
        if order.shape[0] != len(y):
            raise ValueError("order must index every sample exactly once")
        for start in range(0, len(order), batch_size):
            idx = order[start : start + batch_size]
            self._step(X[idx], y[idx])


def train_with_orders(
    model_factory,
    X: np.ndarray,
    y: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    orders_per_epoch: Sequence[Sequence[int]],
    batch_size: int = 32,
) -> list[dict]:
    """Train one model through a sequence of per-epoch orders.

    Returns per-epoch records: {'epoch', 'top1', 'top5', 'loss'} measured
    on the held-out set.  This is the Fig 13 measurement loop.
    """
    model = model_factory()
    history = []
    for epoch, order in enumerate(orders_per_epoch):
        model.train_epoch(X, y, order, batch_size=batch_size)
        scores = model.scores(X_test)
        record = {
            "epoch": epoch,
            "top1": top_k_accuracy(scores, y_test, 1),
            "top5": top_k_accuracy(scores, y_test, 5),
        }
        if hasattr(model, "loss"):
            record["loss"] = model.loss(X_test, y_test)
        history.append(record)
    return history
