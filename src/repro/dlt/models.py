"""Training-job arithmetic over the calibrated model zoo.

The zoo itself (per-iteration V100 compute times for AlexNet, VGG-11,
ResNet-18, ResNet-50) lives in :data:`repro.calibration.MODEL_ZOO`; this
module adds the job-level arithmetic the Fig 14/15 experiments need:
iterations per epoch, total epochs, and projected wall times.

Sanity anchor from the paper (§6.6): ResNet-50 on ImageNet-1K with
mini-batch 256 runs 5005 iterations per epoch for 90+ epochs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.calibration import MODEL_ZOO, ModelProfile


def model_profile(name: str) -> ModelProfile:
    """Look up a model by name (alexnet, vgg11, resnet18, resnet50)."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}"
        ) from None


def iterations_per_epoch(n_files: int, batch_size: int) -> int:
    """Mini-batches needed to traverse the dataset once."""
    if n_files < 1 or batch_size < 1:
        raise ValueError("n_files and batch_size must be positive")
    return math.ceil(n_files / batch_size)


@dataclass(frozen=True)
class TrainingJob:
    """One DLT task: a model over a dataset for a number of epochs."""

    model: ModelProfile
    n_files: int
    batch_size: int = 256
    epochs: int = 90

    @property
    def iters_per_epoch(self) -> int:
        return iterations_per_epoch(self.n_files, self.batch_size)

    @property
    def total_iterations(self) -> int:
        return self.iters_per_epoch * self.epochs

    def compute_time_total(self) -> float:
        """Pure-GPU lower bound on the job's duration."""
        return self.total_iterations * self.model.compute_s

    def projected_total_time(self, per_iter_data_stall_s: float) -> float:
        """Job duration given an average per-iteration data stall.

        With pipelined I/O (§6.6), each iteration costs
        ``compute + stall`` where the stall is the part of the data wait
        not hidden behind compute.
        """
        per_iter = self.model.compute_s + max(0.0, per_iter_data_stall_s)
        return self.total_iterations * per_iter

    @classmethod
    def paper_resnet50(cls) -> "TrainingJob":
        """The §6.6 anchor: ResNet-50 / ImageNet-1K / batch 256 / 90 epochs."""
        return cls(model_profile("resnet50"), n_files=1_281_167,
                   batch_size=256, epochs=90)
