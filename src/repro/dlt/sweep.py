"""Multi-task sweep scheduling: N trainers over one shared dataset.

The model-selection workload (Hoard; cerebro-style sweeps): N training
tasks — hyperparameter candidates, ensemble members — all read the
*same* dataset concurrently.  Each task keeps its own
:class:`~repro.core.dist_cache.TaskCache` (its own masters, partitions
and epoch plans), but all of them admit chunks through one
:class:`~repro.core.shared_cache.SharedCacheRegistry`, so the dataset
is fetched from the object store once and held in memory once per node
no matter how many tasks run.

:func:`build_sweep_task` wires one task (cache + per-worker readers);
:func:`run_sweep` registers every task concurrently — cross-task
single-flight coalesces the racing warmups — and then drives one
pipelined training loop per task worker via
:func:`~repro.dlt.trainer.run_task_training`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence

from repro.calibration import ModelProfile
from repro.core.dist_cache import TaskCache
from repro.dlt.dataloader import EpochScheduler
from repro.dlt.readers import CacheReader
from repro.dlt.trainer import TrainingResult, run_task_training
from repro.errors import DieselError
from repro.sim.engine import Environment, Event


@dataclass
class SweepTask:
    """One training task of a sweep: its cache and its worker clients."""

    name: str
    cache: TaskCache
    #: DieselClients in worker order (one per task worker/node).
    clients: List[Any]
    group_size: int = 2
    seed: int = 0
    readers: List[CacheReader] = field(default_factory=list)

    def make_readers(self) -> List[CacheReader]:
        """Build one :class:`CacheReader` per worker over a shared
        affinity :class:`EpochScheduler` (requires a registered cache)."""
        index = self.clients[0].index
        scheduler = EpochScheduler(
            index.files_by_chunk(),
            self.group_size,
            [c.node.name for c in self.clients],
            cache=self.cache,
            seed=self.seed,
        )
        self.readers = [
            CacheReader(scheduler, self.cache, c.as_cache_client(), index, w)
            for w, c in enumerate(self.clients)
        ]
        return self.readers


def build_sweep_task(
    name: str,
    env: Environment,
    fabric,
    server,
    dataset: str,
    clients: Sequence[Any],
    *,
    shared=None,
    tenant: str = "default",
    qos_class: str = "batch",
    policy: str = "oneshot",
    placement: str = "hash",
    group_size: int = 2,
    seed: int = 0,
    admission_batch: int = 1,
    warmup_fanout: int = 1,
) -> SweepTask:
    """Wire one sweep task: a TaskCache over ``clients`` plus readers.

    ``clients`` are :class:`~repro.core.client.DieselClient` instances
    with the dataset snapshot loaded (one per worker).  ``shared`` is
    the sweep-wide :class:`~repro.core.shared_cache.SharedCacheRegistry`
    (None = task-private caches, the pre-sharing behaviour); ``tenant``
    and ``qos_class`` flow through to shared-tier quota charging and
    eviction priority.  The cache is attached to every client so their
    ``DL_get`` path resolves through it.
    """
    if not clients:
        raise DieselError("a sweep task needs at least one client")
    cache = TaskCache(
        env, fabric, server, dataset,
        [c.as_cache_client() for c in clients],
        policy=policy,
        placement=placement,
        shared=shared,
        tenant=tenant,
        qos_class=qos_class,
        admission_batch=admission_batch,
        warmup_fanout=warmup_fanout,
        calibration=clients[0].cal,
    )
    for c in clients:
        c.attach_cache(cache)
    return SweepTask(
        name=name, cache=cache, clients=list(clients),
        group_size=group_size, seed=seed,
    )


def register_sweep(
    env: Environment, tasks: Sequence[SweepTask], wait_warm: bool = True
) -> Generator[Event, Any, int]:
    """Register every task concurrently; returns total chunks warmed.

    Concurrent registration is the point: all the oneshot warmups race,
    and with a shared tier attached the cross-task single-flight map
    collapses them onto one backend fetch per (node, chunk).
    """
    regs = [
        env.process(t.cache.register(), name=f"register:{t.name}")
        for t in tasks
    ]
    yield env.all_of(regs)
    if not wait_warm:
        return 0
    warms = [
        env.process(t.cache.wait_warm(), name=f"warm:{t.name}")
        for t in tasks
    ]
    results = yield env.all_of(warms)
    return sum(results.values())


def run_sweep(
    env: Environment,
    tasks: Sequence[SweepTask],
    model: ModelProfile,
    epochs: int = 1,
    batch_size: int = 8,
    io_workers: int = 1,
    prefetch_depth: int = 2,
    register: bool = True,
    model_name: Optional[str] = None,
) -> Generator[Event, Any, Dict[str, List[TrainingResult]]]:
    """Run every sweep task's training concurrently; results by task.

    Registration (when ``register`` is True) and the per-task training
    loops all overlap in simulated time — the contention pattern a real
    model-selection sweep puts on the storage tier.  Returns
    ``{task name: [TrainingResult per worker]}``.
    """
    if not tasks:
        raise DieselError("run_sweep needs at least one task")
    if register:
        yield from register_sweep(env, tasks)
    procs = []
    for t in tasks:
        readers = t.make_readers()
        procs.append(env.process(
            run_task_training(
                env, readers, model, epochs, batch_size,
                io_workers, prefetch_depth,
                model_name=model_name or t.name,
            ),
            name=f"sweep:{t.name}",
        ))
    results: Dict[str, List[TrainingResult]] = {}
    for t, proc in zip(tasks, procs):
        results[t.name] = yield proc
    return results
