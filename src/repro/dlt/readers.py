"""Storage readers the pipelined trainer plugs into.

A reader provides (a) the epoch's file order — including the shuffle
generation work charged at epoch start, visible as the first-iteration
spike in Fig 14 — and (b) a per-file read path against one backend
(Lustre or DIESEL-FUSE).
"""

from __future__ import annotations

import random
from typing import Any, Generator, Protocol, Sequence

from repro.baselines.lustre import LustreFS
from repro.core.fuse import FuseMount
from repro.core.shuffle import full_shuffle
from repro.cluster.node import Node
from repro.sim.engine import Event

#: CPU cost per file name when shuffling the name list at epoch start.
SHUFFLE_PER_FILE_S = 60e-9


class EpochReader(Protocol):  # pragma: no cover - typing aid
    """Storage backend for the training pipeline.

    ``read_batch(paths) -> {path: bytes}`` is an *optional* extra method:
    backends that can resolve a whole mini-batch in one round trip (the
    DIESEL ``get_many()`` path) provide it, and the dataloader/trainer
    workers prefer it over per-file ``read`` calls when present.
    """

    def begin_epoch(self, epoch: int) -> Generator[Event, Any, list[str]]: ...

    def read(self, path: str) -> Generator[Event, Any, bytes]: ...


class CacheReader:
    """One task worker reading through the distributed task cache (§4.2).

    Epoch order comes from the shared
    :class:`~repro.dlt.dataloader.EpochScheduler` — this worker's shard
    of the task-wide plan, affinity-pinned to the co-located cache
    master under locality placement.  Each read resolves through
    :meth:`TaskCache.read_file`: local master (memory copy), one-hop
    peer fetch, or the Fig 4 server fall-through.
    """

    def __init__(self, scheduler, cache, cache_client, index, worker: int):
        self.scheduler = scheduler
        self.cache = cache
        self.cache_client = cache_client
        self.index = index
        self.worker = worker
        #: Shard served by the most recent ``begin_epoch`` (for tests
        #: and working-set accounting).
        self.last_plan = None

    def begin_epoch(self, epoch: int) -> Generator[Event, Any, list[str]]:
        plan = self.scheduler.shard(epoch, self.worker)
        self.last_plan = plan
        yield self.cache.env.timeout(plan.file_count * SHUFFLE_PER_FILE_S)
        return plan.files

    def read(self, path: str) -> Generator[Event, Any, bytes]:
        record = self.index.lookup(path)
        data = yield from self.cache.read_file(self.cache_client, record)
        return data


class LustreReader:
    """Reads straight from the Lustre baseline with full dataset shuffle."""

    def __init__(
        self, fs: LustreFS, client_node: Node, paths: Sequence[str], seed: int = 0
    ) -> None:
        self.fs = fs
        self.node = client_node
        self.paths = list(paths)
        self._seed = seed

    def begin_epoch(self, epoch: int) -> Generator[Event, Any, list[str]]:
        yield self.fs.env.timeout(len(self.paths) * SHUFFLE_PER_FILE_S)
        return full_shuffle(self.paths, random.Random(self._seed + epoch))

    def read(self, path: str) -> Generator[Event, Any, bytes]:
        data = yield from self.fs.read_file(self.node, path)
        return data


class FuseReader:
    """Reads through DIESEL-FUSE; chunk-wise or full shuffle per config."""

    def __init__(self, mount: FuseMount, chunk_wise: bool = True, seed: int = 0):
        self.mount = mount
        self.chunk_wise = chunk_wise
        self._seed = seed

    def begin_epoch(self, epoch: int) -> Generator[Event, Any, list[str]]:
        client = self.mount.clients[0]
        n = client.index.file_count
        yield self.mount.env.timeout(n * SHUFFLE_PER_FILE_S)
        if self.chunk_wise:
            return client.epoch_file_list(seed=self._seed + epoch).files
        return client.full_shuffle_list(seed=self._seed + epoch)

    def read(self, path: str) -> Generator[Event, Any, bytes]:
        data = yield from self.mount.read_file(path)
        return data

    def read_batch(
        self, paths: Sequence[str]
    ) -> Generator[Event, Any, "dict[str, bytes]"]:
        """Fetch a whole mini-batch with one batched mount read."""
        payloads = yield from self.mount.read_files(paths)
        return payloads
