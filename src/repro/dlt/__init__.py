"""Deep-learning-training workload layer.

Two distinct concerns, matching how the paper evaluates:

* **I/O + timing** (Figs 14–15): :mod:`repro.dlt.trainer` runs a
  pipelined training loop in simulated time — I/O workers prefetch
  mini-batches through a storage reader while a compute process consumes
  them with per-model iteration costs (:mod:`repro.dlt.models`).
* **Learning + accuracy** (Fig 13): :mod:`repro.dlt.sgd` trains a real
  numpy classifier on :mod:`repro.dlt.synthetic` data, comparing
  shuffle-over-dataset against chunk-wise shuffle orders.
"""

from repro.dlt.dataloader import Batch, SimDataLoader
from repro.dlt.models import (
    TrainingJob,
    iterations_per_epoch,
    model_profile,
)
from repro.dlt.sgd import MlpClassifier, SoftmaxClassifier, top_k_accuracy
from repro.dlt.synthetic import SyntheticDataset, decode_sample, encode_sample
from repro.dlt.trainer import IterationTiming, TrainingResult, run_training

__all__ = [
    "Batch",
    "IterationTiming",
    "SimDataLoader",
    "MlpClassifier",
    "SoftmaxClassifier",
    "SyntheticDataset",
    "TrainingJob",
    "TrainingResult",
    "decode_sample",
    "encode_sample",
    "iterations_per_epoch",
    "model_profile",
    "run_training",
    "top_k_accuracy",
]
