"""Experiment harness regenerating every table and figure of §6.

One entry point per paper artifact (see DESIGN.md §4 for the index):

========  ====================================================
Table 2   :func:`repro.bench.experiments.table2_read_bandwidth`
Fig 6     :func:`repro.bench.experiments.fig6_cache_degradation`
Fig 9     :func:`repro.bench.experiments.fig9_write_throughput`
Fig 10a   :func:`repro.bench.experiments.fig10a_metadata_scaling`
Fig 10b   :func:`repro.bench.experiments.fig10b_snapshot_scaling`
Fig 10c   :func:`repro.bench.experiments.fig10c_ls_elapsed`
Fig 11a   :func:`repro.bench.experiments.fig11a_read_scaling`
Fig 11b   :func:`repro.bench.experiments.fig11b_cache_recovery`
Fig 12    :func:`repro.bench.experiments.fig12_shuffle_bandwidth`
Fig 13    :func:`repro.bench.experiments.fig13_shuffle_accuracy`
Fig 14    :func:`repro.bench.experiments.fig14_data_access_time`
Fig 15    :func:`repro.bench.experiments.fig15_training_time`
========  ====================================================

Experiments run scaled-down workloads (file counts shrunk, thread counts
trimmed) and report *rates and ratios*, which are the quantities the
paper's claims are about.  Every function returns an
:class:`repro.bench.harness.ExperimentResult` whose ``rows`` can be
printed with :func:`repro.bench.reporting.format_table`.
"""

from repro.bench.harness import ExperimentResult
from repro.bench.reporting import format_table, shape_check

__all__ = ["ExperimentResult", "format_table", "shape_check"]
