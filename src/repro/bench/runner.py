"""Experiment runner CLI.

Regenerate any paper table/figure from the command line::

    python -m repro.bench.runner table2 fig12      # specific artifacts
    python -m repro.bench.runner --all             # everything
    python -m repro.bench.runner --list            # what's available
    python -m repro.bench.runner fig12 --csv out/  # also dump rows as CSV

Prints each experiment's paper-style table and notes; ``--csv DIR``
additionally writes one ``<experiment>.csv`` per artifact (the series a
plotting tool would consume) and ``--json DIR`` one
``BENCH_<experiment>.json`` (rows + notes, machine-readable).  Exits
non-zero if an experiment raises.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.harness import ExperimentResult
from repro.bench.reporting import format_result, write_json


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.bench.runner",
        description="Regenerate the DIESEL paper's evaluation artifacts",
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help=f"artifact ids: {', '.join(ALL_EXPERIMENTS)}",
    )
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also write each experiment's rows to DIR/<id>.csv")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="also write each experiment (rows + notes) "
                             "to DIR/BENCH_<id>.json")
    return parser


def write_csv(result: ExperimentResult, path: Path) -> None:
    """Dump an experiment's rows as CSV (union of all row columns)."""
    columns: list[str] = []
    for row in result.rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns, restval="")
        writer.writeheader()
        for row in result.rows:
            writer.writerow(row)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list:
        for name, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {doc}")
        return 0
    names = list(ALL_EXPERIMENTS) if args.all else args.experiments
    if not names:
        print("nothing to run; pass experiment ids, --all, or --list",
              file=sys.stderr)
        return 2
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    csv_dir: Optional[Path] = None
    if args.csv is not None:
        csv_dir = Path(args.csv)
        csv_dir.mkdir(parents=True, exist_ok=True)
    json_dir: Optional[Path] = None
    if args.json is not None:
        json_dir = Path(args.json)
        json_dir.mkdir(parents=True, exist_ok=True)
    failures = 0
    for name in names:
        try:
            result = ALL_EXPERIMENTS[name]()
        except Exception as exc:  # surface, keep going
            print(f"== {name} FAILED: {exc!r}", file=sys.stderr)
            failures += 1
            continue
        print(format_result(result))
        if csv_dir is not None:
            target = csv_dir / f"{name}.csv"
            write_csv(result, target)
            print(f"(rows written to {target})")
        if json_dir is not None:
            target = json_dir / f"BENCH_{name}.json"
            write_json(result, target)
            print(f"(result written to {target})")
        print()
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
