"""One reproduction function per table/figure of the paper's §6.

Workloads are scaled down (file counts, thread counts) for tractable
run times; all reported quantities are rates, latencies and ratios,
which are scale-free once the measured phase reaches steady state.
Every function returns an :class:`~repro.bench.harness.ExperimentResult`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.localfs import LocalXfs
from repro.bench.harness import ExperimentResult, timer
from repro.bench.setups import (
    Testbed,
    add_diesel,
    add_lustre,
    add_memcached,
    bulk_load_diesel,
    bulk_load_lustre,
    bulk_load_memcached,
    diesel_client_with_snapshot,
    make_testbed,
)
from repro.calibration import DEFAULT, KB, MB, MODEL_ZOO
from repro.core.config import DieselConfig
from repro.core.dist_cache import CacheClient, TaskCache
from repro.core.fuse import FuseMount
from repro.core.shuffle import chunk_adjacency, chunkwise_shuffle, full_shuffle
from repro.cluster.devices import Device
from repro.cluster.node import Node
from repro.dlt.readers import FuseReader, LustreReader
from repro.dlt.sgd import SoftmaxClassifier, train_with_orders
from repro.dlt.synthetic import SyntheticDataset
from repro.dlt.trainer import run_training
from repro.sim import Environment
from repro.workloads.filegen import generate_file

# Paper-reported reference values used for shape annotations.
PAPER = {
    "table2": {  # file size (bytes) -> (MB/s, files/s, 4K-IOPS)
        1 * KB: (33.54, 34353.45, 8588.36),
        4 * KB: (128.28, 32841.47, 32841.47),
        16 * KB: (464.44, 29724.48, 118897.92),
        64 * KB: (1317.04, 21072.64, 337162.24),
        256 * KB: (2725.93, 10903.72, 697838.08),
        1 * MB: (3104.26, 3104.26, 794690.56),
        4 * MB: (3197.68, 799.42, 818606.08),
    },
    "fig9": {
        # files/s: paper gives DIESEL >2M at 4KB, ratios vs others.
        ("diesel", 4 * KB): 2_000_000.0,
        ("ratio_vs_memcached", 4 * KB): 1.79,
        ("ratio_vs_lustre", 4 * KB): 366.7,
        ("ratio_vs_memcached", 128 * KB): 17.3,
        ("ratio_vs_lustre", 128 * KB): 127.3,
    },
    "fig10b": {"qps_1node": 8.83e6, "qps_10nodes": 88.77e6},
    "fig10c": {"lustre_ls": 35.0, "lustre_lsl": 170.0},
    "fig11a": {"diesel_api": 1.2e6, "diesel_fuse": 0.8e6,
               "memcached": 0.56e6, "lustre": 0.04e6},
    "fig12": {
        ("lustre", 4 * KB): 60.2, ("diesel-api", 4 * KB): 4317.0,
        ("diesel-fuse", 4 * KB): 3483.7,
        ("lustre", 128 * KB): 2001.8, ("diesel-api", 128 * KB): 10095.3,
        ("diesel-fuse", 128 * KB): 8712.5,
    },
    "fig15": {"io_reduction": (0.51, 0.58), "total_reduction": (0.15, 0.27)},
}


# =========================================================== Table 2
def table2_read_bandwidth(
    sizes: Sequence[int] = tuple(PAPER["table2"]),
    reads_per_size: int = 200,
) -> ExperimentResult:
    """Table 2: read bandwidth and IOPS vs file size on the SSD cluster.

    One reader stream against the calibrated NVMe pool, exactly the
    paper's measurement; rows report MB/s, files/s and equivalent
    4K-IOPS alongside the paper's numbers.
    """
    result = ExperimentResult("read bandwidth vs file size", "Table 2")
    with timer(result):
        for size in sizes:
            env = Environment()
            device = Device.nvme(env)

            def reader(env=env, device=device, size=size):
                for _ in range(reads_per_size):
                    yield from device.read(size)
                return env.now

            proc = env.process(reader())
            elapsed = env.run(until=proc)
            files_per_s = reads_per_size / elapsed
            mb_per_s = files_per_s * size / MB
            iops_4k = files_per_s * (size / (4 * KB))
            paper_mb, paper_fps, paper_iops = PAPER["table2"][size]
            result.add(
                file_size=size,
                mbps=mb_per_s,
                files_per_s=files_per_s,
                iops_4k=iops_4k,
                paper_mbps=paper_mb,
                paper_files_per_s=paper_fps,
                paper_iops_4k=paper_iops,
            )
        first, last = result.rows[0], result.rows[-1]
        result.note(
            f"4MB equivalent 4K-IOPS is "
            f"{last['iops_4k'] / result.one(file_size=4 * KB)['iops_4k']:.1f}x "
            f"the 4KB value (paper: ~25x)"
        )
        result.note(
            f"bandwidth grows {last['mbps'] / first['mbps']:.0f}x from 1KB to 4MB"
        )
    return result


# =========================================================== Fig 9
def fig9_write_throughput(
    files_per_proc: int = 120,
    n_client_nodes: int = 4,
    procs_per_node: int = 16,
    sizes: Sequence[int] = (4 * KB, 128 * KB),
) -> ExperimentResult:
    """Fig 9: concurrent small-file write throughput, three systems.

    4 nodes × 16 writer processes (the paper's 64 MPI procs).  DIESEL
    clients aggregate into 4 MB chunks; Memcached SETs one RPC per file;
    Lustre pays MDS + journaled OSS per create.
    """
    result = ExperimentResult("write throughput", "Fig 9")
    with timer(result):
        for size in sizes:
            rates: Dict[str, float] = {}
            total_files = n_client_nodes * procs_per_node * files_per_proc

            def paths_for(proc_id: int) -> list[str]:
                return [
                    f"/w/p{proc_id:03d}/f{i:05d}.bin"
                    for i in range(files_per_proc)
                ]

            payload = b"\xab" * size

            # --- DIESEL ---
            from repro.core.client import DieselClient

            tb = make_testbed(n_compute=n_client_nodes)
            add_diesel(tb)
            clients = [
                DieselClient(
                    tb.env, tb.compute_nodes[p % n_client_nodes],
                    tb.diesel_servers, "writeset", name=f"w{p}", rank=p,
                    calibration=tb.cal,
                )
                for p in range(n_client_nodes * procs_per_node)
            ]

            def diesel_writer(client, proc_id):
                for path in paths_for(proc_id):
                    yield from client.put(path, payload)
                yield from client.flush()

            t0 = tb.env.now
            tb.run_all(
                diesel_writer(c, p) for p, c in enumerate(clients)
            )
            rates["diesel"] = total_files / (tb.env.now - t0)

            # --- Memcached ---
            tb = make_testbed(n_compute=n_client_nodes + 10)
            mc = add_memcached(tb, n_servers=10)
            writer_nodes = tb.compute_nodes[10:]

            def mc_writer(node, proc_id):
                for path in paths_for(proc_id):
                    yield from mc.set(node, path, payload)

            t0 = tb.env.now
            tb.run_all(
                mc_writer(writer_nodes[p % n_client_nodes], p)
                for p in range(n_client_nodes * procs_per_node)
            )
            rates["memcached"] = total_files / (tb.env.now - t0)

            # --- Lustre ---
            tb = make_testbed(n_compute=n_client_nodes)
            fs = add_lustre(tb)

            def lustre_writer(node, proc_id):
                for path in paths_for(proc_id):
                    yield from fs.write_file(node, path, payload)

            t0 = tb.env.now
            tb.run_all(
                lustre_writer(tb.compute_nodes[p % n_client_nodes], p)
                for p in range(n_client_nodes * procs_per_node)
            )
            rates["lustre"] = total_files / (tb.env.now - t0)

            result.add(
                file_size=size,
                diesel_files_per_s=rates["diesel"],
                memcached_files_per_s=rates["memcached"],
                lustre_files_per_s=rates["lustre"],
                speedup_vs_memcached=rates["diesel"] / rates["memcached"],
                speedup_vs_lustre=rates["diesel"] / rates["lustre"],
                paper_speedup_vs_memcached=PAPER["fig9"][
                    ("ratio_vs_memcached", size)
                ],
                paper_speedup_vs_lustre=PAPER["fig9"][("ratio_vs_lustre", size)],
            )
        result.note("paper: DIESEL writes >2M 4KB files/s with 64 procs")
    return result


# =========================================================== Fig 10a/10b
def fig10a_metadata_scaling(
    server_counts: Sequence[int] = (1, 3, 5),
    node_counts: Sequence[int] = (1, 2, 3, 5, 7, 10),
    threads_per_node: int = 16,
    queries_per_thread: int = 60,
) -> ExperimentResult:
    """Fig 10a: metadata QPS vs #client nodes for 1/3/5 DIESEL servers.

    Clients issue stat() RPCs (get-file-size, the paper's workload)
    against the server pool; per-call client think time is the
    calibrated POSIX/framework overhead.  Curves flatten when the server
    pool saturates — earlier with fewer servers.
    """
    result = ExperimentResult("metadata scaling (server path)", "Fig 10a")
    think = DEFAULT.diesel.metadata_think_s
    with timer(result):
        for n_servers in server_counts:
            for n_nodes in node_counts:
                tb = make_testbed(n_compute=n_nodes)
                add_diesel(tb, n_servers=n_servers)
                files = {f"/m/f{i:04d}": b"x" * 64 for i in range(256)}
                bulk_load_diesel(tb, "meta", files, chunk_size=64 * 1024)
                paths = list(files)
                servers = tb.diesel_servers

                def client(node, tid):
                    rng = random.Random(tid)
                    for q in range(queries_per_thread):
                        server = servers[(tid + q) % len(servers)]
                        yield from server.call(
                            node, "stat", "meta", rng.choice(paths)
                        )
                        yield tb.env.timeout(think)

                total = n_nodes * threads_per_node * queries_per_thread
                t0 = tb.env.now
                tb.run_all(
                    client(tb.compute_nodes[t % n_nodes], t)
                    for t in range(n_nodes * threads_per_node)
                )
                result.add(
                    servers=n_servers,
                    client_nodes=n_nodes,
                    qps=total / (tb.env.now - t0),
                )
        result.note("paper: 1 server flattens ~2 nodes, 3 ~7 nodes, "
                    "5 approach the 0.97M QPS Redis cap")
    return result


def fig10b_snapshot_scaling(
    node_counts: Sequence[int] = (1, 2, 4, 6, 8, 10),
    threads_per_node: int = 16,
    lookups_per_thread: int = 50_000,
) -> ExperimentResult:
    """Fig 10b: metadata QPS with snapshots — linear in client count.

    With a loaded snapshot every lookup is a local hashmap hit
    (calibrated 1.81 µs), so aggregate QPS is exactly linear; no shared
    resource appears anywhere on the path.
    """
    result = ExperimentResult("metadata scaling (snapshot path)", "Fig 10b")
    per_lookup = DEFAULT.diesel.client_meta_lookup_s
    with timer(result):
        for n_nodes in node_counts:
            threads = n_nodes * threads_per_node
            # Local-only path: closed-form per-thread rate; simulate one
            # thread to keep the event loop honest.
            env = Environment()

            def one_thread(env=env):
                for _ in range(1000):
                    yield env.timeout(per_lookup)
                return env.now

            proc = env.process(one_thread())
            elapsed = env.run(until=proc)
            per_thread_qps = 1000 / elapsed
            result.add(
                client_nodes=n_nodes,
                qps=per_thread_qps * threads,
                paper_qps=PAPER["fig10b"]["qps_1node"] * n_nodes,
            )
        result.note("paper: 8.83M QPS at 1 node -> 88.77M at 10 (linear)")
    return result


def fig10c_ls_elapsed(
    n_files: int = 4_000,
    n_dirs: int = 100,
    full_scale_files: int = 1_281_167,
) -> ExperimentResult:
    """Fig 10c: `ls -R` / `ls -lR` on ImageNet-1K: Lustre vs XFS vs
    DIESEL-FUSE.

    Runs a scaled directory tree and extrapolates per-entry costs to the
    full 1.28M-file dataset (metadata walks are embarrassingly linear in
    entry count).  All systems additionally pay the single-threaded `ls`
    process's own per-entry work (dirent decoding, sorting, output) —
    the paper shows this dominating `ls -R` for Lustre *and* DIESEL-FUSE
    alike (~30-40 s for 1.28 M files ⇒ ~25 µs/entry).
    """
    result = ExperimentResult("ls -R / ls -lR elapsed", "Fig 10c")
    scale = full_scale_files / n_files
    payload = b"z" * 512
    LS_CLIENT_PER_ENTRY_S = 25e-6
    ls_client_cost = full_scale_files * LS_CLIENT_PER_ENTRY_S

    def tree_files():
        return {
            f"/imagenet/class{i % n_dirs:04d}/img{i:06d}.jpg": payload
            for i in range(n_files)
        }

    with timer(result):
        # --- Lustre ---
        tb = make_testbed(n_compute=1)
        fs = add_lustre(tb)
        bulk_load_lustre(tb, tree_files())
        node = tb.compute_nodes[0]

        def lustre_ls(with_sizes):
            t0 = tb.env.now
            yield from fs.ls_recursive(node, "/imagenet", with_sizes=with_sizes)
            return tb.env.now - t0

        lustre_plain = tb.run(lustre_ls(False)) * scale
        lustre_sizes = tb.run(lustre_ls(True)) * scale

        # --- XFS ---
        env = Environment()
        xfs = LocalXfs(env, Node(env, "local"))
        for path, data in tree_files().items():
            xfs.write_file(path, data)

        def xfs_ls(with_sizes):
            t0 = env.now
            yield from xfs.ls_recursive("/imagenet", with_sizes=with_sizes)
            return env.now - t0

        proc = env.process(xfs_ls(False))
        xfs_plain = env.run(until=proc) * scale
        proc = env.process(xfs_ls(True))
        xfs_sizes = env.run(until=proc) * scale

        # --- DIESEL-FUSE (snapshot loaded) ---
        tb = make_testbed(n_compute=1)
        add_diesel(tb)
        bulk_load_diesel(tb, "imagenet", tree_files())
        client = diesel_client_with_snapshot(
            tb, "imagenet", tb.compute_nodes[0], "lsclient"
        )
        fuse = FuseMount([client], tb.cal)

        def fuse_ls(with_sizes):
            t0 = tb.env.now
            yield from fuse.ls_recursive("/imagenet", with_sizes=with_sizes)
            return tb.env.now - t0

        fuse_plain = tb.run(fuse_ls(False)) * scale
        fuse_sizes = tb.run(fuse_ls(True)) * scale

        for system, plain, sizes in (
            ("lustre", lustre_plain, lustre_sizes),
            ("xfs", xfs_plain, xfs_sizes),
            ("diesel-fuse", fuse_plain, fuse_sizes),
        ):
            plain += ls_client_cost
            sizes += ls_client_cost
            result.add(
                system=system,
                ls_R_seconds=plain,
                ls_lR_seconds=sizes,
                stat_penalty=sizes / plain if plain else float("inf"),
            )
        result.note(
            "paper: Lustre ls -R ~30-40s, ls -lR ~170s; DIESEL-FUSE flat "
            "(sizes served from the in-memory snapshot at O(1))"
        )
    return result


# =========================================================== Fig 6
def fig6_cache_degradation(
    n_servers: int = 20,
    n_clients: int = 80,
    files_per_iteration: int = 32,
    iterations: int = 100,
    kill_at: Sequence[int] = (30, 70),
    n_files: int = 4_000,
    file_size: int = 110 * KB,
) -> ExperimentResult:
    """Fig 6: Memcached read speed vs cache-hit ratio under node failures.

    Clients iterate over random file batches from a Memcached cluster;
    one instance is disabled at iteration 30 and a second at 70.  Misses
    fall back to Lustre, whose op-limited small-file path cannot absorb
    even a few percent of the traffic — aggregate speed collapses far
    more than the miss fraction alone suggests.
    """
    result = ExperimentResult("cache hit ratio vs read speed", "Fig 6")
    with timer(result):
        tb = make_testbed(n_compute=n_servers + n_clients)
        mc = add_memcached(tb, n_servers=n_servers)
        fs = add_lustre(tb)
        payload = b"\xcd" * file_size
        files = {f"/ds/f{i:05d}.jpg": payload for i in range(n_files)}
        bulk_load_memcached(tb, files)
        bulk_load_lustre(tb, files)
        paths = list(files)
        client_nodes = tb.compute_nodes[n_servers:]

        iteration_done = [0] * n_clients
        iteration_times: List[List[float]] = [[] for _ in range(iterations)]
        iteration_hits: List[List[int]] = [[] for _ in range(iterations)]

        def client(cid: int):
            node = client_nodes[cid % len(client_nodes)]
            rng = random.Random(cid)
            for it in range(iterations):
                t0 = tb.env.now
                hits = 0
                for _ in range(files_per_iteration):
                    path = rng.choice(paths)
                    value = yield from mc.get(node, path)
                    if value is None:
                        # Miss: fall back to the shared filesystem.
                        yield from fs.read_file(node, path)
                    else:
                        hits += 1
                iteration_times[it].append(tb.env.now - t0)
                iteration_hits[it].append(hits)
                iteration_done[cid] = it + 1

        # Kill one instance when the slowest client reaches each trigger.
        def killer(threshold: int, which: int):
            while min(iteration_done) < threshold:
                yield tb.env.timeout(1e-3)
            victim = sorted(mc.servers)[which]
            mc.kill_server(victim)

        procs = [tb.env.process(client(c)) for c in range(n_clients)]
        for k, threshold in enumerate(kill_at):
            tb.env.process(killer(threshold, k))
        tb.env.run(until=tb.env.all_of(procs))

        for it in range(iterations):
            times = iteration_times[it]
            hits = sum(iteration_hits[it])
            total = files_per_iteration * len(times)
            mean_t = sum(times) / len(times)
            result.add(
                iteration=it,
                read_speed_files_per_s=total / sum(times) * len(times),
                mean_iteration_s=mean_t,
                hit_ratio=hits / total,
            )
        def window_mean(lo: int, hi: int) -> float:
            values = [
                r["read_speed_files_per_s"] for r in result.rows[lo:hi]
            ]
            return float(np.mean(values)) if values else float("nan")

        healthy = window_mean(5, min(25, kill_at[0]))
        one_dead = window_mean(kill_at[0] + 15, kill_at[-1] - 5)
        two_dead = window_mean(kill_at[-1] + 15, iterations)
        result.note(
            f"speed: healthy {healthy:,.0f} -> one node dead {one_dead:,.0f} "
            f"({1 - one_dead / healthy:.0%} drop) -> two dead {two_dead:,.0f} "
            f"({1 - two_dead / healthy:.0%} drop)"
        )
        result.note("paper: ~5% misses reduce reading speed by ~90%")
    return result


# =========================================================== Fig 11a
def fig11a_read_scaling(
    node_counts: Sequence[int] = (1, 2, 4, 6, 8, 10),
    clients_per_node: int = 16,
    reads_per_client: int = 40,
    n_files: int = 2_000,
    file_size: int = 4 * KB,
) -> ExperimentResult:
    """Fig 11a: random 4KB read QPS vs client count for four systems.

    DIESEL-API reads through the warmed task-grained cache; DIESEL-FUSE
    adds the kernel-crossing overhead; Memcached serves per-file RPCs
    through its consistent-hash cluster; Lustre reads files directly.
    """
    result = ExperimentResult("4KB random read scaling", "Fig 11a")
    payload = b"\xef" * file_size
    files = {f"/r/f{i:05d}": payload for i in range(n_files)}
    paths = list(files)
    with timer(result):
        for n_nodes in node_counts:
            n_clients = n_nodes * clients_per_node
            total_reads = n_clients * reads_per_client
            qps: Dict[str, float] = {}

            # --- DIESEL (API and FUSE share one warmed deployment) ---
            for flavor in ("api", "fuse"):
                tb = make_testbed(n_compute=n_nodes)
                add_diesel(tb)
                bulk_load_diesel(tb, "ds", files, chunk_size=4 * MB)
                clients = [
                    diesel_client_with_snapshot(
                        tb, "ds", tb.compute_nodes[c % n_nodes], f"c{c}", rank=c
                    )
                    for c in range(n_clients)
                ]
                cache = TaskCache(
                    tb.env, tb.fabric, tb.diesel, "ds",
                    [c.as_cache_client() for c in clients],
                    policy="oneshot", calibration=tb.cal,
                )
                tb.run(cache.register())
                tb.run(cache.wait_warm())
                for c in clients:
                    c.attach_cache(cache)
                mounts = (
                    [FuseMount([c], tb.cal) for c in clients]
                    if flavor == "fuse" else None
                )

                def reader(cid: int):
                    rng = random.Random(cid)
                    for _ in range(reads_per_client):
                        path = rng.choice(paths)
                        if mounts is None:
                            yield from clients[cid].get(path)
                        else:
                            yield from mounts[cid].read_file(path)

                t0 = tb.env.now
                tb.run_all(reader(c) for c in range(n_clients))
                qps[f"diesel-{flavor}"] = total_reads / (tb.env.now - t0)

            # --- Memcached ---
            tb = make_testbed(n_compute=10 + n_nodes)
            mc = add_memcached(tb, n_servers=10)
            bulk_load_memcached(tb, files)
            reader_nodes = tb.compute_nodes[10:]

            def mc_reader(cid: int):
                node = reader_nodes[cid % n_nodes]
                rng = random.Random(cid)
                for _ in range(reads_per_client):
                    yield from mc.get(node, rng.choice(paths))

            t0 = tb.env.now
            tb.run_all(mc_reader(c) for c in range(n_clients))
            qps["memcached"] = total_reads / (tb.env.now - t0)

            # --- Lustre ---
            tb = make_testbed(n_compute=n_nodes)
            fs = add_lustre(tb)
            bulk_load_lustre(tb, files)

            def lustre_reader(cid: int):
                node = tb.compute_nodes[cid % n_nodes]
                rng = random.Random(cid)
                for _ in range(reads_per_client):
                    yield from fs.read_file(node, rng.choice(paths))

            t0 = tb.env.now
            tb.run_all(lustre_reader(c) for c in range(n_clients))
            qps["lustre"] = total_reads / (tb.env.now - t0)

            result.add(
                client_nodes=n_nodes,
                diesel_api_qps=qps["diesel-api"],
                diesel_fuse_qps=qps["diesel-fuse"],
                memcached_qps=qps["memcached"],
                lustre_qps=qps["lustre"],
                fuse_to_api=qps["diesel-fuse"] / qps["diesel-api"],
            )
        last = result.rows[-1]
        result.note(
            "paper @10 nodes: API ~1.2M, FUSE ~0.8M (>60% of API), "
            "Memcached ~0.56M, Lustre ~0.04M"
        )
        result.note(
            f"measured @{last['client_nodes']} nodes: API "
            f"{last['diesel_api_qps']:,.0f}, FUSE {last['diesel_fuse_qps']:,.0f}, "
            f"Memcached {last['memcached_qps']:,.0f}, Lustre "
            f"{last['lustre_qps']:,.0f}"
        )
    return result


# =========================================================== Fig 11b
def fig11b_cache_recovery(
    n_files: int = 3_000,
    file_size: int = 110 * KB,
    n_nodes: int = 10,
    batch_size: int = 64,
    memcached_start_hit: float = 0.8,
) -> ExperimentResult:
    """Fig 11b: cache load/recovery time, DIESEL vs Memcached.

    DIESEL warms from 0% by streaming whole chunks (oneshot prefetch)
    while a foreground reader measures per-batch read times; Memcached
    starts at 80% hit ratio (as in the paper — a 0% start would take
    excessively long) and refills per file from Lustre on each miss.
    """
    result = ExperimentResult("cache loading / recovery time", "Fig 11b")
    payload_files = {
        f"/ds/f{i:05d}.jpg": b"\x42" * file_size for i in range(n_files)
    }
    paths = list(payload_files)
    with timer(result):
        # --- DIESEL: 0% -> 100% via background chunk prefetch ---
        tb = make_testbed(n_compute=n_nodes)
        add_diesel(tb)
        bulk_load_diesel(tb, "ds", payload_files, chunk_size=4 * MB)
        clients = [
            diesel_client_with_snapshot(
                tb, "ds", tb.compute_nodes[c % n_nodes], f"c{c}", rank=c
            )
            for c in range(n_nodes)
        ]
        cache = TaskCache(
            tb.env, tb.fabric, tb.diesel, "ds",
            [c.as_cache_client() for c in clients],
            policy="oneshot", calibration=tb.cal,
        )
        tb.run(cache.register())  # prefetch begins in the background
        warm_done: Dict[str, float] = {}

        def warm_waiter():
            yield from cache.wait_warm()
            warm_done["at"] = tb.env.now

        tb.env.process(warm_waiter())

        def diesel_reader():
            rng = random.Random(0)
            records = []
            index = clients[0].index
            while cache.cached_chunks() < len(index.chunk_ids()):
                t0 = tb.env.now
                for _ in range(batch_size):
                    rec = index.lookup(rng.choice(paths))
                    yield from cache.read_file(
                        clients[0].as_cache_client(), rec
                    )
                records.append((tb.env.now, tb.env.now - t0))
            # A few steady-state batches after full warm-up.
            for _ in range(5):
                t0 = tb.env.now
                for _ in range(batch_size):
                    rec = index.lookup(rng.choice(paths))
                    yield from cache.read_file(
                        clients[0].as_cache_client(), rec
                    )
                records.append((tb.env.now, tb.env.now - t0))
            return records

        records = tb.run(diesel_reader())
        tb.env.run()  # drain the warm waiter
        diesel_done_at = warm_done.get("at", tb.env.now)
        for ts, dur in records:
            result.add(system="diesel", at_s=ts, batch_read_s=dur)

        # --- Memcached: 80% -> 100%, per-file refill from Lustre ---
        tb = make_testbed(n_compute=10 + 1)
        mc = add_memcached(tb, n_servers=10)
        fs = add_lustre(tb)
        bulk_load_lustre(tb, payload_files)
        warm = dict(list(payload_files.items())[: int(n_files * memcached_start_hit)])
        bulk_load_memcached(tb, warm)
        node = tb.compute_nodes[10]

        def mc_reader():
            rng = random.Random(0)
            records = []
            missing = set(paths) - set(warm)
            while missing:
                t0 = tb.env.now
                for _ in range(batch_size):
                    path = rng.choice(paths)
                    value = yield from mc.get(node, path)
                    if value is None:
                        data = yield from fs.read_file(node, path)
                        yield from mc.set(node, path, data)
                        missing.discard(path)
                records.append((tb.env.now, tb.env.now - t0))
            return records

        mc_records = tb.run(mc_reader())
        mc_done_at = tb.env.now
        for ts, dur in mc_records:
            result.add(system="memcached", at_s=ts, batch_read_s=dur)

        scale = 1_281_167 / n_files  # extrapolate to full ImageNet-1K
        result.note(
            f"DIESEL loaded 100% of the dataset in {diesel_done_at:.2f}s; "
            f"Memcached needed {mc_done_at:.2f}s to refill just the last "
            f"{1 - memcached_start_hit:.0%} "
            f"(x{mc_done_at / diesel_done_at:.0f} slower for 1/5 the data)"
        )
        result.note(
            f"extrapolated to full ImageNet-1K: DIESEL "
            f"{diesel_done_at * scale:.0f}s for 100%, Memcached "
            f"{mc_done_at * scale:.0f}s for the last 20% "
            f"(paper: ~10s vs >100s)"
        )
    return result


# =========================================================== Fig 12
def fig12_shuffle_bandwidth(
    n_nodes: int = 10,
    threads_per_node: int = 16,
    sizes: Sequence[int] = (4 * KB, 128 * KB),
    files_per_thread: int = 30,
    group_size: int = 2,
) -> ExperimentResult:
    """Fig 12: read bandwidth with chunk-wise shuffle, memory-constrained.

    One shared chunk-wise epoch plan per task (as the training framework
    generates); each node runs one DIESEL client (the FUSE mount's shared
    cache, \u00a75) serving its 16 I/O threads, which walk the node's
    contiguous slice of the plan together \u2014 so each data chunk is fetched
    from storage approximately once.  Lustre reads the same files in a
    fully shuffled order.  At 4 KB the win is per-op cost elimination
    (paper: ~70\u00d7); at 128 KB both systems move real bytes and DIESEL is
    bound by aggregate storage bandwidth (paper: ~5\u00d7).
    """
    result = ExperimentResult("read bandwidth, chunk-wise shuffle", "Fig 12")
    with timer(result):
        for size in sizes:
            n_threads = n_nodes * threads_per_node
            n_files = n_threads * files_per_thread
            payload = b"\x5a" * size
            files = {f"/sh/f{i:06d}": payload for i in range(n_files)}
            total_bytes = n_files * size
            rates: Dict[str, float] = {}

            for flavor in ("api", "fuse"):
                tb = make_testbed(n_compute=n_nodes)
                add_diesel(tb)
                bulk_load_diesel(tb, "ds", files, chunk_size=4 * MB)
                node_clients = [
                    diesel_client_with_snapshot(
                        tb, "ds", tb.compute_nodes[n], f"mount{n}", rank=n
                    )
                    for n in range(n_nodes)
                ]
                for c in node_clients:
                    c.enable_shuffle(group_size=group_size)
                # One shared epoch order for the whole task.
                plan = node_clients[0].epoch_file_list(seed=1).files
                block = len(plan) // n_nodes
                mounts = (
                    [FuseMount([c], tb.cal) for c in node_clients]
                    if flavor == "fuse" else None
                )

                def reader(node_idx: int, thread_idx: int):
                    my = plan[node_idx * block : (node_idx + 1) * block]
                    for path in my[thread_idx::threads_per_node]:
                        if mounts is None:
                            yield from node_clients[node_idx].get(path)
                        else:
                            yield from mounts[node_idx].read_file(path)

                t0 = tb.env.now
                tb.run_all(
                    reader(n, t)
                    for n in range(n_nodes)
                    for t in range(threads_per_node)
                )
                rates[f"diesel-{flavor}"] = total_bytes / (tb.env.now - t0)

            # --- Lustre, fully shuffled order ---
            tb = make_testbed(n_compute=n_nodes)
            fs = add_lustre(tb)
            bulk_load_lustre(tb, files)
            order = full_shuffle(list(files), random.Random(0))

            def lustre_reader(tid: int):
                node = tb.compute_nodes[tid % n_nodes]
                lo = tid * files_per_thread
                for path in order[lo : lo + files_per_thread]:
                    yield from fs.read_file(node, path)

            t0 = tb.env.now
            tb.run_all(lustre_reader(t) for t in range(n_threads))
            rates["lustre"] = total_bytes / (tb.env.now - t0)

            result.add(
                file_size=size,
                lustre_mbps=rates["lustre"] / MB,
                diesel_api_mbps=rates["diesel-api"] / MB,
                diesel_fuse_mbps=rates["diesel-fuse"] / MB,
                api_speedup=rates["diesel-api"] / rates["lustre"],
                fuse_speedup=rates["diesel-fuse"] / rates["lustre"],
                paper_lustre_mbps=PAPER["fig12"][("lustre", size)],
                paper_api_mbps=PAPER["fig12"][("diesel-api", size)],
                paper_fuse_mbps=PAPER["fig12"][("diesel-fuse", size)],
            )
        result.note("paper 4KB: API 71.7x and FUSE 57.8x over Lustre; "
                    "128KB: 5.0x and 4.4x")
    return result


# =========================================================== Fig 13
def fig13_shuffle_accuracy(
    n_samples: int = 4000,
    n_features: int = 32,
    n_classes: int = 10,
    samples_per_chunk: int = 25,
    group_sizes: Sequence[int] = (4, 16),
    epochs: int = 40,
    batch_size: int = 32,
    seed: int = 7,
) -> ExperimentResult:
    """Fig 13: model accuracy under chunk-wise vs full dataset shuffle.

    Real SGD on synthetic 10-class data (see DESIGN.md §2 for the
    substitution).  Samples are written to chunks in class-sorted order —
    the adversarial layout ImageNet-style ingestion produces — so a
    too-small group size genuinely hurts, and paper-like group sizes
    must (and do) recover full-shuffle accuracy.
    """
    result = ExperimentResult("top-1/top-5 accuracy vs shuffle strategy",
                              "Fig 13")
    with timer(result):
        data = SyntheticDataset.make(
            n_samples=n_samples, n_features=n_features, n_classes=n_classes,
            class_sep=2.2, noise=1.2, seed=seed,
        )
        train, test = data.split(test_fraction=0.25, seed=seed)
        # Class-sorted chunk layout (ingestion order: directory by class).
        sorted_idx = np.argsort(train.y, kind="stable")
        chunks: Dict[int, list[int]] = {}
        for pos, sample_idx in enumerate(sorted_idx):
            chunks.setdefault(pos // samples_per_chunk, []).append(
                int(sample_idx)
            )

        def chunkwise_orders(group_size: int) -> list[np.ndarray]:
            orders = []
            for epoch in range(epochs):
                rng = random.Random(seed * 1000 + epoch)
                cids = list(chunks)
                rng.shuffle(cids)
                order: list[int] = []
                for lo in range(0, len(cids), group_size):
                    pooled: list[int] = []
                    for cid in cids[lo : lo + group_size]:
                        pooled.extend(chunks[cid])
                    rng.shuffle(pooled)
                    order.extend(pooled)
                orders.append(np.asarray(order))
            return orders

        def full_orders() -> list[np.ndarray]:
            rng = np.random.default_rng(seed)
            return [rng.permutation(len(train)) for _ in range(epochs)]

        def factory():
            # lr=0.1: hot enough to converge in ~40 epochs, cool enough
            # that end-of-epoch recency bias does not confound the
            # shuffle-order comparison.
            return SoftmaxClassifier(
                n_features, n_classes, lr=0.1, seed=seed
            )

        strategies = {"shuffle dataset": full_orders()}
        for g in group_sizes:
            strategies[f"chunk-wise g={g}"] = chunkwise_orders(g)

        for name, orders in strategies.items():
            history = train_with_orders(
                factory, train.X, train.y, test.X, test.y, orders,
                batch_size=batch_size,
            )
            for h in history:
                result.add(strategy=name, epoch=h["epoch"],
                           top1=h["top1"], top5=h["top5"])

        def final(name: str) -> float:
            rows = result.where(strategy=name)
            return float(np.mean([r["top1"] for r in rows[-5:]]))

        base = final("shuffle dataset")
        for g in group_sizes:
            delta = final(f"chunk-wise g={g}") - base
            result.note(
                f"final top-1 delta (chunk-wise g={g} vs full shuffle): "
                f"{delta:+.3f}"
            )
        result.note("paper: chunk-wise shuffle matches full-shuffle "
                    "accuracy and convergence for adequate group sizes")
    return result


# =========================================================== Fig 14 / 15
def _training_comparison(
    models: Sequence[str],
    epochs: int,
    n_files: int,
    file_size: int,
    batch_size: int,
    n_nodes: int = 4,
    io_workers: int = 8,
    group_size: int = 4,
    lustre_contention: float = 8.0,
):
    """Shared Fig 14/15 machinery: run each model on Lustre and
    DIESEL-FUSE, returning {model: {system: TrainingResult}}.

    ``lustre_contention`` multiplies the Lustre OSS per-op cost to model
    the shared production cluster the paper measures on (\u00a72.1: "many
    training tasks are running concurrently"); the dedicated-per-task
    DIESEL cache is immune to it by design, which is the point of Fig 14.

    Per-iteration compute is scaled by ``batch_size / 256`` so the
    per-*file* compute budget — and hence the I/O demand rate the storage
    must sustain — matches the paper's batch-256 jobs.
    """
    from dataclasses import replace as dc_replace

    payload = b"\x11" * file_size
    files = {f"/im/f{i:06d}.jpg": payload for i in range(n_files)}
    out: Dict[str, Dict[str, object]] = {}
    for model_name in models:
        profile = dc_replace(
            MODEL_ZOO[model_name],
            compute_s=MODEL_ZOO[model_name].compute_s * batch_size / 256,
        )
        out[model_name] = {}

        # --- Lustre under background tenant contention ---
        tb = make_testbed(n_compute=n_nodes)
        fs = add_lustre(tb)
        fs.oss.per_op_s *= lustre_contention
        bulk_load_lustre(tb, files)
        reader = LustreReader(fs, tb.compute_nodes[0], list(files))
        out[model_name]["lustre"] = tb.run(
            run_training(tb.env, reader, profile, epochs=epochs,
                         batch_size=batch_size, io_workers=io_workers,
                         model_name=model_name)
        )

        # --- DIESEL-FUSE, chunk-wise shuffle ---
        tb = make_testbed(n_compute=n_nodes)
        add_diesel(tb)
        bulk_load_diesel(tb, "im", files, chunk_size=4 * MB)
        client = diesel_client_with_snapshot(
            tb, "im", tb.compute_nodes[0], "trainer",
            config=DieselConfig(shuffle_group_size=group_size),
        )
        client.enable_shuffle(group_size=group_size)
        mount = FuseMount([client], tb.cal)
        reader = FuseReader(mount, chunk_wise=True)
        out[model_name]["diesel-fuse"] = tb.run(
            run_training(tb.env, reader, profile, epochs=epochs,
                         batch_size=batch_size, io_workers=io_workers,
                         model_name=model_name)
        )
    return out


def fig14_data_access_time(
    models: Sequence[str] = ("alexnet", "vgg11", "resnet18", "resnet50"),
    epochs: int = 3,
    n_files: int = 1_500,
    file_size: int = 110 * KB,
    batch_size: int = 32,
) -> ExperimentResult:
    """Fig 14: per-iteration data access time, Lustre vs DIESEL-FUSE.

    "Data access time" is what the dataloader's own instrumentation
    reports: the wall time to fetch one mini-batch (shuffle time shows up
    as the epoch-start spike).  The paper's headline: DIESEL-FUSE's
    access time is about half of Lustre's on every model.
    """
    result = ExperimentResult("per-iteration data access time", "Fig 14")
    with timer(result):
        runs = _training_comparison(models, epochs, n_files, file_size,
                                    batch_size)
        for model_name, by_system in runs.items():
            for system, tr in by_system.items():
                first_iters = [e[0] for e in tr.epoch_data_times()]
                result.add(
                    model=model_name,
                    system=system,
                    mean_fetch_s=tr.mean_fetch_time(),
                    mean_stall_s=tr.mean_data_time(),
                    epoch_start_spike_s=float(np.mean(first_iters)),
                )
        for model_name in models:
            lus = result.one(model=model_name, system="lustre")
            dfu = result.one(model=model_name, system="diesel-fuse")
            result.note(
                f"{model_name}: DIESEL-FUSE batch fetch = "
                f"{dfu['mean_fetch_s'] / lus['mean_fetch_s']:.2f}x Lustre "
                f"(paper: ~0.5x)"
            )
    return result


def fig15_training_time(
    models: Sequence[str] = ("alexnet", "vgg11", "resnet18", "resnet50"),
    epochs: int = 3,
    n_files: int = 1_500,
    file_size: int = 110 * KB,
    batch_size: int = 32,
) -> ExperimentResult:
    """Fig 15: normalized total training time, DIESEL-FUSE vs Lustre.

    Projects a full 90-epoch ImageNet-1K job from the measured
    steady-state per-iteration costs: per-iteration IO time is the
    unhidden stall plus the amortized epoch-start spike, total time is
    compute + IO (\u00a76.6 arithmetic).
    """
    result = ExperimentResult("normalized total training time", "Fig 15")
    with timer(result):
        runs = _training_comparison(models, epochs, n_files, file_size,
                                    batch_size, lustre_contention=12.0)
        from repro.dlt.models import TrainingJob, model_profile

        for model_name, by_system in runs.items():
            job = TrainingJob(model_profile(model_name),
                              n_files=1_281_167, batch_size=256, epochs=90)
            # Project the 90-epoch job from measured epoch wall times:
            # per-file wall × full dataset size × 90 epochs.
            totals, ios = {}, {}
            for system, tr in by_system.items():
                per_file_wall = float(np.mean(tr.epoch_walls)) / n_files
                totals[system] = per_file_wall * job.n_files * job.epochs
                per_file_compute = tr.total_compute_time() / (
                    len(tr.timings) * batch_size
                )
                ios[system] = (
                    (per_file_wall - per_file_compute)
                    * job.n_files * job.epochs
                )
            result.add(
                model=model_name,
                lustre_total_h=totals["lustre"] / 3600,
                diesel_total_h=totals["diesel-fuse"] / 3600,
                normalized_total=totals["diesel-fuse"] / totals["lustre"],
                io_reduction=(
                    1 - ios["diesel-fuse"] / ios["lustre"]
                    if ios["lustre"] > 0 else 0.0
                ),
                total_reduction=1 - totals["diesel-fuse"] / totals["lustre"],
            )
        result.note("paper: IO time reduced 51-58%, total time 15-27% "
                    "(total 37-66h on Lustre -> 29-57h)")
    return result


def prefetch_pipeline(
    depths: Sequence[int] = (0, 1, 2, 4),
    epochs: int = 2,
    n_files: int = 1_000,
    file_size: int = 110 * KB,
    batch_size: int = 32,
    group_size: int = 4,
    io_workers: int = 4,
    compute_per_batch_s: float = 2e-3,
    seed: int = 7,
) -> ExperimentResult:
    """Pipelined chunk prefetch: consumer stall vs ``prefetch_depth``.

    A Fig-14-style DIESEL-FUSE run repeated at several prefetch depths
    on the *same* epoch plan (fixed seed; depth 0 is the on-demand
    baseline).  Reports the dataloader's per-batch consumer stall
    (``Batch.wait_s``) and the server's chunk-read counter: with the
    single-flight map, each chunk moves at most once per epoch even
    while the pipeline and demand fetches race, so ``duplicate_reads``
    should be 0 at every depth.
    """
    from repro.dlt.dataloader import SimDataLoader

    result = ExperimentResult("prefetch pipeline stall", "§4.3 / Fig 14")
    payload = b"\x22" * file_size
    files = {f"/im/f{i:06d}.jpg": payload for i in range(n_files)}
    with timer(result):
        for depth in depths:
            tb = make_testbed(n_compute=2)
            add_diesel(tb)
            chunks = bulk_load_diesel(tb, "im", files, chunk_size=4 * MB)
            client = diesel_client_with_snapshot(
                tb, "im", tb.compute_nodes[0], "trainer",
                config=DieselConfig(
                    shuffle_group_size=group_size, prefetch_depth=depth
                ),
            )
            client.enable_shuffle(group_size=group_size)
            mount = FuseMount([client], tb.cal)
            reader = FuseReader(mount, chunk_wise=True, seed=seed)
            loader = SimDataLoader(
                tb.env, reader, batch_size=batch_size,
                num_workers=io_workers,
            )

            def job():
                waits: List[float] = []
                first_epoch_reads = 0
                for epoch in range(epochs):
                    n = yield from loader.begin_epoch(epoch)
                    for _ in range(n):
                        batch = yield from loader.next_batch()
                        waits.append(batch.wait_s)
                        yield tb.env.timeout(compute_per_batch_s)
                    if epoch == 0:
                        first_epoch_reads = tb.diesel.stats.chunk_reads
                return waits, first_epoch_reads

            waits, first_epoch_reads = tb.run(job())
            result.add(
                prefetch_depth=depth,
                mean_wait_s=float(np.mean(waits)),
                p95_wait_s=float(np.percentile(waits, 95)),
                total_stall_s=float(np.sum(waits)),
                chunk_reads=tb.diesel.stats.chunk_reads,
                # Cold epoch needs exactly one transfer per chunk; any
                # excess is a duplicate the single-flight map should
                # have prevented.
                duplicate_reads=first_epoch_reads - len(chunks),
                prefetch_hits=client.stats.prefetch_hits,
                prefetch_misses=client.stats.prefetch_misses,
                prefetch_wasted=client.stats.prefetch_wasted,
            )
        base = result.one(prefetch_depth=depths[0])
        for depth in depths[1:]:
            row = result.one(prefetch_depth=depth)
            result.note(
                f"depth {depth}: mean stall "
                f"{row['mean_wait_s'] / base['mean_wait_s']:.2f}x on-demand, "
                f"{row['duplicate_reads']} duplicate chunk transfers"
            )
    return result


def ingest_pipeline(
    depths: Sequence[int] = (1, 2, 4),
    n_chunks: int = 24,
    files_per_chunk: int = 8,
    file_size: int = 512 * KB,
    n_servers: int = 4,
) -> ExperimentResult:
    """Pipelined ingest: DL_put wall time vs ``ingest_pipeline_depth``.

    Two phases per depth.  The *ship* phase isolates what the pipeline
    overlaps — pre-sealed chunks pushed through :class:`ChunkPipeline`
    so marshalling, NIC transfer and the servers' journal+store writes
    run ``depth`` deep across the round-robin servers (§4.1.1's
    stateless-server overlap, the Fig 9 discipline).  The *put* phase is
    the end-to-end ``put_many`` ingest, where client-side packing of the
    next chunk overlaps the previous chunks' sends.  ``*_hwm`` columns
    are the client's in-flight high-water mark — 1 at depth 1, ~depth
    otherwise — and ``server_ingests`` proves every chunk still arrives
    exactly once.
    """
    from repro.bench.reporting import ratio, stats_row
    from repro.core.chunk_builder import ChunkBuilder, ChunkPipeline
    from repro.core.client import DieselClient
    from repro.util.ids import sim_id_generator

    result = ExperimentResult("pipelined chunk ingest", "§4.1.1 / Fig 9")
    chunk_size = files_per_chunk * file_size
    n_files = n_chunks * files_per_chunk
    items = [
        (f"/ing/f{i:05d}.bin", b"\x33" * file_size) for i in range(n_files)
    ]

    def fresh_client(depth: int):
        tb = make_testbed(n_compute=1)
        add_diesel(tb, n_servers=n_servers)
        client = DieselClient(
            tb.env, tb.compute_nodes[0], tb.diesel_servers, "ing",
            name="ingester",
            config=DieselConfig(
                chunk_size=chunk_size, ingest_pipeline_depth=depth
            ),
            calibration=tb.cal,
        )
        return tb, client

    with timer(result):
        for depth in depths:
            # --- ship phase: pre-sealed chunks, transfer overlap only ---
            tb, client = fresh_client(depth)
            builder = ChunkBuilder(
                sim_id_generator("ingest", clock=lambda: tb.env.now),
                chunk_size=chunk_size,
            )
            chunks = builder.build_all(items)  # zero simulated cost

            def ship():
                if depth <= 1:
                    for chunk in chunks:
                        yield from client._send_chunk(chunk)
                    return
                pipe = ChunkPipeline(
                    tb.env, client._send_chunk, depth,
                    watermark=client._note_ingest_inflight,
                )
                for chunk in chunks:
                    yield from pipe.submit(chunk)
                yield from pipe.drain()

            t0 = tb.env.now
            tb.run(ship())
            ship_s = tb.env.now - t0
            ship_hwm = max(1, client.stats.ingest_inflight_hwm)
            server_ingests = sum(
                s.stats.ingests for s in tb.diesel_servers
            )

            # --- put phase: end-to-end DL_put/DL_flush pipeline ---
            tb, client = fresh_client(depth)
            t0 = tb.env.now
            shipped = tb.run(client.put_many(items))
            put_s = tb.env.now - t0
            result.add(
                depth=depth,
                ship_s=ship_s,
                ship_hwm=ship_hwm,
                put_s=put_s,
                put_hwm=max(1, client.stats.ingest_inflight_hwm),
                chunks_shipped=shipped,
                server_ingests=server_ingests,
                **stats_row(client.stats, ["puts", "chunks_sent"]),
            )
        base = result.one(depth=depths[0])
        for depth in depths:
            row = result.one(depth=depth)
            row["ship_speedup"] = ratio(base["ship_s"], row["ship_s"])
            row["put_speedup"] = ratio(base["put_s"], row["put_s"])
        best = result.rows[-1]
        result.note(
            f"depth {best['depth']}: ship {best['ship_speedup']:.2f}x, "
            f"end-to-end put {best['put_speedup']:.2f}x over serial "
            f"(in-flight hwm {best['ship_hwm']})"
        )
        result.note(
            "every chunk still ingested exactly once at every depth "
            "(server_ingests == chunks_shipped)"
        )
    return result


def fanout_scatter_gather(
    fanouts: Sequence[int] = (1, 2, 4),
    n_files: int = 512,
    file_size: int = 128 * KB,
    n_nodes: int = 2,
    batch: int = 48,
) -> ExperimentResult:
    """Scatter-gather reads: warmup, recovery and batched-get fan-out.

    Three measurements per knob value.  *Warmup*: oneshot cache masters
    stream their partitions with ``warmup_fanout`` pulls in flight each
    (all masters always concurrent).  *Recovery*: one master's node is
    killed and the survivors re-stream the orphaned chunks (Fig 11b —
    with fan-out, recovery time scales with the largest partition, not
    the orphaned total).  *Cold batched read*: ``get_many`` over a batch
    spanning every chunk with ``read_fanout`` concurrent fetches;
    ``duplicate_reads`` must stay 0 (single-flight preserved under
    concurrency).
    """
    from repro.bench.reporting import ratio, stats_row

    result = ExperimentResult(
        "scatter-gather fan-out", "§4.2 / Fig 11b"
    )
    payload_files = {
        f"/sg/f{i:05d}.jpg": b"\x44" * file_size for i in range(n_files)
    }
    stride = max(1, n_files // batch)
    batch_paths = list(payload_files)[::stride][:batch]
    with timer(result):
        for f in fanouts:
            # --- oneshot warmup across masters ---
            tb = make_testbed(n_compute=n_nodes)
            add_diesel(tb)
            bulk_load_diesel(tb, "sg", payload_files, chunk_size=4 * MB)
            clients = [
                diesel_client_with_snapshot(
                    tb, "sg", tb.compute_nodes[c], f"c{c}", rank=c
                )
                for c in range(n_nodes)
            ]
            cache = TaskCache(
                tb.env, tb.fabric, tb.diesel, "sg",
                [c.as_cache_client() for c in clients],
                policy="oneshot", calibration=tb.cal, warmup_fanout=f,
            )
            tb.run(cache.register())
            t0 = tb.env.now
            tb.run(cache.wait_warm())
            warm_s = tb.env.now - t0
            pull_hwm = max(
                max(1, m.stats.pull_inflight_hwm)
                for m in cache.masters.values()
            )

            # --- recovery: kill one master, survivors re-stream ---
            victim = cache.masters[sorted(cache.masters)[0]]
            victim.node.kill()
            t0 = tb.env.now
            reloaded = tb.run(cache.recover())
            recover_s = tb.env.now - t0

            # --- cold batched read through get_many ---
            tb = make_testbed(n_compute=1)
            add_diesel(tb, n_servers=2)
            chunks = bulk_load_diesel(
                tb, "sg", payload_files, chunk_size=4 * MB
            )
            reader = diesel_client_with_snapshot(
                tb, "sg", tb.compute_nodes[0], "reader",
                config=DieselConfig(
                    shuffle_group_size=len(chunks), read_fanout=f
                ),
            )
            reader.enable_shuffle()
            touched = {
                reader.index.lookup(p).chunk_id for p in batch_paths
            }
            t0 = tb.env.now
            got = tb.run(reader.get_many(batch_paths))
            read_s = tb.env.now - t0
            assert len(got) == len(batch_paths)
            chunk_reads = sum(
                s.stats.chunk_reads for s in tb.diesel_servers
            )
            result.add(
                fanout=f,
                warm_s=warm_s,
                pull_hwm=pull_hwm,
                recover_s=recover_s,
                chunks_reloaded=reloaded,
                read_s=read_s,
                fetch_hwm=max(1, reader.stats.fetch_inflight_hwm),
                duplicate_reads=chunk_reads - len(touched),
                **stats_row(
                    reader.stats, ["local_hits", "server_reads"],
                    prefix="rd_",
                ),
            )
        base = result.one(fanout=fanouts[0])
        for f in fanouts:
            row = result.one(fanout=f)
            row["warm_speedup"] = ratio(base["warm_s"], row["warm_s"])
            row["recover_speedup"] = ratio(
                base["recover_s"], row["recover_s"]
            )
            row["read_speedup"] = ratio(base["read_s"], row["read_s"])
        best = result.rows[-1]
        result.note(
            f"fanout {best['fanout']}: warmup {best['warm_speedup']:.2f}x, "
            f"recovery {best['recover_speedup']:.2f}x, batched read "
            f"{best['read_speedup']:.2f}x over serial"
        )
        result.note(
            "0 duplicate chunk transfers at every fan-out "
            "(single-flight preserved under concurrency)"
        )
    return result


def latency_breakdown(
    n_files: int = 384,
    file_size: int = 128 * KB,
    group_size: int = 4,
    prefetch_depth: int = 4,
    read_fanout: int = 4,
    batch: int = 32,
    compute_per_file_s: float = 5e-5,
) -> ExperimentResult:
    """Per-layer read latency: where DL_get time goes, with percentiles.

    Attaches an :class:`repro.obs.SpanRecorder` to one client and the
    DIESEL servers, then drives the two read paths the observability
    layer was built to explain: a chunk-wise-shuffled epoch of single
    ``get`` calls (prefetch pipeline active, so most files resolve in
    the local group cache) followed by a batched ``get_many`` over a
    strided sample (scatter-gather fan-out).  The row merges the plain
    client counters with the recorder's flattened per-(op, layer)
    histogram — ``read_<layer>_count`` resolution counts and
    ``get_<layer>_p50_ms`` / ``get_<layer>_p99_ms`` percentiles — via
    the same :func:`~repro.bench.reporting.stats_row` seam every other
    experiment uses.  docs/OBSERVABILITY.md walks through reading the
    output.
    """
    from repro.bench.reporting import stats_row
    from repro.obs import SpanRecorder

    result = ExperimentResult(
        "per-layer read latency", "§4 / Fig 4 read chain"
    )
    files = {
        f"/lat/f{i:05d}.jpg": b"\x55" * file_size for i in range(n_files)
    }
    with timer(result):
        tb = make_testbed(n_compute=1)
        add_diesel(tb, n_servers=2)
        bulk_load_diesel(tb, "lat", files, chunk_size=4 * MB)
        reader = diesel_client_with_snapshot(
            tb, "lat", tb.compute_nodes[0], "reader",
            config=DieselConfig(
                shuffle_group_size=group_size,
                prefetch_depth=prefetch_depth,
                read_fanout=read_fanout,
            ),
        )
        recorder = SpanRecorder.attach(reader, *tb.diesel_servers)
        reader.enable_shuffle()
        plan = reader.epoch_file_list(seed=11)

        def job():
            # Epoch of single gets: the per-file path (group cache vs
            # demand fetch), paced like a training loop so the prefetch
            # pipeline has compute time to hide transfers behind.
            for path in plan.files:
                yield from reader.get(path)
                yield tb.env.timeout(compute_per_file_s)
            # Batched path: one scatter-gather get_many over a strided
            # sample (mostly resident by now => group-cache resolutions).
            stride = max(1, len(plan.files) // batch)
            sample = plan.files[::stride][:batch]
            got = yield from reader.get_many(sample)
            return len(got)

        t0 = tb.env.now
        batched = tb.run(job())
        elapsed = tb.env.now - t0
        assert batched == batch
        layer_keys = [
            k for k in recorder.to_dict()
            if k.startswith(("read_", "get_", "prefetch_"))
        ]
        result.add(
            files=len(plan.files),
            elapsed_s=elapsed,
            **stats_row(reader.stats, ["local_hits", "server_reads"],
                        prefix="rd_"),
            **stats_row(recorder, layer_keys),
        )
        row = result.rows[-1]
        total = row["read_group_cache_count"] + row["read_server_count"]
        result.note(
            f"read resolution: {row['read_group_cache_count']}/{total} "
            "group_cache (prefetched or resident), "
            f"{row['read_server_count']}/{total} server (demand chunk "
            "fetch)"
        )
        result.note(
            "get p50/p99 by layer (ms): "
            f"group_cache {row['get_group_cache_p50_ms']:.3f}/"
            f"{row['get_group_cache_p99_ms']:.3f}, "
            f"server {row['get_server_p50_ms']:.3f}/"
            f"{row['get_server_p99_ms']:.3f}"
        )
        result.note(
            "full per-(op, layer) table: recorder.summary(); "
            "timeline: `dlcmd trace` -> chrome://tracing"
        )
    return result


# =========================================================== faults
def fig_faults(
    n_files: int = 160,
    file_size: int = 8 * KB,
    n_nodes: int = 4,
    chunk_size: int = 64 * KB,
    heartbeat_s: float = 0.01,
    failure_timeout_s: float = 0.04,
    kill_cache_at: float = 0.25,
    kill_kv_at: float = 0.75,
    run_s: float = 1.25,
    window_s: float = 0.2,
    pace_s: float = 2e-4,
    restart_delay_s: float = 0.05,
) -> ExperimentResult:
    """Self-healing under injected failures (§4.1.2 scenario (a), Fig 4).

    A warmed task cache serves a paced reader while two failures are
    injected with **no operator intervention**: first a cache-master
    node dies mid-run (the detector fires, the supervisor re-partitions
    and reloads its chunks; reads degrade to the server meanwhile), then
    a KV storage node takes its Redis shards down (auto-restarted cold
    and healed via ``rebuild_dataset(from_timestamp)``).  Reports
    detection latency, recovery time, per-window throughput around each
    event, and the ``verify_rebuild`` discrepancy count.  The headline
    criteria: zero failed client reads across both episodes, and
    steady-state throughput back within 10% of the pre-kill window.
    """
    from repro.core.recovery import verify_rebuild
    from repro.ft import CacheSupervisor, FailureDetector, KVSupervisor
    from repro.obs import SpanRecorder

    result = ExperimentResult(
        "self-healing fault tolerance", "§4.1.2 failure scenarios"
    )
    files = {
        f"/ds/f{i:05d}.jpg": b"\x5a" * file_size for i in range(n_files)
    }
    paths = list(files)
    with timer(result):
        tb = make_testbed(n_compute=n_nodes)
        add_diesel(tb, n_servers=1, n_kv=8)
        bulk_load_diesel(tb, "ds", files, chunk_size=chunk_size)
        clients = [
            diesel_client_with_snapshot(
                tb, "ds", tb.compute_nodes[c], f"c{c}", rank=c
            )
            for c in range(n_nodes)
        ]
        cache = TaskCache(
            tb.env, tb.fabric, tb.diesel, "ds",
            [c.as_cache_client() for c in clients],
            policy="oneshot", calibration=tb.cal,
        )
        tb.run(cache.register())
        tb.run(cache.wait_warm())
        ft_cfg = DieselConfig(
            heartbeat_interval_s=heartbeat_s,
            failure_timeout_s=failure_timeout_s,
        )
        cache.configure_ft(ft_cfg)
        recorder = SpanRecorder.attach(cache)
        detector = FailureDetector(
            tb.env, heartbeat_interval_s=ft_cfg.heartbeat_interval_s,
            failure_timeout_s=ft_cfg.failure_timeout_s, recorder=recorder,
        )
        cache_sup = CacheSupervisor(detector, cache, fanout=2,
                                    recorder=recorder)
        kv_sup = KVSupervisor(
            detector, tb.diesel, tb.kv, ["ds"],
            restart_delay_s=restart_delay_s, recorder=recorder,
        )
        detector.start()

        # The victim master lives on compute0; the reader on compute1.
        cache_victim_node = tb.compute_nodes[0]
        victim_master = cache.masters[cache_victim_node.name]
        reader_cc = next(
            m.client for n, m in cache.masters.items()
            if n != cache_victim_node.name
        )
        # One storage node that hosts only Redis shards (the DIESEL
        # server sits on storage0 with n_servers=1).
        kv_victim_node = tb.storage_nodes[1]
        kv_victims = [
            i for i in tb.kv.instances if i.node is kv_victim_node
        ]
        assert kv_victims, "expected Redis shards on the victim node"

        completions: List[float] = []
        failed_reads = 0
        index = clients[1].index

        def reader():
            nonlocal failed_reads
            rng = random.Random(1)
            while tb.env.now < run_s:
                rec = index.lookup(rng.choice(paths))
                try:
                    yield from cache.read_file(reader_cc, rec)
                    completions.append(tb.env.now)
                except Exception:
                    failed_reads += 1
                yield tb.env.timeout(pace_s)

        def killer():
            yield tb.env.timeout(kill_cache_at)
            cache_victim_node.kill()
            yield tb.env.timeout(kill_kv_at - kill_cache_at)
            kv_victim_node.kill()

        tb.env.process(killer(), name="faults:killer")
        tb.run(reader())
        detector.stop()
        tb.env.run()  # drain supervisors: heal + restart + rebuild

        def tput(lo: float, hi: float) -> float:
            n = sum(1 for t in completions if lo <= t < hi)
            return n / (hi - lo) if hi > lo else 0.0

        watch = f"cache:{victim_master.client.name}"
        detection_s = detector.detection_latency_s(watch)
        recovery = cache_sup.recoveries[0]
        recovered_at = recovery["at"]
        pre = tput(kill_cache_at - window_s, kill_cache_at)
        degraded = tput(kill_cache_at, recovered_at)
        post = tput(recovered_at, recovered_at + window_s)
        result.add(
            event="cache_master_killed", at_s=kill_cache_at,
            detection_s=detection_s,
            recovery_s=recovery["elapsed_s"],
            chunks_reloaded=recovery["chunks_reloaded"],
            degraded_reads=cache.degraded_reads,
            pre_reads_per_s=pre, degraded_reads_per_s=degraded,
            post_reads_per_s=post, post_over_pre=post / pre,
        )
        rebuild = kv_sup.rebuilds[0]
        problems = verify_rebuild(
            tb.diesel, "ds", {p: len(b) for p, b in files.items()}
        )
        result.add(
            event="kv_shards_killed", at_s=kill_kv_at,
            shards_lost=len(kv_victims),
            rebuild_elapsed_s=rebuild["elapsed_s"],
            from_timestamp=rebuild["from_timestamp"],
            chunks_scanned=rebuild["chunks_scanned"],
            verify_problems=len(problems),
            failed_reads=failed_reads,
        )
        result.note(
            f"cache master died at t={kill_cache_at:.2f}s: detected in "
            f"{detection_s * 1e3:.1f}ms, healed in "
            f"{recovery['elapsed_s'] * 1e3:.1f}ms "
            f"({recovery['chunks_reloaded']} chunks re-streamed), "
            f"post-recovery throughput at {post / pre:.0%} of pre-kill"
        )
        result.note(
            f"{len(kv_victims)} Redis shards died at t={kill_kv_at:.2f}s: "
            f"auto-restarted cold after {restart_delay_s:.2f}s, metadata "
            f"replayed from t={rebuild['from_timestamp']} "
            f"({rebuild['chunks_scanned']} chunks scanned), "
            f"verify_rebuild: {len(problems)} problems"
        )
        result.note(
            f"client reads: {len(completions)} served, {failed_reads} "
            "failed (warm peers + Fig 4 server fall-through cover both "
            "failure windows)"
        )
        ft_counts = {
            f"{op}": n for (op, _layer), n in recorder.counts.items()
            if op.startswith("ft_")
        }
        result.note(f"ft counters: {ft_counts}")
    return result


# =========================================================== locality
def fig_locality(
    n_files: int = 240,
    file_size: int = 8 * KB,
    n_nodes: int = 4,
    chunk_size: int = 64 * KB,
    group_size: int = 2,
    storm_clients: int = 6,
    hot_threshold: int = 3,
) -> ExperimentResult:
    """Locality-aware placement vs the hash ring (§4.2, Hoard layout).

    Three phases on a balanced multi-node task:

    1. **Placement** — the same warmed task cache under ``hash`` and
       ``locality`` placement serves one affinity-scheduled epoch from
       p workers (one per node).  Under ``hash`` every node owns ~1/p
       of the chunks, so ~(p−1)/p of hits pay the cross-node RPC hop;
       under ``locality`` each worker's shard is co-located with its
       own master and hits are node-local memory copies.  Reports the
       local-hit fraction and the epoch read time for both.
    2. **Pull storm** — n clients fault every chunk of a cold
       on-demand cache concurrently; the per-master single-flight map
       coalesces them so the backend sees exactly one fetch per chunk
       (``duplicate_backend_fetches == 0``).
    3. **Hot-chunk replication** — one node hammers a chunk owned by a
       remote master past ``hot_chunk_threshold``; the chunk is
       replicated onto the reader's local master and the next read
       resolves locally.
    """
    from repro.bench.reporting import stats_row
    from repro.dlt.dataloader import EpochScheduler
    from repro.obs import SpanRecorder

    result = ExperimentResult(
        "locality-aware cache placement",
        "§4.2 placement + affinity scheduling + pull coalescing",
    )
    files = {
        f"/ds/f{i:05d}.jpg": b"\x3c" * file_size for i in range(n_files)
    }
    with timer(result):
        # ---------------------------------------- phase 1: placement
        epoch_elapsed = {}
        for placement in ("hash", "locality"):
            tb = make_testbed(n_compute=n_nodes)
            add_diesel(tb, n_servers=1)
            bulk_load_diesel(tb, "ds", files, chunk_size=chunk_size)
            clients = [
                diesel_client_with_snapshot(
                    tb, "ds", tb.compute_nodes[c], f"{placement}-c{c}", rank=c
                )
                for c in range(n_nodes)
            ]
            cache = TaskCache(
                tb.env, tb.fabric, tb.diesel, "ds",
                [c.as_cache_client() for c in clients],
                policy="oneshot", calibration=tb.cal, placement=placement,
            )
            tb.run(cache.register())
            tb.run(cache.wait_warm())
            recorder = SpanRecorder.attach(cache)
            worker_nodes = [n.name for n in tb.compute_nodes[:n_nodes]]
            scheduler = EpochScheduler(
                clients[0].index.files_by_chunk(), group_size,
                worker_nodes, cache=cache, seed=7,
            )
            index = clients[0].index

            def worker(w, cc, scheduler=scheduler, index=index, cache=cache):
                shard = scheduler.shard(0, w)
                for path in shard.files:
                    yield from cache.read_file(cc, index.lookup(path))

            t0 = tb.env.now
            tb.run_all(
                worker(w, c.as_cache_client())
                for w, c in enumerate(clients)
            )
            elapsed = tb.env.now - t0
            epoch_elapsed[placement] = elapsed
            stats = cache.stats
            served = stats.local_hits + stats.remote_hits
            local_frac = stats.local_hits / served if served else 0.0
            spans = recorder.to_dict()
            result.add(
                placement=placement, nodes=n_nodes, files=len(files),
                epoch_read_s=elapsed, local_frac=local_frac,
                span_local=spans.get("cache_read_local_master_n", 0),
                span_remote=spans.get("cache_read_task_cache_n", 0),
                **stats_row(stats, prefix="cache_"),
            )
            result.note(
                f"{placement}: {stats.local_hits}/{served} local hits "
                f"({local_frac:.0%}), epoch read {elapsed * 1e3:.2f}ms"
            )
        result.note(
            "locality epoch read time at "
            f"{epoch_elapsed['locality'] / epoch_elapsed['hash']:.0%} "
            "of hash placement"
        )

        # --------------------------------------- phase 2: pull storm
        tb = make_testbed(n_compute=n_nodes)
        add_diesel(tb, n_servers=1)
        chunks = bulk_load_diesel(tb, "ds", files, chunk_size=chunk_size)
        storm = [
            diesel_client_with_snapshot(
                tb, "ds", tb.compute_nodes[c % n_nodes], f"s{c}", rank=c
            )
            for c in range(storm_clients)
        ]
        cache = TaskCache(
            tb.env, tb.fabric, tb.diesel, "ds",
            [c.as_cache_client() for c in storm],
            policy="on-demand", calibration=tb.cal, placement="locality",
            hot_chunk_threshold=hot_threshold,
        )
        tb.run(cache.register())
        all_cids = [c.chunk_id.encode() for c in chunks]
        fetches_before = tb.diesel.stats.chunk_reads

        def puller(cc):
            for encoded in all_cids:
                owner = cache.owner_of(encoded)
                yield from owner.endpoint.call(cc.node, "pull_chunk", encoded)

        tb.run_all(puller(c.as_cache_client()) for c in storm)
        fetches = tb.diesel.stats.chunk_reads - fetches_before
        stats = cache.stats
        result.add(
            event="pull_storm", clients=storm_clients,
            chunks=len(all_cids), backend_chunk_fetches=fetches,
            duplicate_backend_fetches=fetches - len(all_cids),
            coalesced_pulls=stats.coalesced_pulls,
        )
        result.note(
            f"pull storm: {storm_clients} clients × {len(all_cids)} chunks "
            f"→ {fetches} backend fetches "
            f"({fetches - len(all_cids)} duplicates), "
            f"{stats.coalesced_pulls} pulls coalesced in flight"
        )

        # -------------------------------- phase 3: hot-chunk replication
        index = storm[0].index
        reader = next(
            c for c in storm
            if c.node.name != cache.owner_of(all_cids[0]).node.name
        )
        hot_paths = [
            p for p in index.all_paths()
            if index.lookup(p).chunk_id.encode() == all_cids[0]
        ]
        cc = reader.as_cache_client()

        def hammer():
            for _ in range(hot_threshold):
                yield from cache.read_file(cc, index.lookup(hot_paths[0]))

        tb.run(hammer())
        tb.env.run()  # drain the background replication pull
        local_before = cache.local_hits
        tb.run(cache.read_file(cc, index.lookup(hot_paths[0])))
        stats = cache.stats
        result.add(
            event="hot_replication", threshold=hot_threshold,
            replicated_chunks=stats.replicated_chunks,
            post_replication_local=cache.local_hits - local_before,
        )
        result.note(
            f"hot chunk replicated after {hot_threshold} remote reads "
            f"({stats.replicated_chunks} replicas); next read resolved "
            "locally" if cache.local_hits > local_before else
            "hot chunk replication did not trigger"
        )
    return result


# ===================================================== engine scale
#: Deterministic hit pattern for the scale workload: request ``i`` is a
#: cache hit iff ``i % _SCALE_CYCLE < _SCALE_RESIDENT`` (a 70% hit rate
#: with no RNG, so both admission variants count the same hits).
_SCALE_CYCLE = 10
_SCALE_RESIDENT = 7


def _scale_hits_below(x: int) -> int:
    """Hits among requests ``[0, x)`` of the deterministic pattern, in
    closed form — lets the vectorized handler account a whole range in
    O(1) while matching the per-request variant exactly."""
    return (x // _SCALE_CYCLE) * _SCALE_RESIDENT + min(
        x % _SCALE_CYCLE, _SCALE_RESIDENT
    )


class _ScaleCounters:
    """Per-server read/hit/stat counters for the scale workload."""

    __slots__ = ("reads", "hits", "stat_calls")

    def __init__(self) -> None:
        self.reads = 0
        self.hits = 0
        self.stat_calls = 0


def _scale_handler(ctr: "_ScaleCounters"):
    """Request-executor handler: per-request and vectorized-range ops.

    ``read_one`` is the per-request admission path (one handler run per
    request); ``read_range`` is the vectorized path — one handler run
    accounts ``hi - lo`` requests via the closed-form hit count, so a
    whole arrival batch costs O(1) handler work on top of the one
    admitted RPC.
    """

    def handle(method, *args):
        if method == "read_one":
            i = args[0]
            ctr.reads += 1
            ctr.stat_calls += 1
            if i % _SCALE_CYCLE < _SCALE_RESIDENT:
                ctr.hits += 1
            return 64
        if method == "read_range":
            lo, hi = args
            ctr.reads += hi - lo
            ctr.stat_calls += hi - lo
            ctr.hits += _scale_hits_below(hi) - _scale_hits_below(lo)
            return 64 * (hi - lo)
        raise ValueError(f"unknown scale method {method!r}")

    return handle


def scale_engine(
    n_nodes: int = 1000,
    n_requests: int = 1_000_000,
    batch: int = 256,
    n_servers: int = 8,
    epoch_s: float = 10.0,
) -> ExperimentResult:
    """Engine scale: a 1000-node, 10⁶-request epoch under both kernels.

    Two variants of the same workload run in one call and must produce
    identical read/hit/stat counters:

    * ``heap+per-request`` — the flat-binary-heap scheduler with one
      admitted RPC per request, every arrival pre-scheduled up front
      (peak occupancy ≈ the full epoch, the regime the old kernel lived
      in);
    * ``calendar+batched`` — the calendar-queue scheduler with arrivals
      admitted per *batch* through ``RpcEndpoint.call_batch`` and the
      vectorized range handler.

    Reported per variant: actual kernel events (``sim_events``), wall
    seconds, raw kernel event rate (``kernel_events_per_sec``), peak
    scheduler occupancy and requests/sec.  ``events_per_sec`` is the
    *epoch-normalized* rate — the reference variant's event count
    divided by this variant's wall time — so the two rates compare
    delivery of the same epoch (reference-machine normalization; for
    the baseline it equals its raw rate).  The speedup row is the
    events/sec ratio.  Defaults are the full-scale epoch; CI smoke mode
    runs ``scale_engine(n_nodes=50, n_requests=10_000)``.
    """
    from repro.bench.reporting import ratio
    from repro.cluster.network import NetworkFabric
    from repro.rpc.endpoint import RpcEndpoint

    result = ExperimentResult("engine scale", "simulation substrate")
    with timer(result):
        for variant, scheduler, admit in (
            ("heap+per-request", "heap", 1),
            ("calendar+batched", "calendar", batch),
        ):
            env = Environment(scheduler=scheduler)
            fabric = NetworkFabric(env, DEFAULT.network)
            servers = [
                fabric.add_node(Node(env, f"srv{i}", nic_channels=8))
                for i in range(n_servers)
            ]
            clients = [
                fabric.add_node(Node(env, f"cl{i}"))
                for i in range(n_nodes)
            ]
            ctrs = [_ScaleCounters() for _ in range(n_servers)]
            endpoints = [
                RpcEndpoint(
                    env, fabric, servers[i], f"exec{i}",
                    handler=_scale_handler(ctrs[i]),
                    service_s=2e-6, workers=64,
                )
                for i in range(n_servers)
            ]
            if admit <= 1:
                # Per-request admission: every arrival is its own
                # pre-scheduled timeout and its own RPC process.
                gap = epoch_s / n_requests

                def arrive_one(evt):
                    i = evt.value
                    env.process(endpoints[i % n_servers].call(
                        clients[i % n_nodes], "read_one", i,
                    ))

                for i in range(n_requests):
                    env.timeout(i * gap, value=i).callbacks.append(
                        arrive_one
                    )
            else:
                # Vectorized admission: one pre-scheduled arrival and
                # one admitted RPC per batch of `admit` requests.
                n_batches = -(-n_requests // admit)
                gap = epoch_s / n_batches

                def arrive_batch(evt):
                    b = evt.value
                    lo = b * admit
                    hi = min(lo + admit, n_requests)
                    env.process(endpoints[b % n_servers].call_batch(
                        clients[lo % n_nodes],
                        [("read_range", lo, hi)],
                    ))

                for b in range(n_batches):
                    env.timeout(b * gap, value=b).callbacks.append(
                        arrive_batch
                    )
            env.run()
            es = env.engine_stats()
            result.add(
                variant=variant,
                scheduler=es.scheduler,
                n_nodes=n_nodes,
                n_requests=n_requests,
                admission_batch=admit,
                sim_events=es.sim_events,
                wall_s=es.run_wall_s,
                kernel_events_per_sec=es.events_per_sec,
                peak_occupancy=es.peak_occupancy,
                requests_per_sec=(
                    n_requests / es.run_wall_s if es.run_wall_s else 0.0
                ),
                reads=sum(c.reads for c in ctrs),
                hits=sum(c.hits for c in ctrs),
                stat_calls=sum(c.stat_calls for c in ctrs),
            )
        base = result.one(variant="heap+per-request")
        fast = result.one(variant="calendar+batched")
        for key in ("reads", "hits", "stat_calls"):
            if base[key] != fast[key]:
                raise AssertionError(
                    f"variant counters diverge on {key}: "
                    f"{base[key]} != {fast[key]}"
                )
        # Epoch-normalized sim-events/sec: both variants deliver the
        # *same* epoch (identical counters), so rates are comparable
        # only against a common event count — the reference (baseline)
        # variant's.  events_per_sec = base_events / wall: for the
        # baseline this is its raw kernel rate; for the optimized
        # variant it is the rate at which it retires baseline-equivalent
        # event work (reference-machine normalization).
        for row in (base, fast):
            row["events_per_sec"] = (
                base["sim_events"] / row["wall_s"] if row["wall_s"] else 0.0
            )
        speedup = ratio(fast["events_per_sec"], base["events_per_sec"])
        kernel_speedup = ratio(
            fast["kernel_events_per_sec"], base["kernel_events_per_sec"]
        )
        req_speedup = ratio(
            fast["requests_per_sec"], base["requests_per_sec"]
        )
        result.add(
            variant="speedup",
            events_per_sec=speedup,
            kernel_events_per_sec=kernel_speedup,
            requests_per_sec=req_speedup,
        )
        result.note(
            f"calendar+batched delivers {speedup:.1f}x the sim-events/sec of "
            f"the heapq baseline on the same {n_nodes}-node, "
            f"{n_requests:,}-request epoch (epoch-normalized: the batch "
            f"admission retires the baseline's {base['sim_events']:,}-event "
            f"epoch in {fast['wall_s']:.3f}s vs {base['wall_s']:.1f}s; raw "
            f"kernel rate {kernel_speedup:.2f}x, requests/sec "
            f"{req_speedup:,.0f}x)"
        )
        result.note(
            f"identical read/hit/stat counters across variants: "
            f"{base['reads']:,} reads, {base['hits']:,} hits, "
            f"{base['stat_calls']:,} stat calls (semantic equivalence)"
        )
    return result


# ===================================================== cross-task sharing
def model_selection(
    n_files: int = 192,
    file_size: int = 8 * KB,
    n_nodes: int = 4,
    chunk_size: int = 64 * KB,
    task_counts: Sequence[int] = (1, 2, 4, 8, 16),
    constrained_fraction: float = 0.5,
) -> ExperimentResult:
    """Cross-task shared chunk tier under a model-selection sweep.

    N trainers × 1 dataset (hyperparameter search / ensembling): every
    task keeps its own :class:`TaskCache`, but all admissions route
    through one node-level
    :class:`~repro.core.shared_cache.SharedCacheRegistry`, so the
    dataset is fetched from the object store once per (node, chunk) no
    matter how many tasks run.  Three phases:

    1. **Warm register** — task A warms the dataset cold, then task B
       registers the same dataset: B's warmup admits from A's resident
       chunks (refcount bump, no backend I/O) and finishes in a small
       fraction of the cold time.
    2. **Sweep scaling** — for each N in ``task_counts``, N concurrent
       tasks register and train one epoch.  Backend chunk fetches stay
       ~constant in N (cross-task admission + cross-task single-flight
       on the racing warmups); per-tenant usage is reported against a
       quota sized to the dataset, which is never exceeded.
    3. **Tenant quota pressure** — one tenant constrained to a fraction
       of the dataset's bytes: admissions beyond the quota are refused
       (``quota_rejections``), resident usage never crosses the line,
       and the task's reads past the quota fall through to the server
       instead of failing.
    """
    from repro.bench.reporting import stats_row
    from repro.calibration import ModelProfile
    from repro.core.shared_cache import SharedCacheRegistry
    from repro.dlt.sweep import build_sweep_task, run_sweep

    result = ExperimentResult(
        "cross-task shared cache (model selection)",
        "shared chunk tier: N trainers × 1 dataset, quotas, QoS",
    )
    files = {
        f"/ds/f{i:05d}.jpg": b"\x5a" * file_size for i in range(n_files)
    }
    model = ModelProfile("sweep-toy", compute_s=1e-4)

    def build_sweep(tb, registry, n_tasks, tenant_of, qos_of, n_workers=n_nodes):
        tasks = []
        for t in range(n_tasks):
            clients = [
                diesel_client_with_snapshot(
                    tb, "ds", tb.compute_nodes[c], f"t{t}c{c}", rank=c
                )
                for c in range(n_workers)
            ]
            tasks.append(build_sweep_task(
                f"task{t}", tb.env, tb.fabric, tb.diesel, "ds", clients,
                shared=registry, tenant=tenant_of(t), qos_class=qos_of(t),
            ))
        return tasks

    with timer(result):
        # ------------------------------------ phase 1: warm register
        tb = make_testbed(n_compute=n_nodes)
        add_diesel(tb, n_servers=1)
        chunks = bulk_load_diesel(tb, "ds", files, chunk_size=chunk_size)
        dataset_bytes = sum(len(c.encode()) for c in chunks)
        registry = SharedCacheRegistry(tb.env)
        cold_task, warm_task = build_sweep(
            tb, registry, 2, lambda t: f"tenant{t}", lambda t: "batch"
        )
        t0 = tb.env.now
        tb.run(cold_task.cache.register())
        tb.run(cold_task.cache.wait_warm())
        cold_s = tb.env.now - t0
        t0 = tb.env.now
        tb.run(warm_task.cache.register())
        tb.run(warm_task.cache.wait_warm())
        warm_s = tb.env.now - t0
        warm_ratio = warm_s / cold_s if cold_s else 0.0
        s = registry.stats
        result.add(
            event="warm_register", chunks=len(chunks),
            cold_warmup_s=cold_s, warm_warmup_s=warm_s,
            warm_ratio=warm_ratio,
            **stats_row(s, prefix="shared_"),
        )
        result.note(
            f"second task warmed {len(chunks)} chunks in "
            f"{warm_s * 1e3:.3f}ms — {warm_ratio:.1%} of the "
            f"{cold_s * 1e3:.3f}ms cold warmup "
            f"({s.warm_admissions} warm admissions, 0 backend fetches)"
        )

        # ------------------------------------ phase 2: sweep scaling
        single_task_fetches = None
        for n_tasks in task_counts:
            tb = make_testbed(n_compute=n_nodes)
            add_diesel(tb, n_servers=1)
            bulk_load_diesel(tb, "ds", files, chunk_size=chunk_size)
            registry = SharedCacheRegistry(tb.env)
            # Two tenant accounts (interactive search jobs vs batch
            # retrains), each with headroom for the whole dataset.
            for tenant in ("search", "retrain"):
                registry.set_quota(tenant, dataset_bytes)
            tasks = build_sweep(
                tb, registry, n_tasks,
                lambda t: "search" if t % 2 == 0 else "retrain",
                lambda t: "interactive" if t % 2 == 0 else "batch",
            )
            fetches_before = tb.diesel.stats.chunk_reads
            t0 = tb.env.now
            tb.run(run_sweep(
                tb.env, tasks, model, epochs=1, batch_size=8
            ))
            elapsed = tb.env.now - t0
            fetches = tb.diesel.stats.chunk_reads - fetches_before
            if single_task_fetches is None:
                single_task_fetches = fetches
            rows = registry.tenant_rows()
            s = registry.stats
            result.add(
                event="sweep", tasks=n_tasks, chunks=len(chunks),
                backend_chunk_fetches=fetches,
                fetch_ratio_vs_single=fetches / single_task_fetches,
                sweep_s=elapsed,
                quota_ok=all(r["within_quota"] for r in rows),
                max_node_usage_bytes=max(
                    r["max_node_usage_bytes"] for r in rows
                ),
                quota_bytes=dataset_bytes,
                **stats_row(s, prefix="shared_"),
            )
            result.note(
                f"{n_tasks:>2} task(s): {fetches} backend fetches "
                f"({fetches / single_task_fetches:.2f}x single-task), "
                f"{s.warm_admissions} warm admissions, "
                f"{s.coalesced_pulls} coalesced, quota "
                f"{'respected' if all(r['within_quota'] for r in rows) else 'EXCEEDED'}"
            )

        # ---------------------------- phase 3: tenant quota pressure
        tb = make_testbed(n_compute=1)
        add_diesel(tb, n_servers=1)
        chunks = bulk_load_diesel(tb, "ds", files, chunk_size=chunk_size)
        registry = SharedCacheRegistry(tb.env)
        quota = int(dataset_bytes * constrained_fraction)
        registry.set_quota("capped", quota)
        (task,) = build_sweep(
            tb, registry, 1, lambda t: "capped", lambda t: "batch",
            n_workers=1,
        )

        def one_epoch():
            yield from task.cache.register()
            yield from task.cache.wait_warm()
            cc = task.cache.clients[0]
            index = task.clients[0].index
            for path in index.all_paths():
                yield from task.cache.read_file(cc, index.lookup(path))

        tb.run(one_epoch())
        usage = max(
            tier.tenant_usage("capped") for tier in registry.node_caches
        )
        s = registry.stats
        result.add(
            event="quota_pressure", chunks=len(chunks),
            quota_bytes=quota, tenant_usage_bytes=usage,
            quota_ok=usage <= quota,
            **stats_row(s, prefix="shared_"),
        )
        result.note(
            f"capped tenant (quota {quota} B over {dataset_bytes} B of "
            f"chunks): {s.quota_rejections} admissions refused, peak "
            f"usage {usage} B ({'within' if usage <= quota else 'OVER'} "
            "quota); refused chunks served by server fall-through"
        )
    return result


def capacity(
    ram_bytes: int = 3 * MB,
    n_nodes: int = 2,
    file_size: int = 16 * KB,
    chunk_size: int = 256 * KB,
    ratios: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 10.0),
    disk_tier_bytes: int = 64 * MB,
) -> ExperimentResult:
    """Datasets larger than memory: the tiered chunk store under load.

    Cache nodes get ``ram_bytes`` of memory each and a simulated
    node-local NVMe tier (``cache_store='tiered'``,
    :mod:`repro.core.chunk_store`).  For each dataset:RAM ratio in
    ``ratios`` — 0.5× (fits comfortably) through 10× (RAM covers a
    sliver) — one task warms the dataset and reads every file for one
    epoch, with and without transparent chunk compression:

    * Warmup admissions overflow RAM → disk instead of staying
      server-resident, so the epoch never falls through to the backend.
    * Reads past the RAM tier charge a chunk-granular disk read (plus
      decompress when compression is on); with RAM full they stream
      through *without* promotion, so a scan larger than memory cannot
      thrash the RAM working set.
    * Compression shrinks stored/transferred bytes per chunk by a
      deterministic per-chunk ratio (~1.4–3.6×): reads pay
      ``stored/disk_bw + logical/decompress_bw`` instead of
      ``logical/disk_bw``, which wins once the disk tier serves most
      reads (≥ ~2× dataset:RAM).

    Every row records read throughput, tier counters, the RAM-gauge
    bound (resident RAM bytes never exceed the node's budget) and
    ``lost_chunks`` (chunks resident on no tier at epoch end — always
    0: the disk tier absorbs the overflow).
    """
    from repro.bench.reporting import stats_row
    from repro.core.shared_cache import SharedCacheRegistry
    from repro.dlt.sweep import build_sweep_task

    result = ExperimentResult(
        "tiered cache store capacity sweep",
        "RAM + NVMe chunk tiers, datasets 0.5x-10x of aggregate RAM",
    )
    aggregate_ram = n_nodes * ram_bytes

    def one_run(ratio, compression):
        n_files = max(1, int(ratio * aggregate_ram / file_size))
        files = {
            f"/ds/f{i:05d}.jpg": bytes([i % 251]) * file_size
            for i in range(n_files)
        }
        tb = make_testbed(n_compute=1)
        add_diesel(tb, n_servers=1)
        chunks = bulk_load_diesel(tb, "ds", files, chunk_size=chunk_size)
        dataset_bytes = sum(len(c.encode()) for c in chunks)
        cap_nodes = [
            tb.fabric.add_node(Node(
                tb.env, f"cap{i}", memory_bytes=ram_bytes, nic_channels=8
            ))
            for i in range(n_nodes)
        ]
        registry = SharedCacheRegistry(
            tb.env, store="tiered", disk_tier_bytes=disk_tier_bytes,
            chunk_compression=compression,
        )
        clients = [
            diesel_client_with_snapshot(tb, "ds", node, f"w{i}", rank=i)
            for i, node in enumerate(cap_nodes)
        ]
        task = build_sweep_task(
            "cap", tb.env, tb.fabric, tb.diesel, "ds", clients,
            shared=registry,
        )
        t0 = tb.env.now
        tb.run(task.cache.register())
        tb.run(task.cache.wait_warm())
        warmup_s = tb.env.now - t0
        index = clients[0].index
        paths = list(files)
        failed = [0]

        def worker(w):
            cc = task.cache.clients[w]
            for path in paths[w::n_nodes]:
                data = yield from task.cache.read_file(cc, index.lookup(path))
                if data != files[path]:
                    failed[0] += 1

        fetches_before = tb.diesel.stats.chunk_reads
        t0 = tb.env.now
        tb.run_all([worker(w) for w in range(n_nodes)])
        epoch_s = tb.env.now - t0
        rows = registry.tier_rows()
        resident = sum(r["chunks_ram"] + r["chunks_disk"] for r in rows)
        return {
            "event": "run",
            "ratio": ratio,
            "compression": compression,
            "n_files": n_files,
            "chunks": len(chunks),
            "dataset_bytes": dataset_bytes,
            "aggregate_ram_bytes": aggregate_ram,
            "warmup_s": warmup_s,
            "epoch_s": epoch_s,
            "read_throughput_bps": dataset_bytes / epoch_s,
            "failed_reads": failed[0],
            "lost_chunks": len(chunks) - resident,
            "epoch_backend_fetches":
                tb.diesel.stats.chunk_reads - fetches_before,
            "ram_bound_ok": all(
                r["ram_bytes"] <= ram_bytes for r in rows
            ),
            "max_ram_bytes": max(r["ram_bytes"] for r in rows),
            **stats_row(registry.store_stats, prefix="tier_"),
        }

    with timer(result):
        for ratio in ratios:
            for compression in (False, True):
                row = one_run(ratio, compression)
                result.add(**row)
                result.note(
                    f"{ratio:>4}x RAM {'+comp' if compression else '     '}: "
                    f"{row['read_throughput_bps'] / MB:8.1f} MB/s, "
                    f"{row['tier_ram_hits']} RAM hits / "
                    f"{row['tier_disk_hits']} disk hits, "
                    f"{row['lost_chunks']} lost chunks, "
                    f"{row['epoch_backend_fetches']} backend fetches"
                )
        for ratio in ratios:
            plain = result.one(event="run", ratio=ratio, compression=False)
            comp = result.one(event="run", ratio=ratio, compression=True)
            gain = (comp["read_throughput_bps"]
                    / plain["read_throughput_bps"])
            result.add(
                event="compression_gain", ratio=ratio,
                throughput_gain=gain,
                disk_share=comp["tier_disk_hits"]
                / max(1, comp["tier_disk_hits"] + comp["tier_ram_hits"]),
            )
            result.note(
                f"{ratio:>4}x RAM: compression x{gain:.2f} throughput"
            )
    return result


def fig_elastic(
    n_files: int = 192,
    file_size: int = 8 * KB,
    chunk_size: int = 64 * KB,
    group_size: int = 2,
    straggler_slow: float = 10.0,
    straggler_extra_s: float = 1e-3,
    churn_cycles: int = 2,
    churn_passes: int = 4,
    crowd_tasks: int = 16,
) -> ExperimentResult:
    """Elastic membership + hostile-world chaos (scale, stragglers, crowds).

    Four phases, each on a fresh testbed:

    1. **Scale-up mid-epoch** — a locality-placed task cache on 2 of 4
       nodes serves an affinity-scheduled epoch; halfway through,
       ``scale_up`` adds masters on the idle nodes, which warm-admit
       their stolen partitions peer-to-peer (zero backend fetches — no
       cold restart).  The committed epoch finishes untouched; the next
       epoch is owner-bucketed over all 4 masters and reaches
       steady-state node-local reads.
    2. **Churn drain** — a :class:`~repro.cluster.failure.ChaosSchedule`
       churn loop repeatedly drains one node out (``scale_down``) and
       re-admits it (``scale_up``) while readers hammer the dataset.
       Every drained chunk lands on a successor before ownership flips:
       0 lost chunks, 0 failed reads.
    3. **Straggler hedging** — one node's NIC turns hostile (``slow ×``
       + per-transfer extra latency).  A/B: the same read storm with
       hedged reads off vs on (delay calibrated at 2× the healthy p99).
       Hedging fires a backup to a replica/the backend after the delay
       and cancels the loser: p99 collapses at near-zero duplicate
       transfers.
    4. **Flash crowd** — ``crowd_tasks`` tasks stampede one dataset
       simultaneously (``ChaosSchedule.flash_crowd``) through the
       shared chunk tier: cross-task admission + single-flight keep
       backend fetches within 1.2× of a single task's.
    """
    from repro.bench.reporting import stats_row
    from repro.cluster.failure import ChaosSchedule
    from repro.core.shared_cache import SharedCacheRegistry
    from repro.dlt.dataloader import EpochScheduler
    from repro.dlt.sweep import build_sweep_task

    result = ExperimentResult(
        "elastic & hostile worlds",
        "live scale-up/down, churn drains, hedged reads, flash crowds",
    )
    files = {
        f"/ds/f{i:05d}.jpg": bytes([i % 251]) * file_size
        for i in range(n_files)
    }

    with timer(result):
        # ------------------------------- phase 1: scale-up mid-epoch
        tb = make_testbed(n_compute=4)
        add_diesel(tb, n_servers=1)
        bulk_load_diesel(tb, "ds", files, chunk_size=chunk_size)
        clients = [
            diesel_client_with_snapshot(
                tb, "ds", tb.compute_nodes[c], f"el{c}", rank=c
            )
            for c in range(2)
        ]
        cache = TaskCache(
            tb.env, tb.fabric, tb.diesel, "ds",
            [c.as_cache_client() for c in clients],
            policy="oneshot", calibration=tb.cal, placement="locality",
        )
        tb.run(cache.register())
        tb.run(cache.wait_warm())
        index = clients[0].index
        worker_nodes = [n.name for n in tb.compute_nodes]
        scheduler = EpochScheduler(
            index.files_by_chunk(), group_size, worker_nodes,
            cache=cache, seed=7,
        )
        joiners = [
            CacheClient(f"el{r}", tb.compute_nodes[r], r) for r in (2, 3)
        ]
        read_ccs = [c.as_cache_client() for c in clients] + joiners
        scale_rows: List[dict] = []

        def worker(epoch, w):
            shard = scheduler.shard(epoch, w)
            for path in shard.files:
                yield from cache.read_file(read_ccs[w], index.lookup(path))

        def controller():
            # Trigger once the epoch is ~half served (workload-progress
            # trigger, like FailureInjector.on_trigger).
            while cache.local_hits + cache.remote_hits < n_files // 2:
                yield tb.env.timeout(1e-4)
            before = tb.diesel.stats.chunk_reads
            res = yield from cache.scale_up(joiners)
            res["backend_fetches_during_scale"] = (
                tb.diesel.stats.chunk_reads - before
            )
            scale_rows.append(res)

        t0 = tb.env.now
        tb.run_all(
            [worker(0, w) for w in range(4)] + [controller()]
        )
        epoch0_s = tb.env.now - t0
        served0 = cache.local_hits + cache.remote_hits
        local0 = cache.local_hits
        scale = scale_rows[0]
        result.add(
            event="scale_up", nodes_before=2, nodes_after=4,
            moved_chunks=scale["moved_chunks"],
            warmed_chunks=scale["warmed_chunks"],
            peer_warmed=scale["peer_warmed"],
            backend_fetches_during_scale=
                scale["backend_fetches_during_scale"],
            membership_version=scale["membership_version"],
        )
        result.note(
            f"scale-up mid-epoch: {scale['moved_chunks']} chunks "
            f"re-partitioned, {scale['peer_warmed']} warm-admitted from "
            f"peers, {scale['backend_fetches_during_scale']} backend "
            "fetches (no cold restart)"
        )
        fetches_before = tb.diesel.stats.chunk_reads
        t0 = tb.env.now
        tb.run_all([worker(1, w) for w in range(4)])
        epoch1_s = tb.env.now - t0
        served1 = (cache.local_hits + cache.remote_hits) - served0
        local1 = cache.local_hits - local0
        local_frac0 = local0 / served0 if served0 else 0.0
        local_frac1 = local1 / served1 if served1 else 0.0
        result.add(
            event="epoch", epoch=0, workers=2, epoch_read_s=epoch0_s,
            local_frac=local_frac0,
        )
        result.add(
            event="epoch", epoch=1, workers=4, epoch_read_s=epoch1_s,
            local_frac=local_frac1,
            epoch_backend_fetches=
                tb.diesel.stats.chunk_reads - fetches_before,
        )
        result.note(
            f"epoch after scale-up: {local_frac1:.0%} local reads over "
            f"4 workers (was {local_frac0:.0%} over 2), "
            f"{epoch1_s * 1e3:.2f}ms vs {epoch0_s * 1e3:.2f}ms"
        )

        # ----------------------------------- phase 2: churn drain loop
        tb = make_testbed(n_compute=4)
        add_diesel(tb, n_servers=1)
        bulk_load_diesel(tb, "ds", files, chunk_size=chunk_size)
        clients = [
            diesel_client_with_snapshot(
                tb, "ds", tb.compute_nodes[c], f"ch{c}", rank=c
            )
            for c in range(4)
        ]
        cache = TaskCache(
            tb.env, tb.fabric, tb.diesel, "ds",
            [c.as_cache_client() for c in clients],
            policy="oneshot", calibration=tb.cal,
        )
        tb.run(cache.register())
        tb.run(cache.wait_warm())
        index = clients[0].index
        churn_node = tb.compute_nodes[3]
        losses: List[int] = []
        rejoin = {"n": 0}

        def down():
            def run():
                res = yield from cache.scale_down([churn_node])
                losses.append(res["lost_chunks"])
            return run()

        def up():
            rejoin["n"] += 1
            cc = CacheClient(
                f"ch3r{rejoin['n']}", churn_node, 100 + rejoin["n"]
            )
            def run():
                yield from cache.scale_up([cc])
            return run()

        chaos = ChaosSchedule(tb.env).churn(
            at=1e-4, cycles=churn_cycles, dwell_s=5e-4,
            down=down, up=up, label="node3-churn",
        )
        chaos.start()
        failed = [0]

        def reader(w):
            cc = clients[w].as_cache_client()
            for _ in range(churn_passes):
                for path, expected in files.items():
                    data = yield from cache.read_file(
                        cc, index.lookup(path)
                    )
                    if data != expected:
                        failed[0] += 1

        tb.run_all([reader(0), reader(1)])
        tb.env.run()  # drain any still-running churn cycle
        stats = cache.stats
        result.add(
            event="churn", cycles=churn_cycles,
            reads=2 * churn_passes * n_files,
            failed_reads=failed[0], lost_chunks=sum(losses),
            drained_chunks=stats.drained_chunks,
            scale_downs=stats.scale_downs, scale_ups=stats.scale_ups,
            membership_version=cache.membership_version,
            chaos_events=len(chaos.log),
        )
        result.note(
            f"churn: {churn_cycles} leave/rejoin cycles under "
            f"{2 * churn_passes * n_files} live reads — "
            f"{stats.drained_chunks} chunks drained, "
            f"{sum(losses)} lost, {failed[0]} failed reads"
        )

        # ------------------------------- phase 3: straggler hedging A/B
        def straggler_run(hedge_on: bool) -> dict:
            tb = make_testbed(n_compute=3)
            add_diesel(tb, n_servers=1)
            bulk_load_diesel(tb, "ds", files, chunk_size=chunk_size)
            clients = [
                diesel_client_with_snapshot(
                    tb, "ds", tb.compute_nodes[c], f"st{c}", rank=c
                )
                for c in range(3)
            ]
            cache = TaskCache(
                tb.env, tb.fabric, tb.diesel, "ds",
                [c.as_cache_client() for c in clients],
                policy="oneshot", calibration=tb.cal,
            )
            tb.run(cache.register())
            tb.run(cache.wait_warm())
            index = clients[0].index
            cc = clients[0].as_cache_client()
            lat: List[float] = []
            paths = list(files)

            def reads(order):
                for path in order:
                    t0 = tb.env.now
                    yield from cache.read_file(cc, index.lookup(path))
                    lat.append(tb.env.now - t0)

            tb.run(reads(paths))  # healthy pass: calibrates the delay
            healthy_p99 = float(np.percentile(lat, 99))
            if hedge_on:
                cache.configure_hedging(delay_s=2 * healthy_p99)
            chaos = ChaosSchedule(tb.env).degrade_nic(
                tb.compute_nodes[1], factor=straggler_slow,
                extra_latency_s=straggler_extra_s,
                at=tb.env.now, duration_s=60.0,
            )
            chaos.start()
            lat.clear()
            tb.run(reads(paths * 2))
            row = {
                "event": "straggler", "hedge": hedge_on,
                "healthy_p99_s": healthy_p99,
                "p50_s": float(np.percentile(lat, 50)),
                "p99_s": float(np.percentile(lat, 99)),
                "reads": len(lat),
            }
            if hedge_on:
                hs = cache.hedge_stats
                row.update(
                    duplicate_rate=
                        hs.duplicate_transfers / max(1, hs.reads),
                    **{f"hedge_{k}": v for k, v in hs.to_dict().items()},
                )
            return row

        off = straggler_run(False)
        on = straggler_run(True)
        result.add(**off)
        result.add(**on)
        p99_gain = off["p99_s"] / on["p99_s"] if on["p99_s"] else 0.0
        result.add(
            event="straggler_gain", p99_ratio=p99_gain,
            duplicate_rate=on["duplicate_rate"],
            hedges_fired=on["hedge_hedges_fired"],
            backup_wins=on["hedge_backup_wins"],
            cancelled_losers=on["hedge_cancelled_losers"],
        )
        result.note(
            f"straggler ({straggler_slow:g}x NIC + "
            f"{straggler_extra_s * 1e3:g}ms): hedging cut p99 "
            f"{off['p99_s'] * 1e3:.2f}ms → {on['p99_s'] * 1e3:.2f}ms "
            f"({p99_gain:.1f}x) — {on['hedge_hedges_fired']} hedges, "
            f"{on['hedge_backup_wins']} backup wins, "
            f"{on['duplicate_rate']:.1%} duplicate transfers"
        )

        # ----------------------------------- phase 4: flash crowd
        def crowd_run(n_tasks: int) -> tuple:
            tb = make_testbed(n_compute=4)
            add_diesel(tb, n_servers=1)
            bulk_load_diesel(tb, "ds", files, chunk_size=chunk_size)
            registry = SharedCacheRegistry(tb.env)
            tasks = []
            for t in range(n_tasks):
                tclients = [
                    diesel_client_with_snapshot(
                        tb, "ds", tb.compute_nodes[c], f"fc{t}w{c}",
                        rank=c,
                    )
                    for c in range(4)
                ]
                tasks.append(build_sweep_task(
                    f"crowd{t}", tb.env, tb.fabric, tb.diesel, "ds",
                    tclients, shared=registry,
                ))

            def stampede(task):
                yield from task.cache.register()
                yield from task.cache.wait_warm()
                index = task.clients[0].index
                cc = task.cache.clients[0]
                for path in index.all_paths():
                    yield from task.cache.read_file(cc, index.lookup(path))

            fetches_before = tb.diesel.stats.chunk_reads
            chaos = ChaosSchedule(tb.env).flash_crowd(
                0.0, lambda: [stampede(t) for t in tasks],
                label=f"crowd{n_tasks}",
            )
            chaos.start()
            tb.env.run()
            return tb.diesel.stats.chunk_reads - fetches_before, registry

        single_fetches, _ = crowd_run(1)
        crowd_fetches, registry = crowd_run(crowd_tasks)
        ratio = crowd_fetches / max(1, single_fetches)
        result.add(
            event="flash_crowd", tasks=crowd_tasks,
            backend_chunk_fetches=crowd_fetches,
            single_task_fetches=single_fetches,
            fetch_ratio_vs_single=ratio,
            **stats_row(registry.stats, prefix="shared_"),
        )
        result.note(
            f"flash crowd: {crowd_tasks} tasks stampeding one dataset → "
            f"{crowd_fetches} backend fetches "
            f"({ratio:.2f}x single-task)"
        )
    return result


def fig_metaplane(
    n_files: int = 5000,
    file_size: int = 512,
    chunk_size: int = 64 * KB,
    append_frac: float = 0.01,
    page_limit: int = 1000,
    registry_sizes: Sequence[int] = (1_000, 1_000_000),
    probe_stats: int = 50,
    online_files: int = 64,
    online_late: int = 16,
    online_group: int = 2,
) -> ExperimentResult:
    """The delta metadata plane: journal deltas, pagination, registry scale.

    Four phases, each on a fresh testbed:

    1. **Delta reload** — a client holding a ``n_files`` snapshot sees
       ``append_frac`` of the dataset appended; ``refresh_meta()``
       fetches only the journal delta.  Measures delta bytes vs the
       full snapshot blob and the simulated refresh time vs a full
       save/load round (the §4.1.3 mutation cliff, removed).
    2. **Pagination** — the same keyspace walked with cursor-paginated
       ``pscan`` at ``page_limit``: the paged union must be
       bit-identical to the unpaginated scan.
    3. **Registry scale** — the dataset registry grows from
       ``registry_sizes[0]`` to ``registry_sizes[-1]`` roots while one
       real dataset's per-client metadata costs (server stat,
       save+load_meta, one registry page) are measured at each size:
       namespace growth must not tax per-dataset operations.
    4. **Online ingest** — a training client commits to half an epoch,
       new chunks land mid-epoch, the client picks up the delta and
       ``tail_extend``s its plan: the committed read order stays
       bit-identical and every file (old and late) is read exactly once.
    """
    from repro.core.client import DieselClient
    from repro.core.shuffle import tail_extend

    result = ExperimentResult(
        "delta metadata plane",
        "incremental snapshots, paginated pscan, sharded registry "
        "(§4.1.3 / §4.1.1 at namespace scale)",
    )
    files = {
        f"/ds/class{i % 50:02d}/img{i:06d}.jpg": bytes([i % 251]) * file_size
        for i in range(n_files)
    }

    with timer(result):
        # --------------------------------------- phase 1: delta reload
        tb = make_testbed(n_compute=2)
        add_diesel(tb, n_servers=1)
        bulk_load_diesel(tb, "ds", files, chunk_size=chunk_size)
        client = DieselClient(
            tb.env, tb.compute_nodes[0], tb.diesel_servers, "ds",
            name="mp0", calibration=tb.cal,
        )
        blob = tb.run(client.save_meta())
        t0 = tb.env.now
        tb.run(client.load_meta(blob))
        full_load_s = tb.env.now - t0
        n_append = max(1, int(n_files * append_frac))
        late = {
            f"/ds/late/img{i:06d}.jpg": bytes([i % 251]) * file_size
            for i in range(n_append)
        }

        def push():
            for path, data in late.items():
                yield from client.put(path, data)
            yield from client.flush()

        tb.run(push())
        t0 = tb.env.now
        tb.run(client.refresh_meta())
        delta_refresh_s = tb.env.now - t0
        assert client.stats.delta_reloads == 1, "delta path did not engage"
        byte_ratio = client.stats.delta_bytes / len(blob)
        result.add(
            event="delta_reload", n_files=n_files, appended=n_append,
            snapshot_bytes=len(blob),
            delta_bytes=client.stats.delta_bytes,
            delta_bytes_ratio=byte_ratio,
            delta_ops=client.stats.delta_ops_applied,
            full_load_s=full_load_s, delta_refresh_s=delta_refresh_s,
            journal_depth=tb.diesel.journal.depth("ds"),
            index_files=client.index.file_count,
        )
        result.note(
            f"delta reload after {append_frac:.0%} append: "
            f"{client.stats.delta_bytes} B vs {len(blob)} B snapshot "
            f"({byte_ratio:.2%}), {delta_refresh_s * 1e3:.2f}ms vs "
            f"{full_load_s * 1e3:.2f}ms full reload"
        )

        # ----------------------------------------- phase 2: pagination
        prefix = "f:ds:"
        flat = tb.kv.local_pscan(prefix)
        paged: List = []
        n_pages = 0
        for page in tb.kv.local_pscan_iter(prefix, page_limit):
            paged.extend(page)
            n_pages += 1
        result.add(
            event="pagination", prefix=prefix, n_keys=len(flat),
            page_limit=page_limit, n_pages=n_pages,
            bit_identical=paged == flat,
        )
        result.note(
            f"paginated pscan: {len(flat)} keys in {n_pages} pages of "
            f"{page_limit} — union bit-identical: {paged == flat}"
        )

        # ------------------------------------- phase 3: registry scale
        tb = make_testbed(n_compute=2)
        add_diesel(tb, n_servers=1)
        probe_files = {
            f"/p/img{i:04d}.jpg": bytes([i % 251]) * file_size
            for i in range(200)
        }
        bulk_load_diesel(tb, "probe-ds", probe_files, chunk_size=chunk_size)
        registry = tb.diesel.registry
        probe_paths = sorted(probe_files)[:probe_stats]
        node = tb.compute_nodes[0]

        def probe_round():
            """(stat_s, load_s, page_s) per-client metadata costs."""
            t0 = tb.env.now

            def stats():
                for p in probe_paths:
                    yield from tb.diesel.call(node, "stat", "probe-ds", p)

            tb.run(stats())
            stat_s = (tb.env.now - t0) / len(probe_paths)
            c = DieselClient(
                tb.env, node, tb.diesel_servers, "probe-ds",
                name="mp-probe", calibration=tb.cal,
            )

            def reload():
                snap = yield from c.save_meta()
                yield from c.load_meta(snap)

            t0 = tb.env.now
            tb.run(reload())
            load_s = tb.env.now - t0

            def one_page():
                page = yield from tb.diesel.call(
                    node, "list_datasets", None, page_limit
                )
                return page

            t0 = tb.env.now
            names, _ = tb.run(one_page())
            page_s = tb.env.now - t0
            return stat_s, load_s, page_s, len(names)

        grown = 0
        baseline: Optional[dict] = None
        for size in registry_sizes:
            while grown < size - 1:  # probe-ds itself occupies one slot
                registry.add(f"reg-ds-{grown:07d}")
                grown += 1
            stat_s, load_s, page_s, page_names = probe_round()
            row = dict(
                event="registry_scale", datasets=size,
                stat_s=stat_s, load_meta_s=load_s, page_s=page_s,
                page_names=page_names,
                shards=registry.n_shards,
                max_shard_occupancy=max(registry.occupancy()),
            )
            if baseline is None:
                baseline = row
                row["stat_ratio"] = row["load_meta_ratio"] = 1.0
            else:
                row["stat_ratio"] = stat_s / baseline["stat_s"]
                row["load_meta_ratio"] = load_s / baseline["load_meta_s"]
            result.add(**row)
        result.note(
            f"registry {registry_sizes[0]} → {registry_sizes[-1]} "
            f"datasets: stat {row['stat_ratio']:.2f}x, "
            f"load_meta {row['load_meta_ratio']:.2f}x (flat = 1.0x)"
        )

        # -------------------------------------- phase 4: online ingest
        tb = make_testbed(n_compute=2)
        add_diesel(tb, n_servers=1)
        online = {
            f"/o/img{i:04d}.jpg": bytes([i % 251]) * 4096
            for i in range(online_files)
        }
        bulk_load_diesel(tb, "online", online, chunk_size=32 * KB)
        reader = DieselClient(
            tb.env, tb.compute_nodes[0], tb.diesel_servers, "online",
            name="mp-reader", calibration=tb.cal,
        )
        snap = tb.run(reader.save_meta())
        tb.run(reader.load_meta(snap))
        reader.enable_shuffle(group_size=online_group)
        plan = reader.epoch_file_list(seed=7)
        committed = plan.files[: len(plan.files) // 2]
        late_files = {
            f"/o/late{i:04d}.jpg": bytes([(i * 7) % 251]) * 4096
            for i in range(online_late)
        }
        read_order: List[str] = []

        def read_span(paths):
            for path in paths:
                payload = yield from reader.get(path)
                assert payload == (online.get(path) or late_files[path])
                read_order.append(path)

        tb.run(read_span(committed))
        # New data lands mid-epoch from a separate writer.
        writer = DieselClient(
            tb.env, tb.compute_nodes[1], tb.diesel_servers, "online",
            name="mp-writer", calibration=tb.cal,
        )

        def push_late():
            for path, data in late_files.items():
                yield from writer.put(path, data)
            yield from writer.flush()

        tb.run(push_late())
        tb.run(reader.refresh_meta())
        extended = tail_extend(
            plan, reader.index.files_by_chunk(), online_group,
            random.Random(11),
        )
        tb.run(read_span(extended.files[len(committed):]))
        lost = (set(online) | set(late_files)) - set(read_order)
        dup = len(read_order) - len(set(read_order))
        order_preserved = (
            read_order[: len(committed)] == committed
            and extended.files[: len(plan.files)] == plan.files
        )
        result.add(
            event="online_ingest", n_files=online_files,
            late_files=online_late,
            delta_reloads=reader.stats.delta_reloads,
            delta_ops=reader.stats.delta_ops_applied,
            lost_reads=len(lost), duplicate_reads=dup,
            committed_order_preserved=order_preserved,
            epoch_reads=len(read_order),
        )
        result.note(
            f"online ingest: {online_late} files appended mid-epoch, "
            f"picked up via delta ({reader.stats.delta_ops_applied} ops) "
            f"— {len(lost)} lost reads, committed order preserved: "
            f"{order_preserved}"
        )
    return result


#: Registry used by the CLI-style runner and the EXPERIMENTS.md generator.
ALL_EXPERIMENTS = {
    "table2": table2_read_bandwidth,
    "fig6": fig6_cache_degradation,
    "fig9": fig9_write_throughput,
    "fig10a": fig10a_metadata_scaling,
    "fig10b": fig10b_snapshot_scaling,
    "fig10c": fig10c_ls_elapsed,
    "fig11a": fig11a_read_scaling,
    "fig11b": fig11b_cache_recovery,
    "fig12": fig12_shuffle_bandwidth,
    "fig13": fig13_shuffle_accuracy,
    "fig14": fig14_data_access_time,
    "fig15": fig15_training_time,
    "prefetch": prefetch_pipeline,
    "ingest": ingest_pipeline,
    "fanout": fanout_scatter_gather,
    "latency": latency_breakdown,
    "faults": fig_faults,
    "locality": fig_locality,
    "scale": scale_engine,
    "sharing": model_selection,
    "capacity": capacity,
    "elastic": fig_elastic,
    "metaplane": fig_metaplane,
}
