"""Post-run utilization and traffic metrics for a testbed.

Experiments report rates; these helpers answer *why* — which station was
the bottleneck.  All values derive from the cumulative counters the
components already keep (device busy time, endpoint service time, fabric
bytes), evaluated against the simulation clock.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.cluster.devices import Device
from repro.rpc.endpoint import RpcEndpoint


def device_utilization(device: Device, now: float) -> float:
    """Busy fraction of the device's service capacity since t=0.

    1.0 means every service slot was occupied the whole run — the
    station was the bottleneck.
    """
    if now <= 0:
        return 0.0
    capacity_seconds = now * device._station.capacity
    return min(1.0, device.stats.busy_time / capacity_seconds)


def endpoint_utilization(endpoint: RpcEndpoint, now: float) -> float:
    """Busy fraction of the endpoint's worker pool since t=0."""
    if now <= 0:
        return 0.0
    capacity_seconds = now * endpoint._pool.capacity
    return min(1.0, endpoint.stats.busy_time / capacity_seconds)


def testbed_metrics(tb) -> Dict[str, Any]:
    """One summary dict for a :class:`repro.bench.setups.Testbed` run."""
    now = tb.env.now
    out: Dict[str, Any] = {
        "sim_time_s": now,
        "ssd_pool_utilization": device_utilization(tb.ssd_pool, now),
        "fabric_transfers": tb.fabric.stats.transfers,
        "fabric_bytes": tb.fabric.stats.bytes_moved,
    }
    if tb.lustre is not None:
        out["lustre_oss_utilization"] = device_utilization(tb.lustre.oss, now)
        out["lustre_mds_calls"] = sum(
            m.stats.calls for m in tb.lustre._mdts
        )
        out["lustre_mds_utilization"] = max(
            (endpoint_utilization(m, now) for m in tb.lustre._mdts),
            default=0.0,
        )
    if tb.memcached is not None:
        out["memcached_calls"] = sum(
            s.endpoint.stats.calls for s in tb.memcached.servers.values()
        )
        out["memcached_utilization"] = max(
            (endpoint_utilization(s.endpoint, now)
             for s in tb.memcached.servers.values()),
            default=0.0,
        )
    if tb.diesel_servers:
        out["diesel_data_calls"] = sum(
            s.endpoint.stats.calls for s in tb.diesel_servers
        )
        out["diesel_meta_calls"] = sum(
            s.meta_endpoint.stats.calls for s in tb.diesel_servers
        )
        out["diesel_meta_utilization"] = max(
            endpoint_utilization(s.meta_endpoint, now)
            for s in tb.diesel_servers
        )
    if tb.kv is not None:
        out["kv_pairs"] = tb.kv.total_keys()
        out["kv_rpc_calls"] = sum(
            i.endpoint.stats.calls for i in tb.kv.instances
        )
    return out


def bottleneck(tb) -> str:
    """Name of the most utilized station — the likely rate limiter."""
    metrics = testbed_metrics(tb)
    candidates = {
        k: v for k, v in metrics.items() if k.endswith("_utilization")
    }
    if not candidates:
        return "none"
    return max(candidates, key=candidates.get).removesuffix("_utilization")
