"""Experiment reporting: tables, JSON artifacts, and the stats seam.

Everything an experiment emits goes through this module:

* :func:`format_table` / :func:`format_result` — aligned plain-text
  tables for the runner's stdout;
* :func:`result_to_dict` / :func:`write_json` — the machine-readable
  ``BENCH_<id>.json`` artifacts;
* :func:`stats_row` — the one sanctioned path from a stats object
  (``ClientStats`` / ``ServerStats`` / ``CacheMasterStats`` / an
  ``obs.SpanRecorder``) into experiment rows.  Anything exposing
  ``to_dict()`` works, so per-layer latency columns from a recorder
  merge into the same row as plain counters;
* :func:`shape_check` / :func:`ratio` — paper-vs-measured verdicts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.bench.harness import ExperimentResult


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Dict[str, Any]], title: str = "") -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_result(result: ExperimentResult) -> str:
    """Full report block for one experiment."""
    parts = [
        f"== {result.name} ({result.paper_ref}) ==",
        format_table(result.rows),
    ]
    for note in result.notes:
        parts.append(f"note: {note}")
    if result.wall_seconds:
        parts.append(f"(ran in {result.wall_seconds:.2f}s wall)")
    if result.engine:
        e = result.engine
        parts.append(
            f"(engine: {e.get('sim_events', 0):,} events @ "
            f"{e.get('events_per_sec', 0.0):,.0f}/s, "
            f"peak occupancy {e.get('peak_occupancy', 0):,}, "
            f"scheduler {e.get('scheduler', '?')})"
        )
    return "\n".join(parts)


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Plain-dict form of an ExperimentResult (JSON-serializable)."""
    return {
        "name": result.name,
        "paper_ref": result.paper_ref,
        "rows": result.rows,
        "notes": result.notes,
        "wall_seconds": result.wall_seconds,
        # Engine throughput (events_per_sec, peak scheduler occupancy)
        # for the environments the experiment ran — every BENCH_*.json
        # records how hard the DES kernel worked to produce it.
        "engine": result.engine,
    }


def write_json(result: ExperimentResult, path) -> None:
    """Dump one experiment as a machine-readable JSON artifact."""
    import json
    from pathlib import Path

    Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2, sort_keys=False) + "\n"
    )


def stats_row(
    stats: Any, keys: Sequence[str] | None = None, prefix: str = ""
) -> Dict[str, Any]:
    """Select counters from a stats object's ``to_dict()`` as table cells.

    The one sanctioned path from ``ClientStats`` / ``ServerStats`` /
    ``CacheMasterStats`` — or an :class:`repro.obs.SpanRecorder`, whose
    ``to_dict()`` flattens per-(op, layer) latency percentiles — into
    experiment rows; no ad-hoc attribute plucking.  Since every stats
    class derives ``to_dict()`` from its dataclass fields, a counter
    added to a stats class automatically appears here.  ``keys=None``
    takes every counter; ``prefix`` namespaces the columns (e.g.
    ``"srv_"``).
    """
    counters = stats.to_dict()
    if keys is None:
        keys = list(counters)
    return {f"{prefix}{k}": counters[k] for k in keys}


def shape_check(
    label: str, measured: float, expected: float, rel_tol: float
) -> Dict[str, Any]:
    """One paper-vs-measured comparison row with a pass/fail verdict."""
    if expected == 0:
        ok = abs(measured) <= rel_tol
    else:
        ok = abs(measured - expected) / abs(expected) <= rel_tol
    return {
        "check": label,
        "paper": expected,
        "measured": measured,
        "tolerance": f"±{rel_tol:.0%}",
        "ok": "PASS" if ok else "FAIL",
    }


def ratio(a: float, b: float) -> float:
    """Safe a/b for speedup reporting."""
    return a / b if b else float("inf")
