"""Shared experiment testbed builders.

Each experiment wires the systems it compares onto one simulated fabric
mirroring the paper's testbed (Table 4).  Builders also provide
*zero-cost population* helpers: experiment setup (writing the fixture
dataset) happens outside measured time, exactly like the paper's data
preparation step, so only the measured phase spends simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.lustre import LustreFS
from repro.baselines.memcached import MemcachedCluster
from repro.calibration import Calibration, DEFAULT
from repro.core.chunk import Chunk
from repro.core.chunk_builder import ChunkBuilder
from repro.core.client import DieselClient
from repro.core.config import DieselConfig
from repro.core.server import DieselServer, object_key
from repro.core.snapshot import SnapshotIndex
from repro.cluster.devices import Device
from repro.cluster.network import NetworkFabric
from repro.cluster.node import Node
from repro.kvstore import KVInstance, ShardedKV
from repro.objectstore import ObjectStore
from repro.sim import Environment
from repro.util.ids import sim_id_generator
from repro.workloads.datasets import DatasetSpec
from repro.workloads.filegen import generate_file


@dataclass
class Testbed:
    """One wired experiment environment."""

    __test__ = False  # not a pytest test class despite the name

    env: Environment
    fabric: NetworkFabric
    cal: Calibration
    storage_nodes: List[Node]
    compute_nodes: List[Node]
    ssd_pool: Device
    lustre: Optional[LustreFS] = None
    memcached: Optional[MemcachedCluster] = None
    kv: Optional[ShardedKV] = None
    store: Optional[object] = None  # ObjectStore or TieredStore
    diesel_servers: List[DieselServer] = field(default_factory=list)
    config_store: Optional[object] = None  # core.config.ConfigStore

    @property
    def diesel(self) -> DieselServer:
        return self.diesel_servers[0]

    def run(self, gen):
        proc = self.env.process(gen)
        return self.env.run(until=proc)

    def run_all(self, gens) -> None:
        procs = [self.env.process(g) for g in gens]
        self.env.run(until=self.env.all_of(procs))


def make_testbed(
    n_compute: int = 10,
    n_storage: int = 6,
    cal: Calibration = DEFAULT,
    scheduler: Optional[str] = None,
) -> Testbed:
    """Wire the shared fabric; ``scheduler`` picks the DES queue
    (``DieselConfig.sim_scheduler``; None = the environment default)."""
    env = Environment(scheduler=scheduler)
    fabric = NetworkFabric(env, cal.network)
    storage = [
        fabric.add_node(Node(env, f"storage{i}", nic_channels=8))
        for i in range(n_storage)
    ]
    compute = [
        fabric.add_node(Node(env, f"compute{i}", nic_channels=8))
        for i in range(n_compute)
    ]
    ssd = Device(
        env, "ssd-pool", cal.nvme.per_op_s, cal.nvme.bandwidth_bps,
        cal.nvme.queue_depth,
    )
    return Testbed(env, fabric, cal, storage, compute, ssd)


def add_lustre(tb: Testbed, n_mds: int = 1, dne: str = "none") -> LustreFS:
    cal = tb.cal
    oss = Device(
        tb.env, "lustre-oss", cal.lustre.oss_per_op_s,
        cal.lustre.oss_bandwidth_bps, queue_depth=cal.lustre.oss_queue_depth,
    )
    mds_nodes = tb.storage_nodes[:n_mds]
    tb.lustre = LustreFS(tb.env, tb.fabric, mds_nodes, oss,
                         profile=cal.lustre, dne=dne)
    return tb.lustre


def add_memcached(tb: Testbed, n_servers: Optional[int] = None) -> MemcachedCluster:
    nodes = tb.compute_nodes[: n_servers or len(tb.compute_nodes)]
    tb.memcached = MemcachedCluster(tb.env, tb.fabric, nodes, profile=tb.cal.memcached)
    return tb.memcached


def add_diesel(
    tb: Testbed,
    n_servers: int = 1,
    n_kv: int = 16,
    config: DieselConfig | None = None,
    tiered: bool = False,
    ssd_cache_bytes: float = 64 * 2**30,
) -> List[DieselServer]:
    """Deploy DIESEL onto the testbed (Fig 2).

    ``tiered=True`` puts chunks on the HDD pool with the SSD pool as the
    server-side cache tier (the Fig 4 "fast object-storage" path);
    otherwise chunks live directly on the SSD pool.  The deployment's
    configuration is published through an ETCD-like config store, which
    servers read at startup.
    """
    from repro.cluster.devices import Device as _Device
    from repro.core.config import ConfigStore
    from repro.objectstore import TieredStore

    cal = tb.cal
    config = config or DieselConfig()
    # ETCD (Fig 2): system configuration all components read at startup.
    tb.config_store = ConfigStore()
    tb.config_store.put("diesel/config", config)
    tb.config_store.put("diesel/n_servers", n_servers)
    # Redis cluster: 16 instances across four storage nodes (Table 4).
    instances = []
    for i in range(n_kv):
        node = tb.storage_nodes[i % len(tb.storage_nodes)]
        instances.append(
            KVInstance(tb.env, tb.fabric, node, f"redis{i}",
                       qps=cal.redis.cluster_qps / n_kv)
        )
    tb.kv = ShardedKV(instances)
    if tiered:
        hdd = _Device(tb.env, "hdd-pool", cal.hdd.per_op_s,
                      cal.hdd.bandwidth_bps, cal.hdd.queue_depth)
        tb.store = TieredStore(tb.ssd_pool, hdd,
                               ssd_capacity_bytes=ssd_cache_bytes)
    else:
        tb.store = ObjectStore(tb.ssd_pool)
    tb.diesel_servers = [
        DieselServer(
            tb.env, tb.fabric, tb.storage_nodes[i % len(tb.storage_nodes)],
            tb.kv, tb.store,
            config=tb.config_store.get("diesel/config"),
            calibration=cal, name=f"diesel{i}",
        )
        for i in range(n_servers)
    ]
    return tb.diesel_servers


# ---------------------------------------------------------------- population
def dataset_files(
    spec: DatasetSpec, content: bool = False, seed: int = 0
) -> Dict[str, bytes | int]:
    """path → payload (content=True) or path → size (content=False)."""
    if content:
        return {
            path: generate_file(path, size, seed)
            for path, size in spec.iter_files()
        }
    return dict(spec.iter_files())


def bulk_load_diesel(
    tb: Testbed,
    dataset: str,
    files: Dict[str, bytes],
    chunk_size: int = 4 * 1024 * 1024,
) -> List[Chunk]:
    """Populate DIESEL outside measured time (fixture setup)."""
    if tb.store is None:
        raise RuntimeError("call add_diesel() first")
    builder = ChunkBuilder(
        sim_id_generator(f"bulkload:{dataset}", clock=lambda: tb.env.now),
        chunk_size=chunk_size,
    )
    chunks = builder.build_all(files.items())
    server = tb.diesel
    for chunk in chunks:
        tb.store.load([(object_key(dataset, chunk.chunk_id), chunk.encode())])
        server.ingest_metadata(dataset, chunk)
    return chunks


def bulk_load_lustre(tb: Testbed, files: Dict[str, bytes]) -> None:
    if tb.lustre is None:
        raise RuntimeError("call add_lustre() first")
    for path, data in files.items():
        tb.lustre.ns.create_file(path, data)


def bulk_load_memcached(tb: Testbed, files: Dict[str, bytes]) -> None:
    if tb.memcached is None:
        raise RuntimeError("call add_memcached() first")
    for path, data in files.items():
        tb.memcached.server_for(path)._data[path] = data


def diesel_client_with_snapshot(
    tb: Testbed,
    dataset: str,
    node: Node,
    name: str,
    rank: int = 0,
    config: DieselConfig | None = None,
) -> DieselClient:
    """A client with the dataset snapshot pre-loaded (zero-cost fixture)."""
    client = DieselClient(
        tb.env, node, tb.diesel_servers, dataset,
        name=name, rank=rank, config=config, calibration=tb.cal,
    )
    snapshot = tb.diesel.build_snapshot(dataset)
    client._index = SnapshotIndex(snapshot)
    return client
