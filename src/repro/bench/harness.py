"""Experiment result containers and run helpers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.sim.engine import aggregate_engine_stats, env_generation


@dataclass
class ExperimentResult:
    """The output of one table/figure reproduction."""

    name: str
    paper_ref: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Engine throughput over the experiment's environments — scheduler,
    #: sim_events, events_per_sec, peak_occupancy (see
    #: :func:`repro.sim.engine.aggregate_engine_stats`); stamped by
    #: :class:`timer`, empty when no environment ran inside it.
    engine: Dict[str, Any] = field(default_factory=dict)

    def add(self, **row: Any) -> None:
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, key: str) -> list:
        return [r[key] for r in self.rows]

    def where(self, **conditions: Any) -> List[Dict[str, Any]]:
        out = []
        for r in self.rows:
            if all(r.get(k) == v for k, v in conditions.items()):
                out.append(r)
        return out

    def one(self, **conditions: Any) -> Dict[str, Any]:
        matches = self.where(**conditions)
        if len(matches) != 1:
            raise LookupError(
                f"expected exactly one row matching {conditions}, "
                f"found {len(matches)}"
            )
        return matches[0]


class timer:
    """Context manager stamping wall time — and engine throughput for
    every Environment created inside the block — onto an
    ExperimentResult."""

    def __init__(self, result: ExperimentResult) -> None:
        self.result = result

    def __enter__(self) -> ExperimentResult:
        self._gen0 = env_generation()
        self._t0 = time.perf_counter()
        return self.result

    def __exit__(self, *exc) -> None:
        self.result.wall_seconds = time.perf_counter() - self._t0
        stats = aggregate_engine_stats(since=self._gen0)
        if stats is not None:
            self.result.engine = stats.to_dict()
