"""Cost-model calibration constants for the DIESEL reproduction.

Every constant in this module is fitted to a measurement reported in the
paper (Wang et al., ICPP 2020) and is annotated with its provenance.  The
simulation substrate (:mod:`repro.sim`, :mod:`repro.cluster`) consumes
these numbers; the experiments in :mod:`repro.bench` then validate the
*emergent* shapes — scaling curves, saturation points, crossovers and
failure responses — which are not directly encoded anywhere.

Units: seconds, bytes, operations/second unless stated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class NvmeProfile:
    """NVMe-SSD storage-cluster read profile.

    Fitted to Table 2 of the paper: a single stream on the six-machine
    SSD-backed storage cluster.  With ``t(size) = per_op + size/bandwidth``
    the reproduction matches all seven rows of Table 2 within ~10 %:

    ==========  ===============  =================
    file size   paper files/s    model files/s
    ==========  ===============  =================
    1 KB        34 353           ~34 500
    4 KB        32 841           ~33 200
    64 KB       21 073           ~21 400
    1 MB        3 104            ~3 000
    4 MB        799              ~790
    ==========  ===============  =================
    """

    #: Fixed per-operation overhead (submission, NVMe command, interrupt).
    per_op_s: float = 27.7e-6
    #: Streaming bandwidth of the storage cluster for one client stream.
    bandwidth_bps: float = 3.30 * GB
    #: Concurrent full-rate streams the pool sustains.  4 × 3.3 GiB/s
    #: ≈ 13 GiB/s aggregate, consistent with the ~10 GB/s object-storage
    #: read ceiling visible in Fig 12's 128 KB DIESEL numbers.
    queue_depth: int = 4


@dataclass(frozen=True)
class HddProfile:
    """HDD-backed (slow tier) storage profile.

    The paper does not benchmark the HDD tier directly; we use a
    conventional 7.2k-RPM array profile (seek-dominated small reads,
    ~180 MB/s streaming per spindle aggregated over the array).
    """

    per_op_s: float = 6e-3
    bandwidth_bps: float = 1.0 * GB
    queue_depth: int = 16


@dataclass(frozen=True)
class NetworkProfile:
    """100 Gb/s InfiniBand fabric (Table 4).

    Latency is the one-way small-message latency of IB verbs through a
    userspace RPC stack (Thrift in the paper adds serialization cost,
    modelled separately in :data:`RpcProfile`).
    """

    bandwidth_bps: float = 100e9 / 8  # 12.5 GB/s
    latency_s: float = 5e-6
    #: Per-connection memory footprint, used for connection accounting only.
    connection_overhead_bytes: int = 256 * KB


@dataclass(frozen=True)
class RpcProfile:
    """Thrift-like RPC layer cost model.

    ``per_call_s`` covers serialization + syscall + dispatch on top of raw
    network latency.  Fitted so a single memcached-style get of a 4 KB
    value costs ~50 µs end to end, consistent with the Memcached cluster
    read ceiling in §6.4 (~560 k QPS over 10 nodes with 16 threads each).
    """

    per_call_s: float = 12e-6
    per_byte_s: float = 1.0 / (8 * GB)  # serialization memcpy cost


@dataclass(frozen=True)
class LustreProfile:
    """Lustre baseline cost model (§2.2, §6).

    * ``mds_qps``: the paper measures ~68 000 QPS on the Lustre MDS
      (§6.3, metadata-snapshot comparison); ``mds_latency_s`` is the
      unloaded round-trip service latency.
    * **Random small reads are op-limited**, not bandwidth-limited:
      Fig 12 reports 15.4 k files/s at 4 KB *and* 15.6 k files/s at
      128 KB — both ≈ 1/64 µs — so the OSS random-read path is modelled
      as a nearly serial station (``oss_queue_depth=1``) with
      ``oss_per_op_s ≈ 62 µs`` (DLM locking + RPC + readahead miss) and a
      high stream bandwidth so the size term stays secondary.
    * **Writes amplify**: Fig 9's ~5.7 k 4 KB creates/s (2 M / 366.7)
      implies ~175 µs per create on the data path ⇒
      ``write_amplification ≈ 2.8`` on top of the read op cost
      (journal + lock + OST object create).
    * ``stat_extra_rpcs``: ``ls -lR`` needs file sizes, which live on the
      OSS, so a stat costs extra RPCs (Fig 10c: 170 s vs 35 s for 1.28 M
      files).
    """

    mds_qps: float = 68_000.0
    mds_latency_s: float = 50e-6
    #: MDS operations consumed by creating one file (lookup+create+lock).
    create_mds_ops: float = 2.0
    #: MDS operations consumed by opening one file for read.
    open_mds_ops: float = 1.0
    #: Extra OSS round trips for a full stat (size lives on the OSS).
    stat_extra_rpcs: int = 1
    #: OSS random-small-IO path: nearly serial, op-dominated (see above).
    oss_per_op_s: float = 62e-6
    oss_bandwidth_bps: float = 8.0 * GB
    oss_queue_depth: int = 1
    #: Multiplier on oss_per_op_s for file creation/write ops.
    write_amplification: float = 2.8
    #: Client-side POSIX/locking overhead per file operation.
    client_posix_s: float = 25e-6


@dataclass(frozen=True)
class MemcachedProfile:
    """Memcached + Twemproxy baseline cost model (§6.1, §6.4).

    Fitted to the paper's cluster: each node runs one 16-thread memcached
    server and eight twemproxy instances.

    * **Reads**: the cluster read ceiling is ~56 k QPS per node (560 k at
      10 nodes, Fig 11a) with ~50 µs unloaded GET latency.
    * **Writes**: libMemcached has no batch mode (one RPC per SET), but
      twemproxy pipelines concurrent clients, so the write ceiling is
      higher than reads.  Fig 9 implies ~1.1 M 4 KB SETs/s over 64 procs
      (≈54 µs/SET/client) and ~37 k 128 KB SETs/s (≈1.7 ms/SET/client)
      ⇒ a client-side serialization cost of ~13 ns/byte through the
      proxy path dominates large values.
    """

    server_qps: float = 56_000.0
    latency_s: float = 50e-6
    proxy_extra_s: float = 8e-6
    #: Server-side value copy cost (small; proxies bear the real cost).
    per_byte_s: float = 1.0 / (16 * GB)
    #: Client-side SET marshalling through libMemcached + twemproxy.
    write_per_op_s: float = 25e-6
    write_per_byte_s: float = 13e-9
    #: SET service is cheaper than GET at the server (pipelined).
    write_speedup: float = 6.0


@dataclass(frozen=True)
class RedisProfile:
    """Redis-cluster metadata store (§6.1, §6.3).

    The paper's 16-instance Redis cluster saturates at ~0.97 M QPS
    (measured with memtier_benchmark).  We model per-instance capacity as
    cluster cap / 16.
    """

    cluster_qps: float = 970_000.0
    instances: int = 16
    latency_s: float = 20e-6

    @property
    def instance_qps(self) -> float:
        return self.cluster_qps / self.instances


@dataclass(frozen=True)
class DieselProfile:
    """DIESEL server/client cost model (§6.3, §6.4).

    * ``server_meta_qps``: one DIESEL server's metadata-proxy capacity.
      Fig 10a: one server flattens the client-scaling curve at ~2 client
      nodes, three servers at ~7 nodes, five servers approach the Redis
      cap (0.97 M QPS) — consistent with ~0.21 M QPS per server and
      ~0.10 M QPS of demand per 16-thread client node.
    * ``client_meta_lookup_s``: local snapshot (hashmap) lookup cost.
      Fig 10b: 8.83 M QPS per 16-thread node ⇒ ~1.81 µs per lookup.
    * ``metadata_think_s``: client-side POSIX + framework overhead per
      *remote* metadata call, making per-node demand ≈ 0.1 M QPS as the
      Fig 10a flattening points imply.
    * ``api_read_overhead_s``: per-request client-side cost of a 4 KB
      read via the task-grained cache (Fig 11a: 1.2 M QPS over 160
      clients ⇒ ~133 µs per op end to end; the remainder beyond
      RPC+network is this constant).
    * ``client_put_overhead_s`` / ``client_put_per_byte_s``: DL_put's
      client-side packing cost.  Fig 9: 2 M 4 KB files/s over 64 procs ⇒
      ~31 k files/s/proc ⇒ ~30 µs per small file.
    * ``fuse_overhead_s``: extra kernel-crossing + context-switch cost per
      FUSE call.  Fig 11a: FUSE achieves ~2/3 of API throughput.
    """

    server_meta_qps: float = 210_000.0
    server_meta_latency_s: float = 40e-6
    client_meta_lookup_s: float = 1.81e-6
    metadata_think_s: float = 85e-6
    api_read_overhead_s: float = 65e-6
    fuse_overhead_s: float = 65e-6
    client_put_overhead_s: float = 22e-6
    client_put_per_byte_s: float = 1.0 / (3 * GB)
    #: Replicated-journal ack bandwidth for chunk ingest (write-back to
    #: NVMe happens in the background); sized so the six-machine array
    #: absorbs Fig 9's burst writes, as the paper's 3-second ImageNet
    #: load implies (~50 GB/s aggregate).
    ingest_journal_bps: float = 24 * GB
    #: Per-peer-hop cost of fetching a file from a remote master client.
    peer_fetch_overhead_s: float = 18e-6


@dataclass(frozen=True)
class FuseProfile:
    """FUSE kernel-userspace redirection model (§5, Vangoor FAST'17).

    The kernel splits large reads into ``max_read``-sized requests and
    forwards each to the userspace daemon; every crossing costs
    ``crossing_s``.
    """

    crossing_s: float = 9e-6
    max_read_bytes: int = 128 * KB


@dataclass(frozen=True)
class ModelProfile:
    """Per-iteration GPU compute time and IO demand of one training model.

    ``compute_s`` is the per-iteration forward+backward time on the
    paper's 4-node × 8×V100 setup with per-GPU batch 32 (global batch
    256 for ResNet-50's 5005 iterations/epoch on ImageNet-1K).  Values
    are representative of V100 FP32 throughput for each architecture —
    the paper reports total times of 37–66 h over 90 epochs across the
    four models, which these profiles land inside.
    """

    name: str
    compute_s: float
    batch_size: int = 256


#: Fig 14/15 model zoo.  AlexNet is the lightest (most IO-bound), ResNet-50
#: the heaviest (most compute-bound).
MODEL_ZOO: dict[str, ModelProfile] = {
    "alexnet": ModelProfile("alexnet", compute_s=0.110),
    "vgg11": ModelProfile("vgg11", compute_s=0.160),
    "resnet18": ModelProfile("resnet18", compute_s=0.140),
    "resnet50": ModelProfile("resnet50", compute_s=0.230),
}


@dataclass(frozen=True)
class Calibration:
    """Aggregate calibration bundle threaded through experiment builders."""

    nvme: NvmeProfile = field(default_factory=NvmeProfile)
    hdd: HddProfile = field(default_factory=HddProfile)
    network: NetworkProfile = field(default_factory=NetworkProfile)
    rpc: RpcProfile = field(default_factory=RpcProfile)
    lustre: LustreProfile = field(default_factory=LustreProfile)
    memcached: MemcachedProfile = field(default_factory=MemcachedProfile)
    redis: RedisProfile = field(default_factory=RedisProfile)
    diesel: DieselProfile = field(default_factory=DieselProfile)
    fuse: FuseProfile = field(default_factory=FuseProfile)


#: Default calibration used by every experiment unless overridden.
DEFAULT = Calibration()
