"""Per-peer circuit breaker (closed → open → half-open, sim clock).

Once a peer has failed ``threshold`` consecutive calls there is no
information left in calling it again — every further attempt just pays
the timeout before taking the degraded path anyway.  The breaker makes
that decision once: it *opens* for ``reset_s`` simulated seconds during
which calls fast-fail, then allows a single half-open probe whose
outcome either closes it again or re-opens it for another window.
"""

from __future__ import annotations

from repro.sim.engine import Environment

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Tracks consecutive failures against one peer.

    Usage discipline (what :func:`repro.ft.retry.retry_call` does):
    call :meth:`allow` before an attempt — a falsy return means
    fast-fail, a truthy one is the *attempt token* for that call — then
    report the outcome with :meth:`record_failure(token)` /
    :meth:`record_success(token)`.

    The token lets the breaker tell a failed half-open probe apart from
    a straggler: a slow call admitted *before* the trip whose failure
    only lands while the breaker is open or freshly recovered.  Without
    it, such a straggler would restart the open window (or re-trip a
    breaker the probe had just closed) even though the peer is healthy
    again.
    """

    def __init__(
        self,
        env: Environment,
        threshold: int = 5,
        reset_s: float = 1.0,
        name: str = "",
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if reset_s <= 0:
            raise ValueError("reset_s must be positive")
        self.env = env
        self.threshold = threshold
        self.reset_s = reset_s
        self.name = name
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False
        self._next_token = 0
        # Tokens below this were granted before the last trip; their
        # failures carry no new information about the current window.
        self._window_start = 1
        self._probe_token: int | None = None
        #: Times the breaker tripped (closed/half-open → open).
        self.trips = 0
        #: Calls rejected while open.
        self.rejections = 0
        #: Stale failure reports ignored (pre-trip stragglers).
        self.stale_reports = 0

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open by the sim clock."""
        if self._opened_at is None:
            return CLOSED
        if self.env.now - self._opened_at >= self.reset_s:
            return HALF_OPEN
        return OPEN

    def allow(self) -> int:
        """Admit or fast-fail a call.

        Returns an attempt token (a positive int, so truthy) when the
        call may proceed, or ``0`` when it must fast-fail — existing
        ``if not breaker.allow()`` call sites keep working unchanged.
        """
        state = self.state
        if state == CLOSED:
            self._next_token += 1
            return self._next_token
        if state == HALF_OPEN and not self._probing:
            # Exactly one probe flies per half-open window.
            self._probing = True
            self._next_token += 1
            self._probe_token = self._next_token
            return self._next_token
        self.rejections += 1
        return 0

    def record_success(self, token: int | None = None) -> None:
        """A call completed: close the breaker and forget past failures.

        Even a stale success closes the breaker — a peer that answered
        is reachable, whenever the call was admitted.
        """
        self._failures = 0
        self._opened_at = None
        self._probing = False
        self._probe_token = None

    def record_failure(self, token: int | None = None) -> None:
        """A call failed: trip if at threshold or if the probe failed.

        ``token`` is the value :meth:`allow` returned for this attempt.
        Failures whose token predates the current window (admitted
        before the last trip) are stale stragglers: the trip already
        priced that peer in, so they neither restart an open window nor
        re-trip a breaker the probe has since closed.  ``None`` keeps
        the legacy always-counts behaviour for callers that cannot
        identify their attempt.
        """
        if token is not None and token < self._window_start:
            self.stale_reports += 1
            return
        if self._opened_at is not None:
            if token is None or token == self._probe_token:
                # The half-open probe failed: start a fresh open window.
                self._open()
            else:
                self.stale_reports += 1
            return
        self._failures += 1
        if self._failures >= self.threshold:
            self._open()

    def _open(self) -> None:
        self._opened_at = self.env.now
        self._probing = False
        self._probe_token = None
        self._failures = 0
        self._window_start = self._next_token + 1
        self.trips += 1

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self.state}, "
            f"trips={self.trips})"
        )
