"""Per-peer circuit breaker (closed → open → half-open, sim clock).

Once a peer has failed ``threshold`` consecutive calls there is no
information left in calling it again — every further attempt just pays
the timeout before taking the degraded path anyway.  The breaker makes
that decision once: it *opens* for ``reset_s`` simulated seconds during
which calls fast-fail, then allows a single half-open probe whose
outcome either closes it again or re-opens it for another window.
"""

from __future__ import annotations

from repro.sim.engine import Environment

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Tracks consecutive failures against one peer.

    Usage discipline (what :func:`repro.ft.retry.retry_call` does):
    call :meth:`allow` before an attempt — a ``False`` means fast-fail —
    then report the outcome with :meth:`record_failure` /
    :meth:`record_success`.
    """

    def __init__(
        self,
        env: Environment,
        threshold: int = 5,
        reset_s: float = 1.0,
        name: str = "",
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if reset_s <= 0:
            raise ValueError("reset_s must be positive")
        self.env = env
        self.threshold = threshold
        self.reset_s = reset_s
        self.name = name
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False
        #: Times the breaker tripped (closed/half-open → open).
        self.trips = 0
        #: Calls rejected while open.
        self.rejections = 0

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open by the sim clock."""
        if self._opened_at is None:
            return CLOSED
        if self.env.now - self._opened_at >= self.reset_s:
            return HALF_OPEN
        return OPEN

    def allow(self) -> bool:
        """Whether a call may be attempted right now."""
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and not self._probing:
            # Exactly one probe flies per half-open window.
            self._probing = True
            return True
        self.rejections += 1
        return False

    def record_success(self) -> None:
        """A call completed: close the breaker and forget past failures."""
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        """A call failed: trip if at threshold or if the probe failed."""
        if self._opened_at is not None:
            # Half-open probe failed (or a straggler from before the
            # trip): start a fresh open window.
            self._open()
            return
        self._failures += 1
        if self._failures >= self.threshold:
            self._open()

    def _open(self) -> None:
        self._opened_at = self.env.now
        self._probing = False
        self._failures = 0
        self.trips += 1

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self.state}, "
            f"trips={self.trips})"
        )
