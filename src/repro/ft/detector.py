"""Heartbeat/probe-based failure detector.

A single sim process probes every watched peer once per
``heartbeat_interval_s`` (optionally de-synchronized by a seeded
``jitter`` factor so large fleets do not probe in lockstep bursts).  A
peer that stops answering is first marked
**suspect** (it may be a transient blip); once it has been unreachable
for ``failure_timeout_s`` it is declared **dead** and the registered
transition callbacks fire — that is the hook the self-healing
supervisors (:mod:`repro.ft.supervisor`) use to trigger
``TaskCache.recover()`` and KV metadata rebuilds with no operator call.

A peer that answers again (node restored) transitions back to
**alive**, which likewise fires callbacks so healing after a restart is
automatic too.  Data-path code can short-circuit the probe loop by
calling :meth:`FailureDetector.report_failure` the moment an RPC to a
peer raises — detection latency then collapses from "next missed
heartbeat" to "first failed call".

Probes are pure attribute checks on the simulation's liveness model
(``target.up``) and consume no simulated network or CPU resources, so
an attached detector cannot perturb benchmark results.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.engine import Environment, Process

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"

#: Transition callback: ``(peer_name, new_state, sim_time)``.
TransitionCallback = Callable[[str, str, float], None]


class _Watch:
    """Book-keeping for one watched peer."""

    __slots__ = ("name", "target", "state", "last_alive")

    def __init__(self, name: str, target: Any, now: float) -> None:
        self.name = name
        self.target = target
        self.state = ALIVE
        self.last_alive = now


class FailureDetector:
    """Probes registered peers and publishes alive/suspect/dead state."""

    def __init__(
        self,
        env: Environment,
        heartbeat_interval_s: float = 0.05,
        failure_timeout_s: float = 0.25,
        recorder=None,
        jitter: float = 0.0,
        seed: int = 0xBEA7,
    ) -> None:
        if heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if failure_timeout_s <= heartbeat_interval_s:
            raise ValueError("failure_timeout_s must exceed heartbeat_interval_s")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.env = env
        self.heartbeat_interval_s = heartbeat_interval_s
        self.failure_timeout_s = failure_timeout_s
        #: Probe de-synchronization: each round sleeps the interval scaled
        #: by a seeded uniform factor in ``[1 - jitter, 1 + jitter]``, so a
        #: fleet of detectors does not probe in lockstep bursts.  ``0``
        #: (the default) keeps the exact fixed-interval schedule.
        self.jitter = jitter
        self._rng = random.Random(seed)
        #: Attached observability recorder (None = disabled).
        self.recorder = recorder
        self._watches: Dict[str, _Watch] = {}
        self._callbacks: List[TransitionCallback] = []
        self._proc: Optional[Process] = None
        #: Every transition as ``(sim_time, peer, new_state)``.
        self.events: List[Tuple[float, str, str]] = []
        self._death_latency: Dict[str, float] = {}

    # ------------------------------------------------------------ registry
    def watch(self, name: str, target: Any) -> None:
        """Start probing ``target`` (anything with a boolean ``up``)."""
        if name in self._watches:
            raise ValueError(f"already watching {name!r}")
        self._watches[name] = _Watch(name, target, self.env.now)

    def unwatch(self, name: str) -> None:
        """Stop probing ``name`` (no-op if unknown)."""
        self._watches.pop(name, None)

    def watched(self) -> list[str]:
        return sorted(self._watches)

    def on_transition(self, callback: TransitionCallback) -> None:
        """Register a callback fired on every state transition."""
        self._callbacks.append(callback)

    def state(self, name: str) -> str:
        return self._watches[name].state

    def last_alive(self, name: str) -> float:
        """Sim time of the last successful probe of ``name``."""
        return self._watches[name].last_alive

    # ----------------------------------------------------------- lifecycle
    def start(self) -> Process:
        """Launch the heartbeat loop; returns its process."""
        if self._proc is not None and self._proc.is_alive:
            raise SimulationError("failure detector already running")
        self._proc = self.env.process(self._loop(), name="ft:detector")
        return self._proc

    def stop(self) -> None:
        """Stop the heartbeat loop (so a drained sim can terminate)."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("detector stopped")
        self._proc = None

    @property
    def running(self) -> bool:
        return self._proc is not None and self._proc.is_alive

    def _loop(self):
        interval = self.heartbeat_interval_s
        jitter = self.jitter
        if jitter == 0.0:
            while True:
                yield self.env.timeout(interval)
                self.probe_now()
        uniform = self._rng.uniform
        while True:
            yield self.env.timeout(interval * uniform(1.0 - jitter, 1.0 + jitter))
            self.probe_now()

    # -------------------------------------------------------------- probing
    def probe_now(self) -> None:
        """One probe round over all watched peers (also used by tests)."""
        now = self.env.now
        for w in list(self._watches.values()):
            if w.target.up:
                w.last_alive = now
                if w.state != ALIVE:
                    self._transition(w, ALIVE)
            elif w.state == ALIVE:
                self._transition(w, SUSPECT)
                self._maybe_dead(w, now)
            elif w.state == SUSPECT:
                self._maybe_dead(w, now)

    def report_failure(self, name: str) -> None:
        """Data-path feedback: an RPC to ``name`` just failed.

        Immediately marks an alive peer suspect (and dead, if its grace
        window has already lapsed) instead of waiting for the next
        heartbeat round.  Unknown names are ignored — callers report
        whatever peer they talked to, watched or not.
        """
        w = self._watches.get(name)
        if w is None or w.state == DEAD:
            return
        if w.state == ALIVE:
            self._transition(w, SUSPECT)
        self._maybe_dead(w, self.env.now)

    def _maybe_dead(self, w: _Watch, now: float) -> None:
        if now - w.last_alive >= self.failure_timeout_s:
            self._transition(w, DEAD)

    def _transition(self, w: _Watch, state: str) -> None:
        w.state = state
        now = self.env.now
        self.events.append((now, w.name, state))
        if state == DEAD:
            # Detection latency: how long the peer was unreachable
            # before we declared it.
            self._death_latency[w.name] = now - w.last_alive
        rec = self.recorder
        if rec is not None:
            rec.count(f"ft_{state}", "detector")
            if state == DEAD:
                rec.record("ft_detect", "detector", now - w.last_alive,
                           actor=w.name)
        for cb in self._callbacks:
            cb(w.name, state, now)

    # ------------------------------------------------------------ reporting
    def dead_peers(self) -> list[str]:
        return sorted(n for n, w in self._watches.items() if w.state == DEAD)

    def detection_latency_s(self, name: str) -> Optional[float]:
        """Unreachable-to-declared-dead gap for ``name``'s most recent
        death (None if it has never been declared dead)."""
        return self._death_latency.get(name)
