"""Self-healing supervisors: detector events drive recovery automatically.

The recovery mechanisms existed before this module — ``TaskCache.recover``
re-partitions a dead master's chunks over survivors (Fig 11b) and
``recovery.rebuild_dataset`` replays KV metadata from chunk headers
(§4.1.2) — but both only ran when an experiment called them by hand.
The supervisors close the loop:

* :class:`CacheSupervisor` watches every cache master through a
  :class:`~repro.ft.detector.FailureDetector`; a DEAD transition spawns
  one healing process that calls ``TaskCache.recover()`` (repeating
  while further masters die mid-recovery).  In-flight reads that hit the
  dying master report straight into the detector via the cache's
  ``failure_listener`` hook, collapsing detection latency to the first
  failed call.
* :class:`KVSupervisor` watches every KV shard.  On DEAD it records the
  shard's last-known-good probe time, optionally restarts the node +
  instance after ``restart_delay_s`` (an in-memory store restarts
  *empty*), and once **all** shards answer again replays
  ``rebuild_dataset(from_timestamp=last_good)`` for each supervised
  dataset — scenario (a)'s incremental rescan, with no operator call.

Both record their work through the ``repro.obs`` span layer under
``ft_*`` op tags when a recorder is attached.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.dist_cache import CacheMaster, TaskCache
from repro.core.recovery import rebuild_dataset
from repro.core.server import DieselServer
from repro.errors import CachePeerDownError, ClusterError
from repro.ft.detector import DEAD, FailureDetector
from repro.kvstore.sharded import ShardedKV


class CacheSupervisor:
    """Automatically re-partitions a task cache when a master dies."""

    def __init__(
        self,
        detector: FailureDetector,
        cache: TaskCache,
        fanout: Optional[int] = None,
        recorder=None,
    ) -> None:
        self.detector = detector
        self.cache = cache
        self.env = cache.env
        self.fanout = fanout
        self.recorder = recorder
        #: One dict per completed recovery (see :meth:`_heal`).
        self.recoveries: List[dict] = []
        self._healing = False
        for master in cache.masters.values():
            detector.watch(self._watch_name(master), master)
        detector.on_transition(self._on_transition)
        # Data-path feedback: reads that hit a dead master mid-flight
        # report here instead of waiting for the next heartbeat.
        cache.failure_listener = self
        # Elastic membership: start probing masters added by scale_up,
        # stop probing ones retired by scale_down (a drained master must
        # not linger as a phantom DEAD entry that trips healing).
        cache.add_membership_listener(self._on_membership)

    @staticmethod
    def _watch_name(master: CacheMaster) -> str:
        return f"cache:{master.client.name}"

    def report_failure(self, master: CacheMaster) -> None:
        """Called by ``TaskCache`` when an in-flight peer call failed."""
        self.detector.report_failure(self._watch_name(master))

    def _on_membership(self, event: str, names) -> None:
        # scale_up publishes master *client* names, scale_down *node*
        # names (the masters map is keyed by node) — resolve both.
        if event == "scale_up":
            watched = set(self.detector.watched())
            by_client = {
                m.client.name: m for m in self.cache.masters.values()
            }
            for name in names:
                master = by_client.get(name)
                if master is not None:
                    wname = self._watch_name(master)
                    if wname not in watched:
                        self.detector.watch(wname, master)
        elif event == "scale_down":
            # The departed masters are already out of cache.masters;
            # drop any watch whose master is no longer in the mesh.
            live = {
                self._watch_name(m) for m in self.cache.masters.values()
            }
            for wname in self.detector.watched():
                if wname.startswith("cache:") and wname not in live:
                    self.detector.unwatch(wname)

    def _on_transition(self, name: str, state: str, at: float) -> None:
        if state != DEAD or not name.startswith("cache:"):
            return
        if self._healing or not self.cache.dead_masters():
            return
        self._healing = True
        self.env.process(self._heal(), name="ft:heal-cache")

    def _heal(self):
        try:
            while True:
                dead = self.cache.dead_masters()
                if not dead:
                    return
                t0 = self.env.now
                shared = getattr(self.cache, "shared", None)
                before = shared.stats if shared is not None else None
                try:
                    reloaded = yield from self.cache.recover(self.fanout)
                except CachePeerDownError as exc:
                    # No survivors: nothing to re-partition onto.  Leave
                    # the record so experiments can report the outage.
                    self.recoveries.append({
                        "at": t0, "elapsed_s": 0.0, "chunks_reloaded": 0,
                        "masters": sorted(m.client.name for m in dead),
                        "error": str(exc),
                    })
                    return
                for m in dead:
                    self.detector.unwatch(self._watch_name(m))
                record = {
                    "at": t0,
                    "elapsed_s": self.env.now - t0,
                    "chunks_reloaded": reloaded,
                    "masters": sorted(m.client.name for m in dead),
                }
                if shared is not None:
                    # Layer attribution for the re-pull: warm admissions
                    # rebuilt refcounts onto surviving residents, cold
                    # ones actually re-fetched from the object store.
                    # Registry-wide deltas over this heal's window — when
                    # several tasks heal concurrently the windows overlap
                    # and each record sees the union of their admissions
                    # (the backend-fetch count is still deduplicated by
                    # the cross-task single-flight map).
                    after = shared.stats
                    record["shared_warm_admissions"] = (
                        after.warm_admissions - before.warm_admissions
                    )
                    record["shared_cold_admissions"] = (
                        after.cold_admissions - before.cold_admissions
                    )
                self.recoveries.append(record)
                rec = self.recorder
                if rec is not None:
                    rec.record("ft_recover", "task_cache",
                               self.env.now - t0, chunks=reloaded)
        finally:
            self._healing = False


class KVSupervisor:
    """Restarts dead KV shards and replays their lost metadata."""

    def __init__(
        self,
        detector: FailureDetector,
        server: DieselServer,
        kv: ShardedKV,
        datasets: Sequence[str],
        restart_delay_s: float = 0.0,
        auto_restart: bool = True,
        fanout: int = 1,
        recorder=None,
    ) -> None:
        if restart_delay_s < 0:
            raise ValueError("restart_delay_s must be >= 0")
        self.detector = detector
        self.server = server
        self.kv = kv
        self.env = server.env
        self.datasets = list(datasets)
        self.restart_delay_s = restart_delay_s
        self.auto_restart = auto_restart
        self.fanout = fanout
        self.recorder = recorder
        #: One dict per completed rebuild (see :meth:`_rebuild`).
        self.rebuilds: List[dict] = []
        #: Dead shards awaiting rebuild: watch name → last-good sim time.
        self._pending: Dict[str, float] = {}
        self._by_name = {f"kv:{i.name}": i for i in kv.instances}
        for name, inst in self._by_name.items():
            detector.watch(name, inst)
        detector.on_transition(self._on_transition)

    def _on_transition(self, name: str, state: str, at: float) -> None:
        inst = self._by_name.get(name)
        if inst is None:
            return
        if state == DEAD:
            # The last successful probe is the "known timestamp" of
            # §4.1.2 scenario (a): everything ingested before it is
            # safely in other shards' memories or on storage.
            self._pending[name] = self.detector.last_alive(name)
            if self.auto_restart:
                self.env.process(
                    self._restart(inst), name=f"ft:restart-{inst.name}"
                )
        elif name in self._pending and all(i.up for i in self.kv.instances):
            # The last missing shard answered again; replay from the
            # earliest loss so every restarted shard is covered.
            from_ts = int(min(self._pending.values()))
            shards = sorted(self._pending)
            self._pending.clear()
            self.env.process(
                self._rebuild(from_ts, shards), name="ft:rebuild-kv"
            )

    def _restart(self, inst):
        yield self.env.timeout(self.restart_delay_s)
        if not inst.node.alive:
            try:
                inst.node.restore()
            except ClusterError:
                pass  # restored by the injector or another shard's restart
        if inst.node.alive and not inst.up:
            inst.restart()
            # The next heartbeat probe flips the shard back to ALIVE,
            # which triggers the rebuild once all shards answer.

    def _rebuild(self, from_ts: int, shards: List[str]):
        t0 = self.env.now
        scanned = 0
        for ds in self.datasets:
            n = yield from rebuild_dataset(
                self.server, ds, from_timestamp=from_ts, fanout=self.fanout
            )
            scanned += n
        self.rebuilds.append({
            "at": t0,
            "elapsed_s": self.env.now - t0,
            "from_timestamp": from_ts,
            "chunks_scanned": scanned,
            "shards": shards,
        })
        rec = self.recorder
        if rec is not None:
            rec.record("ft_rebuild", "kv", self.env.now - t0,
                       chunks=scanned)
