"""Retry with exponential backoff + jitter and per-call deadlines.

The fault-tolerance layer never changes *what* an RPC does, only how
stubbornly it is attempted: a :class:`RetryPolicy` bounds the number of
attempts, spaces them with capped exponential backoff (decorrelated by
deterministic jitter so synchronized clients do not retry in lockstep),
and optionally abandons any single attempt that overruns a deadline.

Everything here runs on the simulation clock.  Jitter comes from a
caller-supplied :class:`random.Random` so runs stay reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Tuple, Type

from repro.errors import (
    CachePeerDownError,
    CircuitOpenError,
    DeadlineExceededError,
    InterruptError,
    NodeDownError,
    ShardUnavailableError,
)
from repro.sim.engine import Environment, Event

#: Errors that indicate an unreachable peer — the transient class a
#: retry can plausibly outwait (vs. protocol errors, which it cannot).
TRANSIENT_ERRORS: Tuple[Type[BaseException], ...] = (
    NodeDownError,
    ShardUnavailableError,
    CachePeerDownError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try one logical RPC.

    ``retries`` is the number of *extra* attempts after the first
    failure, so a policy with ``retries=2`` makes at most 3 attempts.
    Attempt ``k`` (0-based) that fails sleeps
    ``min(backoff_base_s * 2**k, backoff_max_s)`` scaled by a uniform
    jitter factor in ``[1 - jitter, 1 + jitter]`` before the next try.
    ``deadline_s > 0`` abandons any attempt still in flight after that
    many simulated seconds (the attempt counts as failed and retryable).
    """

    retries: int = 2
    backoff_base_s: float = 0.002
    backoff_max_s: float = 0.25
    jitter: float = 0.5
    deadline_s: float = 0.0
    retry_on: Tuple[Type[BaseException], ...] = TRANSIENT_ERRORS

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_base_s <= 0:
            raise ValueError("backoff_base_s must be positive")
        if self.backoff_max_s < self.backoff_base_s:
            raise ValueError("backoff_max_s must be >= backoff_base_s")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.deadline_s < 0:
            raise ValueError("deadline_s must be >= 0")

    def backoff_s(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Sleep before retry number ``attempt + 1`` (attempt is 0-based)."""
        base = min(self.backoff_base_s * (2 ** attempt), self.backoff_max_s)
        if rng is None or self.jitter == 0.0:
            return base
        return base * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)

    @classmethod
    def from_config(cls, config) -> "RetryPolicy":
        """Build a policy from a :class:`~repro.core.config.DieselConfig`."""
        return cls(
            retries=config.rpc_retries,
            backoff_base_s=config.rpc_backoff_base_s,
            deadline_s=config.rpc_deadline_s,
        )


def run_with_deadline(
    env: Environment,
    gen: Generator[Event, Any, Any],
    deadline_s: float,
    name: str = "deadline",
) -> Generator[Event, Any, Any]:
    """Drive ``gen`` as a child process, abandoning it after ``deadline_s``.

    Returns the generator's value if it finishes in time; raises
    :class:`DeadlineExceededError` (and interrupts the child, so held
    resources are released through its ``finally`` blocks) otherwise.
    Exceptions from the child propagate unchanged.
    """
    proc = env.process(gen, name=name)
    timer = env.timeout(deadline_s)
    try:
        yield env.any_of([proc, timer])
    except BaseException:
        # The child failed first (any_of fails fast) or we were
        # interrupted while waiting: make sure the child is dead.
        if proc.is_alive:
            proc.interrupt("deadline scope torn down")
        raise
    if proc.triggered:
        if proc.ok:
            return proc.value
        raise proc.value
    proc.interrupt("deadline exceeded")
    raise DeadlineExceededError(deadline_s, name)


def retry_call(
    env: Environment,
    policy: RetryPolicy,
    attempt: Callable[[], Generator[Event, Any, Any]],
    *,
    rng: Optional[random.Random] = None,
    breaker=None,
    recorder=None,
    op: str = "rpc",
    actor: str = "",
) -> Generator[Event, Any, Any]:
    """Run ``attempt()`` under ``policy``; a generator (use ``yield from``).

    ``attempt`` is a zero-argument factory returning a *fresh* call
    generator — a generator cannot be re-driven, so each try needs its
    own.  A factory that raises synchronously (e.g. an up-front liveness
    check) is treated like a failed attempt.

    ``breaker``, if given, is consulted before every attempt
    (:class:`~repro.errors.CircuitOpenError` when open) and told about
    each outcome.  ``recorder`` (a ``repro.obs.SpanRecorder``) counts
    retries, deadline hits, and exhaustion under ``ft_*`` ops.
    """
    deadline_err = (DeadlineExceededError,)
    token = None
    for k in range(policy.retries + 1):
        if breaker is not None:
            token = breaker.allow()
            if not token:
                if recorder is not None:
                    recorder.count("ft_breaker_reject", op)
                raise CircuitOpenError(actor or op)
        try:
            if policy.deadline_s > 0:
                result = yield from run_with_deadline(
                    env, attempt(), policy.deadline_s, name=f"{op}:try{k}"
                )
            else:
                result = yield from attempt()
        except policy.retry_on + deadline_err as exc:
            if breaker is not None:
                breaker.record_failure(token)
            if recorder is not None:
                if isinstance(exc, DeadlineExceededError):
                    recorder.count("ft_deadline", op)
                recorder.count("ft_attempt_failed", op)
            if k == policy.retries:
                if recorder is not None:
                    recorder.count("ft_exhausted", op)
                raise
            delay = policy.backoff_s(k, rng)
            if recorder is not None:
                recorder.count("ft_retry", op)
                recorder.record("ft_backoff", op, delay, actor=actor)
            yield env.timeout(delay)
            continue
        except InterruptError:
            # The *caller* was torn down mid-attempt; never retry that.
            raise
        if breaker is not None:
            breaker.record_success(token)
        return result
    raise AssertionError("unreachable: loop either returns or raises")
