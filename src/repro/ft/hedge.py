"""Hedged requests and per-peer latency tracking (straggler mitigation).

A straggling peer is not *down* — the failure detector and circuit
breaker never fire — yet one 10×-slow node can dominate read tail
latency.  The classic cure ("The Tail at Scale", Dean & Barroso) is the
*hedged request*: wait a calibrated delay roughly at the peer's p95
latency, then fire a backup request to another replica (or the backend)
and take whichever answers first, cancelling the loser so the duplicate
work is suppressed rather than paid.

Two pieces live here:

* :class:`PeerLatencyTracker` — EWMA mean + mean-absolute-deviation of
  observed per-peer call latency (Jacobson-style, like TCP RTO).  Its
  :meth:`~PeerLatencyTracker.hedge_delay` is ``mean + dev_mult·dev``, a
  cheap p95-ish bound that needs no histogram; :meth:`~PeerLatencyTracker.fastest`
  steers replica fan-out away from slow peers.
* :func:`hedged_call` — the race combinator: drives the primary as a
  child process, arms the backup after ``delay_s``, returns a
  :class:`HedgeOutcome` describing who won and whether the loser was
  cancelled in time or completed anyway (a counted duplicate).

Everything runs on the simulation clock; no wall-clock, no randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Generator, Iterable, Optional

from repro.errors import InterruptError
from repro.sim.engine import Environment, Event


@dataclass
class HedgeStats:
    """Counters for hedged calls (one instance per task cache)."""

    #: Hedge-wrapped calls issued (whether or not the hedge fired).
    reads: int = 0
    #: Backups launched because the primary outlived its hedge delay.
    hedges_fired: int = 0
    #: Races the primary won (includes unhedged fast paths).
    primary_wins: int = 0
    #: Races the backup won — the straggler was successfully hidden.
    backup_wins: int = 0
    #: Primary failed outright and the backup was fired as a failover.
    failovers: int = 0
    #: Losers interrupted while still in flight (duplicate suppressed).
    cancelled_losers: int = 0
    #: Losers that completed anyway — duplicate work actually paid.
    duplicate_transfers: int = 0
    #: Primary attempts that raised while a backup was racing.
    primary_failures: int = 0
    #: Backup attempts that raised.
    backup_failures: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class HedgeOutcome:
    """What one :func:`hedged_call` did, for the caller's accounting."""

    value: Any = None
    #: ``"primary"`` or ``"backup"``.
    winner: str = ""
    #: True when the backup was launched by the delay timer.
    hedged: bool = False
    #: True when the loser completed anyway (duplicate transfer paid).
    duplicate: bool = False
    primary_error: Optional[BaseException] = None
    backup_error: Optional[BaseException] = None
    #: Wall time of a successful primary (feed to the latency tracker).
    primary_latency_s: Optional[float] = None


class PeerLatencyTracker:
    """EWMA latency model per peer, with a p95-ish hedge-delay estimate.

    ``observe(peer, latency)`` folds a sample in:
    ``err = x - mean; mean += alpha·err; dev += alpha·(|err| - dev)``
    (first sample seeds ``mean = x, dev = x/2``, as TCP does for RTT).
    """

    def __init__(
        self,
        alpha: float = 0.2,
        dev_mult: float = 4.0,
        min_samples: int = 3,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if dev_mult <= 0:
            raise ValueError("dev_mult must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.alpha = alpha
        self.dev_mult = dev_mult
        self.min_samples = min_samples
        self._mean: Dict[str, float] = {}
        self._dev: Dict[str, float] = {}
        self._count: Dict[str, int] = {}

    def observe(self, peer: str, latency_s: float) -> None:
        """Fold one completed-call latency sample for ``peer``."""
        if latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        n = self._count.get(peer, 0)
        if n == 0:
            self._mean[peer] = latency_s
            self._dev[peer] = latency_s / 2.0
        else:
            err = latency_s - self._mean[peer]
            self._mean[peer] += self.alpha * err
            self._dev[peer] += self.alpha * (abs(err) - self._dev[peer])
        self._count[peer] = n + 1

    def samples(self, peer: str) -> int:
        return self._count.get(peer, 0)

    def mean(self, peer: str) -> Optional[float]:
        return self._mean.get(peer)

    def deviation(self, peer: str) -> Optional[float]:
        return self._dev.get(peer)

    def hedge_delay(self, peer: str, floor_s: float = 0.0) -> Optional[float]:
        """Calibrated hedge delay for ``peer`` — ``mean + dev_mult·dev``,
        or ``None`` until ``min_samples`` observations exist (hedging
        with an uncalibrated delay just duplicates every call)."""
        if self._count.get(peer, 0) < self.min_samples:
            return None
        return max(floor_s, self._mean[peer] + self.dev_mult * self._dev[peer])

    def fastest(self, peers: Iterable[str]) -> Optional[str]:
        """The peer with the lowest EWMA mean; never-observed peers rank
        first (optimistically — one call prices them in)."""
        best = None
        best_key = None
        for p in peers:
            key = self._mean.get(p, 0.0)
            if best is None or key < best_key:
                best, best_key = p, key
        return best

    def rows(self) -> list:
        """Per-peer view for probes/CLI: sorted by EWMA mean descending
        (slowest first, since those are the ones worth looking at)."""
        out = [
            {
                "peer": p,
                "samples": self._count[p],
                "ewma_s": self._mean[p],
                "dev_s": self._dev[p],
                "hedge_delay_s": self.hedge_delay(p),
            }
            for p in self._count
        ]
        out.sort(key=lambda r: -r["ewma_s"])
        return out


def _settle_loser(
    proc, role: str, out: HedgeOutcome, stats: Optional[HedgeStats]
) -> None:
    """Cancel (or account) the racer that lost."""
    if proc.is_alive:
        proc.interrupt("hedge lost")
        if stats is not None:
            stats.cancelled_losers += 1
    elif proc.ok:
        out.duplicate = True
        if stats is not None:
            stats.duplicate_transfers += 1
    else:
        err = proc.value
        if role == "primary":
            out.primary_error = err
            if stats is not None:
                stats.primary_failures += 1
        else:
            out.backup_error = err
            if stats is not None:
                stats.backup_failures += 1


def hedged_call(
    env: Environment,
    primary: Generator[Event, Any, Any],
    backup: Callable[[], Generator[Event, Any, Any]],
    delay_s: float,
    stats: Optional[HedgeStats] = None,
    name: str = "hedge",
) -> Generator[Event, Any, Any]:
    """Race ``primary`` against a ``delay_s``-delayed ``backup``.

    A generator — drive with ``yield from``.  ``primary`` is a ready
    call generator; ``backup`` is a zero-argument factory, constructed
    only if the hedge actually fires (or the primary fails first, in
    which case the backup runs immediately as a failover).

    First *success* wins and the loser is interrupted so its held
    resources (NIC channels, RPC worker slots, semaphore slots) drain
    through their ``finally`` blocks; a loser that completed in the same
    tick is counted as a duplicate instead.  If both racers fail, the
    primary's error is re-raised.  An interrupt of the *caller* tears
    both racers down and propagates — hedging never leaks processes.
    """
    out = HedgeOutcome()
    if stats is not None:
        stats.reads += 1
    t0 = env.now
    pproc = env.process(primary, name=f"{name}:primary")
    timer = env.timeout(delay_s)
    try:
        yield env.any_of([pproc, timer])
    except InterruptError:
        if pproc.is_alive:
            pproc.interrupt("hedge torn down")
        raise
    except Exception:
        pass  # primary failed before the timer; inspected below

    if pproc.triggered and pproc.ok:
        out.winner = "primary"
        out.value = pproc.value
        out.primary_latency_s = env.now - t0
        if stats is not None:
            stats.primary_wins += 1
        return out

    if pproc.triggered:
        # Primary failed before the hedge delay elapsed: fire the backup
        # immediately.  This is a failover, not a hedge — the duplicate
        # counters stay untouched.
        out.primary_error = pproc.value
        if stats is not None:
            stats.primary_failures += 1
            stats.failovers += 1
        bproc = env.process(backup(), name=f"{name}:failover")
        try:
            out.value = yield bproc
        except InterruptError:
            if bproc.is_alive:
                bproc.interrupt("hedge torn down")
            raise
        except Exception as exc:
            out.backup_error = exc
            if stats is not None:
                stats.backup_failures += 1
            raise out.primary_error from exc
        out.winner = "backup"
        return out

    # The delay elapsed with the primary still in flight: hedge.
    out.hedged = True
    if stats is not None:
        stats.hedges_fired += 1
    bproc = env.process(backup(), name=f"{name}:backup")
    try:
        yield env.any_of([pproc, bproc])
    except InterruptError:
        for proc in (pproc, bproc):
            if proc.is_alive:
                proc.interrupt("hedge torn down")
        raise
    except Exception:
        pass  # one racer failed; the other may still win

    if pproc.triggered and pproc.ok:
        out.winner = "primary"
        out.value = pproc.value
        out.primary_latency_s = env.now - t0
        if stats is not None:
            stats.primary_wins += 1
        _settle_loser(bproc, "backup", out, stats)
        return out
    if bproc.triggered and bproc.ok:
        out.winner = "backup"
        out.value = bproc.value
        if stats is not None:
            stats.backup_wins += 1
        _settle_loser(pproc, "primary", out, stats)
        return out

    # No winner yet — at least one racer failed.  Wait out the survivor.
    if pproc.triggered and bproc.triggered:
        out.primary_error = pproc.value
        out.backup_error = bproc.value
        if stats is not None:
            stats.primary_failures += 1
            stats.backup_failures += 1
        raise out.primary_error
    survivor, role = (pproc, "primary") if pproc.is_alive else (bproc, "backup")
    fallen, fallen_role = (bproc, "backup") if role == "primary" else (pproc, "primary")
    _settle_loser(fallen, fallen_role, out, stats)
    try:
        out.value = yield survivor
    except InterruptError:
        if survivor.is_alive:
            survivor.interrupt("hedge torn down")
        raise
    except Exception as exc:
        if role == "primary":
            out.primary_error = exc
            if stats is not None:
                stats.primary_failures += 1
            raise
        out.backup_error = exc
        if stats is not None:
            stats.backup_failures += 1
        raise out.primary_error from exc
    out.winner = role
    if role == "primary":
        out.primary_latency_s = env.now - t0
        if stats is not None:
            stats.primary_wins += 1
    elif stats is not None:
        stats.backup_wins += 1
    return out
