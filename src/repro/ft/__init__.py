"""Fault tolerance: failure detection, retry/backoff, self-healing.

The paper's robustness story (§4.1.2 metadata recovery, §4.2 failure
containment, Fig 6/11b) assumes failures are *noticed* and recovery is
*automatic*.  This package supplies that machinery for the simulated
deployment:

* :class:`~repro.ft.detector.FailureDetector` — heartbeat/probe loop
  marking peers alive → suspect → dead, with data-path failure reports
  for instant detection;
* :class:`~repro.ft.retry.RetryPolicy` /
  :func:`~repro.ft.retry.retry_call` — exponential backoff + jitter and
  per-call deadlines around any RPC generator;
* :class:`~repro.ft.breaker.CircuitBreaker` — per-peer fast-fail once a
  peer is known bad;
* :func:`~repro.ft.hedge.hedged_call` /
  :class:`~repro.ft.hedge.PeerLatencyTracker` — hedged requests after a
  calibrated p95 delay, hiding stragglers the detector never flags;
* :class:`~repro.ft.supervisor.CacheSupervisor` /
  :class:`~repro.ft.supervisor.KVSupervisor` — detector-driven
  ``TaskCache.recover()`` and ``rebuild_dataset(from_timestamp)`` with
  no operator in the loop.

See ``docs/FAULTS.md`` for the model and a worked example.
"""

from repro.ft.breaker import CircuitBreaker
from repro.ft.detector import ALIVE, DEAD, SUSPECT, FailureDetector
from repro.ft.hedge import (
    HedgeOutcome,
    HedgeStats,
    PeerLatencyTracker,
    hedged_call,
)
from repro.ft.retry import (
    TRANSIENT_ERRORS,
    RetryPolicy,
    retry_call,
    run_with_deadline,
)
from repro.ft.supervisor import CacheSupervisor, KVSupervisor

__all__ = [
    "ALIVE",
    "DEAD",
    "SUSPECT",
    "TRANSIENT_ERRORS",
    "CacheSupervisor",
    "CircuitBreaker",
    "FailureDetector",
    "HedgeOutcome",
    "HedgeStats",
    "KVSupervisor",
    "PeerLatencyTracker",
    "RetryPolicy",
    "hedged_call",
    "retry_call",
    "run_with_deadline",
]
