"""User-facing tools: the DLCMD command-line client (§5) and workspace
persistence."""

from repro.tools.workspace import DieselWorkspace

__all__ = ["DieselWorkspace"]
