"""DLCMD — the dataset management command-line tool (paper §5).

"A separate command-line tool (DLCMD, similar to s3cmd in Amazon S3) is
provided to write and manage the datasets in DIESEL."

Operates on a workspace file (``--workspace``, default
``./diesel.workspace``), which persists datasets as self-contained
chunks; metadata is rebuilt from chunk headers on every open.

Subcommands::

    dlcmd put <local-file-or-dir> <diesel-path>   upload file(s)
    dlcmd get <diesel-path> <local-file>          download one file
    dlcmd ls [<diesel-dir>]                       list a directory
    dlcmd stat <diesel-path>                      file/dir metadata
    dlcmd rm <diesel-path>                        tombstone one file
    dlcmd purge                                   rewrite holey chunks
    dlcmd save-meta <local-file>                  export the snapshot
    dlcmd datasets                                list datasets
    dlcmd info                                    workspace summary
    dlcmd stats                                   per-layer read latency
    dlcmd trace <local-file>                      chrome://tracing dump
    dlcmd verify                                  metadata vs chunks check
    dlcmd locality                                placement probe summary
    dlcmd scale                                   engine throughput probe
    dlcmd tenants                                 shared-tier tenant usage
    dlcmd tiers                                   RAM/NVMe tier residency probe
    dlcmd meta                                    metadata-plane probe

Every data-mutating command rewrites the workspace file.

The global ``--jobs`` flag sets the parallel I/O depth: chunk sends
kept in flight during ``put`` (ingest pipeline), concurrent header
reads on workspace open, and the batched-read fan-out used by
``stats``/``trace``.  The two observability commands attach a
:class:`repro.obs.SpanRecorder` to the client, server and KV shards,
replay a sample of reads, and report where the time went — ``stats``
as an aligned per-(op, layer) percentile table, ``trace`` as a Chrome
trace-event file viewable in ``chrome://tracing`` (see
docs/OBSERVABILITY.md).

Run:  python -m repro.tools.dlcmd --help
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.core.config import DieselConfig
from repro.errors import ReproError
from repro.tools.workspace import DieselWorkspace
from repro.util.units import format_bytes


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dlcmd",
        description="DIESEL dataset management tool (paper §5)",
    )
    parser.add_argument(
        "--workspace", "-w", default="diesel.workspace",
        help="workspace file holding the datasets (default: %(default)s)",
    )
    parser.add_argument(
        "--dataset", "-d", default="default",
        help="dataset name to operate on (default: %(default)s)",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="parallel I/O depth: chunk sends kept in flight during put "
             "and concurrent header reads during workspace open "
             "(default: %(default)s = serial)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("put", help="upload a file or directory")
    p.add_argument("source", help="local file or directory")
    p.add_argument("dest", help="destination path inside the dataset")

    p = sub.add_parser("get", help="download one file")
    p.add_argument("path", help="path inside the dataset")
    p.add_argument("dest", help="local destination file")

    p = sub.add_parser("ls", help="list a directory")
    p.add_argument("path", nargs="?", default="/", help="directory to list")
    p.add_argument("-l", "--long", action="store_true",
                   help="include sizes (stat each entry)")

    p = sub.add_parser("stat", help="show one entry's metadata")
    p.add_argument("path")

    p = sub.add_parser("rm", help="delete (tombstone) one file")
    p.add_argument("path")

    sub.add_parser("purge", help="rewrite chunks with deletion holes")

    p = sub.add_parser("save-meta", help="export the metadata snapshot")
    p.add_argument("dest", help="local file for the snapshot blob")

    sub.add_parser("datasets", help="list datasets in the workspace")
    sub.add_parser("info", help="workspace summary")

    p = sub.add_parser(
        "stats", help="per-(op, layer) latency percentiles for sample reads"
    )
    p.add_argument(
        "-n", "--sample", type=int, default=32,
        help="max files to read for the measurement (default: %(default)s)",
    )

    p = sub.add_parser(
        "trace", help="write a chrome://tracing JSON of sample reads"
    )
    p.add_argument("dest", help="local output file (open in chrome://tracing)")
    p.add_argument(
        "-n", "--sample", type=int, default=32,
        help="max files to read for the trace (default: %(default)s)",
    )

    sub.add_parser(
        "verify",
        help="cross-check KV metadata against the dataset's chunks "
             "(the post-rebuild consistency check of docs/FAULTS.md)",
    )

    p = sub.add_parser(
        "locality",
        help="hash-vs-locality placement probe: local-hit fraction and "
             "epoch read time over simulated task nodes",
    )
    p.add_argument(
        "-N", "--nodes", type=int, default=2,
        help="simulated task nodes (one cache master each) for the "
             "probe (default: %(default)s)",
    )

    p = sub.add_parser(
        "scale",
        help="engine throughput probe: heap+per-request vs "
             "calendar+batched on the same synthetic epoch "
             "(smoke-sized by default; no workspace data touched)",
    )
    p.add_argument(
        "-N", "--nodes", type=int, default=50,
        help="client nodes in the synthetic epoch (default: %(default)s)",
    )
    p.add_argument(
        "-n", "--requests", type=int, default=10_000,
        help="requests in the epoch (default: %(default)s; the full "
             "BENCH artifact uses 1000 nodes x 10^6 requests)",
    )
    p.add_argument(
        "-b", "--batch", type=int, default=64,
        help="admission batch size for the batched variant "
             "(default: %(default)s)",
    )

    p = sub.add_parser(
        "tenants",
        help="shared-tier probe: per-tenant quota usage, hit/miss and "
             "QoS admission counters over simulated concurrent tasks",
    )
    p.add_argument(
        "-N", "--tasks", type=int, default=2,
        help="concurrent simulated tasks sharing the node tier, one "
             "tenant each; task 0 registers as 'interactive', the rest "
             "as 'batch' (default: %(default)s)",
    )
    p.add_argument(
        "-q", "--quota", type=int, default=0,
        help="per-tenant per-node byte quota for the probe "
             "(default: %(default)s = unlimited)",
    )

    p = sub.add_parser(
        "tiers",
        help="tiered-store probe: cache the dataset on nodes with a "
             "small RAM budget + a simulated NVMe tier, read one "
             "epoch, report per-node tier residency and hit counters",
    )
    p.add_argument(
        "-m", "--ram", type=int, default=4 * 2**20,
        help="RAM budget per probe node in bytes (default: "
             "%(default)s = 4 MiB; size it below the dataset to see "
             "the disk tier absorb the overflow)",
    )
    p.add_argument(
        "--disk", type=int, default=0,
        help="disk-tier capacity per node in stored bytes "
             "(default: %(default)s = unbounded)",
    )
    p.add_argument(
        "-z", "--compress", action="store_true",
        help="compress chunks written to the disk tier (deterministic "
             "per-chunk ratios, see docs/CACHE_TIERS.md)",
    )

    sub.add_parser(
        "meta",
        help="metadata-plane probe: per-dataset snapshot version and "
             "journal depth/span, plus registry shard occupancy "
             "(see docs/METADATA.md)",
    )

    p = sub.add_parser(
        "chaos",
        help="hostile-world probe: read the dataset through an elastic "
             "task cache while one NIC degrades — prints live "
             "membership, per-peer EWMA latency, hedge counters and "
             "the active chaos schedule",
    )
    p.add_argument(
        "-N", "--nodes", type=int, default=3,
        help="simulated task nodes (one cache master each) before the "
             "mid-probe scale-up (default: %(default)s)",
    )
    p.add_argument(
        "--straggler-ms", type=float, default=1.0,
        help="extra per-transfer latency injected on one node's NIC "
             "(default: %(default)s ms)",
    )
    return parser


def _iter_local_files(source: Path) -> Iterable[tuple[Path, str]]:
    """(local path, relative name) pairs for a file or directory tree."""
    if source.is_file():
        yield source, source.name
        return
    for p in sorted(source.rglob("*")):
        if p.is_file():
            yield p, p.relative_to(source).as_posix()


def cmd_put(ws: DieselWorkspace, dataset: str, args) -> str:
    source = Path(args.source)
    if not source.exists():
        raise ReproError(f"no such local file or directory: {source}")
    client = ws.client(dataset)
    if source.is_file():
        items = [(args.dest, source.read_bytes())]
    else:
        items = [
            (f"{args.dest.rstrip('/')}/{rel}", local.read_bytes())
            for local, rel in _iter_local_files(source)
        ]
    # One batched upload: with --jobs > 1 chunk sends overlap the
    # packing of later files (the §4.1.1 ingest pipeline).
    client.put_many(items)
    total = sum(len(data) for _, data in items)
    return f"uploaded {len(items)} file(s), {format_bytes(total)}"


def cmd_get(ws: DieselWorkspace, dataset: str, args) -> str:
    data = ws.client(dataset).get(args.path)
    Path(args.dest).write_bytes(data)
    return f"{args.path} -> {args.dest} ({format_bytes(len(data))})"


def cmd_ls(ws: DieselWorkspace, dataset: str, args) -> str:
    client = ws.client(dataset)
    entries = client.ls(args.path)
    if not args.long:
        return "\n".join(entries) if entries else "(empty)"
    lines = []
    base = args.path.rstrip("/")
    for name in entries:
        full = name if name.startswith("/") else f"{base}/{name}"
        info = client.stat(full)
        kind = "d" if info["is_dir"] else "-"
        lines.append(f"{kind} {info['size']:>12}  {name}")
    return "\n".join(lines) if lines else "(empty)"


def cmd_stat(ws: DieselWorkspace, dataset: str, args) -> str:
    info = ws.client(dataset).stat(args.path)
    kind = "directory" if info["is_dir"] else "file"
    lines = [f"path:  {info['path']}", f"type:  {kind}",
             f"size:  {info['size']}"]
    if info.get("chunk_id"):
        lines.append(f"chunk: {info['chunk_id']}")
    return "\n".join(lines)


def cmd_rm(ws: DieselWorkspace, dataset: str, args) -> str:
    ws.client(dataset).delete(args.path)
    return f"deleted {args.path} (tombstoned; run purge to reclaim space)"


def cmd_purge(ws: DieselWorkspace, dataset: str, args) -> str:
    rewritten = ws.client(dataset).purge()
    return f"purge rewrote {rewritten} chunk(s)"


def cmd_save_meta(ws: DieselWorkspace, dataset: str, args) -> str:
    blob = ws.client(dataset).save_meta()
    Path(args.dest).write_bytes(blob)
    return f"snapshot saved to {args.dest} ({format_bytes(len(blob))})"


def cmd_datasets(ws: DieselWorkspace, dataset: str, args) -> str:
    names = ws.datasets()
    return "\n".join(names) if names else "(no datasets)"


def cmd_info(ws: DieselWorkspace, dataset: str, args) -> str:
    store = ws.tb.store
    lines = [
        f"datasets:     {len(ws.datasets())} ({', '.join(ws.datasets()) or '-'})",
        f"chunks:       {len(store)}",
        f"chunk bytes:  {format_bytes(store.size_bytes())}",
        f"kv pairs:     {ws.tb.kv.total_keys()}",
    ]
    return "\n".join(lines)


def _traced_sample_reads(ws: DieselWorkspace, dataset: str, limit: int):
    """Attach a recorder, replay a strided sample of reads, return it.

    The shared measurement behind ``stats`` and ``trace``: every file in
    the sample goes through the per-file ``DL_get`` path, then one
    batched ``get_many`` exercises the scatter-gather path (``--jobs``
    sets its fan-out).
    """
    from repro.obs import SpanRecorder

    if limit < 1:
        raise ReproError("--sample must be >= 1")
    sync = ws.client(dataset)
    recorder = SpanRecorder.attach(
        sync.client, ws.server, *ws.tb.kv.instances
    )
    index = sync.load_meta(sync.save_meta())
    paths = index.all_paths()
    if not paths:
        raise ReproError(f"dataset {dataset!r} has no files to sample")
    stride = max(1, len(paths) // limit)
    sample = paths[::stride][:limit]
    for path in sample:
        sync.get(path)
    if len(sample) > 1:
        sync.get_many(sample)
    return recorder


def _locality_probe(
    ws: DieselWorkspace, dataset: str, n_nodes: int, placement: str, tag: str
):
    """Run one affinity-scheduled epoch over an ephemeral task cache.

    Spins up ``n_nodes`` simulated task nodes on the workspace fabric,
    elects one cache master per node (``placement`` policy), warms the
    cache, and has each node's worker read its shard of an
    owner-aligned epoch plan.  Returns ``(cache, elapsed_s, files)``;
    nothing about the workspace is mutated.
    """
    from repro.cluster.node import Node
    from repro.core.dist_cache import CacheClient, TaskCache
    from repro.dlt.dataloader import EpochScheduler

    if n_nodes < 1:
        raise ReproError("--nodes must be >= 1")
    sync = ws.client(dataset)
    index = sync.load_meta(sync.save_meta())
    if not index.all_paths():
        raise ReproError(f"dataset {dataset!r} has no files to probe")
    env, fabric = ws.tb.env, ws.tb.fabric
    nodes = [
        fabric.add_node(Node(env, f"{tag}-{placement}-n{i}"))
        for i in range(n_nodes)
    ]
    cache = TaskCache(
        env, fabric, ws.server, dataset,
        [
            CacheClient(f"{tag}-{placement}-c{i}", nodes[i], i)
            for i in range(n_nodes)
        ],
        policy="oneshot", placement=placement,
    )

    def run(gen):
        proc = env.process(gen)
        return env.run(until=proc)

    run(cache.register())
    run(cache.wait_warm())
    files_by_chunk = index.files_by_chunk()
    # ~4 groups per worker so hash placement still gets a balanced deal.
    group_size = max(1, -(-len(files_by_chunk) // (4 * n_nodes)))
    scheduler = EpochScheduler(
        files_by_chunk, group_size, [n.name for n in nodes],
        cache=cache, seed=0,
    )

    def worker(w, cc):
        shard = scheduler.shard(0, w)
        for path in shard.files:
            yield from cache.read_file(cc, index.lookup(path))

    t0 = env.now
    procs = [
        env.process(worker(w, c), name=f"{tag}-{placement}-w{w}")
        for w, c in enumerate(cache.clients)
    ]
    env.run(until=env.all_of(procs))
    return cache, env.now - t0, index.file_count


def _locality_counters(cache) -> str:
    s = cache.stats
    return (
        f"local_hits {s.local_hits}  remote_hits {s.remote_hits}  "
        f"coalesced_pulls {s.coalesced_pulls}  "
        f"replicated_chunks {s.replicated_chunks}"
    )


def cmd_stats(ws: DieselWorkspace, dataset: str, args) -> str:
    recorder = _traced_sample_reads(ws, dataset, args.sample)
    cache, _, _ = _locality_probe(ws, dataset, 2, "locality", "stats")
    return (
        recorder.summary()
        + "\n\ntask cache locality (2-node probe, placement=locality):\n  "
        + _locality_counters(cache)
    )


def cmd_locality(ws: DieselWorkspace, dataset: str, args) -> str:
    """Compare hash vs locality placement on an ephemeral task cache."""
    lines = [f"placement probe: {args.nodes} task node(s), dataset {dataset!r}"]
    for placement in ("hash", "locality"):
        cache, elapsed, files = _locality_probe(
            ws, dataset, args.nodes, placement, "loc"
        )
        s = cache.stats
        served = s.local_hits + s.remote_hits
        frac = s.local_hits / served if served else 0.0
        masters = ", ".join(
            f"{name}:{len(m.assigned)}" for name, m in sorted(cache.masters.items())
        )
        lines.append(
            f"{placement:>9}: local {frac:.0%} ({s.local_hits}/{served}), "
            f"epoch read {elapsed * 1e3:.3f}ms over {files} file(s)"
        )
        lines.append(f"           {_locality_counters(cache)}")
        lines.append(f"           chunks per master: {masters}")
    return "\n".join(lines)


def cmd_trace(ws: DieselWorkspace, dataset: str, args) -> str:
    from repro.obs import write_chrome_trace

    recorder = _traced_sample_reads(ws, dataset, args.sample)
    n = write_chrome_trace(recorder, args.dest)
    return (
        f"wrote {n} trace events to {args.dest} "
        "(load via chrome://tracing or https://ui.perfetto.dev)"
    )


def cmd_scale(ws: DieselWorkspace, dataset: str, args) -> str:
    """Run the engine scale experiment and print its table.

    A pure simulation-substrate probe (synthetic epoch, nothing from the
    workspace is read or written): both scheduler/admission variants
    deliver the identical epoch and the table reports events/sec, peak
    scheduler occupancy and the speedup row — the operator-facing view
    of ``BENCH_scale.json``.
    """
    from repro.bench.experiments import scale_engine
    from repro.bench.reporting import format_result

    if args.nodes < 1 or args.requests < 1 or args.batch < 1:
        raise ReproError("--nodes, --requests and --batch must be >= 1")
    result = scale_engine(
        n_nodes=args.nodes, n_requests=args.requests, batch=args.batch
    )
    return format_result(result)


def _sharing_probe(
    ws: DieselWorkspace, dataset: str, n_tasks: int, quota_bytes: int,
    tag: str = "tenants",
):
    """Run ``n_tasks`` concurrent shared-tier tasks over the dataset.

    Spins up two simulated task nodes; every task spans both, so all
    tasks route admissions through the same node-level
    :class:`~repro.core.shared_cache.SharedChunkCache` instances.  Task
    0 registers as the 'interactive' tenant, the rest as 'batch'.  All
    registrations race (cross-task single-flight), then each task reads
    the full dataset once.  Returns ``(registry, caches)``; nothing
    about the workspace is mutated.
    """
    from repro.cluster.node import Node
    from repro.core.dist_cache import CacheClient, TaskCache
    from repro.core.shared_cache import SharedCacheRegistry

    if n_tasks < 1:
        raise ReproError("--tasks must be >= 1")
    if quota_bytes < 0:
        raise ReproError("--quota must be >= 0")
    sync = ws.client(dataset)
    index = sync.load_meta(sync.save_meta())
    if not index.all_paths():
        raise ReproError(f"dataset {dataset!r} has no files to probe")
    env, fabric = ws.tb.env, ws.tb.fabric
    nodes = [fabric.add_node(Node(env, f"{tag}-n{i}")) for i in range(2)]
    registry = SharedCacheRegistry(env)
    caches = []
    for t in range(n_tasks):
        tenant = f"tenant{t}"
        if quota_bytes:
            registry.set_quota(tenant, quota_bytes)
        caches.append(TaskCache(
            env, fabric, ws.server, dataset,
            [
                CacheClient(f"{tag}-t{t}c{i}", nodes[i], i)
                for i in range(len(nodes))
            ],
            policy="oneshot", shared=registry, tenant=tenant,
            qos_class="interactive" if t == 0 else "batch",
        ))
    regs = [env.process(c.register()) for c in caches]
    env.run(until=env.all_of(regs))
    warms = [env.process(c.wait_warm()) for c in caches]
    env.run(until=env.all_of(warms))

    def epoch(cache):
        cc = cache.clients[0]
        for path in index.all_paths():
            yield from cache.read_file(cc, index.lookup(path))

    readers = [env.process(epoch(c)) for c in caches]
    env.run(until=env.all_of(readers))
    return registry, caches


def cmd_tenants(ws: DieselWorkspace, dataset: str, args) -> str:
    """Per-tenant shared-tier usage over an ephemeral multi-task probe."""
    from repro.bench.reporting import stats_row

    registry, caches = _sharing_probe(
        ws, dataset, args.tasks, args.quota
    )
    lines = [
        f"shared-tier probe: {args.tasks} concurrent task(s), "
        f"dataset {dataset!r}"
    ]
    lines.append("tenant       qos          quota         peak node use  ok")
    for cache, row in zip(caches, registry.tenant_rows()):
        quota = format_bytes(row["quota_bytes"]) if row["quota_bytes"] else "-"
        lines.append(
            f"{row['tenant']:<12} {cache.qos_class:<12} {quota:>12}  "
            f"{format_bytes(row['max_node_usage_bytes']):>12}  "
            f"{'yes' if row['within_quota'] else 'NO'}"
        )
    s = registry.stats
    admitted = s.cold_admissions + s.warm_admissions
    warm_frac = s.warm_admissions / admitted if admitted else 0.0
    lines.append(
        f"admissions: {admitted} ({s.warm_admissions} warm / "
        f"{s.cold_admissions} cold, {warm_frac:.0%} served from "
        f"resident chunks), {s.coalesced_pulls} coalesced in flight"
    )
    counters = stats_row(registry.stats, prefix="shared_")
    lines.append("  ".join(f"{k[7:]} {v}" for k, v in counters.items()))
    return "\n".join(lines)


def cmd_tiers(ws: DieselWorkspace, dataset: str, args) -> str:
    """Per-node RAM/NVMe residency over an ephemeral tiered-cache probe.

    Spins up two probe nodes whose RAM budget is ``--ram`` bytes each,
    caches the dataset through a tiered-store shared registry, reads
    every file once, and reports where the chunks ended up and which
    tier served the reads.  Nothing about the workspace is mutated.
    """
    from repro.cluster.node import Node
    from repro.core.dist_cache import CacheClient, TaskCache
    from repro.core.shared_cache import SharedCacheRegistry

    if args.ram < 1:
        raise ReproError("--ram must be >= 1")
    if args.disk < 0:
        raise ReproError("--disk must be >= 0")
    sync = ws.client(dataset)
    index = sync.load_meta(sync.save_meta())
    if not index.all_paths():
        raise ReproError(f"dataset {dataset!r} has no files to probe")
    env, fabric = ws.tb.env, ws.tb.fabric
    nodes = [
        fabric.add_node(Node(env, f"tiers-n{i}", memory_bytes=args.ram))
        for i in range(2)
    ]
    registry = SharedCacheRegistry(
        env, store="tiered", disk_tier_bytes=args.disk,
        chunk_compression=args.compress,
    )
    cache = TaskCache(
        env, fabric, ws.server, dataset,
        [CacheClient(f"tiers-c{i}", n, i) for i, n in enumerate(nodes)],
        policy="oneshot", shared=registry,
    )

    def probe():
        yield from cache.register()
        yield from cache.wait_warm()
        cc = cache.clients[0]
        for path in index.all_paths():
            yield from cache.read_file(cc, index.lookup(path))

    proc = env.process(probe())
    env.run(until=proc)

    lines = [
        f"tiered-store probe: dataset {dataset!r}, 2 node(s), "
        f"{format_bytes(args.ram)} RAM each, disk "
        f"{format_bytes(args.disk) if args.disk else 'unbounded'}, "
        f"compression {'on' if args.compress else 'off'}"
    ]
    lines.append(
        "node      chunks ram/disk      ram bytes     disk bytes   "
        "stored       hits ram/disk"
    )
    for row in registry.tier_rows():
        lines.append(
            f"{row['node']:<9} {row['chunks_ram']:>6} /{row['chunks_disk']:>5}"
            f"   {format_bytes(row['ram_bytes']):>12} "
            f"{format_bytes(row['disk_bytes']):>14}   "
            f"{format_bytes(row['disk_stored_bytes']):>10} "
            f"{row['ram_hits']:>8} /{row['disk_hits']:>5}"
        )
    s = registry.store_stats
    lines.append(
        f"tier traffic: {s.disk_admits} disk admits, {s.promotions} "
        f"promotions, {s.demotions} demotions, {s.disk_evictions} "
        f"capacity evictions, {s.compress_ops} chunks compressed"
    )
    if s.disk_stored_bytes and args.compress:
        lines.append(
            f"compression: {format_bytes(s.disk_bytes)} logical stored "
            f"as {format_bytes(s.disk_stored_bytes)} "
            f"(x{s.disk_bytes / s.disk_stored_bytes:.2f})"
        )
    return "\n".join(lines)


def cmd_chaos(ws: DieselWorkspace, dataset: str, args) -> str:
    """Hostile-world probe over an ephemeral elastic task cache.

    Spins up ``--nodes`` task nodes, warms the cache, enables hedged
    reads (delay calibrated at 2x the healthy p99), arms a
    :class:`~repro.cluster.failure.ChaosSchedule` that degrades one
    node's NIC, reads the dataset through the storm, scales one extra
    node in live, and reads again.  Prints the operator view: live
    membership, per-peer EWMA latency rows, hedge counters, and the
    chaos schedule with its applied/active windows.  Nothing about the
    workspace is mutated.
    """
    from repro.cluster.failure import ChaosSchedule
    from repro.cluster.node import Node
    from repro.core.dist_cache import CacheClient, TaskCache

    if args.nodes < 1:
        raise ReproError("--nodes must be >= 1")
    if args.straggler_ms < 0:
        raise ReproError("--straggler-ms must be >= 0")
    sync = ws.client(dataset)
    index = sync.load_meta(sync.save_meta())
    paths = index.all_paths()
    if not paths:
        raise ReproError(f"dataset {dataset!r} has no files to probe")
    env, fabric = ws.tb.env, ws.tb.fabric
    nodes = [
        fabric.add_node(Node(env, f"chaos-n{i}")) for i in range(args.nodes)
    ]
    cache = TaskCache(
        env, fabric, ws.server, dataset,
        [CacheClient(f"chaos-c{i}", nodes[i], i) for i in range(args.nodes)],
        policy="oneshot",
    )

    def run(gen):
        proc = env.process(gen)
        return env.run(until=proc)

    run(cache.register())
    run(cache.wait_warm())
    # Degrade the most-loaded master's node and read from another node,
    # so the probe's reads actually cross the hostile NIC.
    straggler_name = max(
        cache.masters, key=lambda n: (len(cache.masters[n].assigned), n)
    )
    straggler = fabric.node(straggler_name)
    cc = next(
        (c for c in cache.clients if c.node.name != straggler_name),
        cache.clients[0],
    )
    lat = []

    def read_pass():
        for path in paths:
            t0 = env.now
            yield from cache.read_file(cc, index.lookup(path))
            lat.append(env.now - t0)

    # Hedging on but unreachable during the healthy pass: primaries all
    # win, which populates the per-peer EWMA tracker without firing.
    cache.configure_hedging(delay_s=60.0)
    run(read_pass())  # healthy pass: calibrates the hedge delay
    lat.sort()
    healthy_p99 = lat[max(0, int(len(lat) * 0.99) - 1)]
    cache.configure_hedging(delay_s=2 * healthy_p99)
    chaos = ChaosSchedule(env)
    chaos.degrade_nic(
        straggler, factor=4.0, extra_latency_s=args.straggler_ms * 1e-3,
        at=env.now, duration_s=60.0,
    )
    chaos.start()
    run(read_pass())  # storm pass: hedges fire against the straggler
    joiner = fabric.add_node(Node(env, f"chaos-n{args.nodes}"))
    run(cache.scale_up(
        [CacheClient(f"chaos-j{args.nodes}", joiner, args.nodes)]
    ))
    run(read_pass())  # post-scale pass over the grown membership

    lines = [
        f"chaos probe: {args.nodes} task node(s) + 1 live joiner, "
        f"dataset {dataset!r}",
        f"membership (version {cache.membership_version}): "
        f"{len(cache.masters)} master(s)",
    ]
    for name, master in sorted(cache.masters.items()):
        degraded = " [NIC degraded]" if master.node.degraded else ""
        lines.append(
            f"  {name}: {len(master.assigned)} chunk(s) "
            f"via {master.client.name}{degraded}"
        )
    for t, event, names in cache.scale_events:
        lines.append(
            f"  scale event t={t:.4f}s: {event} {', '.join(names)}"
        )
    lines.append("peer latency (EWMA, slowest first):")
    for row in cache.peer_latency.rows():
        delay = row["hedge_delay_s"]
        lines.append(
            f"  {row['peer']}: {row['samples']} sample(s), "
            f"ewma {row['ewma_s'] * 1e3:.3f}ms, "
            f"dev {row['dev_s'] * 1e3:.3f}ms, hedge delay "
            + (f"{delay * 1e3:.3f}ms" if delay is not None else "n/a")
        )
    hs = cache.hedge_stats
    lines.append(
        f"hedge counters: {hs.reads} hedged-path reads, "
        f"{hs.hedges_fired} hedges fired, {hs.backup_wins} backup wins, "
        f"{hs.cancelled_losers} losers cancelled, "
        f"{hs.duplicate_transfers} duplicate transfers, "
        f"{hs.failovers} failovers"
    )
    lines.append("chaos schedule:")
    for sc in chaos.describe():
        lines.append(f"  declared t={sc['at']:.4f}s: {sc['label']}")
    active = chaos.active()
    lines.append(
        "  active now: " + (", ".join(active) if active else "(none)")
    )
    for t, action, target in chaos.log:
        lines.append(f"  log t={t:.4f}s: {action} {target}")
    return "\n".join(lines)


def cmd_verify(ws: DieselWorkspace, dataset: str, args) -> str:
    """Check every indexed file resolves through the KV metadata.

    The expectations come from the chunk headers themselves (the
    workspace re-reads them on open), so this catches KV drift — the
    check `recovery.verify_rebuild` runs after a shard rebuild, exposed
    as a standalone command for operators.
    """
    from repro.core.recovery import verify_rebuild

    sync = ws.client(dataset)
    index = sync.load_meta(sync.save_meta())
    expected = {
        path: index.lookup(path).length for path in index.all_paths()
    }
    if not expected:
        raise ReproError(f"dataset {dataset!r} has no files to verify")
    problems = verify_rebuild(ws.server, dataset, expected)
    if problems:
        raise ReproError(
            f"metadata inconsistent ({len(problems)} problems):\n  "
            + "\n  ".join(problems)
        )
    return f"metadata consistent: {len(expected)} files verified, 0 problems"


def cmd_meta(ws: DieselWorkspace, dataset: str, args) -> str:
    """Metadata-plane probe: journal, snapshot versions, registry.

    Reads the same counters the ``metaplane`` experiment asserts on —
    per-dataset snapshot version (``update_ts``), retained journal
    depth and version span (what a delta ``refresh_meta`` can span
    before falling back to a full reload), and how the dataset
    registry's names spread across its hash shards.
    """
    server = ws.server
    reg = server.registry
    occ = reg.occupancy()
    occupied = sum(1 for n in occ if n)
    lines = [
        f"registry:         {reg.count()} dataset(s) on "
        f"{occupied}/{reg.n_shards} shards "
        f"(max {max(occ, default=0)} per shard)",
        f"journal horizon:  {server.config.meta_journal_horizon} "
        f"version(s) retained per dataset",
    ]
    names = server.datasets()
    if not names:
        lines.append("(no datasets)")
        return "\n".join(lines)
    lines.append(f"{'dataset':<16} {'version':>8} {'depth':>6}  span")
    for name in names:
        version = server.dataset_info(name).update_ts
        depth = server.journal.depth(name)
        span = server.journal.span(name)
        span_s = f"v{span[0]}..v{span[1]}" if span else "-"
        lines.append(f"{name:<16} {version:>8} {depth:>6}  {span_s}")
    return "\n".join(lines)


_COMMANDS = {
    "put": (cmd_put, True),
    "get": (cmd_get, False),
    "ls": (cmd_ls, False),
    "stat": (cmd_stat, False),
    "rm": (cmd_rm, True),
    "purge": (cmd_purge, True),
    "save-meta": (cmd_save_meta, False),
    "datasets": (cmd_datasets, False),
    "info": (cmd_info, False),
    "stats": (cmd_stats, False),
    "trace": (cmd_trace, False),
    "verify": (cmd_verify, False),
    "locality": (cmd_locality, False),
    "scale": (cmd_scale, False),
    "tenants": (cmd_tenants, False),
    "tiers": (cmd_tiers, False),
    "meta": (cmd_meta, False),
    "chaos": (cmd_chaos, False),
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handler, mutates = _COMMANDS[args.command]
    if args.jobs < 1:
        print("dlcmd: error: --jobs must be >= 1", file=sys.stderr)
        return 2
    config = DieselConfig(
        ingest_pipeline_depth=args.jobs, read_fanout=args.jobs
    )
    try:
        ws = DieselWorkspace.open(args.workspace, config)
        message = handler(ws, args.dataset, args)
        if mutates:
            ws.save(args.workspace)
    except ReproError as exc:
        print(f"dlcmd: error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"dlcmd: error: {exc}", file=sys.stderr)
        return 1
    print(message)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
