"""Persistent DIESEL workspaces.

A workspace bundles a full single-server DIESEL deployment (object
store + KV metadata) with save/load to a real file on disk, so DLCMD
invocations can operate on the same datasets across processes — the way
the paper's `DLCMD` manipulates datasets that live on in the shared
cluster.

The on-disk format is deliberately simple and self-describing: the chunk
objects (which are self-contained, §4.1.2) plus nothing else — metadata
is *rebuilt from the chunks on load*, exercising the recovery path on
every open.  That makes the file format trivially forward-compatible
and doubles as a continuous test of the §4.1.2 recovery guarantee.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench.setups import Testbed, add_diesel, make_testbed
from repro.core import recovery
from repro.core.client import DieselClient, SyncDieselClient
from repro.core.config import DieselConfig
from repro.errors import ChunkFormatError

MAGIC = b"DSWS"
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")


class DieselWorkspace:
    """A single-node DIESEL deployment with on-disk persistence."""

    def __init__(self, config: Optional[DieselConfig] = None) -> None:
        self.config = config or DieselConfig()
        self.tb: Testbed = make_testbed(
            n_compute=1, n_storage=1, scheduler=self.config.sim_scheduler
        )
        add_diesel(self.tb, n_servers=1, config=self.config)
        self._clients: Dict[str, SyncDieselClient] = {}

    @property
    def server(self):
        return self.tb.diesel

    def client(self, dataset: str) -> SyncDieselClient:
        """A synchronous client bound to ``dataset`` (cached per dataset)."""
        if dataset not in self._clients:
            self._clients[dataset] = SyncDieselClient(
                DieselClient(
                    self.tb.env,
                    self.tb.compute_nodes[0],
                    self.tb.diesel_servers,
                    dataset,
                    name=f"dlcmd:{dataset}",
                    config=self.config,
                )
            )
        return self._clients[dataset]

    def datasets(self) -> List[str]:
        return self.server.datasets()

    # ------------------------------------------------------------ persistence
    def save(self, path: str | Path) -> int:
        """Write every chunk object to ``path``; returns the byte count.

        Layout: magic ‖ count ‖ (key_len ‖ key ‖ blob_len ‖ blob)*.
        Only chunks are stored — metadata rebuilds from their headers.
        """
        store = self.tb.store
        out = bytearray()
        out += MAGIC
        keys = store.list_keys()
        out += _U32.pack(len(keys))
        for key in keys:
            blob = store.peek(key)
            kb = key.encode("utf-8")
            out += _U32.pack(len(kb))
            out += kb
            out += _U64.pack(len(blob))
            out += blob
        Path(path).write_bytes(bytes(out))
        return len(out)

    @classmethod
    def load(cls, path: str | Path, config: Optional[DieselConfig] = None
             ) -> "DieselWorkspace":
        """Open a workspace file, rebuilding all metadata from chunks."""
        blob = Path(path).read_bytes()
        if blob[:4] != MAGIC:
            raise ChunkFormatError(f"not a DIESEL workspace file: {path}")
        ws = cls(config)
        pos = 4
        (count,) = _U32.unpack_from(blob, pos)
        pos += 4
        items = []
        for _ in range(count):
            (klen,) = _U32.unpack_from(blob, pos)
            pos += 4
            key = blob[pos : pos + klen].decode("utf-8")
            pos += klen
            (blen,) = _U64.unpack_from(blob, pos)
            pos += 8
            items.append((key, blob[pos : pos + blen]))
            pos += blen
        if pos != len(blob):
            raise ChunkFormatError("trailing garbage in workspace file")
        ws.tb.store.load(items)
        # Rebuild KV metadata by scanning the chunks (§4.1.2 scenario b);
        # the read_fanout knob overlaps the header reads across chunks.
        proc = ws.tb.env.process(
            recovery.rebuild_all(ws.server, fanout=ws.config.read_fanout)
        )
        ws.tb.env.run(until=proc)
        return ws

    @classmethod
    def open(cls, path: str | Path, config: Optional[DieselConfig] = None
             ) -> "DieselWorkspace":
        """Load if ``path`` exists, else a fresh workspace."""
        p = Path(path)
        if p.exists():
            return cls.load(p, config)
        return cls(config)
