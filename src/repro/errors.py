"""Exception hierarchy for the DIESEL reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation engine."""


class DeadlockError(SimulationError):
    """Raised when the event loop runs dry while processes are still waiting."""


class InterruptError(SimulationError):
    """Raised inside a process that has been interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.engine.Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class ClusterError(ReproError):
    """Raised for invalid cluster topology operations."""


class NodeDownError(ClusterError):
    """Raised when an operation targets a failed node or service."""

    def __init__(self, node: str, detail: str = "") -> None:
        msg = f"node {node!r} is down"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
        self.node = node


class StorageError(ReproError):
    """Base class for object-store and device failures."""


class ObjectNotFoundError(StorageError, KeyError):
    """Raised when an object key does not exist in an object store."""

    def __init__(self, key: str) -> None:
        super().__init__(f"object not found: {key!r}")
        self.key = key


class KVError(ReproError):
    """Base class for key-value store failures."""


class KeyNotFoundError(KVError, KeyError):
    """Raised when a key is absent from the KV store."""

    def __init__(self, key: str) -> None:
        super().__init__(f"key not found: {key!r}")
        self.key = key


class ShardUnavailableError(KVError):
    """Raised when the shard owning a key is down."""


class DieselError(ReproError):
    """Base class for DIESEL client/server protocol errors."""


class FileNotFoundInDatasetError(DieselError, FileNotFoundError):
    """Raised when a path does not exist in a DIESEL dataset."""

    def __init__(self, path: str) -> None:
        super().__init__(f"no such file in dataset: {path!r}")
        self.path = path


class FileExistsInDatasetError(DieselError, FileExistsError):
    """Raised when putting a path that already exists (without overwrite)."""

    def __init__(self, path: str) -> None:
        super().__init__(f"file already exists in dataset: {path!r}")
        self.path = path


class DatasetNotFoundError(DieselError):
    """Raised when a dataset name is unknown to the DIESEL server."""

    def __init__(self, dataset: str) -> None:
        super().__init__(f"no such dataset: {dataset!r}")
        self.dataset = dataset


class StaleSnapshotError(DieselError):
    """Raised when a loaded metadata snapshot is older than the dataset."""

    def __init__(self, dataset: str, snapshot_ts: int, current_ts: int) -> None:
        super().__init__(
            f"snapshot for dataset {dataset!r} is stale "
            f"(snapshot ts={snapshot_ts}, dataset ts={current_ts})"
        )
        self.dataset = dataset
        self.snapshot_ts = snapshot_ts
        self.current_ts = current_ts


class DeltaConflictError(DieselError):
    """Raised when a metadata delta cannot be applied to an index.

    Covers re-applying an already applied delta (idempotence guard), a
    version gap past the journal horizon, and journal ops that disagree
    with the index state (e.g. deleting an unknown path).  The right
    recovery is always a full snapshot reload.
    """

    def __init__(
        self, dataset: str, index_ts: int, entry_ts: int, detail: str = ""
    ) -> None:
        msg = (
            f"delta for dataset {dataset!r} does not apply: index at "
            f"ts {index_ts}, entry at ts {entry_ts}"
        )
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)
        self.dataset = dataset
        self.index_ts = index_ts
        self.entry_ts = entry_ts


class ChunkFormatError(DieselError):
    """Raised when chunk bytes fail structural validation."""


class ChunkChecksumError(ChunkFormatError):
    """Raised when a chunk or file payload fails its checksum."""


class ClosedError(DieselError):
    """Raised when using a closed client context or server."""


class AuthError(DieselError):
    """Raised when DL_connect credentials are rejected."""

    def __init__(self, user: str) -> None:
        super().__init__(f"authentication failed for user {user!r}")
        self.user = user


class FaultToleranceError(ReproError):
    """Base class for failures raised by the fault-tolerance layer."""


class DeadlineExceededError(FaultToleranceError):
    """Raised when an RPC attempt overruns its per-call deadline."""

    def __init__(self, deadline_s: float, detail: str = "") -> None:
        msg = f"call exceeded deadline of {deadline_s}s"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
        self.deadline_s = deadline_s


class CircuitOpenError(FaultToleranceError):
    """Raised when a peer's circuit breaker is open (fast-fail, no RPC)."""

    def __init__(self, peer: str) -> None:
        super().__init__(f"circuit breaker for peer {peer!r} is open")
        self.peer = peer


class CacheError(ReproError):
    """Base class for distributed-cache failures."""


class CachePeerDownError(CacheError):
    """Raised when a cache peer holding a partition is unreachable."""

    def __init__(self, peer: str) -> None:
        super().__init__(f"cache peer {peer!r} is unreachable")
        self.peer = peer
