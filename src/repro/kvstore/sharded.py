"""Slot-sharded KV cluster (Redis-cluster style) with failure scenarios."""

from __future__ import annotations

import heapq
import random
from typing import Any, Dict, Generator, Optional, Sequence, Tuple

from repro.errors import (
    CircuitOpenError,
    NodeDownError,
    ShardUnavailableError,
)
from repro.cluster.node import Node
from repro.kvstore.kv import KVInstance
from repro.sim.engine import Event
from repro.util.hashing import stable_hash

#: Redis cluster uses 16384 hash slots; we keep the same constant.
NUM_SLOTS = 16384


def _merge_page(
    parts: Sequence[Sequence[tuple[str, bytes]]], limit: Optional[int]
) -> Tuple[list[tuple[str, bytes]], Optional[str]]:
    """Streaming k-way merge of per-shard sorted pages.

    Merges on the full (key, value) pair so the page order never depends
    on which shards contributed, truncates to ``limit``, and derives the
    resume cursor: the last key of a full page (a short page means every
    shard was drained, so the scan is complete).
    """
    merged = heapq.merge(*parts)
    if limit is None:
        return list(merged), None
    page: list[tuple[str, bytes]] = []
    for pair in merged:
        page.append(pair)
        if len(page) >= limit:
            break
    next_cursor = page[-1][0] if len(page) >= limit else None
    return page, next_cursor


class ShardedKV:
    """Routes keys to KV instances by hash slot.

    Mirrors how a Redis cluster (or twemproxy'd pool) spreads a keyspace.
    ``pscan`` fans out to every live shard and merges, since a prefix may
    span shards.
    """

    def __init__(self, instances: Sequence[KVInstance]) -> None:
        if not instances:
            raise ValueError("ShardedKV needs at least one instance")
        self._instances = list(instances)
        #: Fault tolerance (opt-in via :meth:`configure_ft`; None =
        #: legacy single-attempt behaviour).
        self._retry = None
        self._breakers: Dict[str, Any] = {}  # instance name -> breaker
        self._breaker_threshold = 5
        self._breaker_reset_s = 1.0
        self._rng: Optional[random.Random] = None

    def configure_ft(
        self,
        policy,
        breaker_threshold: int = 5,
        breaker_reset_s: float = 1.0,
    ) -> None:
        """Wrap every shard RPC in ``policy`` (a
        :class:`repro.ft.retry.RetryPolicy`) with per-shard circuit
        breakers.  The shard's liveness is re-probed on each attempt, so
        a retried call survives a shard restart mid-operation."""
        self._retry = policy
        self._breaker_threshold = breaker_threshold
        self._breaker_reset_s = breaker_reset_s
        self._breakers.clear()
        # Seeded: retry jitter must not vary run to run.
        self._rng = random.Random(0x5A4D)

    def _breaker_for(self, inst: KVInstance):
        breaker = self._breakers.get(inst.name)
        if breaker is None:
            from repro.ft.breaker import CircuitBreaker

            breaker = CircuitBreaker(
                inst.env, self._breaker_threshold, self._breaker_reset_s,
                name=inst.name,
            )
            self._breakers[inst.name] = breaker
        return breaker

    def _call_inst(
        self, client: Node, inst: KVInstance, method: str, *args: Any,
        **kw: Any,
    ) -> Generator[Event, Any, Any]:
        """One shard RPC, retried under the configured policy (if any)."""
        if self._retry is None:
            if not inst.up:
                raise ShardUnavailableError(f"shard {inst.name!r} is down")
            result = yield from inst.call(client, method, *args, **kw)
            return result
        from repro.ft.retry import retry_call

        def attempt():
            if not inst.up:
                raise ShardUnavailableError(f"shard {inst.name!r} is down")
            return inst.call(client, method, *args, **kw)

        result = yield from retry_call(
            inst.env,
            self._retry,
            attempt,
            rng=self._rng,
            breaker=self._breaker_for(inst),
            recorder=inst.recorder,
            op=f"kv_{method}",
            actor=inst.name,
        )
        return result

    @property
    def instances(self) -> tuple[KVInstance, ...]:
        return tuple(self._instances)

    def slot(self, key: str) -> int:
        return stable_hash(key, NUM_SLOTS)

    def owner(self, key: str) -> KVInstance:
        return self._instances[self.slot(key) % len(self._instances)]

    def _live_owner(self, key: str) -> KVInstance:
        inst = self.owner(key)
        if not inst.up:
            raise ShardUnavailableError(
                f"shard {inst.name!r} for key {key!r} is down"
            )
        return inst

    # -- simulated operations (generators; run inside a process) ----------
    def get(self, client: Node, key: str) -> Generator[Event, Any, bytes]:
        result = yield from self._call_inst(client, self.owner(key), "get", key)
        return result

    def get_or_none(
        self, client: Node, key: str
    ) -> Generator[Event, Any, Optional[bytes]]:
        result = yield from self._call_inst(
            client, self.owner(key), "get_or_none", key
        )
        return result

    def put(self, client: Node, key: str, value: bytes) -> Generator[Event, Any, None]:
        yield from self._call_inst(
            client, self.owner(key), "put", key, value,
            request_bytes=64 + len(key) + len(value),
        )

    def delete(self, client: Node, key: str) -> Generator[Event, Any, None]:
        yield from self._call_inst(client, self.owner(key), "delete", key)

    def pscan(
        self, client: Node, prefix: str, skip_dead: bool = False
    ) -> Generator[Event, Any, list[tuple[str, bytes]]]:
        """Prefix scan across all shards, merged in key order.

        Liveness is validated **up front**, before any shard is charged
        RPC cost — a scan never pays for half the cluster and then
        raises on a shard it could have checked for free.
        ``skip_dead=True`` is the degraded mode: scan whatever shards
        answer and merge what exists (the caller owns the completeness
        caveat); a shard dying *mid-scan* is likewise skipped.
        """
        down = [i.name for i in self._instances if not i.up]
        if down and not skip_dead:
            raise ShardUnavailableError(
                f"shards down: {', '.join(sorted(down))}"
            )
        merged: list[tuple[str, bytes]] = []
        for inst in self._instances:
            if not inst.up and skip_dead:
                continue
            try:
                part = yield from self._call_inst(client, inst, "pscan", prefix)
            except (NodeDownError, ShardUnavailableError, CircuitOpenError):
                if skip_dead:
                    continue
                raise
            merged.extend(part)
        # Sort the full (key, value) pair, not the key alone: a stable
        # key-only sort leaves equal keys in shard-iteration order, so a
        # degraded skip_dead scan would interleave differently depending
        # on *which* shard died.  The pair sort is shard-order-free.
        merged.sort()
        return merged

    def pscan_page(
        self,
        client: Node,
        prefix: str,
        cursor: Optional[str] = None,
        limit: Optional[int] = None,
        skip_dead: bool = False,
    ) -> Generator[Event, Any, Tuple[list[tuple[str, bytes]], Optional[str]]]:
        """One bounded page of a cross-shard prefix scan.

        Each live shard returns at most ``limit`` pairs past ``cursor``;
        the per-shard pages (already sorted) are k-way merged and
        truncated to ``limit``, so neither the shards nor the caller ever
        materialize the full prefix range.  Returns ``(pairs,
        next_cursor)``; pass ``next_cursor`` back to fetch the following
        page (``None`` = the scan is complete).  Liveness and
        ``skip_dead`` semantics match :meth:`pscan`.
        """
        down = [i.name for i in self._instances if not i.up]
        if down and not skip_dead:
            raise ShardUnavailableError(
                f"shards down: {', '.join(sorted(down))}"
            )
        parts: list[list[tuple[str, bytes]]] = []
        for inst in self._instances:
            if not inst.up and skip_dead:
                continue
            try:
                part = yield from self._call_inst(
                    client, inst, "pscan", prefix, limit, cursor
                )
            except (NodeDownError, ShardUnavailableError, CircuitOpenError):
                if skip_dead:
                    continue
                raise
            parts.append(part)
        return _merge_page(parts, limit)

    def local_pscan_page(
        self,
        prefix: str,
        cursor: Optional[str] = None,
        limit: Optional[int] = None,
        skip_dead: bool = False,
    ) -> Tuple[list[tuple[str, bytes]], Optional[str]]:
        """Zero-cost :meth:`pscan_page` for co-located server logic."""
        down = [i.name for i in self._instances if not i.up]
        if down and not skip_dead:
            raise ShardUnavailableError(
                f"shards down: {', '.join(sorted(down))}"
            )
        parts = [
            inst.table.pscan(prefix, limit, cursor)
            for inst in self._instances
            if inst.up
        ]
        return _merge_page(parts, limit)

    def local_pscan_iter(
        self, prefix: str, page_size: int, skip_dead: bool = False
    ):
        """Iterate a prefix range page by page (zero-cost, bounded RAM).

        Yields lists of at most ``page_size`` pairs in global key order;
        the seam behind ``ls -lR`` and snapshot builds, which must not
        materialize an unbounded result set.
        """
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        cursor: Optional[str] = None
        while True:
            page, cursor = self.local_pscan_page(
                prefix, cursor=cursor, limit=page_size, skip_dead=skip_dead
            )
            if page:
                yield page
            if cursor is None:
                return

    def local_pcount(self, prefix: str, skip_dead: bool = False) -> int:
        """Count keys under ``prefix`` without materializing any pair."""
        down = [i.name for i in self._instances if not i.up]
        if down and not skip_dead:
            raise ShardUnavailableError(
                f"shards down: {', '.join(sorted(down))}"
            )
        return sum(
            inst.table.pcount(prefix) for inst in self._instances if inst.up
        )

    # -- direct (zero-cost) access for co-located server logic ------------
    # These bypass the RPC *cost* (the DIESEL server's service rate
    # already accounts for the KV round trip) but never the shard's
    # *liveness*: a dead Redis instance is dead however you reach it.
    def local_put(self, key: str, value: bytes) -> None:
        """Write bypassing RPC cost; for processes co-located with the shard."""
        self._live_owner(key).table.put(key, value)

    def local_get(self, key: str) -> bytes:
        return self._live_owner(key).table.get(key)

    def local_get_or_none(self, key: str) -> Optional[bytes]:
        return self._live_owner(key).table.get_or_none(key)

    def local_delete(self, key: str) -> None:
        self._live_owner(key).table.delete(key)

    def local_pscan(
        self, prefix: str, skip_dead: bool = False
    ) -> list[tuple[str, bytes]]:
        """Zero-cost prefix scan; same up-front liveness validation and
        degraded ``skip_dead`` semantics as :meth:`pscan`."""
        down = [i.name for i in self._instances if not i.up]
        if down and not skip_dead:
            raise ShardUnavailableError(
                f"shards down: {', '.join(sorted(down))}"
            )
        merged: list[tuple[str, bytes]] = []
        for inst in self._instances:
            if not inst.up:
                continue
            merged.extend(inst.table.pscan(prefix))
        merged.sort()  # full-pair sort: order must not depend on shard fate
        return merged

    def total_keys(self) -> int:
        return sum(len(i.table) for i in self._instances)

    # -- §4.1.2 failure scenarios -----------------------------------------
    def lose_instance(self, index: int) -> KVInstance:
        """Scenario (a): one KV node crashes, losing its recent pairs."""
        inst = self._instances[index]
        inst.crash_and_lose_data()
        return inst

    def lose_all(self) -> None:
        """Scenario (b): data-center power failure — all pairs gone."""
        for inst in self._instances:
            inst.crash_and_lose_data()
