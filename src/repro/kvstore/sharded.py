"""Slot-sharded KV cluster (Redis-cluster style) with failure scenarios."""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from repro.errors import ShardUnavailableError
from repro.cluster.node import Node
from repro.kvstore.kv import KVInstance
from repro.sim.engine import Event
from repro.util.hashing import stable_hash

#: Redis cluster uses 16384 hash slots; we keep the same constant.
NUM_SLOTS = 16384


class ShardedKV:
    """Routes keys to KV instances by hash slot.

    Mirrors how a Redis cluster (or twemproxy'd pool) spreads a keyspace.
    ``pscan`` fans out to every live shard and merges, since a prefix may
    span shards.
    """

    def __init__(self, instances: Sequence[KVInstance]) -> None:
        if not instances:
            raise ValueError("ShardedKV needs at least one instance")
        self._instances = list(instances)

    @property
    def instances(self) -> tuple[KVInstance, ...]:
        return tuple(self._instances)

    def slot(self, key: str) -> int:
        return stable_hash(key, NUM_SLOTS)

    def owner(self, key: str) -> KVInstance:
        return self._instances[self.slot(key) % len(self._instances)]

    def _live_owner(self, key: str) -> KVInstance:
        inst = self.owner(key)
        if not inst.up:
            raise ShardUnavailableError(
                f"shard {inst.name!r} for key {key!r} is down"
            )
        return inst

    # -- simulated operations (generators; run inside a process) ----------
    def get(self, client: Node, key: str) -> Generator[Event, Any, bytes]:
        inst = self._live_owner(key)
        result = yield from inst.call(client, "get", key)
        return result

    def get_or_none(
        self, client: Node, key: str
    ) -> Generator[Event, Any, Optional[bytes]]:
        inst = self._live_owner(key)
        result = yield from inst.call(client, "get_or_none", key)
        return result

    def put(self, client: Node, key: str, value: bytes) -> Generator[Event, Any, None]:
        inst = self._live_owner(key)
        yield from inst.call(
            client, "put", key, value, request_bytes=64 + len(key) + len(value)
        )

    def delete(self, client: Node, key: str) -> Generator[Event, Any, None]:
        inst = self._live_owner(key)
        yield from inst.call(client, "delete", key)

    def pscan(
        self, client: Node, prefix: str
    ) -> Generator[Event, Any, list[tuple[str, bytes]]]:
        """Prefix scan across all shards, merged in key order."""
        merged: list[tuple[str, bytes]] = []
        for inst in self._instances:
            if not inst.up:
                raise ShardUnavailableError(f"shard {inst.name!r} is down")
            part = yield from inst.call(client, "pscan", prefix)
            merged.extend(part)
        merged.sort(key=lambda kv: kv[0])
        return merged

    # -- direct (zero-cost) access for co-located server logic ------------
    # These bypass the RPC *cost* (the DIESEL server's service rate
    # already accounts for the KV round trip) but never the shard's
    # *liveness*: a dead Redis instance is dead however you reach it.
    def local_put(self, key: str, value: bytes) -> None:
        """Write bypassing RPC cost; for processes co-located with the shard."""
        self._live_owner(key).table.put(key, value)

    def local_get(self, key: str) -> bytes:
        return self._live_owner(key).table.get(key)

    def local_get_or_none(self, key: str) -> Optional[bytes]:
        return self._live_owner(key).table.get_or_none(key)

    def local_delete(self, key: str) -> None:
        self._live_owner(key).table.delete(key)

    def local_pscan(self, prefix: str) -> list[tuple[str, bytes]]:
        merged: list[tuple[str, bytes]] = []
        for inst in self._instances:
            if not inst.up:
                raise ShardUnavailableError(f"shard {inst.name!r} is down")
            merged.extend(inst.table.pscan(prefix))
        merged.sort(key=lambda kv: kv[0])
        return merged

    def total_keys(self) -> int:
        return sum(len(i.table) for i in self._instances)

    # -- §4.1.2 failure scenarios -----------------------------------------
    def lose_instance(self, index: int) -> KVInstance:
        """Scenario (a): one KV node crashes, losing its recent pairs."""
        inst = self._instances[index]
        inst.crash_and_lose_data()
        return inst

    def lose_all(self) -> None:
        """Scenario (b): data-center power failure — all pairs gone."""
        for inst in self._instances:
            inst.crash_and_lose_data()
