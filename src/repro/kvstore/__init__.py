"""Sharded in-memory key-value store (the Redis-cluster substrate).

DIESEL stores dataset metadata as key-value pairs in a distributed
in-memory KV database (§4, Fig 2: "e.g., Redis cluster").  This package
provides:

* :class:`KVTable` — the pure data structure (bytes → bytes with prefix
  scan), usable without simulation;
* :class:`KVInstance` — one KV server process bound to a cluster node,
  fronted by an RPC endpoint with a calibrated service rate;
* :class:`ShardedKV` — slot-based sharding across instances, plus the two
  §4.1.2 failure scenarios (lose one instance's recent writes / lose
  everything).
"""

from repro.kvstore.kv import KVInstance, KVTable
from repro.kvstore.sharded import ShardedKV

__all__ = ["KVInstance", "KVTable", "ShardedKV"]
